#!/bin/bash
# Regenerate every table and figure of the paper at full evaluation scale.
cd "$(dirname "$0")/.."
BIN=./target/release
for f in fig02 fig07 fig08 fig09 fig10 table1 fig11 fig12 fig13 fig14 ablation_pipeline ablation_placement ablation_aggregators ablation_burst_buffer ablation_imbalance ablation_subfiling portability interference; do
  echo "== $f =="
  $BIN/$f > results/$f.csv 2> results/$f.log
  grep SHAPE results/$f.csv
done
