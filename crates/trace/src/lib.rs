//! Structured event tracing for TAPIOCA collectives.
//!
//! Both executors — the thread-mode runtime (`tapioca-mpi`) and the
//! flow-level simulator (`sim_exec`) — run the *same* schedule objects.
//! This crate gives them one event schema to emit into, so a collective
//! becomes an inspectable artifact: a merged, time-ordered list of
//! [`TraceEvent`]s that can be summarized ([`TraceSummary`]), compared
//! across executors ([`StructuralTrace`]), or dumped as JSONL for
//! offline inspection.
//!
//! Recording is contention-free: a [`Tracer`] keeps one lane per rank
//! and a rank only ever locks its own lane. The disabled path is one
//! `Option` check at each instrumentation site — no tracer, no work.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Rank index (mirrors `tapioca_mpi::Rank` without the dependency).
pub type Rank = usize;

/// `peer` value when an event has no meaningful counterpart rank.
pub const NO_PEER: Rank = usize::MAX;

/// `offset` value when an event carries no region metadata (fences,
/// elections, and simulator-side puts, whose plan ops are per-node flows
/// without buffer coordinates).
pub const NO_OFFSET: u64 = u64::MAX;

/// Which pipeline phase an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Data movement into aggregation buffers (RMA puts, elections).
    Aggregation,
    /// Data movement between aggregation buffers and storage.
    Io,
    /// Synchronization (fences, barriers).
    Sync,
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// One-sided put into an aggregation buffer (`peer` = target rank).
    RmaPut,
    /// A buffer segment written to (or read from) storage.
    Flush,
    /// A window fence / epoch close.
    Fence,
    /// Aggregator election result (`peer` = elected global rank).
    Elect,
    /// An aggregator failed (`peer` = crashed global rank, `round` =
    /// crash round).
    Crash,
    /// A standby aggregator took over after a crash (`peer` = new
    /// aggregator's global rank). Opens a new fence epoch: the checker
    /// counts RMA-epoch enclosure relative to the re-election point.
    Reelect,
    /// A flush attempt failed and was retried (`offset` = file offset of
    /// the retried segment, `bytes` = its length).
    Retry,
    /// The partition fell back to direct per-rank writes (`round` =
    /// first directly-written round).
    Degrade,
}

/// One recorded event.
///
/// Timestamps are nanoseconds from the tracer's epoch: wall-clock in
/// thread mode, simulated time in simulation mode. Cross-executor
/// comparisons must therefore ignore `t_ns` — that is exactly what
/// [`StructuralTrace`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer epoch.
    pub t_ns: u64,
    /// Global rank that the event is attributed to.
    pub rank: Rank,
    /// Schedule partition the event belongs to.
    pub partition: u32,
    /// Pipeline round within the partition.
    pub round: u32,
    /// Pipeline phase.
    pub phase: Phase,
    /// Operation kind.
    pub op: TraceOp,
    /// Payload bytes (0 for pure synchronization).
    pub bytes: u64,
    /// Counterpart rank ([`NO_PEER`] when not applicable).
    pub peer: Rank,
    /// Region metadata ([`NO_OFFSET`] when not applicable): for
    /// `RmaPut`, the byte offset inside the target's window region
    /// (including the double-buffer slot); for `Flush`, the file offset
    /// of the segment. `tapioca-check` uses put offsets to detect
    /// concurrent overlapping deposits.
    pub offset: u64,
    /// For `RmaPut`: the number of original schedule chunks this wire
    /// operation carries. `0` for an ordinary (uncoalesced) put; `>= 2`
    /// for a node-leader's merged put covering that many co-located
    /// ranks' contiguous chunks. Other ops leave it `0`. `tapioca-check`
    /// and the static conformance bridge use this to re-derive per-rank
    /// extent coverage from merged operations.
    pub coalesced: u32,
}

/// A contention-free per-rank event recorder.
///
/// Cheap to share (`Arc`), cheap when idle: each rank appends to its own
/// lane under a lane-local mutex, so concurrent ranks never contend.
pub struct Tracer {
    lanes: Vec<Mutex<Vec<TraceEvent>>>,
    epoch: Instant,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").field("ranks", &self.lanes.len()).finish()
    }
}

impl Tracer {
    /// Create a tracer for `nranks` global ranks.
    pub fn new(nranks: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            lanes: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
            epoch: Instant::now(),
        })
    }

    /// Number of ranks the tracer was sized for.
    pub fn num_ranks(&self) -> usize {
        self.lanes.len()
    }

    /// Nanoseconds elapsed since the tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a fully-formed event (caller supplies the timestamp; used
    /// by the simulator, whose clock is virtual).
    pub fn record(&self, ev: TraceEvent) {
        self.lanes[ev.rank].lock().expect("trace lane lock poisoned").push(ev);
    }

    /// Record an event stamped with the current wall-clock time (used by
    /// the thread-mode executor).
    #[allow(clippy::too_many_arguments)]
    pub fn record_now(
        &self,
        rank: Rank,
        partition: u32,
        round: u32,
        phase: Phase,
        op: TraceOp,
        bytes: u64,
        peer: Rank,
        offset: u64,
    ) {
        self.record(TraceEvent {
            t_ns: self.now_ns(),
            rank,
            partition,
            round,
            phase,
            op,
            bytes,
            peer,
            offset,
            coalesced: 0,
        });
    }

    /// Merge every rank's lane into one canonical, time-ordered trace.
    /// Ties sort by (rank, lane order), so the result is deterministic.
    /// Lanes are drained: a tracer can be reused for the next collective.
    pub fn drain(&self) -> Trace {
        let mut events = Vec::new();
        for lane in &self.lanes {
            events.append(&mut lane.lock().expect("trace lane lock poisoned"));
        }
        // Stable sort: same-timestamp events keep per-rank order.
        events.sort_by_key(|e| (e.t_ns, e.rank));
        Trace { events }
    }
}

/// A canonical (merged, time-ordered) trace of one or more collectives.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Build a trace from raw events (sorted canonically).
    pub fn from_events(mut events: Vec<TraceEvent>) -> Trace {
        events.sort_by_key(|e| (e.t_ns, e.rank));
        Trace { events }
    }

    /// The ordered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Reduce to summary statistics.
    pub fn summary(&self) -> TraceSummary {
        let mut rounds = std::collections::BTreeSet::new();
        let mut aggregation_bytes = 0u64;
        let mut io_bytes = 0u64;
        let mut puts = 0usize;
        let mut flushes = 0usize;
        let mut fences = 0usize;
        let mut fills: std::collections::BTreeMap<Rank, u64> = std::collections::BTreeMap::new();
        for e in &self.events {
            match e.op {
                TraceOp::RmaPut => {
                    rounds.insert((e.partition, e.round));
                    aggregation_bytes += e.bytes;
                    puts += 1;
                    if e.peer != NO_PEER {
                        *fills.entry(e.peer).or_default() += e.bytes;
                    }
                }
                TraceOp::Flush => {
                    rounds.insert((e.partition, e.round));
                    io_bytes += e.bytes;
                    flushes += 1;
                }
                TraceOp::Fence => fences += 1,
                TraceOp::Elect => {}
                // Fault/recovery events are not data movement.
                TraceOp::Crash | TraceOp::Reelect | TraceOp::Retry | TraceOp::Degrade => {}
            }
        }
        TraceSummary {
            rounds: rounds.len(),
            aggregation_bytes,
            io_bytes,
            puts,
            flushes,
            fences,
            overlap_fraction: self.overlap_fraction(),
            aggregator_fill_bytes: fills.into_iter().collect(),
        }
    }

    /// Fraction of flushes that completed *after* aggregation work of a
    /// later round had already started in the same partition — the
    /// observable signature of the double-buffer pipeline. 0.0 when
    /// nothing overlaps (or there are no flushes).
    pub fn overlap_fraction(&self) -> f64 {
        let mut total = 0usize;
        let mut overlapped = 0usize;
        for e in &self.events {
            if e.op != TraceOp::Flush {
                continue;
            }
            total += 1;
            let overlaps = self.events.iter().any(|a| {
                a.op == TraceOp::RmaPut
                    && a.partition == e.partition
                    && a.round > e.round
                    && a.t_ns <= e.t_ns
            });
            if overlaps {
                overlapped += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            overlapped as f64 / total as f64
        }
    }

    /// Project onto the executor-independent structure: per partition,
    /// the elected aggregator and per-round byte totals per phase.
    ///
    /// Timestamps, `Sync`-phase events, and put granularity (thread mode
    /// records one event per chunk, the simulator one per source rank)
    /// are deliberately excluded — see the equivalence contract in
    /// DESIGN.md.
    pub fn structural(&self) -> StructuralTrace {
        use std::collections::BTreeMap;
        let mut parts: BTreeMap<u32, (Option<Rank>, BTreeMap<u32, RoundStructure>)> =
            BTreeMap::new();
        for e in &self.events {
            let entry = parts.entry(e.partition).or_default();
            match e.op {
                TraceOp::Elect => {
                    if let Some(prev) = entry.0 {
                        assert_eq!(
                            prev, e.peer,
                            "conflicting election winners recorded for partition {}",
                            e.partition
                        );
                    }
                    entry.0 = Some(e.peer);
                }
                TraceOp::RmaPut => {
                    let r = entry.1.entry(e.round).or_insert_with(|| RoundStructure {
                        round: e.round,
                        ..Default::default()
                    });
                    r.aggregation_bytes += e.bytes;
                }
                TraceOp::Flush => {
                    let r = entry.1.entry(e.round).or_insert_with(|| RoundStructure {
                        round: e.round,
                        ..Default::default()
                    });
                    r.io_bytes += e.bytes;
                    r.flush_segments += 1;
                }
                TraceOp::Fence => {}
                // Recovery events are executor-specific timing artifacts;
                // structural equivalence is only asserted for fault-free
                // runs, where none occur.
                TraceOp::Crash | TraceOp::Reelect | TraceOp::Retry | TraceOp::Degrade => {}
            }
        }
        StructuralTrace {
            partitions: parts
                .into_iter()
                .map(|(partition, (agg, rounds))| PartitionStructure {
                    partition,
                    aggregator: agg,
                    rounds: rounds.into_values().collect(),
                })
                .collect(),
        }
    }

    /// Serialize as JSON Lines, one event per line.
    pub fn write_jsonl(&self, mut w: impl std::io::Write) -> std::io::Result<()> {
        for e in &self.events {
            let phase = match e.phase {
                Phase::Aggregation => "aggregation",
                Phase::Io => "io",
                Phase::Sync => "sync",
            };
            let op = match e.op {
                TraceOp::RmaPut => "rma_put",
                TraceOp::Flush => "flush",
                TraceOp::Fence => "fence",
                TraceOp::Elect => "elect",
                TraceOp::Crash => "crash",
                TraceOp::Reelect => "reelect",
                TraceOp::Retry => "retry",
                TraceOp::Degrade => "degrade",
            };
            write!(
                w,
                "{{\"t_ns\":{},\"rank\":{},\"partition\":{},\"round\":{},\"phase\":\"{}\",\"op\":\"{}\",\"bytes\":{}",
                e.t_ns, e.rank, e.partition, e.round, phase, op, e.bytes
            )?;
            if e.offset != NO_OFFSET {
                write!(w, ",\"offset\":{}", e.offset)?;
            }
            if e.peer != NO_PEER {
                write!(w, ",\"peer\":{}", e.peer)?;
            }
            if e.coalesced != 0 {
                write!(w, ",\"coalesced\":{}", e.coalesced)?;
            }
            writeln!(w, "}}")?;
        }
        Ok(())
    }
}

/// Summary statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Distinct (partition, round) pairs that moved data.
    pub rounds: usize,
    /// Total bytes deposited into aggregation buffers.
    pub aggregation_bytes: u64,
    /// Total bytes moved between buffers and storage.
    pub io_bytes: u64,
    /// Number of put events.
    pub puts: usize,
    /// Number of flush events.
    pub flushes: usize,
    /// Number of fence events.
    pub fences: usize,
    /// Fraction of flushes overlapping later-round aggregation.
    pub overlap_fraction: f64,
    /// Bytes deposited per aggregator (global rank, bytes), ascending.
    pub aggregator_fill_bytes: Vec<(Rank, u64)>,
}

/// Executor-independent structure of a collective: what must agree
/// between thread mode and simulation mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralTrace {
    /// Per-partition structure, ascending by partition index.
    pub partitions: Vec<PartitionStructure>,
}

/// Structure of one schedule partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStructure {
    /// Partition index within the schedule.
    pub partition: u32,
    /// Elected aggregator (global rank); `None` if no election event.
    pub aggregator: Option<Rank>,
    /// Rounds that moved data, ascending.
    pub rounds: Vec<RoundStructure>,
}

/// Byte totals of one pipeline round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoundStructure {
    /// Round index within the partition.
    pub round: u32,
    /// Bytes deposited into the aggregation buffer this round.
    pub aggregation_bytes: u64,
    /// Bytes flushed to storage this round.
    pub io_bytes: u64,
    /// Number of flush segments this round.
    pub flush_segments: usize,
}

/// Thread-mode instrumentation context for one rank inside one
/// partition's pipeline: carries the tracer plus the identity needed to
/// label events, and translates communicator-local peers to global
/// ranks. The current round is interior-mutable because the RMA window
/// holding the scope is shared across the round loop.
#[derive(Debug, Clone)]
pub struct TraceScope {
    tracer: Arc<Tracer>,
    rank: Rank,
    partition: u32,
    round: std::cell::Cell<u32>,
    /// Communicator-local rank -> global rank.
    peers: Arc<Vec<Rank>>,
}

impl TraceScope {
    /// Build a scope for `rank` (global) inside `partition`, with the
    /// partition communicator's member list (local index -> global).
    pub fn new(tracer: Arc<Tracer>, rank: Rank, partition: u32, peers: Vec<Rank>) -> TraceScope {
        TraceScope { tracer, rank, partition, round: std::cell::Cell::new(0), peers: Arc::new(peers) }
    }

    /// Advance to round `r`; later events are labelled with it.
    pub fn set_round(&self, r: u32) {
        self.round.set(r);
    }

    /// The tracer behind this scope.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The global rank of communicator-local rank `local`.
    pub fn peer_global(&self, local: Rank) -> Rank {
        self.peers.get(local).copied().unwrap_or(NO_PEER)
    }

    /// Record a put of `bytes` into communicator-local rank `target`'s
    /// window region at byte `offset` within it.
    pub fn rma_put(&self, target_local: Rank, offset: u64, bytes: u64) {
        self.tracer.record_now(
            self.rank,
            self.partition,
            self.round.get(),
            Phase::Aggregation,
            TraceOp::RmaPut,
            bytes,
            self.peer_global(target_local),
            offset,
        );
    }

    /// Record a merged put: one wire operation carrying `coalesced`
    /// original chunks (each deposited into the run leader's gather
    /// buffer by a co-located rank) into communicator-local rank
    /// `target`'s window region at byte `offset`. Attributed to `lane`
    /// (the run leader's global rank) rather than this scope's rank:
    /// the thread that physically issues the forward is whichever
    /// member's deposit completed the run, but the operation logically
    /// belongs to the gather buffer's owner, and a deterministic lane
    /// is what lets the static conformance bridge match the event.
    pub fn rma_put_coalesced(
        &self,
        lane: Rank,
        target_local: Rank,
        offset: u64,
        bytes: u64,
        coalesced: u32,
    ) {
        self.tracer.record(TraceEvent {
            t_ns: self.tracer.now_ns(),
            rank: lane,
            partition: self.partition,
            round: self.round.get(),
            phase: Phase::Aggregation,
            op: TraceOp::RmaPut,
            bytes,
            peer: self.peer_global(target_local),
            offset,
            coalesced,
        });
    }

    /// Record a fence (epoch close).
    pub fn fence(&self) {
        self.tracer.record_now(
            self.rank,
            self.partition,
            self.round.get(),
            Phase::Sync,
            TraceOp::Fence,
            0,
            NO_PEER,
            NO_OFFSET,
        );
    }

    /// Record the election winner (global rank) for this partition.
    pub fn elect(&self, winner_global: Rank, bytes: u64) {
        self.tracer.record_now(
            self.rank,
            self.partition,
            0,
            Phase::Aggregation,
            TraceOp::Elect,
            bytes,
            winner_global,
            NO_OFFSET,
        );
    }

    /// Record an aggregator failure (`crashed_global` = the failed
    /// aggregator's global rank) at the current round.
    pub fn crash(&self, crashed_global: Rank) {
        self.tracer.record_now(
            self.rank,
            self.partition,
            self.round.get(),
            Phase::Sync,
            TraceOp::Crash,
            0,
            crashed_global,
            NO_OFFSET,
        );
    }

    /// Record a standby re-election (`winner_global` = the new
    /// aggregator). Every member records this on its own lane: the
    /// checker resets that lane's fence-epoch base at this point.
    pub fn reelect(&self, winner_global: Rank) {
        self.tracer.record_now(
            self.rank,
            self.partition,
            self.round.get(),
            Phase::Sync,
            TraceOp::Reelect,
            0,
            winner_global,
            NO_OFFSET,
        );
    }

    /// Record one retried flush attempt of the segment at file `offset`.
    pub fn retry(&self, offset: u64, bytes: u64) {
        self.tracer.record_now(
            self.rank,
            self.partition,
            self.round.get(),
            Phase::Io,
            TraceOp::Retry,
            bytes,
            NO_PEER,
            offset,
        );
    }

    /// Record the fall-back to direct per-rank writes at the current
    /// round.
    pub fn degrade(&self, bytes: u64) {
        self.tracer.record_now(
            self.rank,
            self.partition,
            self.round.get(),
            Phase::Io,
            TraceOp::Degrade,
            bytes,
            NO_PEER,
            NO_OFFSET,
        );
    }

    /// Snapshot for handing to another thread (e.g. the I/O worker) so a
    /// flush can be recorded at its true completion time.
    pub fn stamp(&self) -> TraceStamp {
        TraceStamp {
            tracer: Arc::clone(&self.tracer),
            rank: self.rank,
            partition: self.partition,
            round: self.round.get(),
        }
    }
}

/// A `Send` snapshot of a [`TraceScope`] at a fixed round, used to
/// record I/O completions from the file worker thread.
#[derive(Debug, Clone)]
pub struct TraceStamp {
    tracer: Arc<Tracer>,
    rank: Rank,
    partition: u32,
    round: u32,
}

impl TraceStamp {
    /// Record a completed flush of `bytes` at file offset `offset`.
    ///
    /// Ordering contract: the I/O worker must record this *before*
    /// signalling the flush's completion handle, so the event sits in
    /// the lane ahead of any fence the aggregator records after its
    /// `wait` returns — `tapioca-check` derives the pipeline's
    /// happens-before edges from exactly that order.
    pub fn flush_done(&self, offset: u64, bytes: u64) {
        self.tracer.record_now(
            self.rank,
            self.partition,
            self.round,
            Phase::Io,
            TraceOp::Flush,
            bytes,
            NO_PEER,
            offset,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, rank: Rank, part: u32, round: u32, op: TraceOp, bytes: u64, peer: Rank) -> TraceEvent {
        let phase = match op {
            TraceOp::RmaPut | TraceOp::Elect => Phase::Aggregation,
            TraceOp::Flush | TraceOp::Retry | TraceOp::Degrade => Phase::Io,
            TraceOp::Fence | TraceOp::Crash | TraceOp::Reelect => Phase::Sync,
        };
        TraceEvent {
            t_ns: t,
            rank,
            partition: part,
            round,
            phase,
            op,
            bytes,
            peer,
            offset: NO_OFFSET,
            coalesced: 0,
        }
    }

    #[test]
    fn drain_merges_and_sorts() {
        let tr = Tracer::new(3);
        tr.record(ev(30, 2, 0, 0, TraceOp::Flush, 5, NO_PEER));
        tr.record(ev(10, 1, 0, 0, TraceOp::RmaPut, 7, 0));
        tr.record(ev(10, 0, 0, 0, TraceOp::RmaPut, 3, 0));
        let t = tr.drain();
        let ranks: Vec<Rank> = t.events().iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![0, 1, 2], "time then rank order");
        assert!(tr.drain().is_empty(), "drain empties the lanes");
    }

    #[test]
    fn summary_counts_phases() {
        let t = Trace::from_events(vec![
            ev(0, 0, 0, 0, TraceOp::Elect, 0, 1),
            ev(1, 0, 0, 0, TraceOp::RmaPut, 100, 1),
            ev(2, 1, 0, 0, TraceOp::RmaPut, 50, 1),
            ev(3, 0, 0, 0, TraceOp::Fence, 0, NO_PEER),
            ev(4, 1, 0, 0, TraceOp::Flush, 150, NO_PEER),
            ev(5, 0, 0, 1, TraceOp::RmaPut, 25, 1),
        ]);
        let s = t.summary();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.aggregation_bytes, 175);
        assert_eq!(s.io_bytes, 150);
        assert_eq!(s.puts, 3);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.aggregator_fill_bytes, vec![(1, 175)]);
    }

    #[test]
    fn overlap_detected_only_when_flush_lands_after_next_round_starts() {
        // flush of round 0 completes at t=10, after a round-1 put at t=8
        let overlapped = Trace::from_events(vec![
            ev(1, 0, 0, 0, TraceOp::RmaPut, 10, 1),
            ev(8, 0, 0, 1, TraceOp::RmaPut, 10, 1),
            ev(10, 1, 0, 0, TraceOp::Flush, 10, NO_PEER),
        ]);
        assert!(overlapped.overlap_fraction() > 0.99);

        // strictly serial: flush finishes before round 1 begins
        let serial = Trace::from_events(vec![
            ev(1, 0, 0, 0, TraceOp::RmaPut, 10, 1),
            ev(5, 1, 0, 0, TraceOp::Flush, 10, NO_PEER),
            ev(8, 0, 0, 1, TraceOp::RmaPut, 10, 1),
            ev(12, 1, 0, 1, TraceOp::Flush, 10, NO_PEER),
        ]);
        assert_eq!(serial.overlap_fraction(), 0.0);
    }

    #[test]
    fn structural_projection_ignores_time_and_granularity() {
        // Two traces: one with per-chunk puts, one with a single
        // aggregated put, different timestamps. Structure must agree.
        let fine = Trace::from_events(vec![
            ev(0, 0, 0, 0, TraceOp::Elect, 0, 2),
            ev(1, 0, 0, 0, TraceOp::RmaPut, 60, 2),
            ev(2, 0, 0, 0, TraceOp::RmaPut, 40, 2),
            ev(9, 2, 0, 0, TraceOp::Flush, 100, NO_PEER),
        ]);
        let coarse = Trace::from_events(vec![
            ev(100, 1, 0, 0, TraceOp::Elect, 0, 2),
            ev(200, 1, 0, 0, TraceOp::RmaPut, 100, 2),
            ev(900, 2, 0, 0, TraceOp::Flush, 100, NO_PEER),
        ]);
        assert_eq!(fine.structural(), coarse.structural());
        let s = fine.structural();
        assert_eq!(s.partitions.len(), 1);
        assert_eq!(s.partitions[0].aggregator, Some(2));
        assert_eq!(s.partitions[0].rounds[0].aggregation_bytes, 100);
        assert_eq!(s.partitions[0].rounds[0].flush_segments, 1);
    }

    #[test]
    #[should_panic(expected = "conflicting election winners")]
    fn conflicting_elections_are_rejected() {
        Trace::from_events(vec![
            ev(0, 0, 0, 0, TraceOp::Elect, 0, 1),
            ev(1, 1, 0, 0, TraceOp::Elect, 0, 2),
        ])
        .structural();
    }

    #[test]
    fn scope_translates_peers_and_rounds() {
        let tr = Tracer::new(8);
        let scope = TraceScope::new(Arc::clone(&tr), 5, 3, vec![4, 5, 7]);
        scope.elect(7, 1000);
        scope.rma_put(2, 128, 64); // local rank 2 -> global 7
        scope.set_round(1);
        scope.rma_put(0, 0, 32); // local rank 0 -> global 4
        scope.fence();
        scope.stamp().flush_done(4096, 96);
        let t = tr.drain();
        assert_eq!(t.len(), 5);
        let puts: Vec<_> =
            t.events().iter().filter(|e| e.op == TraceOp::RmaPut).cloned().collect();
        assert_eq!(puts[0].peer, 7);
        assert_eq!(puts[0].round, 0);
        assert_eq!(puts[0].offset, 128);
        assert_eq!(puts[1].peer, 4);
        assert_eq!(puts[1].round, 1);
        assert_eq!(puts[1].offset, 0);
        let flush = t.events().iter().find(|e| e.op == TraceOp::Flush).unwrap();
        assert_eq!((flush.rank, flush.partition, flush.round, flush.bytes), (5, 3, 1, 96));
        assert_eq!(flush.offset, 4096);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut put = ev(1, 0, 0, 0, TraceOp::RmaPut, 10, 1);
        put.offset = 512;
        let t = Trace::from_events(vec![put, ev(2, 1, 0, 0, TraceOp::Flush, 10, NO_PEER)]);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"op\":\"rma_put\""));
        assert!(lines[0].contains("\"peer\":1"));
        assert!(lines[0].contains("\"offset\":512"));
        assert!(lines[1].contains("\"op\":\"flush\""));
        assert!(!lines[1].contains("peer"), "NO_PEER omits the field");
        assert!(!lines[1].contains("offset"), "NO_OFFSET omits the field");
    }

    #[test]
    fn recovery_events_record_and_serialize() {
        let tr = Tracer::new(4);
        let scope = TraceScope::new(Arc::clone(&tr), 1, 0, vec![0, 1, 2]);
        scope.set_round(2);
        scope.crash(2);
        scope.reelect(0);
        scope.retry(4096, 128);
        scope.degrade(256);
        let t = tr.drain();
        assert_eq!(t.len(), 4);
        let ops: Vec<TraceOp> = t.events().iter().map(|e| e.op).collect();
        assert!(ops.contains(&TraceOp::Crash));
        assert!(ops.contains(&TraceOp::Reelect));
        let retry = t.events().iter().find(|e| e.op == TraceOp::Retry).unwrap();
        assert_eq!((retry.offset, retry.bytes, retry.round), (4096, 128, 2));
        // recovery events are not data movement and do not disturb the
        // structural projection
        let s = t.summary();
        assert_eq!((s.puts, s.flushes, s.io_bytes), (0, 0, 0));
        assert!(t.structural().partitions[0].rounds.is_empty());
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        for needle in ["\"crash\"", "\"reelect\"", "\"retry\"", "\"degrade\""] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    fn coalesced_puts_serialize_and_stay_structurally_equivalent() {
        let tr = Tracer::new(4);
        let scope = TraceScope::new(Arc::clone(&tr), 1, 0, vec![0, 1, 2, 3]);
        // 3 chunks merged into one wire put, attributed to leader lane 2
        // even though rank 1's scope records it (completer forwarding)
        scope.rma_put_coalesced(2, 3, 256, 96, 3);
        scope.rma_put(3, 352, 32); // a raw singleton alongside
        let t = tr.drain();
        let merged = t.events().iter().find(|e| e.coalesced != 0).unwrap();
        assert_eq!(
            (merged.op, merged.rank, merged.peer, merged.bytes, merged.coalesced),
            (TraceOp::RmaPut, 2, 3, 96, 3)
        );
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.trim().lines().collect();
        assert!(lines[0].contains("\"coalesced\":3"));
        assert!(!lines[1].contains("coalesced"), "raw puts omit the field");
        // structural projection only sees byte totals: a merged put and
        // the equivalent per-chunk puts project identically
        let fine = Trace::from_events(vec![
            {
                let mut e = ev(1, 0, 0, 0, TraceOp::RmaPut, 64, 3);
                e.offset = 256;
                e
            },
            {
                let mut e = ev(2, 2, 0, 0, TraceOp::RmaPut, 64, 3);
                e.offset = 320;
                e
            },
        ]);
        let coarse = Trace::from_events(vec![{
            let mut e = ev(9, 0, 0, 0, TraceOp::RmaPut, 128, 3);
            e.offset = 256;
            e.coalesced = 2;
            e
        }]);
        assert_eq!(fine.structural(), coarse.structural());
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.overlap_fraction(), 0.0);
        assert!(t.structural().partitions.is_empty());
        let s = t.summary();
        assert_eq!((s.rounds, s.puts, s.flushes, s.fences), (0, 0, 0, 0));
        assert_eq!(s.overlap_fraction, 0.0);
    }

    #[test]
    fn single_event_trace_edge_cases() {
        // One lone put: no flushes, so overlap is 0 by definition, and
        // the structure is a single partition with one data round and no
        // election.
        let t = Trace::from_events(vec![ev(5, 3, 2, 0, TraceOp::RmaPut, 77, 1)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.overlap_fraction(), 0.0);
        let s = t.structural();
        assert_eq!(s.partitions.len(), 1);
        assert_eq!(s.partitions[0].partition, 2);
        assert_eq!(s.partitions[0].aggregator, None);
        assert_eq!(s.partitions[0].rounds.len(), 1);
        assert_eq!(s.partitions[0].rounds[0].aggregation_bytes, 77);
        assert_eq!(s.partitions[0].rounds[0].io_bytes, 0);
    }

    #[test]
    fn flush_without_fences_edge_cases() {
        // Simulation-mode shape: flushes and puts, zero fences. The
        // flush completing after a later round's put still counts as
        // overlapped, and the structure records the io bytes.
        let t = Trace::from_events(vec![
            ev(1, 0, 0, 0, TraceOp::RmaPut, 10, 1),
            ev(2, 0, 0, 1, TraceOp::RmaPut, 10, 1),
            ev(9, 1, 0, 0, TraceOp::Flush, 10, NO_PEER),
        ]);
        assert_eq!(t.summary().fences, 0);
        assert!(t.overlap_fraction() > 0.99, "flush landed after round 1 started");
        let s = t.structural();
        assert_eq!(s.partitions[0].rounds[0].io_bytes, 10);
        assert_eq!(s.partitions[0].rounds[0].flush_segments, 1);
        assert_eq!(s.partitions[0].rounds[1].io_bytes, 0);

        // A flush-only trace: total == overlapped is impossible, so the
        // fraction is 0; the round exists with io bytes only.
        let only_flush = Trace::from_events(vec![ev(1, 0, 0, 0, TraceOp::Flush, 32, NO_PEER)]);
        assert_eq!(only_flush.overlap_fraction(), 0.0);
        assert_eq!(only_flush.structural().partitions[0].rounds[0].io_bytes, 32);
    }
}
