//! # tapioca-workloads
//!
//! Workload generators for the TAPIOCA reproduction:
//!
//! * [`ior`] — the IOR-style microbenchmark of the paper's Sec. V-B/V-C:
//!   every rank writes/reads one contiguous block per collective call;
//! * [`hacc`] — the HACC-IO kernel of Sec. V-D: 9 particle variables
//!   (position, velocity, `phi`, `pid`, `mask`; 38 bytes per particle)
//!   in array-of-structures (AoS) or structure-of-arrays (SoA) layout;
//! * [`grid`] — block-decomposed 2D/3D arrays (stencil-code
//!   checkpoints; the "meshes, 2D and 3D arrays" of the paper's future
//!   work);
//! * [`datagen`] — deterministic seeded payload generation plus
//!   verification helpers used by the integration tests.

pub mod datagen;
pub mod grid;
pub mod hacc;
pub mod ior;

pub use grid::GridDecomp;
pub use hacc::{HaccIo, Layout, PARTICLE_BYTES, VAR_COUNT, VAR_SIZES};
pub use ior::IorSpec;
