//! Deterministic payload generation and verification.
//!
//! Integration tests write through TAPIOCA (or the baseline) and then
//! verify every byte of the resulting file against the same generator —
//! any scheduling/offset bug surfaces as a byte mismatch at a specific
//! file position.

/// A seeded SplitMix64 stream — the repo's only random-number source,
/// deterministic by construction (no OS entropy, no external crates).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x
    }

    /// A value in `[lo, hi)` (uniform enough for test sweeps).
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// A `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Fill a buffer with seeded pseudo-random bytes (reproducible).
pub fn fill_random(seed: u64, buf: &mut [u8]) {
    let mut rng = SplitMix64::new(seed);
    for chunk in buf.chunks_mut(8) {
        let bytes = rng.next_u64().to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
}

/// A deterministic byte for file position `pos` under `seed` — O(1), so
/// verification never materializes the expected file.
pub fn expected_byte(seed: u64, pos: u64) -> u8 {
    // SplitMix64 of (seed, pos)
    let mut x = seed ^ pos.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x as u8
}

/// Materialize `[offset, offset + len)` of the deterministic pattern.
pub fn expected_range(seed: u64, offset: u64, len: usize) -> Vec<u8> {
    (0..len as u64).map(|i| expected_byte(seed, offset + i)).collect()
}

/// Verify a file slice against the pattern; returns the first mismatch
/// position, or `None` when everything matches.
pub fn verify_slice(seed: u64, offset: u64, data: &[u8]) -> Option<u64> {
    data.iter()
        .enumerate()
        .find(|(i, &b)| b != expected_byte(seed, offset + *i as u64))
        .map(|(i, _)| offset + i as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_deterministic() {
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        fill_random(7, &mut a);
        fill_random(7, &mut b);
        assert_eq!(a, b);
        fill_random(8, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn expected_range_matches_pointwise() {
        let r = expected_range(3, 100, 32);
        for (i, &b) in r.iter().enumerate() {
            assert_eq!(b, expected_byte(3, 100 + i as u64));
        }
    }

    #[test]
    fn verify_reports_first_mismatch() {
        let mut data = expected_range(1, 50, 16);
        assert_eq!(verify_slice(1, 50, &data), None);
        data[5] ^= 0xFF;
        assert_eq!(verify_slice(1, 50, &data), Some(55));
    }

    #[test]
    fn bytes_look_uniform_enough() {
        // not a statistical test; just catch degenerate constants
        let r = expected_range(42, 0, 4096);
        let distinct: std::collections::HashSet<u8> = r.iter().copied().collect();
        assert!(distinct.len() > 200);
    }
}
