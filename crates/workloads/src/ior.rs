//! IOR-style microbenchmark: one contiguous block per rank per call.
//!
//! Matches the paper's usage: "we varied the data size read and written
//! per process from 200 KB to 4 MB; all the I/O calls were MPI I/O
//! collective operations" (Sec. V-B), and the Sec. V-C microbenchmark
//! where "every MPI process writes 1 MB as a contiguous piece of data in
//! file during a collective call".

use tapioca::schedule::WriteDecl;

/// An IOR-like workload: `num_ranks` ranks each transferring
/// `bytes_per_rank` contiguous bytes at rank-ordered offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IorSpec {
    /// Number of participating ranks.
    pub num_ranks: usize,
    /// Contiguous bytes transferred by each rank per call.
    pub bytes_per_rank: u64,
}

impl IorSpec {
    /// Declarations for one collective call: rank `r` owns
    /// `[r * s, (r+1) * s)`.
    pub fn decls(&self) -> Vec<Vec<WriteDecl>> {
        (0..self.num_ranks as u64)
            .map(|r| {
                vec![WriteDecl {
                    offset: r * self.bytes_per_rank,
                    len: self.bytes_per_rank,
                }]
            })
            .collect()
    }

    /// Declarations restricted to a contiguous rank subrange (for
    /// per-Pset subfiling groups), re-based so the subfile starts at 0.
    pub fn decls_for_ranks(&self, first: usize, count: usize) -> Vec<Vec<WriteDecl>> {
        assert!(first + count <= self.num_ranks);
        (0..count as u64)
            .map(|i| {
                vec![WriteDecl { offset: i * self.bytes_per_rank, len: self.bytes_per_rank }]
            })
            .collect()
    }

    /// Total bytes moved per call.
    pub fn total_bytes(&self) -> u64 {
        self.num_ranks as u64 * self.bytes_per_rank
    }
}

/// The paper's Fig. 7/8 sweep: 200 KB - 4 MB per rank.
///
/// Decimal megabytes, as IOR reports them — deliberately not multiples
/// of the binary stripe/block sizes, so equal-division file domains are
/// generically unaligned (using binary MiB here would make ROMIO's
/// domains accidentally stripe-aligned at several sweep points, an
/// artifact no real IOR configuration exhibits).
pub fn fig7_8_sizes() -> Vec<u64> {
    vec![
        200_000,
        400_000,
        800_000,
        1_600_000,
        2_000_000,
        3_000_000,
        4_000_000,
    ]
}

/// The paper's Fig. 9/10 sweep: 0.4 - 3.6 MB per rank (decimal, see
/// [`fig7_8_sizes`]).
pub fn fig9_10_sizes() -> Vec<u64> {
    (1..=9).map(|i| i * 400_000).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decls_tile_the_file() {
        let spec = IorSpec { num_ranks: 4, bytes_per_rank: 100 };
        let d = spec.decls();
        assert_eq!(d.len(), 4);
        for (r, rd) in d.iter().enumerate() {
            assert_eq!(rd.len(), 1);
            assert_eq!(rd[0].offset, r as u64 * 100);
            assert_eq!(rd[0].len, 100);
        }
        assert_eq!(spec.total_bytes(), 400);
    }

    #[test]
    fn subrange_is_rebased() {
        let spec = IorSpec { num_ranks: 8, bytes_per_rank: 10 };
        let d = spec.decls_for_ranks(4, 4);
        assert_eq!(d.len(), 4);
        assert_eq!(d[0][0].offset, 0);
        assert_eq!(d[3][0].offset, 30);
    }

    #[test]
    fn sweeps_are_ascending() {
        for s in [fig7_8_sizes(), fig9_10_sizes()] {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(*s.last().unwrap() <= 4_000_000);
        }
    }
}
