//! HACC-IO: the I/O kernel of the Hardware Accelerated Cosmology Code
//! (paper Sec. V-D).
//!
//! Every rank owns `n` particles; each particle carries nine variables —
//! `XX, YY, ZZ, VX, VY, VZ` and `phi` (float32), `pid` (int64), `mask`
//! (uint16) — 38 bytes total. "A useful base value of 25,000 particles
//! requires approximately 1 MB."
//!
//! Two file layouts are benchmarked, matching HACC's GenericIO rank
//! blocks:
//!
//! * **AoS** — rank `r`'s block holds its particles as consecutive
//!   38-byte records: one contiguous declared write per rank;
//! * **SoA** — rank `r`'s block is subdivided by variable
//!   (`XX[0..n] YY[0..n] ... mask[0..n]`): nine declared writes per
//!   rank. Issued through plain collective MPI-IO this becomes nine
//!   independent collective calls, each flushing partially-filled
//!   aggregation buffers — the inefficiency TAPIOCA's `Init` declaration
//!   eliminates (paper Fig. 2).

use tapioca::schedule::WriteDecl;

/// Number of particle variables.
pub const VAR_COUNT: usize = 9;

/// Byte width of each variable, in declaration order
/// (`XX, YY, ZZ, VX, VY, VZ, phi, pid, mask`).
pub const VAR_SIZES: [u64; VAR_COUNT] = [4, 4, 4, 4, 4, 4, 4, 8, 2];

/// Bytes per particle (38, as in the paper).
pub const PARTICLE_BYTES: u64 = 38;

/// Variable names, for harness output.
pub const VAR_NAMES: [&str; VAR_COUNT] =
    ["XX", "YY", "ZZ", "VX", "VY", "VZ", "phi", "pid", "mask"];

/// Data layout of the particle file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Array of structures: consecutive 38-byte records per rank.
    ArrayOfStructs,
    /// Structure of arrays: per-rank block subdivided by variable.
    StructOfArrays,
}

/// A HACC-IO workload: uniform particles per rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaccIo {
    /// Participating ranks.
    pub num_ranks: usize,
    /// Particles per rank.
    pub particles_per_rank: u64,
    /// File layout.
    pub layout: Layout,
}

impl HaccIo {
    /// Bytes written by each rank.
    pub fn bytes_per_rank(&self) -> u64 {
        self.particles_per_rank * PARTICLE_BYTES
    }

    /// Total file size.
    pub fn total_bytes(&self) -> u64 {
        self.num_ranks as u64 * self.bytes_per_rank()
    }

    /// Particles-per-rank for a target per-rank byte count (the paper
    /// sweeps 5K-100K particles, i.e. ~0.2-3.8 MB).
    pub fn particles_for_bytes(bytes: u64) -> u64 {
        bytes / PARTICLE_BYTES
    }

    /// Prefix offsets of each variable inside a rank's SoA block.
    fn var_offsets(&self) -> [u64; VAR_COUNT] {
        let n = self.particles_per_rank;
        let mut out = [0u64; VAR_COUNT];
        let mut acc = 0;
        for (v, s) in VAR_SIZES.iter().enumerate() {
            out[v] = acc;
            acc += n * s;
        }
        out
    }

    /// Declared writes per rank (one for AoS, nine for SoA).
    pub fn decls(&self) -> Vec<Vec<WriteDecl>> {
        (0..self.num_ranks as u64).map(|r| self.decls_of_rank(r)).collect()
    }

    /// Declared writes of a single rank.
    pub fn decls_of_rank(&self, rank: u64) -> Vec<WriteDecl> {
        let block = self.bytes_per_rank();
        let base = rank * block;
        match self.layout {
            Layout::ArrayOfStructs => vec![WriteDecl { offset: base, len: block }],
            Layout::StructOfArrays => {
                let offs = self.var_offsets();
                (0..VAR_COUNT)
                    .map(|v| WriteDecl {
                        offset: base + offs[v],
                        len: self.particles_per_rank * VAR_SIZES[v],
                    })
                    .collect()
            }
        }
    }

    /// Declarations for a contiguous rank subrange, re-based to a
    /// subfile starting at 0 (Mira subfiling: one file per Pset).
    pub fn decls_for_ranks(&self, first: usize, count: usize) -> Vec<Vec<WriteDecl>> {
        assert!(first + count <= self.num_ranks);
        let sub = HaccIo { num_ranks: count, ..*self };
        sub.decls()
    }

    /// Imbalanced particle counts: rank `r` owns
    /// `mean * (1 + spread * u(r))` particles with `u(r)` deterministic
    /// in [-1, 1]. Real HACC domains are never perfectly balanced; the
    /// declared weights `omega(i, A)` are how TAPIOCA's cost model sees
    /// the imbalance.
    pub fn imbalanced_counts(num_ranks: usize, mean: u64, spread: f64, seed: u64) -> Vec<u64> {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        (0..num_ranks as u64)
            .map(|r| {
                let mut x = seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                let u = (x % 2001) as f64 / 1000.0 - 1.0; // [-1, 1]
                ((mean as f64) * (1.0 + spread * u)).max(1.0) as u64
            })
            .collect()
    }

    /// Declarations for explicit per-rank particle counts (rank blocks
    /// packed back to back, same layouts as the uniform case).
    pub fn decls_with_counts(counts: &[u64], layout: Layout) -> Vec<Vec<WriteDecl>> {
        let mut base = 0u64;
        counts
            .iter()
            .map(|&n| {
                let w = HaccIo { num_ranks: 1, particles_per_rank: n, layout };
                let decls: Vec<WriteDecl> = w
                    .decls_of_rank(0)
                    .into_iter()
                    .map(|d| WriteDecl { offset: base + d.offset, len: d.len })
                    .collect();
                base += n * PARTICLE_BYTES;
                decls
            })
            .collect()
    }

    /// Deterministic payload for (rank, var): byte `i` of the buffer.
    ///
    /// The pattern folds rank, variable and position so layout bugs
    /// (swapped vars, shifted offsets) change the bytes.
    pub fn payload(&self, rank: u64, var: usize) -> Vec<u8> {
        let len = match self.layout {
            Layout::ArrayOfStructs => {
                assert_eq!(var, 0, "AoS has a single declared var");
                self.bytes_per_rank()
            }
            Layout::StructOfArrays => self.particles_per_rank * VAR_SIZES[var],
        };
        (0..len)
            .map(|i| (rank.wrapping_mul(131) ^ (var as u64).wrapping_mul(17) ^ i) as u8)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particle_is_38_bytes() {
        assert_eq!(VAR_SIZES.iter().sum::<u64>(), PARTICLE_BYTES);
        // 25,000 particles ~ 1 MB (paper: "approximately")
        let b = 25_000 * PARTICLE_BYTES;
        assert!(b > 900_000 && b < 1_000_000);
    }

    #[test]
    fn aos_is_one_contiguous_decl_per_rank() {
        let w = HaccIo { num_ranks: 4, particles_per_rank: 100, layout: Layout::ArrayOfStructs };
        let d = w.decls();
        for (r, rd) in d.iter().enumerate() {
            assert_eq!(rd.len(), 1);
            assert_eq!(rd[0].offset, r as u64 * 3800);
            assert_eq!(rd[0].len, 3800);
        }
        assert_eq!(w.total_bytes(), 15200);
    }

    #[test]
    fn soa_decls_tile_each_rank_block() {
        let w = HaccIo { num_ranks: 3, particles_per_rank: 10, layout: Layout::StructOfArrays };
        for r in 0..3u64 {
            let d = w.decls_of_rank(r);
            assert_eq!(d.len(), 9);
            let base = r * 380;
            assert_eq!(d[0].offset, base);
            let mut cur = base;
            for (v, decl) in d.iter().enumerate() {
                assert_eq!(decl.offset, cur, "var {v} must follow var {}", v.max(1) - 1);
                assert_eq!(decl.len, 10 * VAR_SIZES[v]);
                cur += decl.len;
            }
            assert_eq!(cur, base + 380);
        }
    }

    #[test]
    fn payload_lengths_match_decls() {
        let w = HaccIo { num_ranks: 2, particles_per_rank: 7, layout: Layout::StructOfArrays };
        for r in 0..2u64 {
            for (v, d) in w.decls_of_rank(r).iter().enumerate() {
                assert_eq!(w.payload(r, v).len() as u64, d.len);
            }
        }
        let a = HaccIo { layout: Layout::ArrayOfStructs, ..w };
        assert_eq!(a.payload(1, 0).len() as u64, a.bytes_per_rank());
    }

    #[test]
    fn payloads_differ_across_ranks_and_vars() {
        let w = HaccIo { num_ranks: 2, particles_per_rank: 50, layout: Layout::StructOfArrays };
        assert_ne!(w.payload(0, 0), w.payload(1, 0));
        assert_ne!(w.payload(0, 0), w.payload(0, 1));
    }

    #[test]
    fn subrange_decls_are_rebased() {
        let w = HaccIo { num_ranks: 8, particles_per_rank: 10, layout: Layout::ArrayOfStructs };
        let d = w.decls_for_ranks(4, 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0][0].offset, 0);
        assert_eq!(d[1][0].offset, 380);
    }

    #[test]
    fn imbalanced_counts_are_bounded_and_deterministic() {
        let a = HaccIo::imbalanced_counts(64, 1000, 0.3, 7);
        let b = HaccIo::imbalanced_counts(64, 1000, 0.3, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| (700..=1300).contains(&c)));
        let c = HaccIo::imbalanced_counts(64, 1000, 0.3, 8);
        assert_ne!(a, c, "different seeds differ");
        // zero spread collapses to the mean
        assert!(HaccIo::imbalanced_counts(16, 500, 0.0, 1).iter().all(|&c| c == 500));
    }

    #[test]
    fn imbalanced_decls_pack_contiguously() {
        let counts = vec![10u64, 3, 7];
        let decls = HaccIo::decls_with_counts(&counts, Layout::ArrayOfStructs);
        assert_eq!(decls[0][0], WriteDecl { offset: 0, len: 380 });
        assert_eq!(decls[1][0], WriteDecl { offset: 380, len: 114 });
        assert_eq!(decls[2][0], WriteDecl { offset: 494, len: 266 });
        // SoA variant still tiles each block
        let soa = HaccIo::decls_with_counts(&counts, Layout::StructOfArrays);
        let total: u64 = soa.iter().flatten().map(|d| d.len).sum();
        assert_eq!(total, 20 * PARTICLE_BYTES);
    }

    #[test]
    fn particles_for_one_mib() {
        let p = HaccIo::particles_for_bytes(1024 * 1024);
        assert_eq!(p, 27594);
    }
}
