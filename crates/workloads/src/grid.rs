//! Block-decomposed multidimensional arrays — the "meshes, 2D and 3D
//! arrays" data layouts the paper's future work names (Sec. VI).
//!
//! A global row-major array is split over a process grid; each rank owns
//! a block. In the file (laid out like the global array), a rank's block
//! is a set of **strided contiguous runs** — one per row (2D) or per
//! (plane, row) pair (3D). Declared to TAPIOCA, these runs become many
//! small `WriteDecl`s that the scheduler interleaves across ranks into
//! dense, full buffers; issued as naive per-rank I/O they fragment
//! badly. This is the classic checkpoint pattern of stencil codes.

use tapioca::schedule::WriteDecl;

/// A block decomposition of an N-dimensional row-major array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridDecomp {
    /// Global extent per dimension, slowest-varying first.
    pub global: Vec<u64>,
    /// Process grid extent per dimension (same arity as `global`).
    pub procs: Vec<usize>,
    /// Bytes per element.
    pub elem_size: u64,
}

impl GridDecomp {
    /// Build a decomposition.
    ///
    /// # Panics
    /// Panics on arity mismatch, zero extents, or a process grid larger
    /// than the array in any dimension.
    pub fn new(global: Vec<u64>, procs: Vec<usize>, elem_size: u64) -> Self {
        assert_eq!(global.len(), procs.len(), "arity mismatch");
        assert!(!global.is_empty(), "need at least one dimension");
        assert!(elem_size > 0);
        for (&g, &p) in global.iter().zip(&procs) {
            assert!(g > 0 && p > 0, "zero extent");
            assert!(p as u64 <= g, "more processes than cells in a dimension");
        }
        Self { global, procs, elem_size }
    }

    /// Convenience: 2D `ny x nx` cells over `py x px` processes.
    pub fn new_2d(ny: u64, nx: u64, py: usize, px: usize, elem_size: u64) -> Self {
        Self::new(vec![ny, nx], vec![py, px], elem_size)
    }

    /// Convenience: 3D `nz x ny x nx` over `pz x py x px`.
    pub fn new_3d(
        nz: u64,
        ny: u64,
        nx: u64,
        pz: usize,
        py: usize,
        px: usize,
        elem_size: u64,
    ) -> Self {
        Self::new(vec![nz, ny, nx], vec![pz, py, px], elem_size)
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.procs.iter().product()
    }

    /// Total file size, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.global.iter().product::<u64>() * self.elem_size
    }

    /// Block bounds `[start, end)` of process index `i` along dimension
    /// `d` (balanced split, remainder spread over the first blocks).
    fn bounds(&self, d: usize, i: usize) -> (u64, u64) {
        let g = self.global[d];
        let p = self.procs[d] as u64;
        let i = i as u64;
        ((g * i) / p, (g * (i + 1)) / p)
    }

    /// Process grid coordinates of a rank (row-major over `procs`).
    pub fn rank_coords(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.num_ranks());
        let mut rem = rank;
        let mut out = vec![0; self.procs.len()];
        for d in (0..self.procs.len()).rev() {
            out[d] = rem % self.procs[d];
            rem /= self.procs[d];
        }
        out
    }

    /// The declared writes of one rank: one per contiguous run of its
    /// block in the row-major global file.
    pub fn decls_of_rank(&self, rank: usize) -> Vec<WriteDecl> {
        let nd = self.global.len();
        let coords = self.rank_coords(rank);
        let bounds: Vec<(u64, u64)> = (0..nd).map(|d| self.bounds(d, coords[d])).collect();
        // Runs are contiguous along the last dimension; iterate over the
        // cartesian product of the leading dimensions' index ranges.
        let run_len = (bounds[nd - 1].1 - bounds[nd - 1].0) * self.elem_size;
        // strides (in elements) of each dimension in the global array
        let mut stride = vec![1u64; nd];
        for d in (0..nd - 1).rev() {
            stride[d] = stride[d + 1] * self.global[d + 1];
        }
        let mut decls = Vec::new();
        let mut idx: Vec<u64> = bounds[..nd - 1].iter().map(|b| b.0).collect();
        'outer: loop {
            let mut elem_off = bounds[nd - 1].0;
            for d in 0..nd - 1 {
                elem_off += idx[d] * stride[d];
            }
            decls.push(WriteDecl { offset: elem_off * self.elem_size, len: run_len });
            // increment the multi-index (last leading dimension fastest)
            for d in (0..nd - 1).rev() {
                idx[d] += 1;
                if idx[d] < bounds[d].1 {
                    continue 'outer;
                }
                idx[d] = bounds[d].0;
            }
            break;
        }
        decls
    }

    /// Declarations of every rank.
    pub fn decls(&self) -> Vec<Vec<WriteDecl>> {
        (0..self.num_ranks()).map(|r| self.decls_of_rank(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_d_is_contiguous_blocks() {
        let g = GridDecomp::new(vec![100], vec![4], 8);
        for r in 0..4 {
            let d = g.decls_of_rank(r);
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].len, 25 * 8);
            assert_eq!(d[0].offset, r as u64 * 25 * 8);
        }
    }

    #[test]
    fn two_d_runs_per_row() {
        // 4x6 cells over 2x2 procs: each block is 2 rows x 3 cols
        let g = GridDecomp::new_2d(4, 6, 2, 2, 1);
        let d = g.decls_of_rank(0); // block rows 0..2, cols 0..3
        assert_eq!(d, vec![
            WriteDecl { offset: 0, len: 3 },
            WriteDecl { offset: 6, len: 3 },
        ]);
        let d3 = g.decls_of_rank(3); // rows 2..4, cols 3..6
        assert_eq!(d3, vec![
            WriteDecl { offset: 2 * 6 + 3, len: 3 },
            WriteDecl { offset: 3 * 6 + 3, len: 3 },
        ]);
    }

    #[test]
    fn three_d_runs_per_plane_row() {
        let g = GridDecomp::new_3d(2, 2, 4, 1, 2, 2, 2);
        // rank 0: z 0..2, y 0..1, x 0..2 -> 2 planes x 1 row = 2 runs of 2 elems
        let d = g.decls_of_rank(0);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], WriteDecl { offset: 0, len: 4 });
        // plane z=1 starts at ny*nx = 8 elements = 16 bytes
        assert_eq!(d[1], WriteDecl { offset: 16, len: 4 });
    }

    #[test]
    fn uneven_split_spreads_remainder() {
        let g = GridDecomp::new(vec![10], vec![3], 1);
        let sizes: Vec<u64> = (0..3).map(|r| g.decls_of_rank(r)[0].len).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn rank_coords_roundtrip() {
        let g = GridDecomp::new_3d(8, 8, 8, 2, 3, 2, 4);
        assert_eq!(g.num_ranks(), 12);
        assert_eq!(g.rank_coords(0), vec![0, 0, 0]);
        assert_eq!(g.rank_coords(1), vec![0, 0, 1]);
        assert_eq!(g.rank_coords(2), vec![0, 1, 0]);
        assert_eq!(g.rank_coords(11), vec![1, 2, 1]);
    }

    /// Every byte of the global array is declared exactly once —
    /// exhaustive over all small 2D decompositions.
    #[test]
    fn prop_blocks_tile_the_file() {
        for gy in 1u64..12 {
            for gx in 1u64..12 {
                for py in 1usize..4 {
                    for px in 1usize..4 {
                        if py as u64 > gy || px as u64 > gx {
                            continue;
                        }
                        for elem in [1u64, 3, 8] {
                            let g = GridDecomp::new_2d(gy, gx, py, px, elem);
                            let total = g.total_bytes();
                            let mut covered = vec![0u8; total as usize];
                            for r in 0..g.num_ranks() {
                                for d in g.decls_of_rank(r) {
                                    for b in d.offset..d.offset + d.len {
                                        covered[b as usize] += 1;
                                    }
                                }
                            }
                            assert!(
                                covered.iter().all(|&c| c == 1),
                                "{gy}x{gx} over {py}x{px} elem {elem}: \
                                 every byte declared exactly once"
                            );
                        }
                    }
                }
            }
        }
    }

    /// 3D blocks tile as well — exhaustive over small decompositions.
    #[test]
    fn prop_3d_blocks_tile() {
        for gz in 1u64..5 {
            for gy in 1u64..5 {
                for gx in 1u64..5 {
                    for pz in 1usize..3 {
                        for py in 1usize..3 {
                            for px in 1usize..3 {
                                if pz as u64 > gz || py as u64 > gy || px as u64 > gx {
                                    continue;
                                }
                                let g = GridDecomp::new_3d(gz, gy, gx, pz, py, px, 2);
                                let total = g.total_bytes();
                                let mut covered = vec![0u8; total as usize];
                                for r in 0..g.num_ranks() {
                                    for d in g.decls_of_rank(r) {
                                        for b in d.offset..d.offset + d.len {
                                            covered[b as usize] += 1;
                                        }
                                    }
                                }
                                assert!(covered.iter().all(|&c| c == 1));
                            }
                        }
                    }
                }
            }
        }
    }
}
