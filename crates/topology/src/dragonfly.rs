//! Dragonfly interconnect with minimal routing, modelling the Cray XC40
//! Aries network of "Theta" (paper Sec. II-A and Fig. 5).
//!
//! Structure reproduced from the paper:
//!
//! * routers are organized in **groups**; inside a group they form a
//!   **2D all-to-all**: every router links to all routers in its row
//!   (16 across, "level 1") and all routers in its column (6 down,
//!   "level 2") over 14 GB/s electrical links;
//! * groups are connected all-to-all by 12.5 GB/s optical links
//!   ("level 3");
//! * each Aries router hosts 4 KNL nodes (injection ports).
//!
//! Minimal routing therefore uses at most 3 router-to-router hops:
//! up to 2 electrical to reach the source-side gateway, 1 optical, and
//! up to 2 electrical on the far side (plus injection/ejection). The
//! paper's statement "the minimal distance from one node to another is at
//! most three hops" refers to the electrical+optical router hops of a
//! *direct* route; we enumerate every traversed link explicitly.

use crate::{Interconnect, Link, LinkClass, LinkIx, NodeId, Route};

/// Shape and capacities of a dragonfly machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DragonflyParams {
    /// Number of groups (9 two-cabinet groups on Theta).
    pub groups: usize,
    /// Routers per group along "level 1" (16 on Theta).
    pub cols: usize,
    /// Routers per group along "level 2" (6 on Theta).
    pub rows: usize,
    /// Compute nodes per router (4 on Theta).
    pub nodes_per_router: usize,
    /// Node <-> router injection bandwidth, bytes/s.
    pub injection_bw: f64,
    /// Electrical intra-group link bandwidth, bytes/s (14 GB/s).
    pub electrical_bw: f64,
    /// Aggregate optical bandwidth between each pair of groups, bytes/s.
    ///
    /// Theta has several parallel 12.5 GB/s optical links per group pair;
    /// we model their aggregate as one fat link.
    pub optical_bw: f64,
    /// Per-hop latency, seconds.
    pub hop_latency: f64,
}

/// A dragonfly interconnect.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    p: DragonflyParams,
}

impl Dragonfly {
    /// Build a dragonfly.
    ///
    /// # Panics
    /// Panics on zero extents or non-positive bandwidths.
    pub fn new(p: DragonflyParams) -> Self {
        assert!(p.groups >= 1 && p.cols >= 1 && p.rows >= 1 && p.nodes_per_router >= 1);
        assert!(p.injection_bw > 0.0 && p.electrical_bw > 0.0 && p.optical_bw > 0.0);
        assert!(p.hop_latency >= 0.0);
        Self { p }
    }

    /// Machine parameters.
    pub fn params(&self) -> &DragonflyParams {
        &self.p
    }

    /// Routers per group.
    #[inline]
    pub fn routers_per_group(&self) -> usize {
        self.p.cols * self.p.rows
    }

    /// Total number of routers.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.p.groups * self.routers_per_group()
    }

    /// Global router index hosting `node`.
    #[inline]
    pub fn router_of(&self, node: NodeId) -> usize {
        node / self.p.nodes_per_router
    }

    /// Group of `node`.
    #[inline]
    pub fn group_of(&self, node: NodeId) -> usize {
        self.router_of(node) / self.routers_per_group()
    }

    /// (row, col) of a global router index within its group.
    #[inline]
    fn router_rc(&self, router: usize) -> (usize, usize) {
        let local = router % self.routers_per_group();
        (local / self.p.cols, local % self.p.cols)
    }

    /// Global router index from (group, row, col).
    #[inline]
    fn router_at(&self, group: usize, row: usize, col: usize) -> usize {
        group * self.routers_per_group() + row * self.p.cols + col
    }

    /// Deterministic gateway router in `src_group` for traffic towards
    /// `dst_group`. Spread pseudo-irregularly across the group, mirroring
    /// the "irregular mapping" of Aries global links.
    pub fn gateway(&self, src_group: usize, dst_group: usize) -> usize {
        debug_assert_ne!(src_group, dst_group);
        let r = self.routers_per_group();
        let local = (dst_group.wrapping_mul(17) ^ src_group.wrapping_mul(5)) % r;
        src_group * r + local
    }

    // ---- dense link index layout -------------------------------------
    // [0, 2N)                        injection (node*2 + dir)
    // [2N, 2N + R*deg)               electrical (router * deg + slot)
    // [2N + R*deg, +G*(G-1))         optical (ordered group pairs)

    #[inline]
    fn intra_degree(&self) -> usize {
        (self.p.cols - 1) + (self.p.rows - 1)
    }

    #[inline]
    fn injection_links(&self) -> usize {
        self.num_nodes() * 2
    }

    #[inline]
    fn electrical_links(&self) -> usize {
        self.num_routers() * self.intra_degree()
    }

    /// Link from `node` to its router (`dir = 0`) or back (`dir = 1`).
    #[inline]
    fn injection_ix(&self, node: NodeId, dir: usize) -> LinkIx {
        node * 2 + dir
    }

    /// Directed electrical link `src_router -> dst_router` (same row or
    /// same column of the same group).
    fn electrical_ix(&self, src_router: usize, dst_router: usize) -> LinkIx {
        let (sr, sc) = self.router_rc(src_router);
        let (dr, dc) = self.router_rc(dst_router);
        debug_assert_eq!(
            src_router / self.routers_per_group(),
            dst_router / self.routers_per_group()
        );
        let slot = if sr == dr {
            debug_assert_ne!(sc, dc);
            if dc < sc { dc } else { dc - 1 }
        } else {
            debug_assert_eq!(sc, dc, "electrical link must share a row or column");
            (self.p.cols - 1) + if dr < sr { dr } else { dr - 1 }
        };
        self.injection_links() + src_router * self.intra_degree() + slot
    }

    /// Directed optical link between two groups.
    fn optical_ix(&self, src_group: usize, dst_group: usize) -> LinkIx {
        debug_assert_ne!(src_group, dst_group);
        let g = self.p.groups;
        let slot = if dst_group < src_group { dst_group } else { dst_group - 1 };
        self.injection_links() + self.electrical_links() + src_group * (g - 1) + slot
    }

    /// Append the minimal electrical route `src_router -> dst_router`
    /// (same group) to `out`. 0, 1, or 2 links.
    fn push_intra_route(&self, src_router: usize, dst_router: usize, out: &mut Vec<LinkIx>) {
        if src_router == dst_router {
            return;
        }
        let (sr, sc) = self.router_rc(src_router);
        let (dr, dc) = self.router_rc(dst_router);
        let group = src_router / self.routers_per_group();
        if sr == dr || sc == dc {
            out.push(self.electrical_ix(src_router, dst_router));
        } else {
            // corner route: same row first, then same column
            let mid = self.router_at(group, sr, dc);
            out.push(self.electrical_ix(src_router, mid));
            out.push(self.electrical_ix(mid, dst_router));
        }
    }

    /// Append the minimal route `src -> dst` to `links`.
    fn route_links(&self, src: NodeId, dst: NodeId, links: &mut Vec<LinkIx>) {
        if src == dst {
            return;
        }
        let rs = self.router_of(src);
        let rt = self.router_of(dst);
        links.push(self.injection_ix(src, 0));
        if rs != rt {
            let gs = self.group_of(src);
            let gt = self.group_of(dst);
            if gs == gt {
                self.push_intra_route(rs, rt, links);
            } else {
                let gw_s = self.gateway(gs, gt);
                let gw_t = self.gateway(gt, gs);
                self.push_intra_route(rs, gw_s, links);
                links.push(self.optical_ix(gs, gt));
                self.push_intra_route(gw_t, rt, links);
            }
        }
        links.push(self.injection_ix(dst, 1));
    }

    /// Router-level hop count of the minimal intra-group route.
    fn intra_hops(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        let (ar, ac) = self.router_rc(a);
        let (br, bc) = self.router_rc(b);
        if ar == br || ac == bc {
            1
        } else {
            2
        }
    }
}

impl Interconnect for Dragonfly {
    fn num_nodes(&self) -> usize {
        self.num_routers() * self.p.nodes_per_router
    }

    fn num_links(&self) -> usize {
        self.injection_links() + self.electrical_links() + self.p.groups * (self.p.groups - 1)
    }

    fn link(&self, ix: LinkIx) -> Link {
        let inj = self.injection_links();
        let ele = self.electrical_links();
        if ix < inj {
            Link { capacity: self.p.injection_bw, class: LinkClass::Injection }
        } else if ix < inj + ele {
            Link { capacity: self.p.electrical_bw, class: LinkClass::IntraGroup }
        } else {
            assert!(ix < self.num_links(), "link index {ix} out of range");
            Link { capacity: self.p.optical_bw, class: LinkClass::InterGroup }
        }
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        let mut links = Vec::with_capacity(7);
        self.route_links(src, dst, &mut links);
        Route { links }
    }

    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkIx>) {
        self.route_links(src, dst, out);
    }

    fn hop_distance(&self, src: NodeId, dst: NodeId) -> u32 {
        if src == dst {
            return 0;
        }
        let rs = self.router_of(src);
        let rt = self.router_of(dst);
        if rs == rt {
            return 2; // inject + eject
        }
        let gs = self.group_of(src);
        let gt = self.group_of(dst);
        let router_hops = if gs == gt {
            self.intra_hops(rs, rt)
        } else {
            let gw_s = self.gateway(gs, gt);
            let gw_t = self.gateway(gt, gs);
            self.intra_hops(rs, gw_s) + 1 + self.intra_hops(gw_t, rt)
        };
        2 + router_hops
    }

    fn hop_latency(&self) -> f64 {
        self.p.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    fn tiny() -> Dragonfly {
        Dragonfly::new(DragonflyParams {
            groups: 3,
            cols: 4,
            rows: 2,
            nodes_per_router: 2,
            injection_bw: 14.0 * GIB as f64,
            electrical_bw: 14.0 * GIB as f64,
            optical_bw: 12.5 * GIB as f64,
            hop_latency: 1e-6,
        })
    }

    #[test]
    fn shape_counts() {
        let d = tiny();
        assert_eq!(d.routers_per_group(), 8);
        assert_eq!(d.num_routers(), 24);
        assert_eq!(d.num_nodes(), 48);
        // 48*2 injection + 24*(3+1) electrical + 3*2 optical
        assert_eq!(d.num_links(), 96 + 96 + 6);
    }

    #[test]
    fn route_hops_match_distance() {
        let d = tiny();
        for s in 0..d.num_nodes() {
            for t in 0..d.num_nodes() {
                assert_eq!(d.route(s, t).hops(), d.hop_distance(s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn router_hops_at_most_five() {
        // 2 electrical + optical + 2 electrical is the worst minimal route
        let d = tiny();
        for s in 0..d.num_nodes() {
            for t in 0..d.num_nodes() {
                if s != t {
                    let h = d.hop_distance(s, t);
                    assert!((2..=2 + 5).contains(&h), "{s}->{t} = {h}");
                }
            }
        }
    }

    #[test]
    fn same_router_is_two_hops() {
        let d = tiny();
        assert_eq!(d.hop_distance(0, 1), 2);
        let r = d.route(0, 1);
        assert_eq!(r.links.len(), 2);
        assert_eq!(d.link(r.links[0]).class, LinkClass::Injection);
        assert_eq!(d.link(r.links[1]).class, LinkClass::Injection);
    }

    #[test]
    fn intra_group_routes_are_electrical() {
        let d = tiny();
        // nodes 0 and 6 are on routers 0 and 3: same row -> 1 electrical hop
        let r = d.route(0, 6);
        assert_eq!(d.link(r.links[1]).class, LinkClass::IntraGroup);
        assert!(r
            .links
            .iter()
            .all(|&l| d.link(l).class != LinkClass::InterGroup));
    }

    #[test]
    fn inter_group_route_crosses_exactly_one_optical() {
        let d = tiny();
        let s = 0; // group 0
        let t = d.num_nodes() - 1; // group 2
        let r = d.route(s, t);
        let optical = r
            .links
            .iter()
            .filter(|&&l| d.link(l).class == LinkClass::InterGroup)
            .count();
        assert_eq!(optical, 1);
    }

    #[test]
    fn link_indices_bijective_over_route_classes() {
        let d = tiny();
        // all electrical indices distinct
        let mut seen = std::collections::HashSet::new();
        for g in 0..3 {
            for r1 in 0..8 {
                for r2 in 0..8 {
                    let (a, b) = (g * 8 + r1, g * 8 + r2);
                    let (ar, ac) = d.router_rc(a);
                    let (br, bc) = d.router_rc(b);
                    if a != b && (ar == br || ac == bc) {
                        let ix = d.electrical_ix(a, b);
                        assert!(seen.insert(ix), "duplicate electrical index {ix}");
                        assert_eq!(d.link(ix).class, LinkClass::IntraGroup);
                    }
                }
            }
        }
    }

    #[test]
    fn gateway_stays_in_source_group() {
        let d = tiny();
        for gs in 0..3 {
            for gt in 0..3 {
                if gs != gt {
                    let gw = d.gateway(gs, gt);
                    assert_eq!(gw / d.routers_per_group(), gs);
                }
            }
        }
    }

    #[test]
    fn theta_scale_instantiates() {
        let d = Dragonfly::new(DragonflyParams {
            groups: 9,
            cols: 16,
            rows: 6,
            nodes_per_router: 4,
            injection_bw: 14.0 * GIB as f64,
            electrical_bw: 14.0 * GIB as f64,
            optical_bw: 4.0 * 12.5 * GIB as f64,
            hop_latency: 1e-6,
        });
        assert_eq!(d.num_nodes(), 3456);
        let r = d.route(0, 3455);
        assert!(r.hops() >= 3 && r.hops() <= 7);
    }
}
