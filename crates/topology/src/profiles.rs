//! Machine profiles for the two platforms of the paper's evaluation.
//!
//! All constants come from the paper (Sec. V-A, Figs. 4-6) or are
//! calibration anchors taken from the paper's own measured ceilings:
//!
//! * **Mira** (IBM BG/Q): 5D torus, 1.8 GB/s links, 16 PowerPC A2 cores
//!   per node, Psets of 128 nodes with 2 bridge nodes at 1.8 GB/s each to
//!   an I/O node, GPFS. Estimated peak 89.6 GB/s on 4,096 nodes
//!   (Sec. V-D1) => 2.8 GB/s effective per Pset of 128 nodes.
//! * **Theta** (Cray XC40): dragonfly of 9 groups x 96 Aries routers
//!   (16 x 6 all-to-all) x 4 KNL nodes; 14 GB/s electrical, 12.5 GB/s
//!   optical links; Lustre with 56 OSTs/OSSs behind LNET service nodes of
//!   unknown placement. Per-OST service anchors of 0.75 GB/s write and
//!   1.5 GB/s read put the tuned 48-OST raw ceilings at 36 / 72 GB/s;
//!   the paper's measured tuned-IOR ceilings (~10 GB/s write, ~36 GB/s
//!   read, Fig. 8) then emerge from MPI-IO's own unaligned-file-domain
//!   penalties rather than being baked into the disks.

use crate::dragonfly::{Dragonfly, DragonflyParams};
use crate::provider::{Fabric, Machine};
use crate::torus::{bgq_dims_for_nodes, PsetConfig, Torus};
use crate::GIB;

/// The two platforms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// IBM Blue Gene/Q "Mira" + GPFS.
    MiraBgq,
    /// Cray XC40 "Theta" + Lustre.
    ThetaXc40,
    /// Commodity fat-tree cluster + Lustre (portability target; not in
    /// the paper).
    GenericCluster,
}

/// Storage-side constants consumed by `tapioca-pfs` when building the
/// filesystem model for a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StorageProfile {
    /// GPFS behind BG/Q I/O nodes.
    Gpfs {
        /// Capacity of the ION link towards the SAN, bytes/s (4 GB/s).
        ion_link_bw: f64,
        /// Effective service bandwidth of the GPFS backend per ION,
        /// bytes/s (2.8 GB/s: 89.6 GB/s across 32 Psets).
        ion_service_bw: f64,
    },
    /// Lustre behind LNET service nodes.
    Lustre {
        /// Number of object storage targets on the machine (56 on Theta).
        total_osts: usize,
        /// Per-OST write service bandwidth anchor, bytes/s.
        ost_write_bw: f64,
        /// Per-OST read service bandwidth anchor, bytes/s.
        ost_read_bw: f64,
        /// Aggregate LNET forwarding bandwidth, bytes/s (7 LNET nodes per
        /// OSS over FDR InfiniBand; effectively not the bottleneck).
        lnet_bw: f64,
    },
}

/// A fully-specified machine: fabric + rank mapping + storage constants.
#[derive(Debug, Clone)]
pub struct MachineProfile {
    /// Which platform this is.
    pub platform: Platform,
    /// Human-readable name for harness output.
    pub name: &'static str,
    /// The machine (fabric + rank mapping).
    pub machine: Machine,
    /// Storage-side constants.
    pub storage: StorageProfile,
}

/// Per-hop latency on the BG/Q torus, seconds.
pub const MIRA_HOP_LATENCY: f64 = 600e-9;
/// Per-hop latency on the Aries dragonfly, seconds.
pub const THETA_HOP_LATENCY: f64 = 400e-9;
/// BG/Q torus link bandwidth (paper: 1.8 GB/s theoretical).
pub const MIRA_LINK_BW: f64 = 1.8 * GIB as f64;
/// BG/Q bridge-node to I/O-node link bandwidth.
pub const MIRA_BRIDGE_BW: f64 = 1.8 * GIB as f64;
/// XC40 electrical link bandwidth (paper: 14 GB/s).
pub const THETA_ELECTRICAL_BW: f64 = 14.0 * GIB as f64;
/// XC40 optical bandwidth between a group pair, aggregate (several
/// 12.5 GB/s links; 4 modelled).
pub const THETA_OPTICAL_BW: f64 = 4.0 * 12.5 * GIB as f64;
/// KNL node injection bandwidth into its Aries router.
pub const THETA_INJECTION_BW: f64 = 14.0 * GIB as f64;

/// Build the Mira profile for a node count (must be a multiple of 128
/// with a known BG/Q shape: 512, 1024, 2048, 4096, ...).
///
/// # Panics
/// Panics if `nodes` has no BG/Q torus shape (see
/// [`crate::torus::bgq_dims_for_nodes`]).
pub fn mira_profile(nodes: usize, ranks_per_node: usize) -> MachineProfile {
    let dims = bgq_dims_for_nodes(nodes)
        .unwrap_or_else(|| panic!("no BG/Q torus shape for {nodes} nodes"));
    let torus = Torus::new(&dims, MIRA_LINK_BW, MIRA_HOP_LATENCY).with_psets(PsetConfig {
        nodes_per_pset: 128,
        bridge_nodes: 2,
        bridge_link_bw: MIRA_BRIDGE_BW,
    });
    MachineProfile {
        platform: Platform::MiraBgq,
        name: "Mira (IBM BG/Q + GPFS)",
        machine: Machine::new(Fabric::Torus(torus), ranks_per_node, 28.0 * GIB as f64),
        storage: StorageProfile::Gpfs {
            ion_link_bw: 4.0 * GIB as f64,
            ion_service_bw: 2.8 * GIB as f64,
        },
    }
}

/// Build the Theta profile for a node count.
///
/// The dragonfly shape is scaled down from the full machine (9 groups x
/// 96 routers x 4 nodes = 3,456 nodes) by filling whole groups first:
/// the smallest full-group configuration holding `nodes` is used, so
/// routing diversity matches a real allocation.
///
/// # Panics
/// Panics if `nodes` is not a multiple of 4 (nodes per router) or exceeds
/// the full machine.
pub fn theta_profile(nodes: usize, ranks_per_node: usize) -> MachineProfile {
    assert!(nodes.is_multiple_of(4), "Theta allocations are whole routers (4 nodes)");
    assert!(nodes <= 9 * 96 * 4, "Theta has 3,456 nodes");
    let routers = nodes / 4;
    // Fill whole groups of 96 routers (16 x 6); shrink the last partial
    // group by rows to stay rectangular.
    let groups = routers.div_ceil(96).max(2); // >= 2 groups keeps optical links in play
    let per_group = routers.div_ceil(groups);
    let cols = 16usize.min(per_group);
    let rows = per_group.div_ceil(cols).max(1);
    let fly = Dragonfly::new(DragonflyParams {
        groups,
        cols,
        rows,
        nodes_per_router: 4,
        injection_bw: THETA_INJECTION_BW,
        electrical_bw: THETA_ELECTRICAL_BW,
        optical_bw: THETA_OPTICAL_BW,
        hop_latency: THETA_HOP_LATENCY,
    });
    MachineProfile {
        platform: Platform::ThetaXc40,
        name: "Theta (Cray XC40 + Lustre)",
        machine: Machine::new(Fabric::Dragonfly(fly), ranks_per_node, 90.0 * GIB as f64),
        storage: StorageProfile::Lustre {
            total_osts: 56,
            ost_write_bw: 0.75 * GIB as f64,
            ost_read_bw: 1.5 * GIB as f64,
            lnet_bw: 56.0 * GIB as f64,
        },
    }
}

/// Build a generic commodity-cluster profile: a two-level fat-tree of
/// 32-node leaves with EDR-class links and a Lustre-style parallel
/// filesystem — a machine the paper never saw, for portability checks.
///
/// # Panics
/// Panics if `nodes` is not a multiple of 32.
pub fn cluster_profile(nodes: usize, ranks_per_node: usize) -> MachineProfile {
    use crate::fattree::{FatTree, FatTreeParams};
    assert!(nodes.is_multiple_of(32), "cluster leaves hold 32 nodes");
    let leaves = nodes / 32;
    let fat = FatTree::new(FatTreeParams {
        leaves,
        nodes_per_leaf: 32,
        spines: (leaves / 2).max(1),
        edge_bw: 12.0 * GIB as f64,
        uplink_bw: 24.0 * GIB as f64,
        hop_latency: 500e-9,
    });
    MachineProfile {
        platform: Platform::GenericCluster,
        name: "Generic cluster (fat-tree + Lustre)",
        machine: Machine::new(Fabric::FatTree(fat), ranks_per_node, 50.0 * GIB as f64),
        storage: StorageProfile::Lustre {
            total_osts: 32,
            ost_write_bw: 1.0 * GIB as f64,
            ost_read_bw: 2.0 * GIB as f64,
            lnet_bw: 40.0 * GIB as f64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::TopologyProvider;

    #[test]
    fn mira_512_matches_paper_setup() {
        let p = mira_profile(512, 16);
        assert_eq!(p.platform, Platform::MiraBgq);
        assert_eq!(p.machine.num_ranks(), 8192);
        let t = p.machine.fabric().as_torus().unwrap();
        assert_eq!(t.num_psets(), 4);
        assert_eq!(t.pset_config().unwrap().bridge_nodes, 2);
    }

    #[test]
    fn mira_4096_has_32_psets() {
        let p = mira_profile(4096, 16);
        let t = p.machine.fabric().as_torus().unwrap();
        assert_eq!(t.num_psets(), 32);
    }

    #[test]
    fn theta_512_covers_nodes() {
        let p = theta_profile(512, 16);
        assert!(p.machine.num_nodes() >= 512);
        assert_eq!(p.platform, Platform::ThetaXc40);
        let d = p.machine.fabric().as_dragonfly().unwrap();
        assert!(d.params().groups >= 2);
    }

    #[test]
    fn theta_full_machine() {
        let p = theta_profile(3456, 16);
        assert_eq!(p.machine.num_nodes(), 3456);
        let d = p.machine.fabric().as_dragonfly().unwrap();
        assert_eq!(d.params().groups, 9);
        assert_eq!(d.routers_per_group(), 96);
    }

    #[test]
    fn theta_io_is_opaque() {
        let p = theta_profile(128, 16);
        assert_eq!(p.machine.distance_to_io_node(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "no BG/Q torus shape")]
    fn mira_rejects_odd_node_counts() {
        mira_profile(300, 16);
    }

    #[test]
    fn cluster_profile_is_fat_tree_with_known_io_distance() {
        let p = cluster_profile(128, 8);
        assert_eq!(p.platform, Platform::GenericCluster);
        assert_eq!(p.machine.num_nodes(), 128);
        assert!(p.machine.fabric().as_fattree().is_some());
        // unlike Theta, the cluster knows its storage distance: C2 active
        assert_eq!(p.machine.distance_to_io_node(0, 0), Some(4));
        assert!(p.machine.bandwidth_to_io_node(0, 0).is_some());
        assert_eq!(p.machine.rank_to_coordinates(9), vec![0, 1]);
        assert_eq!(p.machine.distance_between_ranks(0, 8 * 33), 4);
        assert_eq!(p.machine.distance_between_ranks(0, 8), 2);
    }
}
