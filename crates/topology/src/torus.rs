//! N-dimensional torus interconnect with dimension-ordered routing,
//! modelling the IBM Blue Gene/Q 5D torus ("Mira" in the paper).
//!
//! BG/Q specifics reproduced here (paper Sec. II-A and Fig. 4):
//!
//! * nodes are partitioned into **Psets** of 128 consecutive nodes sharing
//!   one I/O node;
//! * two nodes per Pset — the **bridge nodes** — own a dedicated 1.8 GB/s
//!   link to the I/O node (`LinkClass::IoForward`);
//! * torus links run at 2 GB/s (Fig. 4 of the paper).
//!
//! Routing is deterministic dimension-ordered (the BG/Q default): traverse
//! dimensions in order, taking the shorter way around each ring.

use crate::coords::CoordSpace;
use crate::{Interconnect, Link, LinkClass, LinkIx, NodeId, Route};

/// Pset (I/O partition) configuration for a torus machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsetConfig {
    /// Compute nodes per Pset (128 on Mira).
    pub nodes_per_pset: usize,
    /// Bridge nodes per Pset (2 on Mira).
    pub bridge_nodes: usize,
    /// Capacity of each bridge-node -> I/O-node link, bytes/s.
    pub bridge_link_bw: f64,
}

/// An N-dimensional torus with optional Pset I/O structure.
#[derive(Debug, Clone)]
pub struct Torus {
    space: CoordSpace,
    link_bw: f64,
    hop_latency: f64,
    pset: Option<PsetConfig>,
    /// Precomputed bridge node ids per Pset (ascending).
    bridges: Vec<Vec<NodeId>>,
}

impl Torus {
    /// Build a torus with the given per-dimension extents.
    ///
    /// `link_bw` is the capacity of every torus link in bytes/s and
    /// `hop_latency` the per-hop latency in seconds.
    pub fn new(dims: &[usize], link_bw: f64, hop_latency: f64) -> Self {
        assert!(link_bw > 0.0 && hop_latency >= 0.0);
        Self {
            space: CoordSpace::new(dims),
            link_bw,
            hop_latency,
            pset: None,
            bridges: Vec::new(),
        }
    }

    /// Attach Pset I/O structure (consumes and returns `self` for chaining).
    ///
    /// Bridge nodes are spread evenly inside each Pset: node
    /// `pset_start + k * nodes_per_pset / bridge_nodes` for each `k`.
    ///
    /// # Panics
    /// Panics unless `nodes_per_pset` divides the node count and
    /// `bridge_nodes <= nodes_per_pset`.
    pub fn with_psets(mut self, cfg: PsetConfig) -> Self {
        let n = self.space.len();
        assert!(cfg.nodes_per_pset > 0 && n.is_multiple_of(cfg.nodes_per_pset),
                "nodes_per_pset {} must divide node count {}", cfg.nodes_per_pset, n);
        assert!(cfg.bridge_nodes >= 1 && cfg.bridge_nodes <= cfg.nodes_per_pset);
        assert!(cfg.bridge_link_bw > 0.0);
        let num_psets = n / cfg.nodes_per_pset;
        let stride = cfg.nodes_per_pset / cfg.bridge_nodes;
        self.bridges = (0..num_psets)
            .map(|p| {
                (0..cfg.bridge_nodes)
                    .map(|k| p * cfg.nodes_per_pset + k * stride)
                    .collect()
            })
            .collect();
        self.pset = Some(cfg);
        self
    }

    /// The coordinate space of the torus.
    pub fn space(&self) -> &CoordSpace {
        &self.space
    }

    /// Pset configuration, if attached.
    pub fn pset_config(&self) -> Option<&PsetConfig> {
        self.pset.as_ref()
    }

    /// Number of Psets (0 when no Pset structure is attached).
    pub fn num_psets(&self) -> usize {
        self.bridges.len()
    }

    /// Pset index of a node.
    ///
    /// # Panics
    /// Panics when no Pset structure is attached.
    pub fn pset_of(&self, node: NodeId) -> usize {
        let cfg = self.pset.expect("torus has no Pset structure");
        node / cfg.nodes_per_pset
    }

    /// Bridge node ids of a Pset, ascending.
    pub fn bridge_nodes(&self, pset: usize) -> &[NodeId] {
        &self.bridges[pset]
    }

    /// Number of torus links (excludes I/O forward links).
    fn num_torus_links(&self) -> usize {
        self.space.len() * self.space.ndims() * 2
    }

    /// Dense index of the torus link leaving `node` along `dim` in
    /// direction `dir` (0 = `+`, 1 = `-`).
    #[inline]
    fn torus_link_ix(&self, node: NodeId, dim: usize, dir: usize) -> LinkIx {
        (node * self.space.ndims() + dim) * 2 + dir
    }

    /// Dense index of the I/O forward link of bridge `b` in Pset `p`.
    ///
    /// # Panics
    /// Panics when no Pset structure is attached.
    pub fn io_link_ix(&self, pset: usize, bridge: usize) -> LinkIx {
        let cfg = self.pset.expect("torus has no Pset structure");
        assert!(bridge < cfg.bridge_nodes);
        self.num_torus_links() + pset * cfg.bridge_nodes + bridge
    }

    /// Nearest bridge node of `node`'s own Pset (ties -> lower node id),
    /// together with its index inside the Pset's bridge list.
    pub fn nearest_bridge(&self, node: NodeId) -> (NodeId, usize) {
        let p = self.pset_of(node);
        let mut best = (u32::MAX, 0usize, 0 as NodeId);
        for (k, &b) in self.bridges[p].iter().enumerate() {
            let d = self.hop_distance(node, b);
            if d < best.0 {
                best = (d, k, b);
            }
        }
        (best.2, best.1)
    }

    /// Route from `node` to the I/O node of its Pset: torus hops to the
    /// nearest bridge node, then the bridge's I/O forward link.
    pub fn io_route(&self, node: NodeId) -> Route {
        let mut r = Route::default();
        self.io_route_into(node, &mut r.links);
        r
    }

    /// Append the links of [`Self::io_route`] to `out`.
    pub fn io_route_into(&self, node: NodeId, out: &mut Vec<LinkIx>) {
        let p = self.pset_of(node);
        let (bridge, k) = self.nearest_bridge(node);
        self.route_links(node, bridge, out);
        out.push(self.io_link_ix(p, k));
    }

    /// Append the dimension-ordered route `src -> dst` to `links`.
    fn route_links(&self, src: NodeId, dst: NodeId, links: &mut Vec<LinkIx>) {
        let nd = self.space.ndims();
        let mut cur = self.space.coords_of(src);
        let dstc = self.space.coords_of(dst);
        for d in 0..nd {
            let delta = self.space.ring_delta(d, cur[d], dstc[d]);
            let (steps, dir) = if delta >= 0 {
                (delta as usize, 0)
            } else {
                ((-delta) as usize, 1)
            };
            let extent = self.space.dims()[d];
            for _ in 0..steps {
                let node = self.space.coords_to_id(&cur);
                links.push(self.torus_link_ix(node, d, dir));
                cur[d] = if dir == 0 {
                    (cur[d] + 1) % extent
                } else {
                    (cur[d] + extent - 1) % extent
                };
            }
        }
        debug_assert_eq!(cur, dstc);
    }

    /// Hop distance from a node to its Pset's I/O node
    /// (torus distance to the nearest bridge + 1 forward hop).
    pub fn io_distance(&self, node: NodeId) -> u32 {
        let (bridge, _) = self.nearest_bridge(node);
        self.hop_distance(node, bridge) + 1
    }
}

impl Interconnect for Torus {
    fn num_nodes(&self) -> usize {
        self.space.len()
    }

    fn num_links(&self) -> usize {
        let io = self
            .pset
            .map(|c| self.bridges.len() * c.bridge_nodes)
            .unwrap_or(0);
        self.num_torus_links() + io
    }

    fn link(&self, ix: LinkIx) -> Link {
        let nt = self.num_torus_links();
        if ix < nt {
            Link { capacity: self.link_bw, class: LinkClass::Torus }
        } else {
            let cfg = self.pset.expect("I/O link index without Pset structure");
            assert!(ix < self.num_links(), "link index {ix} out of range");
            Link { capacity: cfg.bridge_link_bw, class: LinkClass::IoForward }
        }
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        let mut links = Vec::new();
        self.route_links(src, dst, &mut links);
        Route { links }
    }

    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkIx>) {
        self.route_links(src, dst, out);
    }

    fn hop_distance(&self, src: NodeId, dst: NodeId) -> u32 {
        if src == dst {
            return 0;
        }
        let a = self.space.coords_of(src);
        let b = self.space.coords_of(dst);
        (0..self.space.ndims())
            .map(|d| self.space.ring_distance(d, a[d], b[d]) as u32)
            .sum()
    }

    fn hop_latency(&self) -> f64 {
        self.hop_latency
    }
}

/// Realistic BG/Q-style 5D torus shapes for the node counts used in the
/// paper's evaluation (a midplane is 4x4x4x4x2 = 512 nodes).
///
/// Returns `None` for unsupported counts.
pub fn bgq_dims_for_nodes(nodes: usize) -> Option<[usize; 5]> {
    match nodes {
        128 => Some([2, 4, 4, 2, 2]),
        256 => Some([4, 4, 4, 2, 2]),
        512 => Some([4, 4, 4, 4, 2]),
        1024 => Some([8, 4, 4, 4, 2]),
        2048 => Some([8, 8, 4, 4, 2]),
        4096 => Some([8, 8, 8, 4, 2]),
        8192 => Some([8, 8, 8, 8, 2]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    fn small() -> Torus {
        Torus::new(&[4, 4, 2], 2.0 * GIB as f64, 600e-9)
    }

    #[test]
    fn distance_symmetry_and_triangle() {
        let t = small();
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.hop_distance(a, b), t.hop_distance(b, a));
                for c in [0, 7, 13] {
                    assert!(
                        t.hop_distance(a, b) <= t.hop_distance(a, c) + t.hop_distance(c, b),
                        "triangle inequality violated"
                    );
                }
            }
        }
    }

    #[test]
    fn route_length_matches_distance() {
        let t = small();
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.route(a, b).hops(), t.hop_distance(a, b));
            }
        }
    }

    #[test]
    fn route_links_in_range_and_distinct() {
        let t = small();
        let r = t.route(0, t.num_nodes() - 1);
        for &l in &r.links {
            assert!(l < t.num_links());
        }
        let mut ls = r.links.clone();
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), r.links.len(), "minimal route repeats a link");
    }

    #[test]
    fn self_route_empty() {
        let t = small();
        assert_eq!(t.route(5, 5).hops(), 0);
        assert_eq!(t.hop_distance(5, 5), 0);
    }

    #[test]
    fn wraparound_is_used() {
        let t = Torus::new(&[8], 1.0, 1e-9);
        assert_eq!(t.hop_distance(0, 7), 1);
        assert_eq!(t.route(0, 7).hops(), 1);
    }

    #[test]
    fn pset_structure() {
        let t = Torus::new(&[4, 4, 4, 4, 2], 2.0 * GIB as f64, 600e-9).with_psets(PsetConfig {
            nodes_per_pset: 128,
            bridge_nodes: 2,
            bridge_link_bw: 1.8 * GIB as f64,
        });
        assert_eq!(t.num_psets(), 4);
        assert_eq!(t.pset_of(0), 0);
        assert_eq!(t.pset_of(127), 0);
        assert_eq!(t.pset_of(128), 1);
        assert_eq!(t.bridge_nodes(0), &[0, 64]);
        assert_eq!(t.bridge_nodes(3), &[384, 448]);
    }

    #[test]
    fn io_route_ends_on_forward_link() {
        let t = Torus::new(&[4, 4, 4, 4, 2], 2.0 * GIB as f64, 600e-9).with_psets(PsetConfig {
            nodes_per_pset: 128,
            bridge_nodes: 2,
            bridge_link_bw: 1.8 * GIB as f64,
        });
        for node in [0usize, 5, 77, 127, 130, 511] {
            let r = t.io_route(node);
            let last = *r.links.last().unwrap();
            assert_eq!(t.link(last).class, LinkClass::IoForward);
            assert_eq!(r.hops(), t.io_distance(node));
            // bridge node itself: exactly one hop (the forward link)
        }
        assert_eq!(t.io_distance(0), 1); // node 0 is a bridge
        assert_eq!(t.io_distance(64), 1); // node 64 is the second bridge
    }

    #[test]
    fn io_links_have_distinct_indices() {
        let t = Torus::new(&[4, 4, 4, 4, 2], 1.0, 1e-9).with_psets(PsetConfig {
            nodes_per_pset: 128,
            bridge_nodes: 2,
            bridge_link_bw: 1.0,
        });
        let mut seen = std::collections::HashSet::new();
        for p in 0..t.num_psets() {
            for b in 0..2 {
                let ix = t.io_link_ix(p, b);
                assert!(ix >= t.num_nodes() * 5 * 2);
                assert!(ix < t.num_links());
                assert!(seen.insert(ix));
            }
        }
    }

    #[test]
    fn bgq_shapes_multiply_out() {
        for n in [128, 256, 512, 1024, 2048, 4096, 8192] {
            let d = bgq_dims_for_nodes(n).unwrap();
            assert_eq!(d.iter().product::<usize>(), n);
        }
        assert!(bgq_dims_for_nodes(123).is_none());
    }

    #[test]
    fn path_bandwidth_is_min_capacity() {
        let t = small();
        assert_eq!(t.path_bandwidth(0, 1), 2.0 * GIB as f64);
        assert!(t.path_bandwidth(3, 3).is_infinite());
    }
}
