//! Memoized node-level metric tables for aggregator placement.
//!
//! The placement cost model only ever asks a topology for hop distance,
//! path bandwidth, and I/O-node metrics — and under the block rank
//! mapping documented on [`TopologyProvider::ranks_per_node`] every one
//! of those quantities depends on the *node* hosting a rank, never on
//! the rank itself (co-located ranks are 0 hops apart and communicate at
//! intra-node bandwidth; cross-node pairs route between the two nodes).
//! Torus/dragonfly/fattree hop math and the route-walking bandwidth
//! computation are therefore worth memoizing per node pair: an election
//! over P ranks spread across N nodes needs at most N² metric
//! computations instead of P².
//!
//! The cache is caller-owned, lazy, and strategy-agnostic:
//!
//! * entries are computed on first use via a representative rank of each
//!   node (`node * ranks_per_node`, valid under the block mapping);
//! * entries are valid for the lifetime of one topology object — the
//!   cache stores no reference to the provider, so the caller must
//!   [`NodeMetricCache::clear`] (or drop) it when switching machines;
//! * there is no invalidation beyond `clear`: the modelled fabrics are
//!   immutable, so a (node, node) or (node, io) key can never go stale
//!   while the same provider is in use.
//!
//! Keys are directed — `B(i -> A)` is not required to be symmetric by
//! the provider contract even though every fabric in this crate is.

use std::collections::HashMap;

use crate::provider::{IoNodeId, TopologyProvider};
use crate::{NodeId, Rank};

/// Distance/bandwidth between a (source node, destination node) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMetrics {
    /// Hop distance `d` (0 for `src == dst`).
    pub dist: u32,
    /// Path bandwidth `B(src -> dst)`, bytes/s (intra-node bandwidth for
    /// `src == dst`).
    pub bw: f64,
}

/// Distance/bandwidth from a node towards an I/O node; `None` when the
/// machine cannot locate its I/O nodes (Theta).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoMetrics {
    /// Hop distance to the I/O node, if known.
    pub dist: Option<u32>,
    /// Bandwidth towards the I/O node, bytes/s, if known.
    pub bw: Option<f64>,
}

/// Lazy memo table of node-pair and node-to-I/O metrics.
#[derive(Debug, Default)]
pub struct NodeMetricCache {
    pairs: HashMap<(NodeId, NodeId), PairMetrics>,
    ios: HashMap<(NodeId, IoNodeId), IoMetrics>,
}

impl NodeMetricCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop every entry. Required when the cache is reused with a
    /// different topology object.
    pub fn clear(&mut self) {
        self.pairs.clear();
        self.ios.clear();
    }

    /// Number of memoized entries (pair + I/O), mostly for tests.
    pub fn len(&self) -> usize {
        self.pairs.len() + self.ios.len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty() && self.ios.is_empty()
    }

    /// Representative rank of a node under the block mapping.
    #[inline]
    fn rep_rank(topo: &dyn TopologyProvider, node: NodeId) -> Rank {
        node * topo.ranks_per_node()
    }

    /// Metrics for messages from a rank on `src` to a rank on `dst`.
    pub fn pair(&mut self, topo: &dyn TopologyProvider, src: NodeId, dst: NodeId) -> PairMetrics {
        *self.pairs.entry((src, dst)).or_insert_with(|| {
            let a = Self::rep_rank(topo, src);
            let b = Self::rep_rank(topo, dst);
            PairMetrics {
                dist: topo.distance_between_ranks(a, b),
                bw: topo.bandwidth_between_ranks(a, b),
            }
        })
    }

    /// Metrics from a rank on `node` towards I/O node `io`.
    pub fn io(&mut self, topo: &dyn TopologyProvider, node: NodeId, io: IoNodeId) -> IoMetrics {
        *self.ios.entry((node, io)).or_insert_with(|| {
            let r = Self::rep_rank(topo, node);
            IoMetrics { dist: topo.distance_to_io_node(r, io), bw: topo.bandwidth_to_io_node(r, io) }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{mira_profile, theta_profile};

    #[test]
    fn pair_metrics_match_rank_queries_for_every_rank_on_the_nodes() {
        let m = mira_profile(128, 4).machine;
        let mut cache = NodeMetricCache::new();
        let pm = cache.pair(&m, 3, 17);
        for sr in 0..4 {
            for dr in 0..4 {
                let s = 3 * 4 + sr;
                let d = 17 * 4 + dr;
                assert_eq!(pm.dist, m.distance_between_ranks(s, d));
                assert_eq!(pm.bw, m.bandwidth_between_ranks(s, d));
            }
        }
    }

    #[test]
    fn same_node_pair_is_intra_node() {
        let m = mira_profile(128, 4).machine;
        let mut cache = NodeMetricCache::new();
        let pm = cache.pair(&m, 5, 5);
        assert_eq!(pm.dist, 0);
        assert_eq!(pm.bw, m.bandwidth_between_ranks(20, 21));
    }

    #[test]
    fn io_metrics_are_none_on_theta() {
        let t = theta_profile(32, 4).machine;
        let mut cache = NodeMetricCache::new();
        let im = cache.io(&t, 0, 0);
        assert_eq!(im.dist, None);
        assert_eq!(im.bw, None);
    }

    #[test]
    fn entries_are_memoized_and_clearable() {
        let m = mira_profile(128, 4).machine;
        let mut cache = NodeMetricCache::new();
        assert!(cache.is_empty());
        cache.pair(&m, 0, 1);
        cache.pair(&m, 0, 1);
        cache.io(&m, 0, 0);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
