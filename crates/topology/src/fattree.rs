//! Two-level fat-tree (leaf/spine Clos) interconnect — a machine the
//! paper never evaluated, included to exercise TAPIOCA's portability
//! claim: the library only consumes the [`crate::TopologyProvider`]
//! interface, so adding a commodity InfiniBand-style cluster is exactly
//! the "quite low" per-architecture effort the paper describes
//! (Sec. IV-C).
//!
//! Structure: `leaves` leaf switches with `nodes_per_leaf` nodes each;
//! every leaf connects to every one of the `spines` spine switches.
//! Minimal routing: same leaf — up/down through the leaf; different
//! leaves — up to a spine (chosen deterministically per (src leaf, dst
//! leaf) pair, an ECMP surrogate) and down. Hop distances are therefore
//! 2 within a leaf and 4 across leaves.

use crate::{Interconnect, Link, LinkClass, LinkIx, NodeId, Route};

/// Shape and capacities of a fat-tree machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FatTreeParams {
    /// Leaf switches.
    pub leaves: usize,
    /// Compute nodes per leaf.
    pub nodes_per_leaf: usize,
    /// Spine switches.
    pub spines: usize,
    /// Node <-> leaf link bandwidth, bytes/s (e.g. EDR ~ 12 GB/s).
    pub edge_bw: f64,
    /// Leaf <-> spine link bandwidth, bytes/s.
    pub uplink_bw: f64,
    /// Per-hop latency, seconds.
    pub hop_latency: f64,
}

/// A two-level fat-tree.
#[derive(Debug, Clone)]
pub struct FatTree {
    p: FatTreeParams,
}

impl FatTree {
    /// Build a fat-tree.
    ///
    /// # Panics
    /// Panics on zero extents or non-positive bandwidths.
    pub fn new(p: FatTreeParams) -> Self {
        assert!(p.leaves >= 1 && p.nodes_per_leaf >= 1 && p.spines >= 1);
        assert!(p.edge_bw > 0.0 && p.uplink_bw > 0.0 && p.hop_latency >= 0.0);
        Self { p }
    }

    /// Machine parameters.
    pub fn params(&self) -> &FatTreeParams {
        &self.p
    }

    /// Leaf switch of a node.
    #[inline]
    pub fn leaf_of(&self, node: NodeId) -> usize {
        node / self.p.nodes_per_leaf
    }

    /// Deterministic spine for traffic between two leaves (ECMP
    /// surrogate: spreads pairs over spines, symmetric in direction).
    pub fn spine_for(&self, leaf_a: usize, leaf_b: usize) -> usize {
        let (lo, hi) = if leaf_a < leaf_b { (leaf_a, leaf_b) } else { (leaf_b, leaf_a) };
        (lo.wrapping_mul(31).wrapping_add(hi.wrapping_mul(17))) % self.p.spines
    }

    // ---- dense link index layout -------------------------------------
    // [0, 2N)                edge links (node*2 + dir; 0 = up, 1 = down)
    // [2N, 2N + 2*L*S)       uplinks (leaf*spines + spine)*2 + dir

    #[inline]
    fn edge_ix(&self, node: NodeId, dir: usize) -> LinkIx {
        node * 2 + dir
    }

    #[inline]
    fn uplink_ix(&self, leaf: usize, spine: usize, dir: usize) -> LinkIx {
        self.num_nodes() * 2 + (leaf * self.p.spines + spine) * 2 + dir
    }
}

impl Interconnect for FatTree {
    fn num_nodes(&self) -> usize {
        self.p.leaves * self.p.nodes_per_leaf
    }

    fn num_links(&self) -> usize {
        self.num_nodes() * 2 + self.p.leaves * self.p.spines * 2
    }

    fn link(&self, ix: LinkIx) -> Link {
        let edges = self.num_nodes() * 2;
        if ix < edges {
            Link { capacity: self.p.edge_bw, class: LinkClass::Injection }
        } else {
            assert!(ix < self.num_links(), "link index {ix} out of range");
            Link { capacity: self.p.uplink_bw, class: LinkClass::IntraGroup }
        }
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        if src == dst {
            return Route::default();
        }
        let (ls, ld) = (self.leaf_of(src), self.leaf_of(dst));
        let mut links = Vec::with_capacity(4);
        links.push(self.edge_ix(src, 0));
        if ls != ld {
            let spine = self.spine_for(ls, ld);
            links.push(self.uplink_ix(ls, spine, 0));
            links.push(self.uplink_ix(ld, spine, 1));
        }
        links.push(self.edge_ix(dst, 1));
        Route { links }
    }

    fn hop_distance(&self, src: NodeId, dst: NodeId) -> u32 {
        if src == dst {
            0
        } else if self.leaf_of(src) == self.leaf_of(dst) {
            2
        } else {
            4
        }
    }

    fn hop_latency(&self) -> f64 {
        self.p.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    fn tiny() -> FatTree {
        FatTree::new(FatTreeParams {
            leaves: 4,
            nodes_per_leaf: 8,
            spines: 2,
            edge_bw: 12.0 * GIB as f64,
            uplink_bw: 24.0 * GIB as f64,
            hop_latency: 1e-6,
        })
    }

    #[test]
    fn shape_counts() {
        let f = tiny();
        assert_eq!(f.num_nodes(), 32);
        assert_eq!(f.num_links(), 64 + 16);
    }

    #[test]
    fn route_hops_match_distance() {
        let f = tiny();
        for s in 0..f.num_nodes() {
            for t in 0..f.num_nodes() {
                assert_eq!(f.route(s, t).hops(), f.hop_distance(s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn same_leaf_stays_local() {
        let f = tiny();
        let r = f.route(0, 7);
        assert_eq!(r.hops(), 2);
        assert!(r.links.iter().all(|&l| f.link(l).class == LinkClass::Injection));
    }

    #[test]
    fn cross_leaf_uses_one_spine() {
        let f = tiny();
        let r = f.route(0, 31);
        assert_eq!(r.hops(), 4);
        let uplinks = r
            .links
            .iter()
            .filter(|&&l| f.link(l).class == LinkClass::IntraGroup)
            .count();
        assert_eq!(uplinks, 2);
    }

    #[test]
    fn ecmp_spreads_leaf_pairs() {
        let f = tiny();
        let spines: std::collections::HashSet<usize> = (0..4)
            .flat_map(|a| (0..4).filter(move |&b| a != b).map(move |b| (a, b)))
            .map(|(a, b)| f.spine_for(a, b))
            .collect();
        assert_eq!(spines.len(), 2, "both spines carry traffic");
        // symmetric
        assert_eq!(f.spine_for(1, 3), f.spine_for(3, 1));
    }

    #[test]
    fn link_indices_in_range_and_distinct_per_route() {
        let f = tiny();
        let r = f.route(3, 29);
        let mut ls = r.links.clone();
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), r.links.len());
        assert!(r.links.iter().all(|&l| l < f.num_links()));
    }
}
