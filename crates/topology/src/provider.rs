//! Rank-level topology interface — the Rust port of the paper's Listing 1.
//!
//! The paper abstracts each machine behind a small set of query functions
//! (`getBandwidth`, `getLatency`, `NetworkDimensions`, `RankToCoordinates`,
//! `IONodesPerFile`, `DistanceToIONode`, `DistanceBetweenRanks`). The
//! aggregator placement cost model consumes *only* this interface, which
//! is what makes TAPIOCA portable across Mira and Theta.
//!
//! One machine-specific wrinkle is modelled faithfully: on Theta the
//! vendor "does not currently provide a way to know how the data is
//! distributed on LNET nodes", so I/O-node distance/bandwidth queries
//! return `None` there and the placement cost `C2` degrades to 0 exactly
//! as in Sec. IV-B of the paper.

use crate::dragonfly::Dragonfly;
use crate::fattree::FatTree;
use crate::torus::Torus;
use crate::{Interconnect, NodeId, Rank};

/// Identifier of an I/O node (GPFS: the Pset index; Lustre: gateway id).
pub type IoNodeId = usize;

/// Rank-level view of a machine, used by aggregator placement.
pub trait TopologyProvider: Send + Sync {
    /// Total number of ranks.
    fn num_ranks(&self) -> usize;

    /// Ranks co-located per compute node (block mapping: ranks
    /// `[n*k, (n+1)*k)` live on node `n`).
    fn ranks_per_node(&self) -> usize;

    /// Compute node hosting `rank`.
    fn node_of_rank(&self, rank: Rank) -> NodeId {
        rank / self.ranks_per_node()
    }

    /// Number of dimensions of the network coordinate space.
    fn network_dimensions(&self) -> usize;

    /// Network coordinates of the node hosting `rank`.
    fn rank_to_coordinates(&self, rank: Rank) -> Vec<usize>;

    /// Interconnect per-hop latency `l`, seconds.
    fn latency(&self) -> f64;

    /// Hop distance `d` between the nodes of two ranks (0 if co-located).
    fn distance_between_ranks(&self, src: Rank, dst: Rank) -> u32;

    /// Bandwidth `B(src -> dst)` between two ranks, bytes/s.
    ///
    /// Co-located ranks communicate at intra-node memory bandwidth.
    fn bandwidth_between_ranks(&self, src: Rank, dst: Rank) -> f64;

    /// I/O nodes serving a file written by the given group of ranks.
    ///
    /// GPFS/Mira: the Pset I/O nodes of the participating nodes (one per
    /// Pset, subfiling writes one file per Pset). Lustre/Theta: a single
    /// opaque gateway id whose placement is unknown.
    fn io_nodes_for(&self, ranks: &[Rank]) -> Vec<IoNodeId>;

    /// Hop distance from `rank` to an I/O node, or `None` when the
    /// machine cannot locate its I/O nodes (Theta).
    fn distance_to_io_node(&self, rank: Rank, io: IoNodeId) -> Option<u32>;

    /// Bandwidth from `rank`'s node towards an I/O node, or `None` when
    /// unknown (Theta). `None` makes the placement cost `C2 = 0`.
    fn bandwidth_to_io_node(&self, rank: Rank, io: IoNodeId) -> Option<f64>;
}

/// The interconnect fabrics this crate models.
#[derive(Debug, Clone)]
pub enum Fabric {
    /// N-dimensional torus (BG/Q).
    Torus(Torus),
    /// Dragonfly (Cray XC40).
    Dragonfly(Dragonfly),
    /// Two-level fat-tree (commodity cluster).
    FatTree(FatTree),
}

impl Fabric {
    /// Borrow the fabric as the graph-level interconnect interface.
    pub fn interconnect(&self) -> &dyn Interconnect {
        match self {
            Fabric::Torus(t) => t,
            Fabric::Dragonfly(d) => d,
            Fabric::FatTree(f) => f,
        }
    }

    /// Torus view, if this is a torus.
    pub fn as_torus(&self) -> Option<&Torus> {
        match self {
            Fabric::Torus(t) => Some(t),
            _ => None,
        }
    }

    /// Dragonfly view, if this is a dragonfly.
    pub fn as_dragonfly(&self) -> Option<&Dragonfly> {
        match self {
            Fabric::Dragonfly(d) => Some(d),
            _ => None,
        }
    }

    /// Fat-tree view, if this is a fat-tree.
    pub fn as_fattree(&self) -> Option<&FatTree> {
        match self {
            Fabric::FatTree(f) => Some(f),
            _ => None,
        }
    }
}

/// A machine: an interconnect fabric plus the rank mapping and intra-node
/// characteristics. Implements [`TopologyProvider`].
#[derive(Debug, Clone)]
pub struct Machine {
    fabric: Fabric,
    ranks_per_node: usize,
    intra_node_bw: f64,
}

impl Machine {
    /// Assemble a machine.
    ///
    /// # Panics
    /// Panics if `ranks_per_node == 0` or `intra_node_bw <= 0`.
    pub fn new(fabric: Fabric, ranks_per_node: usize, intra_node_bw: f64) -> Self {
        assert!(ranks_per_node > 0);
        assert!(intra_node_bw > 0.0);
        Self { fabric, ranks_per_node, intra_node_bw }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Graph-level interconnect interface.
    pub fn interconnect(&self) -> &dyn Interconnect {
        self.fabric.interconnect()
    }

    /// Intra-node memory bandwidth used for co-located ranks, bytes/s.
    pub fn intra_node_bw(&self) -> f64 {
        self.intra_node_bw
    }

    /// Number of compute nodes.
    pub fn num_nodes(&self) -> usize {
        self.interconnect().num_nodes()
    }
}

impl TopologyProvider for Machine {
    fn num_ranks(&self) -> usize {
        self.num_nodes() * self.ranks_per_node
    }

    fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    fn network_dimensions(&self) -> usize {
        match &self.fabric {
            Fabric::Torus(t) => t.space().ndims(),
            // group / row / col / node-in-router
            Fabric::Dragonfly(_) => 4,
            // leaf / node-in-leaf
            Fabric::FatTree(_) => 2,
        }
    }

    fn rank_to_coordinates(&self, rank: Rank) -> Vec<usize> {
        let node = self.node_of_rank(rank);
        match &self.fabric {
            Fabric::Torus(t) => t.space().coords_of(node),
            Fabric::Dragonfly(d) => {
                let router = d.router_of(node);
                let rpg = d.routers_per_group();
                let local = router % rpg;
                let cols = d.params().cols;
                vec![
                    d.group_of(node),
                    local / cols,
                    local % cols,
                    node % d.params().nodes_per_router,
                ]
            }
            Fabric::FatTree(f) => {
                vec![f.leaf_of(node), node % f.params().nodes_per_leaf]
            }
        }
    }

    fn latency(&self) -> f64 {
        self.interconnect().hop_latency()
    }

    fn distance_between_ranks(&self, src: Rank, dst: Rank) -> u32 {
        let (a, b) = (self.node_of_rank(src), self.node_of_rank(dst));
        if a == b {
            0
        } else {
            self.interconnect().hop_distance(a, b)
        }
    }

    fn bandwidth_between_ranks(&self, src: Rank, dst: Rank) -> f64 {
        let (a, b) = (self.node_of_rank(src), self.node_of_rank(dst));
        if a == b {
            self.intra_node_bw
        } else {
            self.interconnect().path_bandwidth(a, b)
        }
    }

    fn io_nodes_for(&self, ranks: &[Rank]) -> Vec<IoNodeId> {
        match &self.fabric {
            Fabric::Torus(t) => {
                let mut psets: Vec<IoNodeId> = ranks
                    .iter()
                    .map(|&r| t.pset_of(self.node_of_rank(r)))
                    .collect();
                psets.sort_unstable();
                psets.dedup();
                psets
            }
            // LNET placement is unknown on Theta: one opaque gateway.
            Fabric::Dragonfly(_) => vec![0],
            // the cluster's storage servers hang off the spines: one
            // logical gateway, uniformly distant from every node.
            Fabric::FatTree(_) => vec![0],
        }
    }

    fn distance_to_io_node(&self, rank: Rank, io: IoNodeId) -> Option<u32> {
        match &self.fabric {
            Fabric::Torus(t) => {
                let node = self.node_of_rank(rank);
                if t.pset_of(node) == io {
                    Some(t.io_distance(node))
                } else {
                    // distance to a foreign Pset's nearest bridge + forward
                    let d = t
                        .bridge_nodes(io)
                        .iter()
                        .map(|&b| t.hop_distance(node, b))
                        .min()
                        .expect("pset has bridge nodes");
                    Some(d + 1)
                }
            }
            Fabric::Dragonfly(_) => None,
            // uniform distance: every node reaches storage through a
            // spine (3 switch hops + the server edge)
            Fabric::FatTree(_) => Some(4),
        }
    }

    fn bandwidth_to_io_node(&self, rank: Rank, io: IoNodeId) -> Option<f64> {
        match &self.fabric {
            Fabric::Torus(t) => {
                let _ = rank;
                let cfg = t.pset_config().expect("torus without Psets has no I/O");
                let _ = io;
                Some(cfg.bridge_link_bw)
            }
            Fabric::Dragonfly(_) => None,
            Fabric::FatTree(f) => Some(f.params().uplink_bw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::PsetConfig;
    use crate::{DragonflyParams, GIB};

    fn mira_like() -> Machine {
        let t = Torus::new(&[4, 4, 4, 4, 2], 1.8 * GIB as f64, 600e-9).with_psets(PsetConfig {
            nodes_per_pset: 128,
            bridge_nodes: 2,
            bridge_link_bw: 1.8 * GIB as f64,
        });
        Machine::new(Fabric::Torus(t), 16, 28.0 * GIB as f64)
    }

    fn theta_like() -> Machine {
        let d = Dragonfly::new(DragonflyParams {
            groups: 3,
            cols: 4,
            rows: 2,
            nodes_per_router: 4,
            injection_bw: 14.0 * GIB as f64,
            electrical_bw: 14.0 * GIB as f64,
            optical_bw: 12.5 * GIB as f64,
            hop_latency: 400e-9,
        });
        Machine::new(Fabric::Dragonfly(d), 16, 90.0 * GIB as f64)
    }

    #[test]
    fn rank_node_mapping_is_block() {
        let m = mira_like();
        assert_eq!(m.num_ranks(), 512 * 16);
        assert_eq!(m.node_of_rank(0), 0);
        assert_eq!(m.node_of_rank(15), 0);
        assert_eq!(m.node_of_rank(16), 1);
        assert_eq!(m.distance_between_ranks(0, 15), 0);
        assert_eq!(m.bandwidth_between_ranks(0, 3), 28.0 * GIB as f64);
    }

    #[test]
    fn torus_io_queries_are_known() {
        let m = mira_like();
        let ranks: Vec<usize> = (0..m.num_ranks()).collect();
        let ions = m.io_nodes_for(&ranks);
        assert_eq!(ions, vec![0, 1, 2, 3]);
        assert!(m.distance_to_io_node(0, 0).is_some());
        assert!(m.bandwidth_to_io_node(0, 0).is_some());
        // ranks on the bridge node are 1 hop from the ION
        assert_eq!(m.distance_to_io_node(0, 0), Some(1));
    }

    #[test]
    fn dragonfly_io_queries_are_unknown() {
        let m = theta_like();
        let ions = m.io_nodes_for(&[0, 1, 2]);
        assert_eq!(ions, vec![0]);
        assert_eq!(m.distance_to_io_node(0, 0), None);
        assert_eq!(m.bandwidth_to_io_node(0, 0), None);
    }

    #[test]
    fn coordinates_have_declared_dimensions() {
        let m = mira_like();
        assert_eq!(m.rank_to_coordinates(17).len(), m.network_dimensions());
        let t = theta_like();
        assert_eq!(t.rank_to_coordinates(100).len(), t.network_dimensions());
    }

    #[test]
    fn cross_node_distance_positive() {
        let m = theta_like();
        assert!(m.distance_between_ranks(0, m.num_ranks() - 1) >= 2);
        assert!(m.bandwidth_between_ranks(0, m.num_ranks() - 1) > 0.0);
    }
}
