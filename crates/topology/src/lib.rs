//! # tapioca-topology
//!
//! Interconnect topology models for the TAPIOCA reproduction.
//!
//! The TAPIOCA paper (Tessier et al., CLUSTER 2017) bases its aggregator
//! placement cost model on a small set of quantities that any machine must
//! expose: per-hop latency `l`, point-to-point hop distance `d(u, v)`,
//! bandwidth `B(i -> j)`, and the location of (and distance to) the I/O
//! nodes serving a file. This crate provides:
//!
//! * [`torus::Torus`] — an N-dimensional torus with dimension-ordered
//!   routing, modelling the IBM Blue Gene/Q 5D torus of *Mira*;
//! * [`dragonfly::Dragonfly`] — a group/router/node dragonfly with minimal
//!   routing and a 2D all-to-all intra-group structure, modelling the Cray
//!   XC40 Aries network of *Theta*;
//! * [`provider::TopologyProvider`] — a Rust port of the paper's Listing 1
//!   ("function prototypes for aggregators placement");
//! * [`profiles`] — machine profiles with the constants the paper states
//!   (link bandwidths, Pset structure, group counts, ranks per node).
//!
//! Everything here is deterministic and allocation-conscious: the link
//! tables are laid out densely so the flow simulator in `tapioca-netsim`
//! can index per-link state with plain vectors.
//!
//! Units: bandwidths are **bytes/second**, latencies **seconds**, sizes
//! **bytes**. Helper constants such as [`GIB`] are provided for clarity.

pub mod cache;
pub mod coords;
pub mod dragonfly;
pub mod fattree;
pub mod profiles;
pub mod provider;
pub mod torus;

pub use cache::{IoMetrics, NodeMetricCache, PairMetrics};
pub use coords::CoordSpace;
pub use dragonfly::{Dragonfly, DragonflyParams};
pub use fattree::{FatTree, FatTreeParams};
pub use profiles::{cluster_profile, mira_profile, theta_profile, MachineProfile, Platform, StorageProfile};
pub use provider::{Fabric, IoNodeId, Machine, TopologyProvider};
pub use torus::{PsetConfig, Torus};

/// One kibibyte in bytes.
pub const KIB: u64 = 1024;
/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * 1024;
/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// Identifier of a compute node inside a topology (dense, `0..num_nodes`).
pub type NodeId = usize;

/// Identifier of an MPI-style rank (dense, `0..num_ranks`).
pub type Rank = usize;

/// Dense index of a directed link inside a topology's link table.
///
/// Link indices are stable for the lifetime of a topology object and cover
/// `0..num_links()`; the flow simulator uses them to index per-link state.
pub type LinkIx = usize;

/// A directed network link with a fixed capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Capacity in bytes per second.
    pub capacity: f64,
    /// Human-readable class of the link, for traces and sanity checks.
    pub class: LinkClass,
}

/// Classes of links found in the modelled machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Torus link along one dimension (BG/Q: 2 GB/s per the paper's Fig. 4).
    Torus,
    /// Node <-> Aries router injection/ejection port.
    Injection,
    /// Electrical intra-group router-router link (XC40: 14 GB/s).
    IntraGroup,
    /// Optical inter-group link (XC40: 12.5 GB/s).
    InterGroup,
    /// Compute node -> I/O node link (BG/Q bridge node: 1.8 GB/s).
    IoForward,
}

/// A network route: the ordered list of directed links a message traverses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Route {
    /// Directed link indices, in traversal order.
    pub links: Vec<LinkIx>,
}

impl Route {
    /// Number of hops (links traversed).
    #[inline]
    pub fn hops(&self) -> u32 {
        self.links.len() as u32
    }
}

/// Core interface every interconnect model implements.
///
/// This is the *graph* view of a machine; the rank-level view used by the
/// placement code is [`provider::TopologyProvider`].
pub trait Interconnect: Send + Sync {
    /// Number of compute nodes.
    fn num_nodes(&self) -> usize;

    /// Total number of directed links (dense index space for `LinkIx`).
    fn num_links(&self) -> usize;

    /// Capacity and class of a link.
    fn link(&self, ix: LinkIx) -> Link;

    /// Deterministic route from `src` to `dst` (empty when `src == dst`).
    fn route(&self, src: NodeId, dst: NodeId) -> Route;

    /// Append the links of `route(src, dst)` to `out`.
    ///
    /// Submission loops that build one route per flow call this with a
    /// reused scratch buffer; implementations override it to write links
    /// directly instead of allocating a fresh [`Route`] per call.
    fn route_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<LinkIx>) {
        out.extend_from_slice(&self.route(src, dst).links);
    }

    /// Hop distance, i.e. `route(src, dst).hops()` but cheaper to compute.
    fn hop_distance(&self, src: NodeId, dst: NodeId) -> u32;

    /// Per-hop latency in seconds.
    fn hop_latency(&self) -> f64;

    /// Minimum link capacity along the route between two nodes, bytes/s.
    ///
    /// This is the `B(i -> j)` of the paper's cost model.
    fn path_bandwidth(&self, src: NodeId, dst: NodeId) -> f64 {
        if src == dst {
            return f64::INFINITY;
        }
        let r = self.route(src, dst);
        r.links
            .iter()
            .map(|&l| self.link(l).capacity)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_hops_counts_links() {
        let r = Route { links: vec![3, 1, 2] };
        assert_eq!(r.hops(), 3);
    }

    #[test]
    fn units_are_consistent() {
        assert_eq!(MIB, 1024 * KIB);
        assert_eq!(GIB, 1024 * MIB);
    }
}
