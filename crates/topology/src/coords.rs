//! Mixed-radix coordinate arithmetic shared by the torus and dragonfly
//! models.
//!
//! A [`CoordSpace`] maps a dense node id to a coordinate vector and back,
//! exactly like the row-major linearization used by the BG/Q control
//! system for its (A, B, C, D, E) torus coordinates.

/// A mixed-radix coordinate space: dimension `i` has extent `dims[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordSpace {
    dims: Vec<usize>,
    /// Row-major strides: `strides[i] = product(dims[i+1..])`.
    strides: Vec<usize>,
    total: usize,
}

impl CoordSpace {
    /// Build a coordinate space. Every extent must be non-zero.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any extent is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "coordinate space needs >= 1 dimension");
        assert!(dims.iter().all(|&d| d > 0), "zero-extent dimension");
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        let total = dims.iter().product();
        Self { dims: dims.to_vec(), strides, total }
    }

    /// Extents per dimension.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of points (product of extents).
    #[inline]
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the space is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Convert a dense id to coordinates, writing into `out`.
    ///
    /// # Panics
    /// Panics if `id >= len()` or `out.len() != ndims()`.
    pub fn id_to_coords(&self, id: usize, out: &mut [usize]) {
        assert!(id < self.total, "id {id} out of range {}", self.total);
        assert_eq!(out.len(), self.dims.len());
        let mut rem = id;
        for (i, &s) in self.strides.iter().enumerate() {
            out[i] = rem / s;
            rem %= s;
        }
    }

    /// Convert a dense id to a freshly allocated coordinate vector.
    pub fn coords_of(&self, id: usize) -> Vec<usize> {
        let mut v = vec![0; self.dims.len()];
        self.id_to_coords(id, &mut v);
        v
    }

    /// Convert coordinates back to the dense id.
    ///
    /// # Panics
    /// Panics if a coordinate is out of range or the arity mismatches.
    pub fn coords_to_id(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len());
        let mut id = 0;
        for ((&c, &d), &s) in coords.iter().zip(&self.dims).zip(&self.strides) {
            assert!(c < d, "coordinate {c} out of extent {d}");
            id += c * s;
        }
        id
    }

    /// Shortest signed displacement from `a` to `b` on the ring of extent
    /// `dims[dim]`: positive means travel in the `+` direction.
    ///
    /// Ties (exactly half-way around an even ring) resolve to `+`.
    pub fn ring_delta(&self, dim: usize, a: usize, b: usize) -> isize {
        let n = self.dims[dim] as isize;
        let (a, b) = (a as isize, b as isize);
        let fwd = (b - a).rem_euclid(n); // steps in + direction
        if fwd <= n - fwd {
            fwd
        } else {
            fwd - n // negative: go the other way
        }
    }

    /// Wraparound (torus) distance along one dimension.
    pub fn ring_distance(&self, dim: usize, a: usize, b: usize) -> usize {
        self.ring_delta(dim, a, b).unsigned_abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        let cs = CoordSpace::new(&[2, 3, 4]);
        assert_eq!(cs.len(), 24);
        for id in 0..cs.len() {
            let c = cs.coords_of(id);
            assert_eq!(cs.coords_to_id(&c), id);
        }
    }

    #[test]
    fn row_major_order() {
        let cs = CoordSpace::new(&[2, 3]);
        assert_eq!(cs.coords_of(0), vec![0, 0]);
        assert_eq!(cs.coords_of(1), vec![0, 1]);
        assert_eq!(cs.coords_of(3), vec![1, 0]);
        assert_eq!(cs.coords_of(5), vec![1, 2]);
    }

    #[test]
    fn ring_distance_wraps() {
        let cs = CoordSpace::new(&[8]);
        assert_eq!(cs.ring_distance(0, 0, 7), 1);
        assert_eq!(cs.ring_distance(0, 1, 5), 4);
        assert_eq!(cs.ring_distance(0, 0, 4), 4); // half-way on even ring
        assert_eq!(cs.ring_delta(0, 0, 4), 4); // tie resolves to +
        assert_eq!(cs.ring_delta(0, 0, 7), -1);
    }

    #[test]
    fn single_point_space() {
        let cs = CoordSpace::new(&[1, 1]);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.coords_of(0), vec![0, 0]);
        assert_eq!(cs.ring_distance(0, 0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_out_of_range_panics() {
        let cs = CoordSpace::new(&[2, 2]);
        cs.coords_of(4);
    }

    #[test]
    #[should_panic(expected = "out of extent")]
    fn coord_out_of_extent_panics() {
        let cs = CoordSpace::new(&[2, 2]);
        cs.coords_to_id(&[0, 2]);
    }

    #[test]
    fn prop_roundtrip_exhaustive_small_spaces() {
        // every mixed-radix space with 1..=3 dims of extent 1..=5:
        // id -> coords -> id is the identity for every id
        for d0 in 1usize..6 {
            for d1 in 0usize..6 {
                for d2 in 0usize..6 {
                    let dims: Vec<usize> = [d0, d1, d2]
                        .into_iter()
                        .take_while(|&d| d > 0)
                        .collect();
                    let cs = CoordSpace::new(&dims);
                    for id in 0..cs.len() {
                        let c = cs.coords_of(id);
                        assert_eq!(cs.coords_to_id(&c), id, "dims {dims:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn prop_ring_delta_reaches_exhaustive() {
        // signed shortest displacement reaches the target and never
        // exceeds half the ring, for every (n, a, b) with n <= 32
        for n in 1usize..33 {
            let cs = CoordSpace::new(&[n]);
            for a in 0..n {
                for b in 0..n {
                    let d = cs.ring_delta(0, a, b);
                    let reached = ((a as isize + d).rem_euclid(n as isize)) as usize;
                    assert_eq!(reached, b, "n={n} a={a} b={b}");
                    assert!(d.unsigned_abs() <= n / 2 + (n % 2), "n={n} a={a} b={b}");
                }
            }
        }
    }
}
