//! # tapioca-tiers
//!
//! The paper's Sec. VI future work, implemented: *"We now plan to extend
//! this library to one-to-many data movements from one level of memory
//! hierarchy to another. For instance, one possibility is a method that
//! efficiently aggregates data from the DRAM on the MCDRAM on KNL in
//! order to move it to burst buffers in an optimized manner."*
//!
//! This crate extends the TAPIOCA model with a **memory/storage tier
//! hierarchy** on the Theta-style KNL nodes of the base library:
//!
//! * [`Tier`] — DRAM (192 GB, ~90 GB/s), MCDRAM (16 GB, ~400 GB/s,
//!   "high-bandwidth memory ... up to 400 GBps" per the paper's Sec.
//!   V-A2), node-local SSD burst buffer (128 GB, NVMe-class), and the
//!   global Lustre parallel filesystem;
//! * [`TieredConfig`] — where aggregation buffers live (DRAM vs MCDRAM)
//!   and where flushes land (directly on the PFS, or on the node-local
//!   burst buffer with an asynchronous drain to the PFS);
//! * [`sim::run_tiered_sim`] — the simulation executor: the same
//!   schedule/placement machinery as `tapioca`, with per-(node, tier)
//!   service stations added to the flow simulator. For burst-buffer
//!   runs it reports both **time-to-safe** (all data on node-local
//!   flash; the application can resume computing) and **time-to-PFS**
//!   (the drain has finished).
//!
//! The headline behaviour, checked by `ablation_burst_buffer` in
//! `tapioca-bench`: burst-buffer staging collapses the *perceived*
//! checkpoint time by an order of magnitude while the end-to-end drain
//! time stays bounded by the same PFS service the direct write pays.

pub mod sim;
pub mod tier;

pub use sim::{run_tiered_sim, TieredReport};
pub use tier::{Destination, Tier, TierSpec, TieredConfig};
