//! Tier definitions and per-node constants for KNL-class nodes.

use tapioca_topology::GIB;

/// A level of the memory/storage hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Node DDR4 (192 GB on Theta's KNL nodes).
    Dram,
    /// On-package high-bandwidth memory (16 GB, "up to 400 GBps").
    Mcdram,
    /// Node-local SSD burst buffer (128 GB on Theta).
    NodeLocalSsd,
    /// The global parallel filesystem (Lustre).
    Pfs,
}

/// Bandwidth/capacity characteristics of a tier on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierSpec {
    /// Which tier this describes.
    pub tier: Tier,
    /// Write bandwidth into the tier, bytes/s per node.
    pub write_bw: f64,
    /// Read bandwidth out of the tier, bytes/s per node.
    pub read_bw: f64,
    /// Capacity per node, bytes (`u64::MAX` for the PFS).
    pub capacity: u64,
    /// Whether the tier is private to a node (true for all but the PFS).
    pub node_local: bool,
}

impl TierSpec {
    /// Theta-like KNL defaults for a tier.
    ///
    /// DRAM and MCDRAM numbers follow the paper's hardware description;
    /// the SSD is modelled as 2017 NVMe-class flash (the paper states
    /// only its 128 GB capacity).
    pub fn knl_default(tier: Tier) -> TierSpec {
        match tier {
            Tier::Dram => TierSpec {
                tier,
                write_bw: 90.0 * GIB as f64,
                read_bw: 90.0 * GIB as f64,
                capacity: 192 * GIB,
                node_local: true,
            },
            Tier::Mcdram => TierSpec {
                tier,
                write_bw: 400.0 * GIB as f64,
                read_bw: 400.0 * GIB as f64,
                capacity: 16 * GIB,
                node_local: true,
            },
            Tier::NodeLocalSsd => TierSpec {
                tier,
                write_bw: 2.0 * GIB as f64,
                read_bw: 4.0 * GIB as f64,
                capacity: 128 * GIB,
                node_local: true,
            },
            Tier::Pfs => TierSpec {
                tier,
                write_bw: f64::INFINITY, // modelled by the Lustre stations
                read_bw: f64::INFINITY,
                capacity: u64::MAX,
                node_local: false,
            },
        }
    }
}

/// Where aggregated data lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// Flush straight to the parallel filesystem (the base library).
    DirectPfs,
    /// Stage on the aggregator's node-local burst buffer, then drain to
    /// the PFS asynchronously (the future-work one-to-many movement).
    BurstBufferThenDrain,
}

/// Tier-aware configuration layered on top of `TapiocaConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredConfig {
    /// Tier hosting the aggregation pipeline buffers.
    pub buffer_tier: Tier,
    /// Flush destination.
    pub destination: Destination,
}

impl Default for TieredConfig {
    fn default() -> Self {
        Self { buffer_tier: Tier::Dram, destination: Destination::DirectPfs }
    }
}

impl TieredConfig {
    /// The paper's motivating configuration: MCDRAM aggregation buffers
    /// drained through the burst buffer.
    pub fn mcdram_burst_buffer() -> Self {
        Self { buffer_tier: Tier::Mcdram, destination: Destination::BurstBufferThenDrain }
    }

    /// Validate tier roles.
    ///
    /// # Panics
    /// Panics if the buffer tier is not node-local addressable memory.
    pub fn validate(&self) {
        assert!(
            matches!(self.buffer_tier, Tier::Dram | Tier::Mcdram),
            "aggregation buffers must live in addressable memory"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_constants_match_paper_hardware() {
        let dram = TierSpec::knl_default(Tier::Dram);
        assert_eq!(dram.capacity, 192 * GIB);
        let mcdram = TierSpec::knl_default(Tier::Mcdram);
        assert_eq!(mcdram.capacity, 16 * GIB);
        assert_eq!(mcdram.write_bw, 400.0 * GIB as f64);
        let ssd = TierSpec::knl_default(Tier::NodeLocalSsd);
        assert_eq!(ssd.capacity, 128 * GIB);
        assert!(ssd.node_local);
        assert!(!TierSpec::knl_default(Tier::Pfs).node_local);
    }

    #[test]
    fn mcdram_is_faster_than_dram() {
        assert!(
            TierSpec::knl_default(Tier::Mcdram).write_bw
                > TierSpec::knl_default(Tier::Dram).write_bw
        );
    }

    #[test]
    #[should_panic(expected = "addressable memory")]
    fn ssd_cannot_host_buffers() {
        TieredConfig { buffer_tier: Tier::NodeLocalSsd, destination: Destination::DirectPfs }
            .validate();
    }

    #[test]
    fn default_matches_base_library() {
        let d = TieredConfig::default();
        assert_eq!(d.buffer_tier, Tier::Dram);
        assert_eq!(d.destination, Destination::DirectPfs);
    }
}
