//! Simulation executor for tier-aware aggregation on Theta-class
//! machines (KNL + Lustre — the hardware the paper's future-work
//! paragraph names).
//!
//! Differences from the base executor in `tapioca::sim_exec`:
//!
//! * every aggregation transfer ends in the aggregator node's **buffer
//!   tier** service station (DRAM or MCDRAM), so memory bandwidth is
//!   part of the pipeline — the MCDRAM/DRAM contrast the paper
//!   motivates;
//! * with [`Destination::BurstBufferThenDrain`], each round's flush is a
//!   node-local SSD write (no network, no Lustre locks), and a **drain**
//!   flow ships the data to the PFS asynchronously, serialized per node
//!   and overlapping with everything else. The report separates
//!   *time-to-safe* (checkpoint durable on flash, application resumes)
//!   from *time-to-PFS* (drain complete).

use std::collections::HashMap;

use tapioca::config::TapiocaConfig;
use tapioca::placement::{elect_partitions, PartitionElection};
use tapioca::schedule::{compute_schedule, ScheduleParams};
use tapioca::sim_exec::CollectiveSpec;
use tapioca_netsim::{FlowId, SimTime, Simulator};
use tapioca_pfs::{AccessMode, FlushReq, LustreModel, LustreTunables};
use tapioca_topology::{LinkIx, MachineProfile, NodeId, Rank, StorageProfile, TopologyProvider};

use crate::tier::{Destination, Tier, TierSpec, TieredConfig};

/// Result of a tiered collective write.
#[derive(Debug, Clone)]
pub struct TieredReport {
    /// When every byte is durable on the staging destination (node-local
    /// flash for burst-buffer runs; the PFS itself for direct runs) —
    /// the time the application is blocked for.
    pub time_to_safe: SimTime,
    /// When every byte has reached the parallel filesystem.
    pub time_to_pfs: SimTime,
    /// Payload bytes.
    pub bytes: f64,
    /// `bytes / time_to_safe` — the bandwidth the application perceives.
    pub perceived_bandwidth: f64,
    /// `bytes / time_to_pfs` — the end-to-end bandwidth.
    pub end_to_end_bandwidth: f64,
}

/// Deterministic LNET gateway placement (same policy as the base
/// executor).
fn lnet_nodes(num_nodes: usize) -> Vec<NodeId> {
    let g = 8usize.min(num_nodes);
    (0..g).map(|i| (i * num_nodes) / g + num_nodes / (2 * g)).collect()
}

/// Run a tier-aware simulated collective write.
///
/// # Panics
/// Panics unless `profile` is a Lustre (dragonfly) machine, the spec is
/// a write, and the tier configuration is valid.
pub fn run_tiered_sim(
    profile: &MachineProfile,
    lustre_tun: &LustreTunables,
    spec: &CollectiveSpec,
    cfg: &TapiocaConfig,
    tiered: &TieredConfig,
) -> TieredReport {
    cfg.validate().expect("invalid TAPIOCA config");
    tiered.validate();
    assert_eq!(spec.mode, AccessMode::Write, "tiered staging is a write-path extension");
    let machine = &profile.machine;
    let net = machine.interconnect();
    let StorageProfile::Lustre { total_osts, ost_write_bw, ost_read_bw, lnet_bw } =
        profile.storage
    else {
        panic!("tiered staging targets the KNL/Lustre platform");
    };

    let mut sim = Simulator::from_interconnect(net);
    sim.set_completion_slack(20e-6);
    let mut lustre = LustreModel::new(
        &mut sim,
        total_osts,
        ost_write_bw,
        ost_read_bw,
        lnet_bw,
        lnet_nodes(net.num_nodes()),
        *lustre_tun,
    );

    let buffer_spec = TierSpec::knl_default(tiered.buffer_tier);
    let ssd = TierSpec::knl_default(Tier::NodeLocalSsd);

    // Lazily-created per-node tier stations.
    let mut buf_links: HashMap<NodeId, usize> = HashMap::new();
    let mut ssd_w_links: HashMap<NodeId, usize> = HashMap::new();
    let mut ssd_r_links: HashMap<NodeId, usize> = HashMap::new();

    // Per-partition structures shared between the scheduling pass and
    // the flow submission pass.
    struct PartPlan {
        agg_node: NodeId,
        /// per round: (source node, bytes)
        transfers: Vec<Vec<(NodeId, f64)>>,
        /// per round: PFS-bound request (drain or direct flush)
        pfs_reqs: Vec<FlushReq>,
        /// per round: payload bytes
        round_bytes: Vec<f64>,
    }

    let mut parts: Vec<PartPlan> = Vec::new();
    let mut total_bytes = 0.0f64;
    for group in &spec.groups {
        assert_eq!(group.ranks.len(), group.decls.len());
        let sched = compute_schedule(&group.decls, ScheduleParams {
            num_aggregators: cfg.num_aggregators,
            buffer_size: cfg.buffer_size,
            align_to_buffer: true,
        });
        total_bytes += sched.total_bytes() as f64;
        let io = machine.io_nodes_for(&group.ranks).first().copied().unwrap_or(0);
        let members_global_all: Vec<Vec<Rank>> = sched
            .partitions
            .iter()
            .map(|part| part.members.iter().map(|&m| group.ranks[m]).collect())
            .collect();
        let elections: Vec<PartitionElection<'_>> = sched
            .partitions
            .iter()
            .zip(&members_global_all)
            .map(|(part, members)| PartitionElection {
                members,
                weights: &part.member_bytes,
                io,
                partition_index: part.index,
            })
            .collect();
        let choices = elect_partitions(machine, &elections, cfg.strategy);
        for (part, (members_global, &choice)) in
            sched.partitions.iter().zip(members_global_all.iter().zip(&choices))
        {
            let agg_node = machine.node_of_rank(members_global[choice]);
            let nrounds = part.rounds.len();
            let mut transfers: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); nrounds];
            for &m in &part.members {
                for c in &sched.chunks_by_rank[m] {
                    if c.partition != part.index {
                        continue;
                    }
                    let node = machine.node_of_rank(group.ranks[m]);
                    let row = &mut transfers[c.round as usize];
                    match row.iter_mut().find(|(n, _)| *n == node) {
                        Some((_, b)) => *b += c.len as f64,
                        None => row.push((node, c.len as f64)),
                    }
                }
            }
            let pfs_reqs: Vec<FlushReq> = part
                .rounds
                .iter()
                .map(|round| {
                    let seg = round.segments.first();
                    FlushReq {
                        src_node: agg_node,
                        file: group.file,
                        offset: seg.map(|s| s.file_offset).unwrap_or(0),
                        len: round.bytes,
                        mode: AccessMode::Write,
                    }
                })
                .collect();
            let round_bytes = part.rounds.iter().map(|r| r.bytes as f64).collect();
            parts.push(PartPlan { agg_node, transfers, pfs_reqs, round_bytes });
        }
    }

    // Lock analysis + wave planning for the PFS-bound flows (waves by
    // round index, as in the base executor).
    let all_reqs: Vec<FlushReq> = parts.iter().flat_map(|p| p.pfs_reqs.iter().copied()).collect();
    lustre.register_operation(&all_reqs);
    let max_rounds = parts.iter().map(|p| p.pfs_reqs.len()).max().unwrap_or(0);
    let mut planned_by_part_round: HashMap<(usize, usize), Vec<tapioca_pfs::PlannedFlow>> =
        HashMap::new();
    for r in 0..max_rounds {
        let mut wave = Vec::new();
        let mut owners = Vec::new();
        for (pi, p) in parts.iter().enumerate() {
            if let Some(req) = p.pfs_reqs.get(r) {
                if req.len > 0 {
                    owners.push(pi);
                    wave.push(*req);
                }
            }
        }
        for pf in lustre.plan_wave(&wave) {
            planned_by_part_round
                .entry((owners[pf.req_index], r))
                .or_default()
                .push(pf);
        }
    }

    // Submit flows. One scratch route buffer serves every submission —
    // the simulator interns routes, so owned Vecs buy nothing.
    let latency = net.hop_latency();
    let mut route_buf: Vec<LinkIx> = Vec::new();
    let mut safe_flows: Vec<FlowId> = Vec::new();
    let mut pfs_flows: Vec<FlowId> = Vec::new();
    for (pi, part) in parts.iter().enumerate() {
        let agg = part.agg_node;
        let buf_link = *buf_links
            .entry(agg)
            .or_insert_with(|| sim.add_virtual_link(buffer_spec.write_bw));

        let mut prev_transfers: Vec<FlowId> = Vec::new();
        let mut stage_hist: Vec<Vec<FlowId>> = Vec::new(); // flush-to-destination per round
        let mut drain_hist: Vec<Vec<FlowId>> = Vec::new();
        for (r, row) in part.transfers.iter().enumerate() {
            // fence + buffer reuse gating (reuse waits on the *staging*
            // flush of r-2: with a burst buffer the app never waits for
            // the drain)
            let mut gate = prev_transfers.clone();
            let reuse = if cfg.pipelining { r.checked_sub(2) } else { r.checked_sub(1) };
            if let Some(fr) = reuse {
                gate.extend_from_slice(&stage_hist[fr]);
            }
            let transfers: Vec<FlowId> = row
                .iter()
                .map(|&(node, bytes)| {
                    route_buf.clear();
                    if node != agg {
                        net.route_into(node, agg, &mut route_buf);
                    }
                    let hops = route_buf.len();
                    route_buf.push(buf_link); // tier ingestion
                    sim.submit_with_deps(0.0, latency * hops as f64, &route_buf, bytes, &gate)
                })
                .collect();

            let bytes = part.round_bytes[r];
            match tiered.destination {
                Destination::DirectPfs => {
                    let mut deps = transfers.clone();
                    if let Some(prev) = stage_hist.last() {
                        deps.extend_from_slice(prev);
                    }
                    let flows: Vec<FlowId> = planned_by_part_round
                        .remove(&(pi, r))
                        .unwrap_or_default()
                        .into_iter()
                        .map(|pf| {
                            route_buf.clear();
                            if let Some(a) = pf.attach_node {
                                if a != agg {
                                    net.route_into(agg, a, &mut route_buf);
                                }
                            }
                            let hops = route_buf.len();
                            route_buf.extend_from_slice(&pf.storage_route);
                            sim.submit_with_deps(
                                0.0,
                                pf.delay + latency * hops as f64,
                                &route_buf,
                                pf.bytes,
                                &deps,
                            )
                        })
                        .collect();
                    safe_flows.extend_from_slice(&flows);
                    pfs_flows.extend_from_slice(&flows);
                    stage_hist.push(flows);
                    drain_hist.push(Vec::new());
                }
                Destination::BurstBufferThenDrain => {
                    let ssd_w = *ssd_w_links
                        .entry(agg)
                        .or_insert_with(|| sim.add_virtual_link(ssd.write_bw));
                    let ssd_r = *ssd_r_links
                        .entry(agg)
                        .or_insert_with(|| sim.add_virtual_link(ssd.read_bw));
                    // stage: node-local flash write
                    let mut deps = transfers.clone();
                    if let Some(prev) = stage_hist.last() {
                        deps.extend_from_slice(prev);
                    }
                    let stage = sim.submit_with_deps(0.0, 0.0, [ssd_w], bytes, &deps);
                    safe_flows.push(stage);
                    // drain: flash -> fabric -> Lustre, serialized per node
                    let mut ddeps = vec![stage];
                    if let Some(prev) = drain_hist.last() {
                        ddeps.extend_from_slice(prev);
                    }
                    let drains: Vec<FlowId> = planned_by_part_round
                        .remove(&(pi, r))
                        .unwrap_or_default()
                        .into_iter()
                        .map(|pf| {
                            route_buf.clear();
                            route_buf.push(ssd_r);
                            if let Some(a) = pf.attach_node {
                                if a != agg {
                                    net.route_into(agg, a, &mut route_buf);
                                }
                            }
                            let hops = route_buf.len() - 1;
                            route_buf.extend_from_slice(&pf.storage_route);
                            sim.submit_with_deps(
                                0.0,
                                pf.delay + latency * hops as f64,
                                &route_buf,
                                pf.bytes,
                                &ddeps,
                            )
                        })
                        .collect();
                    pfs_flows.extend_from_slice(&drains);
                    stage_hist.push(vec![stage]);
                    drain_hist.push(drains);
                }
            }
            prev_transfers = transfers;
        }
    }

    sim.run_to_idle();
    let finish = |flows: &[FlowId]| {
        flows
            .iter()
            .map(|&f| sim.finish_time(f).expect("flow completed"))
            .fold(0.0f64, f64::max)
    };
    let time_to_safe = finish(&safe_flows);
    let time_to_pfs = finish(&pfs_flows).max(time_to_safe);
    TieredReport {
        time_to_safe,
        time_to_pfs,
        bytes: total_bytes,
        perceived_bandwidth: if time_to_safe > 0.0 { total_bytes / time_to_safe } else { 0.0 },
        end_to_end_bandwidth: if time_to_pfs > 0.0 { total_bytes / time_to_pfs } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca::schedule::WriteDecl;
    use tapioca::sim_exec::GroupSpec;
    use tapioca_topology::{theta_profile, MIB};

    fn spec(nranks: usize, per: u64) -> CollectiveSpec {
        CollectiveSpec {
            groups: vec![GroupSpec {
                file: 0,
                ranks: (0..nranks).collect(),
                decls: (0..nranks as u64)
                    .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                    .collect(),
            }],
            mode: AccessMode::Write,
        }
    }

    fn base_cfg() -> TapiocaConfig {
        TapiocaConfig { num_aggregators: 16, buffer_size: 8 * MIB, ..Default::default() }
    }

    #[test]
    fn direct_pfs_matches_base_semantics() {
        let profile = theta_profile(64, 4);
        let rep = run_tiered_sim(
            &profile,
            &LustreTunables::theta_optimized(),
            &spec(256, MIB),
            &base_cfg(),
            &TieredConfig::default(),
        );
        assert!(rep.time_to_safe > 0.0);
        assert_eq!(rep.time_to_safe, rep.time_to_pfs, "direct writes are safe when on the PFS");
        assert_eq!(rep.bytes, 256.0 * MIB as f64);
    }

    #[test]
    fn burst_buffer_collapses_perceived_time() {
        let profile = theta_profile(64, 4);
        let tun = LustreTunables::theta_optimized();
        let s = spec(256, 4 * MIB);
        let direct = run_tiered_sim(&profile, &tun, &s, &base_cfg(), &TieredConfig::default());
        let bb = run_tiered_sim(&profile, &tun, &s, &base_cfg(), &TieredConfig {
            buffer_tier: Tier::Dram,
            destination: Destination::BurstBufferThenDrain,
        });
        assert!(
            bb.time_to_safe < 0.5 * direct.time_to_safe,
            "staging on flash must beat the PFS round trip: {} vs {}",
            bb.time_to_safe,
            direct.time_to_safe
        );
        // the drain still pays the same PFS; end-to-end within 2.5x of direct
        assert!(bb.time_to_pfs >= bb.time_to_safe);
        assert!(bb.time_to_pfs < 2.5 * direct.time_to_pfs);
    }

    #[test]
    fn mcdram_buffers_never_slower_than_dram() {
        let profile = theta_profile(32, 4);
        let tun = LustreTunables::theta_optimized();
        let s = spec(128, 2 * MIB);
        let mk = |tier| {
            run_tiered_sim(&profile, &tun, &s, &base_cfg(), &TieredConfig {
                buffer_tier: tier,
                destination: Destination::BurstBufferThenDrain,
            })
        };
        let dram = mk(Tier::Dram);
        let mcdram = mk(Tier::Mcdram);
        assert!(mcdram.time_to_safe <= dram.time_to_safe * 1.0001);
    }

    #[test]
    fn drains_overlap_with_later_rounds() {
        // With several rounds, time_to_pfs must be far less than
        // (stage time + full drain time) run back-to-back.
        let profile = theta_profile(32, 4);
        let tun = LustreTunables::theta_optimized();
        let s = spec(128, 4 * MIB);
        let bb = run_tiered_sim(&profile, &tun, &s, &base_cfg(), &TieredConfig {
            buffer_tier: Tier::Dram,
            destination: Destination::BurstBufferThenDrain,
        });
        let direct = run_tiered_sim(&profile, &tun, &s, &base_cfg(), &TieredConfig::default());
        assert!(
            bb.time_to_pfs < bb.time_to_safe + direct.time_to_pfs,
            "drain must overlap with staging ({} vs {} + {})",
            bb.time_to_pfs,
            bb.time_to_safe,
            direct.time_to_pfs
        );
    }

    #[test]
    #[should_panic(expected = "KNL/Lustre")]
    fn rejects_gpfs_machines() {
        let profile = tapioca_topology::mira_profile(128, 4);
        run_tiered_sim(
            &profile,
            &LustreTunables::theta_optimized(),
            &spec(64, MIB),
            &base_cfg(),
            &TieredConfig::default(),
        );
    }
}
