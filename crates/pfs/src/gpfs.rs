//! GPFS storage model behind BG/Q I/O nodes (Mira).
//!
//! Path of a write: compute node --torus--> bridge node --1.8 GB/s
//! forward link--> I/O node --4 GB/s--> GPFS servers. The torus leg
//! (including the bridge forward link) is produced by
//! `Torus::io_route` in the topology crate; this model contributes the
//! ION uplink and the effective GPFS service station, plus the token
//! (lock) cost model.
//!
//! ## Penalty model
//!
//! * **Block token sharing** — GPFS hands out byte-range tokens at block
//!   granularity (8 MB). `w` concurrent writers into one block pay
//!   `1 + ALPHA_BLOCK_SHARE * (w-1)` per byte in that block.
//! * **Token revocation chain** — under the default exclusive mode each
//!   flush's token acquisition serializes behind the other writers of
//!   the same file: delay `GPFS_LOCK_LATENCY * writers(file)`. With the
//!   optimized environment (shared file locks) a single acquisition is
//!   paid. This reproduces Fig. 7: ~3x write gain from tuning, reads
//!   almost unchanged (~13%).
//!
//! Reads pay no token penalties.

use std::collections::HashMap;

use tapioca_netsim::Simulator;
use tapioca_topology::LinkIx;

use crate::layout::split_striped;
use crate::tunables::{GpfsTunables, LockMode};
use crate::{AccessMode, FlushReq, PlannedFlow};

/// Token serialization factor per extra writer sharing a GPFS block.
pub const ALPHA_BLOCK_SHARE: f64 = 0.5;
/// Partial-block coverage penalty, like Lustre's partial-stripe term but
/// milder (GPFS splits byte-range tokens below block granularity after
/// one negotiation): `GAMMA_PARTIAL_BLOCK * (block/len - 1)^0.7`.
pub const GAMMA_PARTIAL_BLOCK: f64 = 0.35;
/// GPFS token acquisition latency, seconds.
pub const GPFS_LOCK_LATENCY: f64 = 1.0e-3;
/// Fixed latency of a read RPC, seconds.
pub const GPFS_READ_RPC: f64 = 0.2e-3;
/// Cross-writer shared-block penalty: a block written by two distinct
/// sources anywhere in the operation keeps its byte-range token bouncing
/// between them. Milder than Lustre's (GPFS splits tokens sub-block
/// after one negotiation).
pub const BETA_CROSS_BLOCK: f64 = 1.0;
/// Upper bound on the combined per-piece penalty factor (see the Lustre
/// model's `PENALTY_CAP`).
pub const PENALTY_CAP_BLOCK: f64 = 5.0;
/// Shared-file scaling loss: a single file written concurrently from
/// `n` Psets pays `SHARED_FILE_SCALING * (n - 1)` per byte — the GPFS
/// token manager and block-allocation maps serialize across I/O nodes.
/// This is what the paper's recommended subfiling (one file per Pset)
/// avoids.
pub const SHARED_FILE_SCALING: f64 = 0.12;
/// Extra per-byte cost of writing under the default exclusive token
/// regime: every block write first revokes the token from its previous
/// owner, interleaving ~1 ms round trips with data. Calibrated to the
/// paper's Fig. 7 (~3x write gain from enabling shared file locks,
/// reads almost unchanged).
pub const LOCK_EXCLUSIVE_EXTRA: f64 = 2.0;

/// GPFS storage model: one ION uplink + service station per Pset.
#[derive(Debug)]
pub struct GpfsModel {
    tun: GpfsTunables,
    /// Per-Pset ION uplink towards the SAN (4 GB/s).
    ion_link: Vec<LinkIx>,
    /// Per-Pset effective GPFS service station (2.8 GB/s).
    ion_service: Vec<LinkIx>,
    /// Blocks written by more than one distinct source over the whole
    /// operation (see [`BETA_CROSS_BLOCK`]).
    cross_writers: std::collections::HashSet<(usize, u64)>,
}

impl GpfsModel {
    /// Install the model's virtual links for `n_psets` Psets into `sim`.
    pub fn new(
        sim: &mut Simulator,
        n_psets: usize,
        ion_link_bw: f64,
        ion_service_bw: f64,
        tun: GpfsTunables,
    ) -> Self {
        assert!(n_psets > 0);
        let ion_link = (0..n_psets).map(|_| sim.add_virtual_link(ion_link_bw)).collect();
        let ion_service = (0..n_psets).map(|_| sim.add_virtual_link(ion_service_bw)).collect();
        Self { tun, ion_link, ion_service, cross_writers: std::collections::HashSet::new() }
    }

    /// Register the whole operation's flushes before planning waves
    /// (detects blocks shared by distinct writers across waves).
    pub fn register_operation(&mut self, reqs: &[FlushReq]) {
        let bs = self.tun.block_size;
        let mut first_writer: HashMap<(usize, u64), usize> = HashMap::new();
        for r in reqs {
            if r.mode != AccessMode::Write {
                continue;
            }
            for p in split_striped(r.offset, r.len, bs, 1) {
                match first_writer.entry((r.file, p.stripe)) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != r.src_node {
                            self.cross_writers.insert((r.file, p.stripe));
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(r.src_node);
                    }
                }
            }
        }
    }

    /// The tunables this model was built with.
    pub fn tunables(&self) -> &GpfsTunables {
        &self.tun
    }

    /// Number of Psets.
    pub fn n_psets(&self) -> usize {
        self.ion_link.len()
    }

    /// Plan the simulator flows of one I/O wave. `pset_of` maps a
    /// request's source node to its Pset (the caller owns the topology).
    ///
    /// With subfiling each Pset writes its own file, so `FlushReq::file`
    /// is expected to equal the Pset id; without subfiling all requests
    /// share file 0 and token conflicts span Psets.
    pub fn plan_wave(
        &self,
        reqs: &[FlushReq],
        pset_of: impl Fn(tapioca_topology::NodeId) -> usize,
    ) -> Vec<PlannedFlow> {
        let bs = self.tun.block_size;

        // writers per (file, block), per file, and Psets per file
        let mut block_writers: HashMap<(usize, u64), u32> = HashMap::new();
        let mut file_writers: HashMap<usize, u32> = HashMap::new();
        let mut file_psets: HashMap<usize, std::collections::HashSet<usize>> = HashMap::new();
        for r in reqs {
            if r.mode != AccessMode::Write {
                continue;
            }
            *file_writers.entry(r.file).or_insert(0) += 1;
            file_psets.entry(r.file).or_default().insert(pset_of(r.src_node));
            for p in split_striped(r.offset, r.len, bs, 1) {
                *block_writers.entry((r.file, p.stripe)).or_insert(0) += 1;
            }
        }

        let mut out = Vec::with_capacity(reqs.len());
        for (ri, r) in reqs.iter().enumerate() {
            let pset = pset_of(r.src_node);
            assert!(pset < self.n_psets(), "pset {pset} out of range");
            let bytes = match r.mode {
                AccessMode::Write => split_striped(r.offset, r.len, bs, 1)
                    .iter()
                    .map(|p| {
                        let w = block_writers[&(r.file, p.stripe)];
                        let mut factor =
                            1.0 + ALPHA_BLOCK_SHARE * (w.saturating_sub(1)) as f64;
                        if p.len < bs {
                            factor += GAMMA_PARTIAL_BLOCK
                                * ((bs as f64 / p.len as f64) - 1.0).powf(0.7);
                        }
                        if self.cross_writers.contains(&(r.file, p.stripe)) {
                            factor += BETA_CROSS_BLOCK;
                        }
                        if self.tun.lock_mode == LockMode::Exclusive {
                            factor += LOCK_EXCLUSIVE_EXTRA;
                        }
                        let span = file_psets[&r.file].len().saturating_sub(1) as f64;
                        factor += SHARED_FILE_SCALING * span;
                        p.len as f64 * factor.min(PENALTY_CAP_BLOCK + LOCK_EXCLUSIVE_EXTRA)
                    })
                    .sum(),
                AccessMode::Read => r.len as f64,
            };
            let delay = match (r.mode, self.tun.lock_mode) {
                (AccessMode::Read, _) => GPFS_READ_RPC,
                (AccessMode::Write, LockMode::Shared) => GPFS_LOCK_LATENCY,
                (AccessMode::Write, LockMode::Exclusive) => {
                    GPFS_LOCK_LATENCY * file_writers[&r.file] as f64
                }
            };
            out.push(PlannedFlow {
                req_index: ri,
                src_node: r.src_node,
                attach_node: None, // fabric leg = torus io_route (ends at the ION)
                storage_route: vec![self.ion_link[pset], self.ion_service[pset]],
                bytes,
                delay,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca_topology::MIB;

    fn model(tun: GpfsTunables) -> (Simulator, GpfsModel) {
        let mut sim = Simulator::with_capacities(vec![]);
        let m = GpfsModel::new(&mut sim, 4, 4.0e9, 2.8e9, tun);
        (sim, m)
    }

    fn wreq(src: usize, file: usize, offset: u64, len: u64) -> FlushReq {
        FlushReq { src_node: src, file, offset, len, mode: AccessMode::Write }
    }

    #[test]
    fn block_aligned_writers_pay_no_inflation() {
        let (_s, m) = model(GpfsTunables::mira_optimized());
        // two aggregators in pset 0, distinct 16 MB extents (2 blocks each)
        let reqs = vec![wreq(0, 0, 0, 16 * MIB), wreq(1, 0, 16 * MIB, 16 * MIB)];
        let flows = m.plan_wave(&reqs, |n| n / 128);
        assert_eq!(flows.len(), 2);
        for f in &flows {
            assert_eq!(f.bytes, (16 * MIB) as f64);
            assert_eq!(f.delay, GPFS_LOCK_LATENCY);
        }
    }

    #[test]
    fn block_sharing_inflates() {
        let (_s, m) = model(GpfsTunables::mira_optimized());
        // two writers inside the same 8 MB block: token sharing (+0.5)
        // plus the partial-block coverage term (+0.35 * 1^0.7)
        let reqs = vec![wreq(0, 0, 0, 4 * MIB), wreq(1, 0, 4 * MIB, 4 * MIB)];
        let flows = m.plan_wave(&reqs, |n| n / 128);
        for f in &flows {
            let expect = (4 * MIB) as f64 * (1.0 + 0.5 + 0.35);
            assert!((f.bytes - expect).abs() < 1.0, "got {} want {expect}", f.bytes);
        }
    }

    #[test]
    fn exclusive_mode_serializes_tokens() {
        let (_s, m) = model(GpfsTunables::mira_default());
        let reqs: Vec<_> = (0..16).map(|i| wreq(i, 0, i as u64 * 16 * MIB, 16 * MIB)).collect();
        let flows = m.plan_wave(&reqs, |n| n / 128);
        for f in &flows {
            assert!((f.delay - 16.0 * GPFS_LOCK_LATENCY).abs() < 1e-12);
        }
    }

    #[test]
    fn subfiling_separates_token_domains() {
        let (_s, m) = model(GpfsTunables::mira_default());
        // one writer per pset file: each file has 1 writer -> minimal delay
        let reqs = vec![wreq(0, 0, 0, 16 * MIB), wreq(128, 1, 0, 16 * MIB)];
        let flows = m.plan_wave(&reqs, |n| n / 128);
        for f in &flows {
            assert!((f.delay - GPFS_LOCK_LATENCY).abs() < 1e-12);
        }
        // and they target their own Pset's ION
        assert_ne!(flows[0].storage_route, flows[1].storage_route);
    }

    #[test]
    fn reads_bypass_tokens() {
        let (_s, m) = model(GpfsTunables::mira_default());
        let reqs = vec![FlushReq {
            src_node: 0,
            file: 0,
            offset: 0,
            len: 4 * MIB,
            mode: AccessMode::Read,
        }];
        let flows = m.plan_wave(&reqs, |n| n / 128);
        assert_eq!(flows[0].bytes, (4 * MIB) as f64);
        assert_eq!(flows[0].delay, GPFS_READ_RPC);
    }

    #[test]
    fn shared_file_across_psets_pays_scaling() {
        let (_s, m) = model(GpfsTunables::mira_optimized());
        // four writers of file 0 from four different Psets
        let reqs: Vec<_> = (0..4)
            .map(|p| wreq(p * 128, 0, p as u64 * 16 * MIB, 16 * MIB))
            .collect();
        let shared = m.plan_wave(&reqs, |n| n / 128);
        // same writers, one file per Pset
        let reqs: Vec<_> = (0..4)
            .map(|p| wreq(p * 128, p, 0, 16 * MIB))
            .collect();
        let subfiled = m.plan_wave(&reqs, |n| n / 128);
        let b_shared: f64 = shared.iter().map(|f| f.bytes).sum();
        let b_sub: f64 = subfiled.iter().map(|f| f.bytes).sum();
        assert!(b_shared > b_sub * 1.3, "shared {b_shared} vs subfiled {b_sub}");
    }

    #[test]
    fn routes_have_uplink_then_service() {
        let (_s, m) = model(GpfsTunables::mira_optimized());
        let flows = m.plan_wave(&[wreq(300, 2, 0, MIB)], |n| n / 128);
        assert_eq!(flows[0].storage_route.len(), 2);
        assert!(flows[0].attach_node.is_none());
    }
}
