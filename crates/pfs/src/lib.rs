//! # tapioca-pfs
//!
//! Parallel filesystem models for the TAPIOCA reproduction: **GPFS**
//! behind BG/Q I/O nodes (Mira) and **Lustre** behind LNET service nodes
//! (Theta).
//!
//! The role of this crate is to turn an *I/O-phase flush* — "aggregator
//! on node `n` writes `len` bytes at `offset` of file `f`" — into
//! simulator work: which storage service links the bytes traverse, how
//! many effective bytes they cost (lock/RMW inflation), and what fixed
//! lock-acquisition delay applies. The models are deliberately explicit
//! about their penalty constants; each constant is documented with the
//! paper observation it is calibrated against (see `DESIGN.md`).
//!
//! Key reproduced phenomena:
//!
//! * **Lustre striping** — a file is striped round-robin over
//!   `stripe_count` OSTs in `stripe_size` chunks; an unaligned flush
//!   splits into pieces and concurrent writers *sharing a stripe*
//!   serialize on its extent lock. This is what makes the paper's
//!   "aggregation buffer : stripe size" ratio matter (Table I: 1:1 best).
//! * **Lustre defaults vs tuned** (Fig. 8) — stripe_count 1 / 1 MB
//!   stripes by default versus 48 OSTs / 8 MB when tuned.
//! * **GPFS block tokens** (Fig. 7) — under the default exclusive token
//!   mode every writer of a shared file pays a token-revocation chain
//!   proportional to the number of concurrent writers; the "optimized"
//!   runs share file locks.
//! * **Pset I/O forwarding** (BG/Q) — each Pset of 128 nodes funnels
//!   through 2 bridge links into one I/O node with an effective GPFS
//!   service bandwidth; subfiling writes one file per Pset.

pub mod gpfs;
pub mod layout;
pub mod lustre;
pub mod tunables;

pub use gpfs::GpfsModel;
pub use layout::{split_striped, StripePiece};
pub use lustre::LustreModel;
pub use tunables::{GpfsTunables, LockMode, LustreTunables};

use tapioca_topology::NodeId;

/// Direction of an I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Data flows from storage to compute.
    Read,
    /// Data flows from compute to storage.
    Write,
}

/// Identifier of a file. Subfiling gives each Pset its own id.
pub type FileId = usize;

/// One flush request issued by an aggregator during an I/O wave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushReq {
    /// Compute node issuing the flush.
    pub src_node: NodeId,
    /// Target file.
    pub file: FileId,
    /// Byte offset inside the file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Read or write.
    pub mode: AccessMode,
}

/// One simulator flow planned for a flush (a flush may fan out into
/// several planned flows when it spans multiple OSTs).
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedFlow {
    /// Index of the originating request in the wave slice.
    pub req_index: usize,
    /// Compute node the bytes leave from (or arrive at, for reads).
    pub src_node: NodeId,
    /// Fabric node where the storage path begins (LNET node on Theta;
    /// `None` on BG/Q where the path leaves via the Pset bridge links,
    /// which the topology's `io_route` already describes).
    pub attach_node: Option<NodeId>,
    /// Storage-side virtual links (service stations) the flow traverses,
    /// to be appended to the fabric route.
    pub storage_route: Vec<usize>,
    /// Effective bytes charged (payload + lock/RMW inflation).
    pub bytes: f64,
    /// Fixed delay before the flow starts (lock acquisition), seconds.
    pub delay: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushreq_is_copy() {
        let r = FlushReq {
            src_node: 1,
            file: 0,
            offset: 0,
            len: 8,
            mode: AccessMode::Write,
        };
        let r2 = r;
        assert_eq!(r, r2);
    }
}
