//! Lustre storage model (Theta).
//!
//! Path of a write: compute node --fabric--> LNET service node
//! --(LNET forwarding stage)--> OSS/OST service station. The fabric leg
//! is routed by the caller (it owns the topology); this model contributes
//! the LNET attachment node, the storage-side virtual links, and the
//! effective byte/delay cost of each flush.
//!
//! ## Penalty model (calibration in `DESIGN.md` and Table I)
//!
//! * **Stripe sharing** — when `w` distinct flushes write into the same
//!   stripe during one wave, each pays `1 + ALPHA_STRIPE_SHARE * (w-1)`
//!   per byte in that stripe (extent-lock ping-pong serializes them and
//!   forces partial-stripe RMW). Calibrated against Table I's 1:4 and
//!   1:8 ratios (2.45x and 4.4x worse than 1:1).
//! * **Stream interleave** — `s` distinct flushes hitting the same OST
//!   in a wave (on different stripes) each pay
//!   `1 + ALPHA_STREAM_INTERLEAVE * (s-1)`: seek/commit interleaving at
//!   the object store. Calibrated against Table I's 2:1 and 4:1 entries
//!   (~1.4x worse than 1:1 despite touching more OSTs).
//! * **Lock acquisition** — exclusive mode pays a revocation chain
//!   proportional to the number of concurrent writers of the file;
//!   shared mode pays one acquisition.
//!
//! Reads take none of the write penalties (read extent locks are
//! compatible); they only fair-share the OST read stations, which is why
//! tuned Theta reads reach ~3.6x the write ceiling as in Fig. 8.

use std::collections::HashMap;

use tapioca_netsim::Simulator;
use tapioca_topology::{LinkIx, NodeId};

use crate::layout::{hashed_target, split_striped};
use crate::tunables::{LockMode, LustreTunables};
use crate::{AccessMode, FlushReq, PlannedFlow};

/// Extent-lock serialization factor per extra writer sharing a stripe
/// within one wave (Table I's 1:2 case: two adjacent co-writers).
pub const ALPHA_STRIPE_SHARE: f64 = 0.5;
/// Partial-stripe coverage penalty: a piece covering `len < stripe`
/// bytes pays `GAMMA_PARTIAL * (stripe/len - 1)^0.7` extra — lock
/// splitting plus sub-stripe commit overhead. Fitted to Table I
/// (1:2 -> ~1.7x, 1:4 -> ~2.6x, 1:8 -> ~3.9x vs the paper's
/// 1.73x / 2.45x / 4.36x).
pub const GAMMA_PARTIAL: f64 = 0.73;
/// Exponent of the coverage penalty (sub-linear growth).
pub const GAMMA_EXP: f64 = 0.7;
/// Seek/interleave factor: `1 + 0.3 * sqrt(streams - 1)` per OST when
/// several flush streams land on one OST in a wave (Table I's 2:1 and
/// 4:1 columns).
pub const ALPHA_STREAM_INTERLEAVE: f64 = 0.3;
/// Multi-OST dispatch penalty: a single client flush spanning `n` OSTs
/// pays `1 + 0.4 * sqrt(n - 1)` per byte — the client-side RPC pipeline
/// (`max_rpcs_in_flight`, kernel copies) does not scale with the number
/// of targets, so spreading one buffer over several OSTs buys little
/// parallelism while paying extra locks and seeks. Calibrated against
/// Table I's 2:1 and 4:1 rows dropping below 1:1.
pub const ALPHA_MULTI_OST_DISPATCH: f64 = 0.4;
/// Lustre lock acquisition latency (one LDLM round trip), seconds.
pub const LUSTRE_LOCK_LATENCY: f64 = 0.5e-3;
/// Fixed RPC latency of a read request, seconds.
pub const LUSTRE_READ_RPC: f64 = 0.1e-3;
/// Cross-aggregator shared-stripe penalty: when two *different* writers
/// touch one stripe anywhere in the operation (ROMIO's unaligned file
/// domains guarantee it at every domain boundary), their extent locks
/// ping-pong for the whole lifetime of the stripe. Additive per byte in
/// such stripes. This is the classic Lustre lock-contention effect the
/// paper's buffer==stripe alignment avoids by construction.
pub const BETA_CROSS_WRITER: f64 = 3.0;
/// Upper bound on the combined per-piece penalty factor. Very small
/// scattered segments (per-rank variable slivers in a plain collective
/// SoA write) would otherwise blow past anything physical — in reality
/// ROMIO's data sieving and the client page cache put a floor under
/// per-segment efficiency.
pub const PENALTY_CAP: f64 = 6.0;
/// Extra per-byte cost of writing under the default exclusive lock
/// regime (see the GPFS model's `LOCK_EXCLUSIVE_EXTRA`).
pub const LOCK_EXCLUSIVE_EXTRA: f64 = 2.0;

/// Lustre storage model: OST service stations plus the LNET stage.
#[derive(Debug)]
pub struct LustreModel {
    tun: LustreTunables,
    /// Per-OST write service links.
    ost_write: Vec<LinkIx>,
    /// Per-OST read service links.
    ost_read: Vec<LinkIx>,
    /// Per-LNET-gateway forwarding links.
    lnet: Vec<LinkIx>,
    /// Fabric nodes the LNET gateways occupy.
    lnet_nodes: Vec<NodeId>,
    /// Stripes written by more than one distinct source over the whole
    /// operation (see [`BETA_CROSS_WRITER`]); filled by
    /// [`LustreModel::register_operation`].
    cross_writers: std::collections::HashSet<(usize, u64)>,
}

impl LustreModel {
    /// Install the model's virtual links into `sim`.
    ///
    /// * `total_osts` — OSTs on the machine (56 on Theta);
    /// * `ost_write_bw`/`ost_read_bw` — per-OST service bandwidth anchors;
    /// * `lnet_bw` — aggregate LNET forwarding bandwidth, split evenly
    ///   over the gateways;
    /// * `lnet_nodes` — fabric nodes hosting the LNET gateways (their
    ///   placement is *not* exposed to placement cost queries, matching
    ///   the paper's "C2 = 0 on Theta"; the simulator still routes
    ///   through them, so a placement that happens to sit near one is
    ///   rewarded — exactly the information asymmetry the paper
    ///   describes).
    ///
    /// # Panics
    /// Panics if the tunables stripe over more OSTs than exist, or if
    /// `lnet_nodes` is empty.
    pub fn new(
        sim: &mut Simulator,
        total_osts: usize,
        ost_write_bw: f64,
        ost_read_bw: f64,
        lnet_bw: f64,
        lnet_nodes: Vec<NodeId>,
        tun: LustreTunables,
    ) -> Self {
        assert!(tun.stripe_count <= total_osts,
            "stripe_count {} exceeds machine OSTs {}", tun.stripe_count, total_osts);
        assert!(!lnet_nodes.is_empty(), "need at least one LNET gateway");
        let ost_write = (0..total_osts).map(|_| sim.add_virtual_link(ost_write_bw)).collect();
        let ost_read = (0..total_osts).map(|_| sim.add_virtual_link(ost_read_bw)).collect();
        let per_gw = lnet_bw / lnet_nodes.len() as f64;
        let lnet = (0..lnet_nodes.len()).map(|_| sim.add_virtual_link(per_gw)).collect();
        Self {
            tun,
            ost_write,
            ost_read,
            lnet,
            lnet_nodes,
            cross_writers: std::collections::HashSet::new(),
        }
    }

    /// Register the whole operation's flushes before planning waves:
    /// detects stripes shared by distinct writers across *all* waves
    /// (per-wave planning cannot see a boundary stripe written by
    /// aggregator `p` in its last round and `p+1` in its first).
    pub fn register_operation(&mut self, reqs: &[FlushReq]) {
        let ss = self.tun.stripe_size;
        let mut first_writer: HashMap<(usize, u64), NodeId> = HashMap::new();
        for r in reqs {
            if r.mode != AccessMode::Write {
                continue;
            }
            for p in split_striped(r.offset, r.len, ss, self.tun.stripe_count) {
                match first_writer.entry((r.file, p.stripe)) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != r.src_node {
                            self.cross_writers.insert((r.file, p.stripe));
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(r.src_node);
                    }
                }
            }
        }
    }

    /// The tunables this model was built with.
    pub fn tunables(&self) -> &LustreTunables {
        &self.tun
    }

    /// LNET gateway index serving an OST.
    fn gateway_of(&self, ost: usize) -> usize {
        ost % self.lnet_nodes.len()
    }

    /// Fabric node of the LNET gateway serving an OST.
    pub fn lnet_node_of(&self, ost: usize) -> NodeId {
        self.lnet_nodes[self.gateway_of(ost)]
    }

    /// Plan the simulator flows of one I/O wave (one fence window's worth
    /// of concurrent flushes). Sharing penalties are computed across the
    /// whole wave, which is why planning is batched.
    pub fn plan_wave(&self, reqs: &[FlushReq]) -> Vec<PlannedFlow> {
        let ss = self.tun.stripe_size;
        let sc = self.tun.stripe_count;

        // Pass 1: writers per (file, stripe) and write streams per (file-agnostic) OST.
        let mut stripe_writers: HashMap<(usize, u64), u32> = HashMap::new();
        let mut ost_streams: HashMap<usize, u32> = HashMap::new();
        let mut file_writers: HashMap<usize, u32> = HashMap::new();
        for r in reqs {
            if r.mode != AccessMode::Write {
                continue;
            }
            *file_writers.entry(r.file).or_insert(0) += 1;
            let pieces = split_striped(r.offset, r.len, ss, sc);
            let mut touched: Vec<usize> = Vec::new();
            for p in &pieces {
                *stripe_writers.entry((r.file, p.stripe)).or_insert(0) += 1;
                let t = hashed_target(r.file, p.stripe, sc);
                if !touched.contains(&t) {
                    touched.push(t);
                }
            }
            for t in touched {
                *ost_streams.entry(t).or_insert(0) += 1;
            }
        }

        // Pass 2: emit one planned flow per (request, OST).
        let mut out = Vec::new();
        for (ri, r) in reqs.iter().enumerate() {
            let pieces = split_striped(r.offset, r.len, ss, sc);
            // group piece bytes by OST, applying per-piece penalties
            let mut per_ost: HashMap<usize, f64> = HashMap::new();
            for p in &pieces {
                let eff = match r.mode {
                    AccessMode::Write => {
                        let w = stripe_writers[&(r.file, p.stripe)];
                        let mut factor =
                            1.0 + ALPHA_STRIPE_SHARE * (w.saturating_sub(1)) as f64;
                        if p.len < ss {
                            // partial stripe: lock splitting + sub-stripe commits
                            factor +=
                                GAMMA_PARTIAL * ((ss as f64 / p.len as f64) - 1.0).powf(GAMMA_EXP);
                        }
                        if self.cross_writers.contains(&(r.file, p.stripe)) {
                            factor += BETA_CROSS_WRITER;
                        }
                        if self.tun.lock_mode == LockMode::Exclusive {
                            factor += LOCK_EXCLUSIVE_EXTRA;
                        }
                        p.len as f64 * factor.min(PENALTY_CAP + LOCK_EXCLUSIVE_EXTRA)
                    }
                    AccessMode::Read => p.len as f64,
                };
                *per_ost.entry(hashed_target(r.file, p.stripe, sc)).or_insert(0.0) += eff;
            }
            let delay = match (r.mode, self.tun.lock_mode) {
                (AccessMode::Read, _) => LUSTRE_READ_RPC,
                (AccessMode::Write, LockMode::Shared) => LUSTRE_LOCK_LATENCY,
                (AccessMode::Write, LockMode::Exclusive) => {
                    LUSTRE_LOCK_LATENCY * file_writers[&r.file] as f64
                }
            };
            let mut osts: Vec<usize> = per_ost.keys().copied().collect();
            osts.sort_unstable();
            let dispatch = 1.0
                + ALPHA_MULTI_OST_DISPATCH * ((osts.len().saturating_sub(1)) as f64).sqrt();
            for ost in osts {
                let mut bytes = per_ost[&ost];
                if r.mode == AccessMode::Write {
                    let s = ost_streams[&ost];
                    bytes *= dispatch
                        * (1.0
                            + ALPHA_STREAM_INTERLEAVE * ((s.saturating_sub(1)) as f64).sqrt());
                }
                let service = match r.mode {
                    AccessMode::Write => self.ost_write[ost],
                    AccessMode::Read => self.ost_read[ost],
                };
                out.push(PlannedFlow {
                    req_index: ri,
                    src_node: r.src_node,
                    attach_node: Some(self.lnet_node_of(ost)),
                    storage_route: vec![self.lnet[self.gateway_of(ost)], service],
                    bytes,
                    delay,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca_topology::MIB;

    fn model(tun: LustreTunables) -> (Simulator, LustreModel) {
        let mut sim = Simulator::with_capacities(vec![]);
        let m = LustreModel::new(
            &mut sim,
            56,
            0.21e9,
            0.75e9,
            56e9,
            vec![10, 20, 30, 40],
            tun,
        );
        (sim, m)
    }

    fn wreq(src: NodeId, offset: u64, len: u64) -> FlushReq {
        FlushReq { src_node: src, file: 0, offset, len, mode: AccessMode::Write }
    }

    #[test]
    fn aligned_flush_has_no_inflation() {
        let (_s, m) = model(LustreTunables::theta_optimized());
        // two aggregators, each writing its own 8 MB stripe
        let reqs = vec![wreq(0, 0, 8 * MIB), wreq(1, 8 * MIB, 8 * MIB)];
        let flows = m.plan_wave(&reqs);
        assert_eq!(flows.len(), 2);
        for f in &flows {
            assert_eq!(f.bytes, (8 * MIB) as f64, "no sharing => no inflation");
        }
        // round robin: stripes 0 and 1 -> different OSTs
        assert_ne!(flows[0].storage_route[1], flows[1].storage_route[1]);
    }

    #[test]
    fn stripe_sharing_inflates_bytes() {
        let (_s, m) = model(LustreTunables::theta_optimized());
        // two writers inside one 8 MB stripe
        let reqs = vec![wreq(0, 0, 4 * MIB), wreq(1, 4 * MIB, 4 * MIB)];
        let flows = m.plan_wave(&reqs);
        assert_eq!(flows.len(), 2);
        for f in &flows {
            // sharing w = 2 (+0.5), partial coverage ratio 2 (+0.73),
            // stream interleave s = 2 (x1.3)
            let expect = (4 * MIB) as f64 * (1.0 + 0.5 + 0.73) * 1.3;
            assert!((f.bytes - expect).abs() < 1.0, "got {} want {}", f.bytes, expect);
        }
    }

    #[test]
    fn partial_stripe_penalty_grows_with_mismatch() {
        // Table I mechanism: smaller buffer:stripe ratios cost more per
        // byte. Single writer per flush, varying piece sizes in an
        // 8 MiB stripe.
        let (_s, m) = model(LustreTunables::theta_optimized());
        let eff = |len: u64| {
            let flows = m.plan_wave(&[wreq(0, 0, len)]);
            flows[0].bytes / len as f64
        };
        let full = eff(8 * MIB);
        let half = eff(4 * MIB);
        let quarter = eff(2 * MIB);
        let eighth = eff(MIB);
        assert_eq!(full, 1.0, "aligned full stripe pays nothing");
        assert!(half > full && quarter > half && eighth > quarter,
            "coverage penalty must be monotone: {full} {half} {quarter} {eighth}");
        assert!(eighth > 2.5 && eighth < 5.0, "1:8 in Table I's ballpark, got {eighth}");
    }

    #[test]
    fn reads_are_never_inflated() {
        let (_s, m) = model(LustreTunables::theta_optimized());
        let reqs = vec![
            FlushReq { src_node: 0, file: 0, offset: 0, len: 4 * MIB, mode: AccessMode::Read },
            FlushReq { src_node: 1, file: 0, offset: 4 * MIB, len: 4 * MIB, mode: AccessMode::Read },
        ];
        let flows = m.plan_wave(&reqs);
        for f in &flows {
            assert_eq!(f.bytes, (4 * MIB) as f64);
            assert_eq!(f.delay, LUSTRE_READ_RPC);
        }
    }

    #[test]
    fn exclusive_lock_delay_scales_with_writers() {
        let (_s, m) = model(LustreTunables::theta_default());
        let reqs: Vec<_> = (0..8).map(|i| wreq(i, i as u64 * MIB, MIB)).collect();
        let flows = m.plan_wave(&reqs);
        for f in &flows {
            assert!((f.delay - 8.0 * LUSTRE_LOCK_LATENCY).abs() < 1e-12);
        }
    }

    #[test]
    fn default_tunables_hit_single_ost() {
        let (_s, m) = model(LustreTunables::theta_default());
        let reqs: Vec<_> = (0..4).map(|i| wreq(i, i as u64 * 4 * MIB, 4 * MIB)).collect();
        let flows = m.plan_wave(&reqs);
        let ost_of = |f: &PlannedFlow| f.storage_route[1];
        let first = ost_of(&flows[0]);
        assert!(flows.iter().all(|f| ost_of(f) == first), "stripe_count=1 => one OST");
    }

    #[test]
    fn multi_stripe_flush_fans_out_with_dispatch_cost() {
        let (_s, m) = model(LustreTunables::theta_optimized());
        // 32 MB flush over 8 MB stripes -> 4 OSTs, each charged the
        // multi-OST dispatch factor 1 + 0.4 * sqrt(3)
        let flows = m.plan_wave(&[wreq(0, 0, 32 * MIB)]);
        assert_eq!(flows.len(), 4);
        let total: f64 = flows.iter().map(|f| f.bytes).sum();
        let expect = (32 * MIB) as f64 * (1.0 + 0.4 * 3.0f64.sqrt());
        assert!((total - expect).abs() < 1.0, "got {total} want {expect}");
        // distinct OSTs (hashed placement may collide, but not all four)
        let osts: std::collections::HashSet<_> =
            flows.iter().map(|f| f.storage_route[1]).collect();
        assert!(osts.len() >= 2);
    }

    #[test]
    fn lnet_gateway_is_deterministic() {
        let (_s, m) = model(LustreTunables::theta_optimized());
        assert_eq!(m.lnet_node_of(0), 10);
        assert_eq!(m.lnet_node_of(1), 20);
        assert_eq!(m.lnet_node_of(4), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds machine OSTs")]
    fn too_many_stripes_panics() {
        let mut sim = Simulator::with_capacities(vec![]);
        let tun = LustreTunables { stripe_count: 99, stripe_size: MIB, lock_mode: LockMode::Shared };
        LustreModel::new(&mut sim, 56, 1.0, 1.0, 1.0, vec![0], tun);
    }
}
