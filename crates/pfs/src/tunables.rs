//! User-tunable filesystem/MPI-IO parameters — the "baseline vs
//! user-optimized" axis of the paper's Figs. 7 and 8 (Sec. V-B).

use tapioca_topology::MIB;

/// File locking discipline.
///
/// The paper's "optimized" runs set environment variables "reducing lock
/// contention by sharing files locks" on both machines; the defaults use
/// exclusive byte-range/block tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Default: exclusive tokens; every concurrent writer of a file pays
    /// a token-revocation chain.
    Exclusive,
    /// Tuned: shared file locks; one cheap acquisition per flush.
    Shared,
}

/// Lustre tunables (Theta).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LustreTunables {
    /// Number of OSTs the file is striped over (`lfs setstripe -c`).
    pub stripe_count: usize,
    /// Stripe size in bytes (`lfs setstripe -S`).
    pub stripe_size: u64,
    /// Locking discipline.
    pub lock_mode: LockMode,
}

impl LustreTunables {
    /// Theta defaults per the paper: 1 OST, 1 MB stripes, exclusive locks.
    pub fn theta_default() -> Self {
        Self { stripe_count: 1, stripe_size: MIB, lock_mode: LockMode::Exclusive }
    }

    /// The paper's tuned configuration for IOR on 512 nodes: 48 OSTs,
    /// 8 MB stripes, shared locks.
    pub fn theta_optimized() -> Self {
        Self { stripe_count: 48, stripe_size: 8 * MIB, lock_mode: LockMode::Shared }
    }

    /// Tuned configuration of the HACC-IO runs (Figs. 13-14): 48 OSTs,
    /// 16 MB stripes.
    pub fn theta_hacc() -> Self {
        Self { stripe_count: 48, stripe_size: 16 * MIB, lock_mode: LockMode::Shared }
    }
}

/// GPFS tunables (Mira).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpfsTunables {
    /// Write one file per Pset (the paper's recommended subfiling) rather
    /// than a single shared file.
    pub subfiling: bool,
    /// Locking discipline.
    pub lock_mode: LockMode,
    /// GPFS block size governing token granularity, bytes (8 MB).
    pub block_size: u64,
}

impl GpfsTunables {
    /// Mira defaults: subfiling as recommended, but exclusive tokens.
    pub fn mira_default() -> Self {
        Self { subfiling: true, lock_mode: LockMode::Exclusive, block_size: 8 * MIB }
    }

    /// The paper's optimized environment: shared file locks.
    pub fn mira_optimized() -> Self {
        Self { subfiling: true, lock_mode: LockMode::Shared, block_size: 8 * MIB }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_presets_match_paper() {
        let d = LustreTunables::theta_default();
        assert_eq!(d.stripe_count, 1);
        assert_eq!(d.stripe_size, MIB);
        let o = LustreTunables::theta_optimized();
        assert_eq!(o.stripe_count, 48);
        assert_eq!(o.stripe_size, 8 * MIB);
        assert_eq!(LustreTunables::theta_hacc().stripe_size, 16 * MIB);
    }

    #[test]
    fn mira_presets_differ_in_lock_mode_only() {
        let d = GpfsTunables::mira_default();
        let o = GpfsTunables::mira_optimized();
        assert_eq!(d.lock_mode, LockMode::Exclusive);
        assert_eq!(o.lock_mode, LockMode::Shared);
        assert_eq!(d.subfiling, o.subfiling);
        assert_eq!(d.block_size, o.block_size);
    }
}
