//! Striped file layout math.
//!
//! Lustre distributes a file round-robin across `stripe_count` OSTs in
//! chunks of `stripe_size` bytes: byte `b` lives in stripe
//! `b / stripe_size`, on OST `(b / stripe_size) % stripe_count`. The
//! same arithmetic doubles for the GPFS block-token model (where the
//! "targets" collapse to one and only the block ids matter).

/// One contiguous piece of a request that lands on a single stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePiece {
    /// Target index in `0..stripe_count` (the OST for Lustre).
    pub target: usize,
    /// Global stripe index within the file (`offset / stripe_size`).
    pub stripe: u64,
    /// Byte offset of the piece inside the file.
    pub offset: u64,
    /// Piece length in bytes.
    pub len: u64,
}

impl StripePiece {
    /// Whether the piece covers its stripe completely.
    pub fn is_full_stripe(&self, stripe_size: u64) -> bool {
        self.offset.is_multiple_of(stripe_size) && self.len == stripe_size
    }
}

/// Pseudo-random OST placement of a stripe.
///
/// Lustre allocates each file's objects over a randomized OST list and
/// real collective rounds desynchronize, so the *statistical* behaviour
/// is that consecutive stripes land on effectively independent OSTs.
/// A seeded hash of `(file, stripe)` is the deterministic surrogate;
/// strict round-robin would phase-lock the simulator's symmetric waves
/// onto OST subsets no real run stays on.
pub fn hashed_target(file: usize, stripe: u64, stripe_count: usize) -> usize {
    let mut x = (file as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stripe;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % stripe_count as u64) as usize
}

/// Split the extent `[offset, offset + len)` into per-stripe pieces.
///
/// Pieces come back in file order; each is contained in exactly one
/// stripe. Zero-length requests produce no pieces.
///
/// # Panics
/// Panics if `stripe_size == 0` or `stripe_count == 0`.
pub fn split_striped(offset: u64, len: u64, stripe_size: u64, stripe_count: usize) -> Vec<StripePiece> {
    assert!(stripe_size > 0, "stripe_size must be positive");
    assert!(stripe_count > 0, "stripe_count must be positive");
    let mut pieces = Vec::new();
    let mut cur = offset;
    let end = offset + len;
    while cur < end {
        let stripe = cur / stripe_size;
        let stripe_end = (stripe + 1) * stripe_size;
        let piece_end = stripe_end.min(end);
        pieces.push(StripePiece {
            target: (stripe % stripe_count as u64) as usize,
            stripe,
            offset: cur,
            len: piece_end - cur,
        });
        cur = piece_end;
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_single_stripe() {
        let p = split_striped(0, 8, 8, 4);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0], StripePiece { target: 0, stripe: 0, offset: 0, len: 8 });
        assert!(p[0].is_full_stripe(8));
    }

    #[test]
    fn round_robin_targets() {
        let p = split_striped(0, 32, 8, 4);
        let targets: Vec<_> = p.iter().map(|x| x.target).collect();
        assert_eq!(targets, vec![0, 1, 2, 3]);
        let p = split_striped(32, 16, 8, 4);
        let targets: Vec<_> = p.iter().map(|x| x.target).collect();
        assert_eq!(targets, vec![0, 1]); // wraps around
    }

    #[test]
    fn unaligned_split() {
        let p = split_striped(5, 10, 8, 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], StripePiece { target: 0, stripe: 0, offset: 5, len: 3 });
        assert_eq!(p[1], StripePiece { target: 1, stripe: 1, offset: 8, len: 7 });
        assert!(!p[0].is_full_stripe(8));
    }

    #[test]
    fn zero_len_is_empty() {
        assert!(split_striped(100, 0, 8, 2).is_empty());
    }

    #[test]
    fn hashed_target_is_deterministic_and_spread() {
        let a = hashed_target(0, 17, 48);
        assert_eq!(a, hashed_target(0, 17, 48));
        assert!(a < 48);
        // consecutive stripes must not collapse onto a small subset
        let targets: std::collections::HashSet<usize> =
            (0..96).map(|s| hashed_target(3, s, 48)).collect();
        assert!(targets.len() > 30, "only {} distinct OSTs", targets.len());
        // different files shuffle differently
        let other: Vec<usize> = (0..16).map(|s| hashed_target(4, s, 48)).collect();
        let same: Vec<usize> = (0..16).map(|s| hashed_target(3, s, 48)).collect();
        assert_ne!(other, same);
    }

    #[test]
    fn exact_multi_stripe_alignment() {
        let p = split_striped(16, 16, 8, 4);
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|x| x.is_full_stripe(8)));
        assert_eq!(p[0].target, 2);
        assert_eq!(p[1].target, 3);
    }

    /// Pieces tile the request exactly: contiguous, in order, summing
    /// to `len`, each within one stripe, with correct round-robin
    /// targets. Deterministic grid over edge-heavy parameter values.
    #[test]
    fn prop_pieces_tile_request() {
        let offsets = [0u64, 1, 5, 7, 511, 512, 513, 4095, 9999];
        let lens = [0u64, 1, 2, 8, 255, 511, 512, 513, 1025, 9999];
        let stripe_sizes = [1u64, 2, 3, 8, 64, 511, 512];
        let stripe_counts = [1usize, 2, 3, 4, 8];
        for &offset in &offsets {
            for &len in &lens {
                for &stripe_size in &stripe_sizes {
                    for &stripe_count in &stripe_counts {
                        let pieces = split_striped(offset, len, stripe_size, stripe_count);
                        let total: u64 = pieces.iter().map(|p| p.len).sum();
                        assert_eq!(total, len);
                        let mut cur = offset;
                        for p in &pieces {
                            assert_eq!(p.offset, cur);
                            assert_eq!(p.stripe, p.offset / stripe_size);
                            assert_eq!(p.target, (p.stripe % stripe_count as u64) as usize);
                            // piece fits in its stripe
                            assert!(p.offset + p.len <= (p.stripe + 1) * stripe_size);
                            assert!(p.len >= 1);
                            cur += p.len;
                        }
                        assert_eq!(cur, offset + len);
                    }
                }
            }
        }
    }
}
