//! Seeded schedule perturbation — a loom-lite for the thread runtime.
//!
//! Real-thread executions of the pipeline explore only the interleavings
//! the OS scheduler happens to produce, which on an idle CI machine is a
//! narrow, highly repetitive set. A [`Perturber`] widens that set: every
//! traced synchronization boundary (RMA put, fence, barrier, collective
//! entry, I/O worker dispatch) calls [`Perturber::point`], which draws
//! from a seeded SplitMix64 stream and either proceeds immediately,
//! yields the thread, spins, or sleeps for a few microseconds. Different
//! seeds push the ranks through different interleavings of the same
//! schedule; `tapioca-check` then verifies the protocol invariants on
//! the trace of each one.
//!
//! The stream is seeded, not replayable: the *choice at each global
//! perturbation point* is a pure function of `(seed, point index)`, but
//! the assignment of indices to threads depends on the interleaving
//! being perturbed. That is the useful property — a seed set gives a
//! diverse, loggable family of schedules, and a failing seed stays
//! worth rerunning because it keeps sampling the same neighborhood.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64 step (same generator `tapioca-workloads` uses for data).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Injects randomized yields/delays at the runtime's synchronization
/// boundaries. Cheap to share (`Arc`); one per world.
#[derive(Debug)]
pub struct Perturber {
    seed: u64,
    max_delay_us: u64,
    counter: AtomicU64,
}

impl Perturber {
    /// A perturber with the default delay ceiling (50 us).
    pub fn new(seed: u64) -> Arc<Perturber> {
        Self::with_max_delay(seed, 50)
    }

    /// A perturber whose sleeps are bounded by `max_delay_us`
    /// microseconds (0 disables sleeping; yields and spins remain).
    pub fn with_max_delay(seed: u64, max_delay_us: u64) -> Arc<Perturber> {
        Arc::new(Perturber { seed, max_delay_us, counter: AtomicU64::new(0) })
    }

    /// The seed this perturber draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of perturbation points hit so far.
    pub fn points_fired(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// One perturbation point: proceed, yield, spin, or sleep — chosen
    /// by the seeded stream.
    pub fn point(&self) {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.seed ^ n.wrapping_mul(0xD129_0B26_27D6_9E4B));
        match h & 3 {
            0 => {}
            1 => std::thread::yield_now(),
            2 => {
                for _ in 0..((h >> 8) & 0x3F) {
                    std::hint::spin_loop();
                }
            }
            _ => {
                if self.max_delay_us > 0 {
                    std::thread::sleep(Duration::from_micros((h >> 32) % self.max_delay_us + 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_advance_the_counter() {
        let p = Perturber::with_max_delay(42, 0);
        assert_eq!(p.points_fired(), 0);
        for _ in 0..100 {
            p.point();
        }
        assert_eq!(p.points_fired(), 100);
        assert_eq!(p.seed(), 42);
    }

    #[test]
    fn stream_depends_on_seed() {
        // Not a behavioral guarantee, just a sanity check that the mix
        // actually varies with the seed.
        let a: Vec<u64> = (0..16).map(|n| splitmix64(7u64 ^ n)).collect();
        let b: Vec<u64> = (0..16).map(|n| splitmix64(8u64 ^ n)).collect();
        assert_ne!(a, b);
    }
}
