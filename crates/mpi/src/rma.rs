//! One-sided communication: RMA windows with fence synchronization.
//!
//! TAPIOCA fills aggregation buffers with `MPI_Put` between
//! `MPI_Win_fence` calls (paper Sec. IV-A, Algorithm 3). A [`Window`]
//! exposes one byte region per communicator member; any member can `put`
//! into any member's region. [`Window::fence`] is a collective that
//! closes the access epoch: after it returns, every put issued before it
//! (by any member) is deposited and visible.
//!
//! The target regions are guarded by `RwLock`. MPI leaves overlapping
//! concurrent puts undefined; TAPIOCA only issues disjoint puts, so lock
//! serialization affects timing (which this runtime does not model) but
//! never correctness. Lock release/acquire provides the happens-before
//! edges the fence semantics require.

use std::sync::{Arc, RwLock};

use crate::comm::{Comm, RegistryKind};
use crate::perturb::Perturber;
use crate::Rank;
#[cfg(feature = "trace")]
use tapioca_trace::TraceScope;

struct WinShared {
    /// One region per comm rank.
    regions: Vec<RwLock<Vec<u8>>>,
}

/// An RMA window over a communicator.
pub struct Window {
    shared: Arc<WinShared>,
    /// Schedule perturbation inherited from the world, if any.
    perturb: Option<Arc<Perturber>>,
    /// Per-handle tracing context; when set, puts and fences record
    /// events attributed to this handle's rank.
    #[cfg(feature = "trace")]
    scope: Option<TraceScope>,
}

impl std::fmt::Debug for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Window").field("members", &self.shared.regions.len()).finish()
    }
}

impl Window {
    /// Collectively allocate a window; every member exposes a region of
    /// `local_size` bytes (zero-initialized). Sizes may differ per rank.
    ///
    /// All members must call this the same number of times in the same
    /// order (it is a collective).
    pub fn allocate(comm: &Comm, local_size: usize) -> Window {
        let sizes = comm.allgather_u64(local_size as u64);
        let seq = comm.next_win_seq();
        let key = (comm.uid(), RegistryKind::Window, seq, 0);
        let shared = comm.world().get_or_create(key, move || WinShared {
            regions: sizes
                .iter()
                .map(|&s| RwLock::new(vec![0u8; s as usize]))
                .collect(),
        });
        Window {
            shared,
            perturb: comm.perturber(),
            #[cfg(feature = "trace")]
            scope: None,
        }
    }

    /// Attach a tracing scope to this handle: subsequent `put` and
    /// `fence` calls record events. Local to this handle — other
    /// members' handles on the same window are unaffected.
    #[cfg(feature = "trace")]
    pub fn set_trace_scope(&mut self, scope: TraceScope) {
        self.scope = Some(scope);
    }

    /// The attached tracing scope, if any.
    #[cfg(feature = "trace")]
    pub fn trace_scope(&self) -> Option<&TraceScope> {
        self.scope.as_ref()
    }

    /// Deposit `data` into `target`'s region at `offset` (one-sided).
    ///
    /// # Panics
    /// Panics if the write exceeds the target region.
    pub fn put(&self, target: Rank, offset: usize, data: &[u8]) {
        if let Some(p) = &self.perturb {
            p.point();
        }
        {
            let mut region = self.shared.regions[target].write().expect("RMA region lock poisoned");
            let end = offset + data.len();
            assert!(
                end <= region.len(),
                "put of {}..{} exceeds window region of {} bytes",
                offset,
                end,
                region.len()
            );
            region[offset..end].copy_from_slice(data);
        }
        #[cfg(feature = "trace")]
        if let Some(scope) = &self.scope {
            scope.rma_put(target, offset as u64, data.len() as u64);
        }
    }

    /// Read `len` bytes from this member's *own* region at `offset`.
    ///
    /// Aggregators use this to flush their buffer after a fence.
    pub fn read_local(&self, me: Rank, offset: usize, len: usize) -> Vec<u8> {
        let region = self.shared.regions[me].read().expect("RMA region lock poisoned");
        region[offset..offset + len].to_vec()
    }

    /// [`Window::read_local`] into a caller-provided buffer — the
    /// allocation-free variant for drain loops that recycle flush
    /// buffers. Reads `out.len()` bytes starting at `offset`.
    pub fn read_local_into(&self, me: Rank, offset: usize, out: &mut [u8]) {
        let region = self.shared.regions[me].read().expect("RMA region lock poisoned");
        out.copy_from_slice(&region[offset..offset + out.len()]);
    }

    /// Size of a member's region.
    pub fn region_len(&self, rank: Rank) -> usize {
        self.shared.regions[rank].read().expect("RMA region lock poisoned").len()
    }

    /// Run `f` with read access to this member's own region.
    pub fn with_local<R>(&self, me: Rank, f: impl FnOnce(&[u8]) -> R) -> R {
        let region = self.shared.regions[me].read().expect("RMA region lock poisoned");
        f(&region)
    }

    /// Write into this member's *own* region (used by aggregators to
    /// stage data read from a file before members `get` it).
    pub fn write_local(&self, me: Rank, offset: usize, data: &[u8]) {
        self.put(me, offset, data);
    }

    /// One-sided read of `len` bytes at `offset` from `target`'s region
    /// (MPI_Get). Subject to the same epoch discipline as `put`.
    pub fn get(&self, target: Rank, offset: usize, len: usize) -> Vec<u8> {
        if let Some(p) = &self.perturb {
            p.point();
        }
        let region = self.shared.regions[target].read().expect("RMA region lock poisoned");
        assert!(
            offset + len <= region.len(),
            "get of {}..{} exceeds window region of {} bytes",
            offset,
            offset + len,
            region.len()
        );
        region[offset..offset + len].to_vec()
    }

    /// [`Window::get`] into a caller-provided buffer (MPI_Get with an
    /// application-owned receive buffer): reads `out.len()` bytes from
    /// `target`'s region at `offset` without allocating.
    pub fn get_into(&self, target: Rank, offset: usize, out: &mut [u8]) {
        if let Some(p) = &self.perturb {
            p.point();
        }
        let region = self.shared.regions[target].read().expect("RMA region lock poisoned");
        let end = offset + out.len();
        assert!(
            end <= region.len(),
            "get of {}..{} exceeds window region of {} bytes",
            offset,
            end,
            region.len()
        );
        out.copy_from_slice(&region[offset..end]);
    }

    /// Close the current access epoch (collective over the window's
    /// communicator): blocks until every member reached the fence; all
    /// puts issued before it are then visible everywhere.
    pub fn fence(&self, comm: &Comm) {
        comm.barrier();
        #[cfg(feature = "trace")]
        if let Some(scope) = &self.scope {
            scope.fence();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::make_world;

    fn run(n: usize, f: impl Fn(Comm) + Sync) {
        let comms = make_world(n);
        std::thread::scope(|s| {
            for c in comms {
                s.spawn(|| f(c));
            }
        });
    }

    #[test]
    fn puts_visible_after_fence() {
        run(4, |c| {
            let win = Window::allocate(&c, 4);
            // everyone puts its rank byte into rank 0's region
            win.put(0, c.rank(), &[c.rank() as u8 + 1]);
            win.fence(&c);
            if c.rank() == 0 {
                assert_eq!(win.read_local(0, 0, 4), vec![1, 2, 3, 4]);
            }
            win.fence(&c);
        });
    }

    #[test]
    fn heterogeneous_region_sizes() {
        run(3, |c| {
            let win = Window::allocate(&c, (c.rank() + 1) * 8);
            assert_eq!(win.region_len(0), 8);
            assert_eq!(win.region_len(2), 24);
            win.fence(&c);
        });
    }

    #[test]
    fn epochs_do_not_leak_between_rounds() {
        run(4, |c| {
            let win = Window::allocate(&c, 4 * 8);
            for round in 0..20u64 {
                // all ranks put their (round-tagged) value to rank `round % 4`
                let target = (round % 4) as usize;
                win.put(target, c.rank() * 8, &(round * 10 + c.rank() as u64).to_le_bytes());
                win.fence(&c);
                if c.rank() == target {
                    win.with_local(c.rank(), |buf| {
                        for r in 0..4usize {
                            let v = u64::from_le_bytes(buf[r * 8..r * 8 + 8].try_into().unwrap());
                            assert_eq!(v, round * 10 + r as u64);
                        }
                    });
                }
                win.fence(&c);
            }
        });
    }

    #[test]
    fn multiple_windows_are_independent() {
        run(2, |c| {
            let w1 = Window::allocate(&c, 8);
            let w2 = Window::allocate(&c, 8);
            w1.put(0, 0, &[1; 8]);
            w2.put(0, 0, &[2; 8]);
            w1.fence(&c);
            w2.fence(&c);
            if c.rank() == 0 {
                assert_eq!(w1.read_local(0, 0, 8), vec![1; 8]);
                assert_eq!(w2.read_local(0, 0, 8), vec![2; 8]);
            }
            w1.fence(&c);
        });
    }

    #[test]
    fn window_over_subcomm() {
        run(6, |c| {
            let sub = c.split((c.rank() % 2) as u64);
            let win = Window::allocate(&sub, 3);
            win.put(0, sub.rank(), &[sub.rank() as u8]);
            win.fence(&sub);
            if sub.rank() == 0 {
                assert_eq!(win.read_local(0, 0, 3), vec![0, 1, 2]);
            }
            win.fence(&sub);
        });
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_window_records_puts_and_fences() {
        use tapioca_trace::{TraceOp, TraceScope, Tracer};
        let tracer = Tracer::new(2);
        let comms = make_world(2);
        let t2 = std::sync::Arc::clone(&tracer);
        std::thread::scope(|s| {
            for c in comms {
                let tracer = std::sync::Arc::clone(&t2);
                s.spawn(move || {
                    let mut win = Window::allocate(&c, 8);
                    win.set_trace_scope(TraceScope::new(tracer, c.rank(), 0, vec![0, 1]));
                    win.put(0, c.rank() * 4, &[c.rank() as u8; 4]);
                    win.fence(&c);
                });
            }
        });
        let trace = tracer.drain();
        let puts = trace.events().iter().filter(|e| e.op == TraceOp::RmaPut).count();
        let fences = trace.events().iter().filter(|e| e.op == TraceOp::Fence).count();
        assert_eq!(puts, 2);
        assert_eq!(fences, 2);
        assert!(trace.events().iter().filter(|e| e.op == TraceOp::RmaPut).all(|e| e.peer == 0));
    }

    #[test]
    fn into_variants_match_allocating_reads() {
        run(2, |c| {
            let win = Window::allocate(&c, 8);
            win.put(0, c.rank() * 4, &[c.rank() as u8 + 7; 4]);
            win.fence(&c);
            if c.rank() == 0 {
                let mut buf = [0u8; 8];
                win.read_local_into(0, 0, &mut buf);
                assert_eq!(buf.to_vec(), win.read_local(0, 0, 8));
            }
            win.fence(&c);
            let mut got = [0u8; 4];
            win.get_into(0, 4, &mut got);
            assert_eq!(got.to_vec(), win.get(0, 4, 4));
            assert_eq!(got, [8u8; 4]);
            win.fence(&c);
        });
    }

    #[test]
    #[should_panic(expected = "exceeds window region")]
    fn oversized_get_into_panics() {
        let comms = make_world(1);
        let c = comms.into_iter().next().unwrap();
        let win = Window::allocate(&c, 4);
        let mut buf = [0u8; 4];
        win.get_into(0, 2, &mut buf);
    }

    #[test]
    #[should_panic(expected = "exceeds window region")]
    fn oversized_put_panics() {
        let comms = make_world(1);
        let c = comms.into_iter().next().unwrap();
        let win = Window::allocate(&c, 4);
        win.put(0, 2, &[0; 4]);
    }
}
