//! One-sided communication: RMA windows with fence synchronization.
//!
//! TAPIOCA fills aggregation buffers with `MPI_Put` between
//! `MPI_Win_fence` calls (paper Sec. IV-A, Algorithm 3). A [`Window`]
//! exposes one byte region per communicator member; any member can `put`
//! into any member's region. [`Window::fence`] is a collective that
//! closes the access epoch: after it returns, every put issued before it
//! (by any member) is deposited and visible.
//!
//! Target regions are guarded by `RwLock`, split into independently
//! locked **panes** ([`Window::allocate_paned`]): an aggregator exposing
//! its two pipeline buffers as two panes can have one buffer drained in
//! place by the I/O worker (through a [`WinSegment`] view) while the
//! other is concurrently filled by next-round puts. MPI leaves
//! overlapping concurrent puts undefined; TAPIOCA only issues disjoint
//! puts, so lock serialization affects timing (which this runtime does
//! not model) but never correctness. Lock release/acquire provides the
//! happens-before edges the fence semantics require.

use std::sync::{Arc, Condvar, Mutex, RwLock};

use crate::comm::{Comm, RegistryKind};
use crate::lock_ok;
use crate::perturb::Perturber;
use crate::Rank;
#[cfg(feature = "trace")]
use tapioca_trace::TraceScope;

/// One member's window region: `len` bytes split into panes of
/// `pane_size` bytes each (the last pane may be shorter). Offsets are
/// linear; accesses crossing a pane boundary are split transparently.
struct Region {
    pane_size: usize,
    len: usize,
    panes: Vec<RwLock<Vec<u8>>>,
}

impl Region {
    fn new(len: usize, pane_size: usize) -> Region {
        let pane_size = pane_size.max(1).min(len.max(1));
        let panes = (0..len.div_ceil(pane_size))
            .map(|i| {
                let plen = pane_size.min(len - i * pane_size);
                RwLock::new(vec![0u8; plen])
            })
            .collect();
        Region { pane_size, len, panes }
    }

    fn check_bounds(&self, op: &str, offset: usize, len: usize) {
        assert!(
            offset + len <= self.len,
            "{op} of {}..{} exceeds window region of {} bytes",
            offset,
            offset + len,
            self.len
        );
    }

    /// Copy `data` into the region at `offset`, pane by pane.
    fn write(&self, offset: usize, data: &[u8]) {
        self.check_bounds("put", offset, data.len());
        let mut done = 0;
        while done < data.len() {
            let pos = offset + done;
            let (p, po) = (pos / self.pane_size, pos % self.pane_size);
            let take = (self.pane_size - po).min(data.len() - done);
            let mut pane = self.panes[p].write().expect("RMA pane lock poisoned");
            pane[po..po + take].copy_from_slice(&data[done..done + take]);
            done += take;
        }
    }

    /// Copy `out.len()` bytes from the region at `offset`, pane by pane.
    fn read(&self, op: &str, offset: usize, out: &mut [u8]) {
        self.check_bounds(op, offset, out.len());
        let mut done = 0;
        while done < out.len() {
            let pos = offset + done;
            let (p, po) = (pos / self.pane_size, pos % self.pane_size);
            let take = (self.pane_size - po).min(out.len() - done);
            let pane = self.panes[p].read().expect("RMA pane lock poisoned");
            out[done..done + take].copy_from_slice(&pane[po..po + take]);
            done += take;
        }
    }

    /// Run `f` over the range `[offset, offset + len)` as a sequence of
    /// read-locked contiguous parts (one per touched pane). The
    /// zero-copy flush path iterates a window slot in place with this —
    /// no intermediate buffer exists anywhere between the window and
    /// the file descriptor.
    fn for_parts<E>(
        &self,
        op: &str,
        offset: usize,
        len: usize,
        mut f: impl FnMut(&[u8]) -> Result<(), E>,
    ) -> Result<(), E> {
        self.check_bounds(op, offset, len);
        let mut done = 0;
        while done < len {
            let pos = offset + done;
            let (p, po) = (pos / self.pane_size, pos % self.pane_size);
            let take = (self.pane_size - po).min(len - done);
            let pane = self.panes[p].read().expect("RMA pane lock poisoned");
            f(&pane[po..po + take])?;
            done += take;
        }
        Ok(())
    }
}

struct WinShared {
    /// One region per comm rank.
    regions: Vec<Region>,
}

/// An RMA window over a communicator.
pub struct Window {
    shared: Arc<WinShared>,
    /// Schedule perturbation inherited from the world, if any.
    perturb: Option<Arc<Perturber>>,
    /// Per-handle tracing context; when set, puts and fences record
    /// events attributed to this handle's rank.
    #[cfg(feature = "trace")]
    scope: Option<TraceScope>,
}

impl std::fmt::Debug for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Window").field("members", &self.shared.regions.len()).finish()
    }
}

/// A refcounted view of a byte range inside one member's window region.
///
/// The zero-copy flush path hands these to the file worker instead of a
/// copied-out `Vec<u8>`: the worker reads the window panes in place
/// (under their read locks, pane by pane) while later-round puts target
/// the *other* pane. The view keeps the window memory alive on its own,
/// so the submitting rank may drop its `Window` handle freely.
#[derive(Clone)]
pub struct WinSegment {
    shared: Arc<WinShared>,
    rank: Rank,
    offset: usize,
    len: usize,
}

impl std::fmt::Debug for WinSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WinSegment")
            .field("rank", &self.rank)
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

impl WinSegment {
    /// Length of the viewed range in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the viewed bytes as contiguous read-locked parts (one
    /// per touched pane), stopping at the first error.
    pub fn for_each_part<E>(&self, f: impl FnMut(&[u8]) -> Result<(), E>) -> Result<(), E> {
        self.shared.regions[self.rank].for_parts("segment read", self.offset, self.len, f)
    }

    /// Materialize the viewed bytes (fallback paths and tests).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        self.shared.regions[self.rank].read("segment read", self.offset, &mut out);
        out
    }
}

impl Window {
    /// Collectively allocate a window; every member exposes a region of
    /// `local_size` bytes (zero-initialized) as a single pane. Sizes may
    /// differ per rank.
    ///
    /// All members must call this the same number of times in the same
    /// order (it is a collective).
    pub fn allocate(comm: &Comm, local_size: usize) -> Window {
        Self::allocate_paned(comm, local_size, local_size)
    }

    /// [`Window::allocate`] with regions split into panes of `pane_size`
    /// bytes (same pane size on every member; `0` means one pane).
    /// Accesses remain linear-offset addressed; only lock granularity
    /// changes: accesses to different panes never contend, so an
    /// aggregator's two pipeline buffers (two panes) can be filled and
    /// drained concurrently.
    pub fn allocate_paned(comm: &Comm, local_size: usize, pane_size: usize) -> Window {
        let sizes = comm.allgather_u64(local_size as u64);
        let seq = comm.next_win_seq();
        let key = (comm.uid(), RegistryKind::Window, seq, 0);
        let shared = comm.world().get_or_create(key, move || WinShared {
            regions: sizes.iter().map(|&s| Region::new(s as usize, pane_size)).collect(),
        });
        Window {
            shared,
            perturb: comm.perturber(),
            #[cfg(feature = "trace")]
            scope: None,
        }
    }

    /// Attach a tracing scope to this handle: subsequent `put` and
    /// `fence` calls record events. Local to this handle — other
    /// members' handles on the same window are unaffected.
    #[cfg(feature = "trace")]
    pub fn set_trace_scope(&mut self, scope: TraceScope) {
        self.scope = Some(scope);
    }

    /// The attached tracing scope, if any.
    #[cfg(feature = "trace")]
    pub fn trace_scope(&self) -> Option<&TraceScope> {
        self.scope.as_ref()
    }

    /// Deposit `data` into `target`'s region at `offset` (one-sided).
    ///
    /// # Panics
    /// Panics if the write exceeds the target region.
    pub fn put(&self, target: Rank, offset: usize, data: &[u8]) {
        if let Some(p) = &self.perturb {
            p.point();
        }
        self.shared.regions[target].write(offset, data);
        #[cfg(feature = "trace")]
        if let Some(scope) = &self.scope {
            scope.rma_put(target, offset as u64, data.len() as u64);
        }
    }

    /// Deposit `len` bytes into `target`'s region at `offset`, read
    /// directly from `src_rank`'s region of another window `src` — the
    /// coalesced put: the packed gather buffer forwarded as one merged
    /// RMA operation covering `coalesced` original chunks, without
    /// materializing an intermediate copy. The traced event is
    /// attributed to `lane` (the run leader's global rank), not to this
    /// handle's rank: whichever co-located member's deposit completed
    /// the run issues the forward, but the operation logically belongs
    /// to the gather buffer's owner.
    ///
    /// # Panics
    /// Panics on out-of-bounds ranges, or if `src` aliases this window
    /// (the nested pane locks would deadlock against a concurrent
    /// opposite-direction transfer).
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))]
    pub fn put_from(
        &self,
        target: Rank,
        offset: usize,
        src: &Window,
        src_rank: Rank,
        src_offset: usize,
        len: usize,
        coalesced: u32,
        lane: Rank,
    ) {
        assert!(
            !Arc::ptr_eq(&self.shared, &src.shared),
            "put_from within one window would nest its own pane locks"
        );
        if let Some(p) = &self.perturb {
            p.point();
        }
        let dst = &self.shared.regions[target];
        dst.check_bounds("put", offset, len);
        let mut done = 0;
        src.shared.regions[src_rank]
            .for_parts("get", src_offset, len, |part| {
                dst.write(offset + done, part);
                done += part.len();
                Ok::<(), std::convert::Infallible>(())
            })
            .unwrap();
        #[cfg(feature = "trace")]
        if let Some(scope) = &self.scope {
            scope.rma_put_coalesced(lane, target, offset as u64, len as u64, coalesced);
        }
    }

    /// Read a member's region into a caller-provided buffer —
    /// the allocation-free variant for drain loops that recycle flush
    /// buffers. Reads `out.len()` bytes starting at `offset`.
    pub fn read_local_into(&self, me: Rank, offset: usize, out: &mut [u8]) {
        self.shared.regions[me].read("read", offset, out);
    }

    /// A refcounted in-place view of `len` bytes of `rank`'s region at
    /// `offset`, for zero-copy flush submission
    /// ([`crate::SharedFile::iwrite_at_vectored`]).
    ///
    /// # Panics
    /// Panics if the range exceeds the region.
    pub fn segment(&self, rank: Rank, offset: usize, len: usize) -> WinSegment {
        self.shared.regions[rank].check_bounds("segment", offset, len);
        WinSegment { shared: Arc::clone(&self.shared), rank, offset, len }
    }

    /// Size of a member's region.
    pub fn region_len(&self, rank: Rank) -> usize {
        self.shared.regions[rank].len
    }

    /// Write into this member's *own* region (used by aggregators to
    /// stage data read from a file before members `get` it).
    pub fn write_local(&self, me: Rank, offset: usize, data: &[u8]) {
        self.put(me, offset, data);
    }

    /// One-sided read into a caller-provided buffer (MPI_Get
    /// with an application-owned receive buffer): reads `out.len()`
    /// bytes from `target`'s region at `offset` without allocating.
    pub fn get_into(&self, target: Rank, offset: usize, out: &mut [u8]) {
        if let Some(p) = &self.perturb {
            p.point();
        }
        self.shared.regions[target].read("get", offset, out);
    }

    /// Close the current access epoch (collective over the window's
    /// communicator): blocks until every member reached the fence; all
    /// puts issued before it are then visible everywhere.
    pub fn fence(&self, comm: &Comm) {
        comm.barrier();
        #[cfg(feature = "trace")]
        if let Some(scope) = &self.scope {
            scope.fence();
        }
    }
}

/// Allocating read of this member's *own* region — test-only
/// conveniences; library drain paths use the `_into` variants or
/// [`Window::segment`] views and never allocate per read.
#[cfg(test)]
impl Window {
    /// Read `len` bytes from this member's *own* region at `offset`.
    pub fn read_local(&self, me: Rank, offset: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_local_into(me, offset, &mut out);
        out
    }

    /// One-sided read of `len` bytes at `offset` from `target`'s region
    /// (MPI_Get). Subject to the same epoch discipline as `put`.
    pub fn get(&self, target: Rank, offset: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.get_into(target, offset, &mut out);
        out
    }

    /// Run `f` with read access to this member's own region (single
    /// contiguous view; the region must fit one pane).
    pub fn with_local<R>(&self, me: Rank, f: impl FnOnce(&[u8]) -> R) -> R {
        let region = &self.shared.regions[me];
        assert_eq!(region.panes.len(), 1, "with_local needs a single-pane region");
        let pane = region.panes[0].read().expect("RMA pane lock poisoned");
        f(&pane)
    }
}

struct BoardSlot {
    /// (cumulative deposit count, armed wake threshold). The threshold
    /// is `u64::MAX` while nobody waits; `wait_until` arms it so `add`
    /// wakes the waiter exactly once — when the count actually reaches
    /// it — instead of on every deposit.
    count: Mutex<(u64, u64)>,
    cv: Condvar,
}

struct BoardShared {
    slots: Vec<BoardSlot>,
}

/// A collective deposit counter: one `u64` per communicator member,
/// with a blocking threshold wait.
///
/// The intra-node put-coalescing rendezvous is built on this: members
/// deposit their chunks into the run leader's gather window, then
/// `add(leader, 1)`. [`DepositBoard::add`] returns the updated count,
/// so the member whose deposit completes a round's expected total can
/// detect it, retire the count with [`DepositBoard::sub`], and forward
/// the merged puts itself — a wait-free rendezvous in which no thread
/// ever blocks on co-members. Fences separate rounds, so a round's
/// deposits all land before the next round's first `add`; the
/// completer's `sub` runs after its round's last `add` by definition,
/// which is what keeps per-round counts unambiguous.
/// [`DepositBoard::wait_until`] remains for callers that do want a
/// blocking threshold.
pub struct DepositBoard {
    shared: Arc<BoardShared>,
    perturb: Option<Arc<Perturber>>,
}

impl std::fmt::Debug for DepositBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepositBoard").field("members", &self.shared.slots.len()).finish()
    }
}

impl DepositBoard {
    /// Collectively allocate a board with one counter per member, all
    /// starting at zero. Same collective discipline as
    /// [`Window::allocate`].
    pub fn allocate(comm: &Comm) -> DepositBoard {
        let n = comm.size();
        let seq = comm.next_win_seq();
        let key = (comm.uid(), RegistryKind::Window, seq, 1);
        let shared = comm.world().get_or_create(key, move || BoardShared {
            slots: (0..n)
                .map(|_| BoardSlot { count: Mutex::new((0, u64::MAX)), cv: Condvar::new() })
                .collect(),
        });
        comm.barrier();
        DepositBoard { shared, perturb: comm.perturber() }
    }

    /// Add `n` to `target`'s counter and return the updated count.
    /// Wakes a blocked waiter only when the count reaches its armed
    /// threshold, so a round with `k` deposits costs one wakeup, not
    /// `k`.
    pub fn add(&self, target: Rank, n: u64) -> u64 {
        if let Some(p) = &self.perturb {
            p.point();
        }
        let slot = &self.shared.slots[target];
        let mut c = lock_ok(&slot.count);
        c.0 += n;
        if c.0 >= c.1 {
            c.1 = u64::MAX;
            slot.cv.notify_all();
        }
        c.0
    }

    /// Subtract `n` from `target`'s counter (a completer retiring a
    /// fully deposited round so counts stay per-round).
    ///
    /// # Panics
    /// Panics if the counter would underflow.
    pub fn sub(&self, target: Rank, n: u64) {
        let slot = &self.shared.slots[target];
        let mut c = lock_ok(&slot.count);
        c.0 = c.0.checked_sub(n).expect("deposit counter underflow");
    }

    /// Block until `me`'s counter reaches at least `threshold`.
    pub fn wait_until(&self, me: Rank, threshold: u64) {
        if let Some(p) = &self.perturb {
            p.point();
        }
        let slot = &self.shared.slots[me];
        let mut c = lock_ok(&slot.count);
        while c.0 < threshold {
            c.1 = threshold;
            c = slot.cv.wait(c).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::make_world;

    fn run(n: usize, f: impl Fn(Comm) + Sync) {
        let comms = make_world(n);
        std::thread::scope(|s| {
            for c in comms {
                s.spawn(|| f(c));
            }
        });
    }

    #[test]
    fn puts_visible_after_fence() {
        run(4, |c| {
            let win = Window::allocate(&c, 4);
            // everyone puts its rank byte into rank 0's region
            win.put(0, c.rank(), &[c.rank() as u8 + 1]);
            win.fence(&c);
            if c.rank() == 0 {
                assert_eq!(win.read_local(0, 0, 4), vec![1, 2, 3, 4]);
            }
            win.fence(&c);
        });
    }

    #[test]
    fn heterogeneous_region_sizes() {
        run(3, |c| {
            let win = Window::allocate(&c, (c.rank() + 1) * 8);
            assert_eq!(win.region_len(0), 8);
            assert_eq!(win.region_len(2), 24);
            win.fence(&c);
        });
    }

    #[test]
    fn epochs_do_not_leak_between_rounds() {
        run(4, |c| {
            let win = Window::allocate(&c, 4 * 8);
            for round in 0..20u64 {
                // all ranks put their (round-tagged) value to rank `round % 4`
                let target = (round % 4) as usize;
                win.put(target, c.rank() * 8, &(round * 10 + c.rank() as u64).to_le_bytes());
                win.fence(&c);
                if c.rank() == target {
                    win.with_local(c.rank(), |buf| {
                        for r in 0..4usize {
                            let v = u64::from_le_bytes(buf[r * 8..r * 8 + 8].try_into().unwrap());
                            assert_eq!(v, round * 10 + r as u64);
                        }
                    });
                }
                win.fence(&c);
            }
        });
    }

    #[test]
    fn multiple_windows_are_independent() {
        run(2, |c| {
            let w1 = Window::allocate(&c, 8);
            let w2 = Window::allocate(&c, 8);
            w1.put(0, 0, &[1; 8]);
            w2.put(0, 0, &[2; 8]);
            w1.fence(&c);
            w2.fence(&c);
            if c.rank() == 0 {
                assert_eq!(w1.read_local(0, 0, 8), vec![1; 8]);
                assert_eq!(w2.read_local(0, 0, 8), vec![2; 8]);
            }
            w1.fence(&c);
        });
    }

    #[test]
    fn window_over_subcomm() {
        run(6, |c| {
            let sub = c.split((c.rank() % 2) as u64);
            let win = Window::allocate(&sub, 3);
            win.put(0, sub.rank(), &[sub.rank() as u8]);
            win.fence(&sub);
            if sub.rank() == 0 {
                assert_eq!(win.read_local(0, 0, 3), vec![0, 1, 2]);
            }
            win.fence(&sub);
        });
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_window_records_puts_and_fences() {
        use tapioca_trace::{TraceOp, TraceScope, Tracer};
        let tracer = Tracer::new(2);
        let comms = make_world(2);
        let t2 = std::sync::Arc::clone(&tracer);
        std::thread::scope(|s| {
            for c in comms {
                let tracer = std::sync::Arc::clone(&t2);
                s.spawn(move || {
                    let mut win = Window::allocate(&c, 8);
                    win.set_trace_scope(TraceScope::new(tracer, c.rank(), 0, vec![0, 1]));
                    win.put(0, c.rank() * 4, &[c.rank() as u8; 4]);
                    win.fence(&c);
                });
            }
        });
        let trace = tracer.drain();
        let puts = trace.events().iter().filter(|e| e.op == TraceOp::RmaPut).count();
        let fences = trace.events().iter().filter(|e| e.op == TraceOp::Fence).count();
        assert_eq!(puts, 2);
        assert_eq!(fences, 2);
        assert!(trace.events().iter().filter(|e| e.op == TraceOp::RmaPut).all(|e| e.peer == 0));
    }

    #[test]
    fn into_variants_match_allocating_reads() {
        run(2, |c| {
            let win = Window::allocate(&c, 8);
            win.put(0, c.rank() * 4, &[c.rank() as u8 + 7; 4]);
            win.fence(&c);
            if c.rank() == 0 {
                let mut buf = [0u8; 8];
                win.read_local_into(0, 0, &mut buf);
                assert_eq!(buf.to_vec(), win.read_local(0, 0, 8));
            }
            win.fence(&c);
            let mut got = [0u8; 4];
            win.get_into(0, 4, &mut got);
            assert_eq!(got.to_vec(), win.get(0, 4, 4));
            assert_eq!(got, [8u8; 4]);
            win.fence(&c);
        });
    }

    #[test]
    fn paned_region_accesses_split_at_pane_boundaries() {
        run(2, |c| {
            // 32-byte regions in 10-byte panes: 4 panes (10/10/10/2).
            let win = Window::allocate_paned(&c, 32, 10);
            if c.rank() == 1 {
                let data: Vec<u8> = (0..24u8).collect();
                win.put(0, 5, &data); // crosses three pane boundaries
            }
            win.fence(&c);
            if c.rank() == 0 {
                assert_eq!(win.read_local(0, 5, 24), (0..24u8).collect::<Vec<u8>>());
                assert_eq!(win.read_local(0, 0, 5), vec![0u8; 5]);
                // in-place parts view sees the same bytes, pane-split
                let seg = win.segment(0, 5, 24);
                assert_eq!(seg.len(), 24);
                let mut parts = Vec::new();
                let ok: Result<(), ()> = seg.for_each_part(|p| {
                    parts.push(p.len());
                    Ok(())
                });
                ok.unwrap();
                assert_eq!(parts, vec![5, 10, 9], "pane-boundary split");
                assert_eq!(seg.to_bytes(), (0..24u8).collect::<Vec<u8>>());
            }
            win.fence(&c);
        });
    }

    #[test]
    fn put_from_copies_between_windows() {
        run(2, |c| {
            let gather = Window::allocate_paned(&c, 16, 4);
            let agg = Window::allocate_paned(&c, 32, 16);
            if c.rank() == 1 {
                gather.put(1, 2, &[7u8; 12]);
                agg.put_from(0, 18, &gather, 1, 2, 12, 3, 1);
            }
            agg.fence(&c);
            if c.rank() == 0 {
                assert_eq!(agg.read_local(0, 18, 12), vec![7u8; 12]);
            }
            agg.fence(&c);
        });
    }

    #[test]
    fn deposit_board_rendezvous() {
        run(4, |c| {
            let board = DepositBoard::allocate(&c);
            // everyone (rank 0 included) deposits twice with rank 0
            board.add(0, 1);
            let n = board.add(0, 1);
            assert!((1..=8).contains(&n), "running count stays in range");
            if c.rank() == 0 {
                board.wait_until(0, 8);
                board.sub(0, 8); // retire the round: count is per-round
            }
            c.barrier();
        });
    }

    #[test]
    fn deposit_board_completer_detection() {
        run(3, |c| {
            let board = DepositBoard::allocate(&c);
            // Exactly one depositor observes the final count and
            // becomes the completer; it retires the round with sub.
            let completed = board.add(1, 1) == 3;
            if completed {
                board.sub(1, 3);
            }
            c.barrier();
            // After retirement the next round starts from zero.
            let n = board.add(1, 1);
            assert!((1..=3).contains(&n));
            c.barrier();
        });
    }

    #[test]
    #[should_panic(expected = "exceeds window region")]
    fn oversized_get_into_panics() {
        let comms = make_world(1);
        let c = comms.into_iter().next().unwrap();
        let win = Window::allocate(&c, 4);
        let mut buf = [0u8; 4];
        win.get_into(0, 2, &mut buf);
    }

    #[test]
    #[should_panic(expected = "exceeds window region")]
    fn oversized_put_panics() {
        let comms = make_world(1);
        let c = comms.into_iter().next().unwrap();
        let win = Window::allocate(&c, 4);
        win.put(0, 2, &[0; 4]);
    }
}
