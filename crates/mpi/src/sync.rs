//! Reusable synchronization primitives.
//!
//! The central piece is a **sense-reversing barrier** built on a mutex
//! and condvar (see *Rust Atomics and Locks*, ch. 9 for the pattern
//! trade-offs). `std::sync::Barrier` would also work, but we need
//! subgroup barriers created dynamically for split communicators, a
//! barrier that hands back the generation for debugging, and a watchdog
//! deadline so a deadlocked collective fails with a diagnosis instead
//! of hanging CI forever.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A reusable N-party barrier.
///
/// Release/acquire ordering through the internal mutex guarantees that
/// writes made before `wait` by any party are visible to all parties
/// after `wait` returns.
#[derive(Debug)]
pub struct Barrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
    /// Watchdog deadline per `wait` call; `None` waits forever.
    timeout: Option<Duration>,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl Barrier {
    /// Create a barrier for `n` parties with no watchdog.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_timeout(n, None)
    }

    /// Create a barrier for `n` parties; a party that waits longer than
    /// `timeout` panics with a named-rank diagnosis.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn with_timeout(n: usize, timeout: Option<Duration>) -> Self {
        assert!(n > 0, "barrier needs at least one party");
        Self {
            n,
            state: Mutex::new(BarrierState { arrived: 0, generation: 0 }),
            cv: Condvar::new(),
            timeout,
        }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Block until all `n` parties have called `wait`; returns the
    /// generation index that just completed (starting at 0).
    ///
    /// # Panics
    /// Panics with a deadlock diagnosis if the barrier's watchdog
    /// timeout elapses before all parties arrive.
    pub fn wait(&self) -> u64 {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
        } else {
            let deadline = self.timeout.map(|t| Instant::now() + t);
            while st.generation == gen {
                match deadline {
                    None => st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            let who = std::thread::current();
                            panic!(
                                "watchdog: {} stuck in barrier for {:?} \
                                 ({}/{} parties arrived, generation {})",
                                who.name().unwrap_or("<unnamed thread>"),
                                self.timeout.expect("deadline implies a configured timeout"),
                                st.arrived,
                                self.n,
                                gen,
                            );
                        }
                        let (g, _timed_out) = self.cv.wait_timeout(st, d - now).unwrap_or_else(std::sync::PoisonError::into_inner);
                        st = g;
                    }
                }
            }
        }
        gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = Barrier::new(1);
        assert_eq!(b.wait(), 0);
        assert_eq!(b.wait(), 1);
    }

    #[test]
    fn all_parties_see_prior_writes() {
        let n = 8;
        let b = Arc::new(Barrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let c = Arc::clone(&counter);
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    // every increment happened-before the barrier exit
                    assert_eq!(c.load(Ordering::Relaxed), n);
                });
            }
        });
    }

    #[test]
    fn reusable_many_generations() {
        let n = 4;
        let rounds = 200;
        let b = Arc::new(Barrier::new(n));
        let shared = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let sh = Arc::clone(&shared);
                s.spawn(move || {
                    for r in 0..rounds {
                        sh.fetch_add(1, Ordering::Relaxed);
                        let gen = b.wait();
                        assert_eq!(gen, r as u64 * 2);
                        assert_eq!(sh.load(Ordering::Relaxed), (r + 1) * n);
                        let gen = b.wait(); // second barrier guards the read phase
                        assert_eq!(gen, r as u64 * 2 + 1);
                    }
                });
            }
        });
    }

    #[test]
    fn timed_barrier_still_completes() {
        let n = 4;
        let b = Arc::new(Barrier::with_timeout(n, Some(Duration::from_secs(30))));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    assert_eq!(b.wait(), 0);
                });
            }
        });
    }

    #[test]
    fn watchdog_fires_on_missing_party() {
        let b = Barrier::with_timeout(2, Some(Duration::from_millis(50)));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait()))
            .expect_err("lone party must time out");
        let msg = err.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("watchdog"), "unexpected message: {msg}");
        assert!(msg.contains("1/2 parties"), "unexpected message: {msg}");
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_panics() {
        Barrier::new(0);
    }
}
