//! Reusable synchronization primitives.
//!
//! The central piece is a **sense-reversing barrier** built on a mutex
//! and condvar (see *Rust Atomics and Locks*, ch. 9 for the pattern
//! trade-offs). `std::sync::Barrier` would also work, but we need
//! subgroup barriers created dynamically for split communicators and a
//! barrier that hands back the generation for debugging.

use parking_lot::{Condvar, Mutex};

/// A reusable N-party barrier.
///
/// Release/acquire ordering through the internal mutex guarantees that
/// writes made before `wait` by any party are visible to all parties
/// after `wait` returns.
#[derive(Debug)]
pub struct Barrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl Barrier {
    /// Create a barrier for `n` parties.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one party");
        Self {
            n,
            state: Mutex::new(BarrierState { arrived: 0, generation: 0 }),
            cv: Condvar::new(),
        }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Block until all `n` parties have called `wait`; returns the
    /// generation index that just completed (starting at 0).
    pub fn wait(&self) -> u64 {
        let mut st = self.state.lock();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
        } else {
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
        }
        gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = Barrier::new(1);
        assert_eq!(b.wait(), 0);
        assert_eq!(b.wait(), 1);
    }

    #[test]
    fn all_parties_see_prior_writes() {
        let n = 8;
        let b = Arc::new(Barrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let c = Arc::clone(&counter);
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    // every increment happened-before the barrier exit
                    assert_eq!(c.load(Ordering::Relaxed), n);
                });
            }
        });
    }

    #[test]
    fn reusable_many_generations() {
        let n = 4;
        let rounds = 200;
        let b = Arc::new(Barrier::new(n));
        let shared = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let sh = Arc::clone(&shared);
                s.spawn(move || {
                    for r in 0..rounds {
                        sh.fetch_add(1, Ordering::Relaxed);
                        let gen = b.wait();
                        assert_eq!(gen, r as u64 * 2);
                        assert_eq!(sh.load(Ordering::Relaxed), (r + 1) * n);
                        let gen = b.wait(); // second barrier guards the read phase
                        assert_eq!(gen, r as u64 * 2 + 1);
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_panics() {
        Barrier::new(0);
    }
}
