//! # tapioca-mpi
//!
//! An in-process MPI-like runtime: ranks are OS threads inside one
//! process, communicators provide the collectives TAPIOCA needs
//! (barrier, broadcast, allgather, allreduce with MINLOC), one-sided
//! **RMA windows** provide `put` + `fence` epochs, and **shared files**
//! provide positioned writes with non-blocking flushes.
//!
//! This is the substitute for the paper's MPI substrate (MPICH2 on Mira,
//! Cray MPI on Theta): the TAPIOCA algorithm — Algorithm 3's fence-driven
//! double buffering, the MINLOC aggregator election — runs *unmodified*
//! on these primitives, with real threads racing through real memory, so
//! ordering bugs are observable instead of simulated away.
//!
//! ## Semantics guaranteed
//!
//! * [`comm::Comm::barrier`] is a reusable sense-reversing barrier; all
//!   memory writes made by a rank before the barrier are visible to every
//!   rank after it (mutex release/acquire ordering).
//! * [`rma::Window::fence`] closes an RMA epoch: all `put`s issued before
//!   the fence are deposited in the target buffers and visible to every
//!   member after the fence returns — MPI_Win_fence semantics.
//! * [`file::SharedFile::iwrite_at`] is a non-blocking positioned write
//!   served by a dedicated I/O thread per file; [`file::IoHandle::wait`]
//!   blocks until durable in the page cache (matching the paper's use of
//!   non-blocking MPI I/O to overlap aggregation with flushes).
//!
//! ## What is deliberately simplified
//!
//! * Transport is shared memory, not a NIC: bandwidth/latency modelling
//!   lives in `tapioca-netsim`, not here. This runtime answers "is the
//!   algorithm correct", the simulator answers "how fast is it at scale".
//! * `put` serializes per target buffer with a lock. MPI makes
//!   overlapping concurrent puts undefined; TAPIOCA's schedule only
//!   issues disjoint puts, so a lock costs correctness nothing.

//! ## Schedule perturbation
//!
//! [`runtime::Runtime::run_perturbed`] runs the same SPMD closure under
//! a seeded [`perturb::Perturber`]: every synchronization boundary may
//! yield, spin, or briefly sleep, pushing the ranks through different
//! interleavings. Combined with event tracing and the `tapioca-check`
//! protocol checker, this is a lightweight schedule-exploration harness
//! ("loom-lite") for the pipeline's ordering invariants.

pub mod comm;
pub mod fault;
pub mod file;
pub mod p2p;
pub mod perturb;
pub mod rma;
pub mod runtime;
pub mod sync;

pub use comm::Comm;
pub use fault::{FaultHint, FaultPlan, FaultSpec, IoError, IoPolicy};
pub use file::{IoHandle, JobData, SharedFile};
pub use perturb::Perturber;
pub use rma::{DepositBoard, WinSegment, Window};
pub use runtime::Runtime;

/// Lock a mutex, recovering from poisoning.
///
/// A poisoned lock means another rank's thread panicked while holding
/// it. The state protected by these mutexes is plain data with no
/// partial invariants held across a panic point (slot vectors, channel
/// ends, notification flags), so the guard is recovered instead of
/// cascading the abort into every other rank — the panicking rank
/// already takes the run down through the runtime's join.
pub(crate) fn lock_ok<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Rank index within a communicator (0-based, dense).
pub type Rank = usize;

/// Message tag for point-to-point matching.
pub type Tag = u64;
