//! Deterministic fault injection for both executors.
//!
//! A [`FaultPlan`] is a *seeded, declarative* description of the faults a
//! run should experience: an aggregator crash at a given round, transient
//! flush errors with some probability, file-worker slowdowns or stalls,
//! and fabric-wide link degradation. The plan is carried on the library
//! configuration and consulted *purely* — every rank (and the simulator)
//! derives the identical fault schedule from `(seed, partition, round,
//! segment, attempt)`, so recovery decisions are collectively computable
//! with zero extra messaging and recovery can never deadlock the
//! collectives.
//!
//! The thread runtime consumes the plan in the file worker (bounded retry
//! with exponential backoff under an [`IoPolicy`]) and in the aggregation
//! pipeline (re-election after a crash, graceful degradation when the
//! retry budget is exhausted). The simulator consumes the *same* plan to
//! perturb link rates and completion events, so recovery cost is
//! measurable with matching semantics.

use std::io::ErrorKind;
use std::time::Duration;

/// Retry/timeout policy of the non-blocking file worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPolicy {
    /// Retries after the first failed attempt (so a write gets
    /// `max_retries + 1` attempts in total).
    pub max_retries: u32,
    /// Backoff before retry `a` is `base_backoff * 2^a` (capped at
    /// `2^10`).
    pub base_backoff: Duration,
    /// Budget for waiting on one in-flight operation; a drain that
    /// exceeds it reports [`IoError::Timeout`] instead of blocking
    /// forever on a stalled device.
    pub op_timeout: Duration,
}

impl Default for IoPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            op_timeout: Duration::from_secs(30),
        }
    }
}

/// Backoff before retry attempt `attempt` (0-based) under `policy`.
pub fn backoff(policy: &IoPolicy, attempt: u32) -> Duration {
    policy.base_backoff.saturating_mul(1u32 << attempt.min(10))
}

/// One declared fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// The elected aggregator of `partition` fails at round `round`:
    /// its round-`round` fill is lost and a standby is re-elected
    /// (ignored for single-member partitions, which have no standby).
    AggregatorCrash { partition: u32, round: u32 },
    /// Each flush attempt fails independently with `probability`
    /// (seeded, so both executors see the same attempt outcomes).
    TransientFlushError { probability: f64 },
    /// Every flush in `partition` (or everywhere, `None`) takes `delay`
    /// longer per attempt.
    FlushSlowdown { partition: Option<u32>, delay: Duration },
    /// The flushes of `(partition, round)` never succeed — the
    /// retry budget is guaranteed to exhaust and the partition
    /// degrades to direct per-rank writes.
    FlushStall { partition: u32, round: u32 },
    /// Scale all fabric link capacities by `factor` (simulation mode
    /// only; `0 < factor <= 1`).
    LinkDegrade { factor: f64 },
}

/// Deterministic per-flush fault resolution: how many leading attempts
/// fail and how much injected latency each attempt carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultHint {
    /// Attempts `0..fail_attempts` fail; `u32::MAX` means the operation
    /// never succeeds (a stall).
    pub fail_attempts: u32,
    /// Injected latency per attempt.
    pub delay: Duration,
}

impl FaultHint {
    /// Whether this fault exhausts the retry budget of `policy`.
    pub fn exceeds(&self, policy: &IoPolicy) -> bool {
        self.fail_attempts > policy.max_retries
    }

    /// Extra latency the retry loop adds before the write lands, for a
    /// *within-budget* fault: per-attempt delays plus the backoffs
    /// between attempts. The simulator charges exactly this, so both
    /// executors agree on recovery cost.
    pub fn penalty(&self, policy: &IoPolicy) -> Duration {
        let fails = self.fail_attempts.min(policy.max_retries);
        let mut t = Duration::ZERO;
        for a in 0..=fails {
            t += self.delay;
            if a < fails {
                t += backoff(policy, a);
            }
        }
        t
    }
}

/// A seeded, declarative fault schedule (see module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the per-attempt coin flips of probabilistic specs.
    pub seed: u64,
    /// The declared faults; independent specs compose.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults (add specs with
    /// [`FaultPlan::with`]).
    pub fn seeded(seed: u64) -> Self {
        Self { seed, specs: Vec::new() }
    }

    /// Add one spec (builder-style).
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The crash round of `partition`'s aggregator, if one is declared.
    pub fn crash_at(&self, partition: u32) -> Option<u32> {
        self.specs.iter().find_map(|s| match s {
            FaultSpec::AggregatorCrash { partition: p, round } if *p == partition => Some(*round),
            _ => None,
        })
    }

    /// Resolve the fault affecting flush `segment` of `(partition,
    /// round)`; `None` when the flush is clean. Pure: every rank and the
    /// simulator compute the identical answer.
    pub fn flush_fault(&self, partition: u32, round: u32, segment: u32) -> Option<FaultHint> {
        let mut hint = FaultHint::default();
        for s in &self.specs {
            match s {
                FaultSpec::TransientFlushError { probability } => {
                    // Consecutive leading attempt failures; a run of 64
                    // only happens when probability ~= 1, which we treat
                    // as a permanent failure.
                    let mut fails = 0u32;
                    while fails < 64
                        && unit_hash(self.seed, partition, round, segment, fails) < *probability
                    {
                        fails += 1;
                    }
                    if fails == 64 {
                        fails = u32::MAX;
                    }
                    hint.fail_attempts = hint.fail_attempts.max(fails);
                }
                FaultSpec::FlushSlowdown { partition: p, delay }
                    if p.is_none() || *p == Some(partition) =>
                {
                    hint.delay += *delay;
                }
                FaultSpec::FlushStall { partition: p, round: r }
                    if *p == partition && *r == round =>
                {
                    hint.fail_attempts = u32::MAX;
                }
                _ => {}
            }
        }
        (hint != FaultHint::default()).then_some(hint)
    }

    /// Combined fabric capacity factor of all `LinkDegrade` specs.
    pub fn link_degrade(&self) -> Option<f64> {
        let mut factor = 1.0;
        let mut any = false;
        for s in &self.specs {
            if let FaultSpec::LinkDegrade { factor: f } = s {
                factor *= f;
                any = true;
            }
        }
        any.then_some(factor)
    }

    /// Validate spec parameters (probabilities in `[0, 1]`, degrade
    /// factors in `(0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        for s in &self.specs {
            match s {
                FaultSpec::TransientFlushError { probability }
                    if !(0.0..=1.0).contains(probability) =>
                {
                    return Err(format!("flush error probability {probability} not in [0, 1]"));
                }
                FaultSpec::LinkDegrade { factor } if !(*factor > 0.0 && *factor <= 1.0) => {
                    return Err(format!("link degrade factor {factor} not in (0, 1]"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Parse a compact CLI spec: comma-separated `key=value` items —
    /// `seed=N`, `crash=P@R` (partition P, round R), `flaky=PROB`,
    /// `slow=MS` or `slow=MS@P`, `stall=P@R`, `degrade=FACTOR`.
    ///
    /// Example: `seed=7,crash=0@1,flaky=0.25`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',').filter(|s| !s.is_empty()) {
            let (key, val) = item
                .split_once('=')
                .ok_or_else(|| format!("fault item `{item}` is not key=value"))?;
            let at = |v: &str| -> Result<(u32, u32), String> {
                let (a, b) =
                    v.split_once('@').ok_or_else(|| format!("`{v}` is not P@R"))?;
                Ok((
                    a.parse().map_err(|_| format!("bad partition `{a}`"))?,
                    b.parse().map_err(|_| format!("bad round `{b}`"))?,
                ))
            };
            match key {
                "seed" => plan.seed = val.parse().map_err(|_| format!("bad seed `{val}`"))?,
                "crash" => {
                    let (partition, round) = at(val)?;
                    plan.specs.push(FaultSpec::AggregatorCrash { partition, round });
                }
                "flaky" => {
                    let probability =
                        val.parse().map_err(|_| format!("bad probability `{val}`"))?;
                    plan.specs.push(FaultSpec::TransientFlushError { probability });
                }
                "slow" => {
                    let (ms, p) = match val.split_once('@') {
                        Some((ms, p)) => (
                            ms.parse().map_err(|_| format!("bad delay `{ms}`"))?,
                            Some(p.parse().map_err(|_| format!("bad partition `{p}`"))?),
                        ),
                        None => (val.parse().map_err(|_| format!("bad delay `{val}`"))?, None),
                    };
                    plan.specs.push(FaultSpec::FlushSlowdown {
                        partition: p,
                        delay: Duration::from_millis(ms),
                    });
                }
                "stall" => {
                    let (partition, round) = at(val)?;
                    plan.specs.push(FaultSpec::FlushStall { partition, round });
                }
                "degrade" => {
                    let factor = val.parse().map_err(|_| format!("bad factor `{val}`"))?;
                    plan.specs.push(FaultSpec::LinkDegrade { factor });
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// A failed or timed-out file operation, reported (not panicked) so the
/// caller can recover or degrade. Carries the source error's kind and
/// message rather than the `std::io::Error` itself so notifications can
/// cross the worker boundary by value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The retry budget is exhausted; `attempts` were made.
    Exhausted { op: &'static str, attempts: u32, kind: ErrorKind, msg: String },
    /// Waiting on an in-flight operation exceeded the op timeout.
    Timeout { op: &'static str, waited: Duration },
    /// The file's worker thread is gone (file closed mid-operation).
    Disconnected { op: &'static str },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Exhausted { op, attempts, kind, msg } => {
                write!(f, "{op} failed after {attempts} attempts ({kind:?}: {msg})")
            }
            IoError::Timeout { op, waited } => {
                write!(f, "{op} timed out after {waited:?}")
            }
            IoError::Disconnected { op } => write!(f, "{op}: I/O worker disconnected"),
        }
    }
}

impl std::error::Error for IoError {}

/// SplitMix64 finalizer over the fault coordinates, mapped to `[0, 1)`.
fn unit_hash(seed: u64, partition: u32, round: u32, segment: u32, attempt: u32) -> f64 {
    let mut z = seed
        .wrapping_add((partition as u64) << 48)
        .wrapping_add((round as u64) << 32)
        .wrapping_add((segment as u64) << 16)
        .wrapping_add(attempt as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_fault_is_deterministic() {
        let plan = FaultPlan::seeded(42).with(FaultSpec::TransientFlushError { probability: 0.5 });
        for p in 0..4 {
            for r in 0..4 {
                assert_eq!(plan.flush_fault(p, r, 0), plan.flush_fault(p, r, 0));
            }
        }
    }

    #[test]
    fn probability_extremes() {
        let never = FaultPlan::seeded(1).with(FaultSpec::TransientFlushError { probability: 0.0 });
        assert_eq!(never.flush_fault(0, 0, 0), None);
        let always =
            FaultPlan::seeded(1).with(FaultSpec::TransientFlushError { probability: 1.0 });
        let hint = always.flush_fault(0, 0, 0).expect("always faulty");
        assert!(hint.exceeds(&IoPolicy::default()));
    }

    #[test]
    fn stall_exhausts_any_budget() {
        let plan = FaultPlan::seeded(0).with(FaultSpec::FlushStall { partition: 2, round: 1 });
        let hint = plan.flush_fault(2, 1, 0).expect("stalled");
        assert_eq!(hint.fail_attempts, u32::MAX);
        assert!(hint.exceeds(&IoPolicy { max_retries: 1000, ..Default::default() }));
        assert_eq!(plan.flush_fault(2, 0, 0), None);
        assert_eq!(plan.flush_fault(1, 1, 0), None);
    }

    #[test]
    fn penalty_charges_delays_and_backoffs() {
        let policy = IoPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(2),
            op_timeout: Duration::from_secs(1),
        };
        let hint = FaultHint { fail_attempts: 2, delay: Duration::from_millis(5) };
        // 3 attempts x 5ms delay + backoffs 2ms + 4ms
        assert_eq!(hint.penalty(&policy), Duration::from_millis(15 + 6));
    }

    #[test]
    fn parse_roundtrip() {
        let plan = FaultPlan::parse("seed=7,crash=0@1,flaky=0.25,slow=3@1,degrade=0.5").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.crash_at(0), Some(1));
        assert_eq!(plan.crash_at(1), None);
        assert_eq!(plan.link_degrade(), Some(0.5));
        assert!(plan.specs.contains(&FaultSpec::FlushSlowdown {
            partition: Some(1),
            delay: Duration::from_millis(3),
        }));
        assert!(FaultPlan::parse("flaky=2.0").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("crash=zero@1").is_err());
    }

    #[test]
    fn link_degrade_composes() {
        let plan = FaultPlan::seeded(0)
            .with(FaultSpec::LinkDegrade { factor: 0.5 })
            .with(FaultSpec::LinkDegrade { factor: 0.5 });
        assert_eq!(plan.link_degrade(), Some(0.25));
        assert_eq!(FaultPlan::default().link_degrade(), None);
    }

    #[test]
    fn slowdowns_accumulate_and_scope() {
        let plan = FaultPlan::seeded(0)
            .with(FaultSpec::FlushSlowdown { partition: None, delay: Duration::from_millis(1) })
            .with(FaultSpec::FlushSlowdown {
                partition: Some(3),
                delay: Duration::from_millis(2),
            });
        assert_eq!(plan.flush_fault(3, 0, 0).unwrap().delay, Duration::from_millis(3));
        assert_eq!(plan.flush_fault(1, 0, 0).unwrap().delay, Duration::from_millis(1));
    }
}
