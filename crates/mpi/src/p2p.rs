//! Point-to-point messaging between ranks.
//!
//! Each ordered rank pair gets an unbounded channel created lazily; tag
//! matching is handled with a per-pair stash of not-yet-matched messages
//! (MPI's non-overtaking rule holds per (source, tag) because the stash
//! is scanned in arrival order).

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::{Rank, Tag};

type Msg = (Tag, Vec<u8>);

struct Pair {
    tx: Mutex<Sender<Msg>>,
    rx: Mutex<Receiver<Msg>>,
    /// Messages received but not yet matched by tag.
    stash: Mutex<VecDeque<Msg>>,
}

impl Pair {
    fn new() -> Self {
        let (tx, rx) = channel();
        Self { tx: Mutex::new(tx), rx: Mutex::new(rx), stash: Mutex::new(VecDeque::new()) }
    }
}

/// All point-to-point channels of a world.
#[derive(Default)]
pub struct Mailboxes {
    pairs: Mutex<HashMap<(Rank, Rank), Arc<Pair>>>,
    /// Watchdog: a blocking `recv` that waits longer than this panics
    /// with a deadlock diagnosis instead of hanging forever. `None`
    /// waits indefinitely.
    timeout: Option<Duration>,
}

impl std::fmt::Debug for Mailboxes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailboxes").field("timeout", &self.timeout).finish()
    }
}

impl Mailboxes {
    /// Create an empty mailbox table with no watchdog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty mailbox table whose blocking receives panic with
    /// a diagnosis after `timeout`.
    pub fn with_timeout(timeout: Option<Duration>) -> Self {
        Self { pairs: Mutex::new(HashMap::new()), timeout }
    }

    fn pair(&self, src: Rank, dst: Rank) -> Arc<Pair> {
        let mut m = crate::lock_ok(&self.pairs);
        Arc::clone(m.entry((src, dst)).or_insert_with(|| Arc::new(Pair::new())))
    }

    /// Send `bytes` from `src` to `dst` with `tag` (never blocks).
    pub fn send(&self, src: Rank, dst: Rank, tag: Tag, bytes: Vec<u8>) {
        let pair = self.pair(src, dst);
        crate::lock_ok(&pair.tx)
            .send((tag, bytes))
            .expect("receiver side of a mailbox never drops while the world lives");
    }

    /// Non-blocking receive: the next message from `src` to `dst`
    /// matching `tag`, or `None` if nothing has arrived yet.
    pub fn try_recv(&self, src: Rank, dst: Rank, tag: Tag) -> Option<Vec<u8>> {
        let pair = self.pair(src, dst);
        {
            let mut stash = crate::lock_ok(&pair.stash);
            if let Some(pos) = stash.iter().position(|(t, _)| *t == tag) {
                return Some(stash.remove(pos).expect("position valid").1);
            }
        }
        let rx = crate::lock_ok(&pair.rx);
        while let Ok((t, bytes)) = rx.try_recv() {
            if t == tag {
                return Some(bytes);
            }
            crate::lock_ok(&pair.stash).push_back((t, bytes));
        }
        None
    }

    /// Receive the next message from `src` to `dst` matching `tag`
    /// (blocks until one arrives).
    ///
    /// # Panics
    /// Panics with a deadlock diagnosis if the mailbox watchdog timeout
    /// elapses with no matching message.
    pub fn recv(&self, src: Rank, dst: Rank, tag: Tag) -> Vec<u8> {
        let pair = self.pair(src, dst);
        // Check earlier unmatched messages first (preserves order per tag).
        {
            let mut stash = crate::lock_ok(&pair.stash);
            if let Some(pos) = stash.iter().position(|(t, _)| *t == tag) {
                return stash.remove(pos).expect("position valid").1;
            }
        }
        let rx = crate::lock_ok(&pair.rx);
        loop {
            let msg = match self.timeout {
                None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                Some(t) => rx.recv_timeout(t),
            };
            match msg {
                Ok((t, bytes)) => {
                    if t == tag {
                        return bytes;
                    }
                    crate::lock_ok(&pair.stash).push_back((t, bytes));
                }
                Err(RecvTimeoutError::Timeout) => {
                    let who = std::thread::current();
                    panic!(
                        "watchdog: {} stuck in recv(src={src}, dst={dst}, tag={tag}) \
                         for {:?} with no matching message",
                        who.name().unwrap_or("<unnamed thread>"),
                        self.timeout.expect("timeout elapsed implies a configured timeout"),
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("sender side dropped while rank {dst} still waits on rank {src}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_recv() {
        let mb = Mailboxes::new();
        mb.send(0, 1, 7, vec![1, 2, 3]);
        assert_eq!(mb.recv(0, 1, 7), vec![1, 2, 3]);
    }

    #[test]
    fn tag_matching_skips_other_tags() {
        let mb = Mailboxes::new();
        mb.send(0, 1, 7, vec![7]);
        mb.send(0, 1, 9, vec![9]);
        assert_eq!(mb.recv(0, 1, 9), vec![9]);
        assert_eq!(mb.recv(0, 1, 7), vec![7]);
    }

    #[test]
    fn per_tag_order_is_preserved() {
        let mb = Mailboxes::new();
        mb.send(0, 1, 5, vec![1]);
        mb.send(0, 1, 6, vec![2]);
        mb.send(0, 1, 5, vec![3]);
        assert_eq!(mb.recv(0, 1, 5), vec![1]);
        assert_eq!(mb.recv(0, 1, 5), vec![3]);
        assert_eq!(mb.recv(0, 1, 6), vec![2]);
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let mb = std::sync::Arc::new(Mailboxes::new());
        let mb2 = std::sync::Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.recv(3, 4, 1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.send(3, 4, 1, vec![42]);
        assert_eq!(h.join().unwrap(), vec![42]);
    }

    #[test]
    fn try_recv_returns_none_then_message() {
        let mb = Mailboxes::new();
        assert_eq!(mb.try_recv(0, 1, 5), None);
        mb.send(0, 1, 9, vec![9]);
        assert_eq!(mb.try_recv(0, 1, 5), None, "wrong tag stays stashed");
        mb.send(0, 1, 5, vec![5]);
        assert_eq!(mb.try_recv(0, 1, 5), Some(vec![5]));
        assert_eq!(mb.try_recv(0, 1, 9), Some(vec![9]), "stashed message still delivered");
    }

    #[test]
    fn distinct_pairs_do_not_interfere() {
        let mb = Mailboxes::new();
        mb.send(0, 1, 1, vec![1]);
        mb.send(1, 0, 1, vec![2]);
        assert_eq!(mb.recv(1, 0, 1), vec![2]);
        assert_eq!(mb.recv(0, 1, 1), vec![1]);
    }

    #[test]
    fn recv_watchdog_fires_with_diagnosis() {
        let mb = Mailboxes::with_timeout(Some(Duration::from_millis(50)));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mb.recv(0, 1, 9)))
            .expect_err("empty mailbox must time out");
        let msg = err.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains("watchdog"), "unexpected message: {msg}");
        assert!(msg.contains("tag=9"), "unexpected message: {msg}");
    }
}
