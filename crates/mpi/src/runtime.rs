//! The runtime harness: spawn N ranks as threads and run an SPMD closure.

use crate::comm::{make_world, Comm};

/// Entry point for running SPMD code on the in-process runtime.
pub struct Runtime;

impl Runtime {
    /// Spawn `n` ranks, run `f(comm)` on each, and return the results in
    /// rank order. Panics in any rank propagate (failing the test that
    /// drove them) after all threads are joined by the scope.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(n > 0, "need at least one rank");
        let comms = make_world(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|c| s.spawn(|| f(c)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // re-raise with the original payload so callers (and
                    // #[should_panic] tests) see the rank's own message
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = Runtime::run(6, |c| c.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn spmd_pipeline_with_collectives() {
        let out = Runtime::run(5, |c| {
            let total = c.allreduce_sum_u64(c.rank() as u64 + 1);
            c.barrier();
            total
        });
        assert!(out.iter().all(|&t| t == 15));
    }

    #[test]
    fn single_rank_world() {
        let out = Runtime::run(1, |c| {
            assert_eq!(c.size(), 1);
            c.allreduce_min_loc(1.5)
        });
        assert_eq!(out, vec![(1.5, 0)]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Runtime::run(0, |_| ());
    }
}
