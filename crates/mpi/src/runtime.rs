//! The runtime harness: spawn N ranks as threads and run an SPMD closure.

use std::time::Duration;

use crate::comm::{make_world_perturbed, make_world_with_watchdog, Comm};
use crate::perturb::Perturber;

/// Default watchdog deadline, overridable via `TAPIOCA_WATCHDOG_SECS`
/// (`0` disables the watchdog entirely).
const DEFAULT_WATCHDOG_SECS: u64 = 120;

/// Resolve the watchdog from the env var's value, warning (once per
/// call) on unparseable input instead of silently using the default.
fn watchdog_from_env(var: Result<String, std::env::VarError>) -> Option<Duration> {
    match var {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) => None,
            Ok(secs) => Some(Duration::from_secs(secs)),
            Err(_) => {
                eprintln!(
                    "tapioca-mpi: warning: TAPIOCA_WATCHDOG_SECS={v:?} is not a \
                     non-negative integer; using default of {DEFAULT_WATCHDOG_SECS} s"
                );
                Some(Duration::from_secs(DEFAULT_WATCHDOG_SECS))
            }
        },
        Err(_) => Some(Duration::from_secs(DEFAULT_WATCHDOG_SECS)),
    }
}

fn default_watchdog() -> Option<Duration> {
    watchdog_from_env(std::env::var("TAPIOCA_WATCHDOG_SECS"))
}

/// Entry point for running SPMD code on the in-process runtime.
#[derive(Debug)]
pub struct Runtime;

impl Runtime {
    /// Spawn `n` ranks, run `f(comm)` on each, and return the results in
    /// rank order. Panics in any rank propagate (failing the test that
    /// drove them) after all threads are joined by the scope.
    ///
    /// A default watchdog (120 s, or `TAPIOCA_WATCHDOG_SECS`) guards
    /// every blocking barrier and receive: a deadlocked collective
    /// panics with the stuck rank's name and wait state instead of
    /// hanging forever.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        Self::run_with_watchdog(n, default_watchdog(), f)
    }

    /// Like [`Runtime::run`] with an explicit watchdog deadline
    /// (`None` disables it).
    pub fn run_with_watchdog<T, F>(n: usize, watchdog: Option<Duration>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(n > 0, "need at least one rank");
        let comms = make_world_with_watchdog(n, watchdog);
        Self::drive(comms, f)
    }

    /// Like [`Runtime::run`], but with seeded schedule perturbation:
    /// every synchronization boundary (barrier, collective entry, RMA
    /// put/get, I/O worker dispatch) may yield, spin, or sleep, chosen
    /// by a SplitMix64 stream over `seed`. Different seeds drive the
    /// same program through different interleavings — the harness side
    /// of the `tapioca-check` protocol checker.
    pub fn run_perturbed<T, F>(n: usize, seed: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(n > 0, "need at least one rank");
        let comms = make_world_perturbed(n, default_watchdog(), Some(Perturber::new(seed)));
        Self::drive(comms, f)
    }

    fn drive<T, F>(comms: Vec<Comm>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|c| {
                    let rank = c.rank();
                    std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .spawn_scoped(s, || f(c))
                        .expect("spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // re-raise with the original payload so callers (and
                    // #[should_panic] tests) see the rank's own message
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = Runtime::run(6, |c| c.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn spmd_pipeline_with_collectives() {
        let out = Runtime::run(5, |c| {
            let total = c.allreduce_sum_u64(c.rank() as u64 + 1);
            c.barrier();
            total
        });
        assert!(out.iter().all(|&t| t == 15));
    }

    #[test]
    fn single_rank_world() {
        let out = Runtime::run(1, |c| {
            assert_eq!(c.size(), 1);
            c.allreduce_min_loc(1.5)
        });
        assert_eq!(out, vec![(1.5, 0)]);
    }

    #[test]
    fn rank_threads_are_named() {
        Runtime::run(3, |c| {
            let name = std::thread::current().name().map(str::to_owned);
            assert_eq!(name.as_deref(), Some(format!("rank-{}", c.rank()).as_str()));
        });
    }

    #[test]
    #[should_panic(expected = "watchdog")]
    fn deadlocked_barrier_names_the_stuck_rank() {
        // rank 1 never reaches the barrier: without a watchdog this
        // would hang forever, with one it panics with a diagnosis.
        Runtime::run_with_watchdog(2, Some(Duration::from_millis(100)), |c| {
            if c.rank() == 0 {
                c.barrier();
            }
        });
    }

    #[test]
    #[should_panic(expected = "stuck in recv")]
    fn deadlocked_recv_names_the_stuck_rank() {
        Runtime::run_with_watchdog(2, Some(Duration::from_millis(100)), |c| {
            if c.rank() == 0 {
                let _ = c.recv(1, 42); // rank 1 never sends
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Runtime::run(0, |_| ());
    }

    #[test]
    fn watchdog_env_parsing() {
        let secs = |d: Option<Duration>| d.map(|d| d.as_secs());
        // unset -> default
        assert_eq!(secs(watchdog_from_env(Err(std::env::VarError::NotPresent))), Some(120));
        // explicit value (whitespace tolerated)
        assert_eq!(secs(watchdog_from_env(Ok(" 7 ".into()))), Some(7));
        // zero disables
        assert_eq!(secs(watchdog_from_env(Ok("0".into()))), None);
        // garbage -> warn (on stderr) and fall back to the default,
        // rather than silently swallowing the typo
        assert_eq!(secs(watchdog_from_env(Ok("12s".into()))), Some(120));
        assert_eq!(secs(watchdog_from_env(Ok("-3".into()))), Some(120));
    }

    #[test]
    fn perturbed_run_matches_unperturbed_results() {
        let plain = Runtime::run(4, |c| c.allreduce_sum_u64(c.rank() as u64));
        for seed in [1u64, 2, 3] {
            let out = Runtime::run_perturbed(4, seed, |c| c.allreduce_sum_u64(c.rank() as u64));
            assert_eq!(out, plain);
        }
    }
}
