//! Shared files with positioned and non-blocking writes.
//!
//! Models the MPI I/O file interface TAPIOCA relies on: every rank can
//! write at an explicit offset of a shared file, and aggregators use the
//! *non-blocking* variant ([`SharedFile::iwrite_at`]) so the flush of one
//! buffer overlaps with the aggregation of the next — the paper's
//! double-buffer pipeline.
//!
//! Non-blocking writes are served by one dedicated I/O thread per file,
//! in submission order (MPI guarantees ordering of operations on a file
//! handle from one process; a single worker preserves it globally here,
//! which is stricter and therefore safe).
//!
//! The worker retries failed writes under an [`IoPolicy`] (bounded
//! attempts with exponential backoff); a [`FaultHint`] deterministically
//! injects failures and latency for fault-injection runs. Exhausted
//! retries and timed-out waits surface as [`IoError`] through the
//! [`IoHandle`] instead of aborting the rank.

use std::fs::{File, OpenOptions};
use std::io::ErrorKind;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::comm::{Comm, RegistryKind};
use crate::fault::{backoff, FaultHint, IoError, IoPolicy};
use crate::lock_ok;
use crate::perturb::Perturber;
use crate::rma::WinSegment;
#[cfg(feature = "trace")]
use tapioca_trace::TraceStamp;

/// Payload of a non-blocking write.
///
/// `Owned` is the classic staged path: the submitter hands the buffer
/// over and gets it back through [`IoHandle::wait_reclaim`]. `Segments`
/// is the zero-copy path: refcounted [`WinSegment`] views into RMA
/// window panes, drained in place by the worker — no payload copy is
/// made anywhere between the window and the file descriptor. Segment
/// submissions have no buffer to reclaim (`wait_reclaim` yields
/// `None`); on failure the submitter re-reads the window region for the
/// direct-write fallback, which holds the same bytes until the slot is
/// reused two rounds later.
#[derive(Debug)]
pub enum JobData {
    /// An owned buffer, returned to the submitter on completion.
    Owned(Vec<u8>),
    /// In-place window views, written back-to-back at the file offset.
    Segments(Vec<WinSegment>),
}

impl JobData {
    /// Total payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            JobData::Owned(d) => d.len(),
            JobData::Segments(s) => s.iter().map(WinSegment::len).sum(),
        }
    }

    /// Whether the payload carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for JobData {
    fn from(d: Vec<u8>) -> JobData {
        JobData::Owned(d)
    }
}

impl From<WinSegment> for JobData {
    fn from(s: WinSegment) -> JobData {
        JobData::Segments(vec![s])
    }
}

impl From<Vec<WinSegment>> for JobData {
    fn from(s: Vec<WinSegment>) -> JobData {
        JobData::Segments(s)
    }
}

/// Completion notification for a non-blocking write. Carries the
/// written buffer back so drain loops can recycle it, and the error
/// (if any) so callers can recover instead of aborting.
#[derive(Debug, Default)]
struct Notify {
    state: Mutex<NotifyState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct NotifyState {
    done: bool,
    /// The job's buffer, returned by the worker for reuse.
    reclaimed: Option<Vec<u8>>,
    /// Why the operation failed, when it did.
    error: Option<IoError>,
}

impl Notify {
    fn signal(&self, reclaimed: Option<Vec<u8>>, error: Option<IoError>) {
        let mut st = lock_ok(&self.state);
        st.done = true;
        st.reclaimed = reclaimed;
        st.error = error;
        self.cv.notify_all();
    }

    fn wait_take(&self) -> (Option<Vec<u8>>, Option<IoError>) {
        let mut st = lock_ok(&self.state);
        while !st.done {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        (st.reclaimed.take(), st.error.clone())
    }

    /// Like `wait_take` with a deadline; `Err(())` on timeout (the
    /// operation stays in flight — the worker still owns the buffer).
    fn wait_take_timeout(&self, limit: Duration) -> Result<(Option<Vec<u8>>, Option<IoError>), ()> {
        let deadline = std::time::Instant::now() + limit;
        let mut st = lock_ok(&self.state);
        while !st.done {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(());
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
        }
        Ok((st.reclaimed.take(), st.error.clone()))
    }

    fn is_done(&self) -> bool {
        lock_ok(&self.state).done
    }
}

/// Handle to an in-flight non-blocking write.
#[derive(Debug)]
pub struct IoHandle {
    notify: Arc<Notify>,
}

impl IoHandle {
    /// Block until the write has been applied to the file (or its retry
    /// budget exhausted).
    pub fn wait(self) -> Result<(), IoError> {
        match self.notify.wait_take() {
            (_, None) => Ok(()),
            (_, Some(e)) => Err(e),
        }
    }

    /// Block until the write has been applied, reclaiming its buffer for
    /// reuse (`None` for zero-byte flushes). The double-buffer drain
    /// loop uses this to refill windows without per-round allocation.
    /// The buffer is dropped on error; use [`IoHandle::wait_parts`] to
    /// keep it for a direct-write fallback.
    pub fn wait_reclaim(self) -> Result<Option<Vec<u8>>, IoError> {
        match self.notify.wait_take() {
            (buf, None) => Ok(buf),
            (_, Some(e)) => Err(e),
        }
    }

    /// Block until completion, returning both the reclaimed buffer and
    /// the error, if any. A failed write still hands its buffer back so
    /// the caller can fall back to a direct write of the same bytes.
    pub fn wait_parts(self) -> (Option<Vec<u8>>, Option<IoError>) {
        self.notify.wait_take()
    }

    /// [`IoHandle::wait_parts`] with a per-op deadline: after `limit`
    /// the wait reports [`IoError::Timeout`] instead of blocking forever
    /// on a stalled device (`None` disables the deadline). On timeout
    /// the operation stays in flight and the worker keeps the buffer.
    pub fn wait_parts_timeout(self, limit: Option<Duration>) -> (Option<Vec<u8>>, Option<IoError>) {
        match limit {
            None => self.notify.wait_take(),
            Some(l) => match self.notify.wait_take_timeout(l) {
                Ok(parts) => parts,
                Err(()) => (None, Some(IoError::Timeout { op: "iwrite_at", waited: l })),
            },
        }
    }

    /// Non-blocking [`IoHandle::wait_parts`]: if the operation already
    /// completed, returns its parts (reclaimed buffer and error, if
    /// any); otherwise hands the handle back untouched, still in
    /// flight. Streaming drain loops use this to reclaim the buffers
    /// of finished flushes opportunistically, without ever blocking
    /// the round pipeline on an operation that is not done yet.
    ///
    /// # Errors
    /// `Err(self)` when the operation is still in flight.
    pub fn try_parts(self) -> std::result::Result<(Option<Vec<u8>>, Option<IoError>), IoHandle> {
        if self.notify.is_done() {
            Ok(self.notify.wait_take())
        } else {
            Err(self)
        }
    }

    /// Non-consuming completion test.
    pub fn test(&self) -> bool {
        self.notify.is_done()
    }

    /// An already-completed handle (for zero-byte flushes).
    pub fn ready() -> Self {
        let notify = Arc::new(Notify::default());
        notify.signal(None, None);
        IoHandle { notify }
    }
}

struct Job {
    offset: u64,
    data: JobData,
    notify: Arc<Notify>,
    /// Retry budget and backoff for this operation.
    policy: IoPolicy,
    /// Deterministic fault injection: leading attempts that must fail
    /// and per-attempt latency.
    hint: Option<FaultHint>,
    /// When set, a flush-completion event is recorded after the write
    /// lands — from the worker thread, so the timestamp reflects the
    /// true end of the I/O, not its submission.
    #[cfg(feature = "trace")]
    stamp: Option<TraceStamp>,
}

#[derive(Debug)]
struct FileInner {
    file: File,
    tx: Mutex<Option<Sender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for FileInner {
    fn drop(&mut self) {
        // Closing the channel stops the worker after it drains the queue.
        lock_ok(&self.tx).take();
        if let Some(h) = lock_ok(&self.worker).take() {
            let _ = h.join();
        }
    }
}

/// Apply one payload at `offset`. Segment payloads are written part by
/// part at advancing offsets, each part read in place under its pane
/// lock. Safe to repeat on retry: the viewed window bytes are stable
/// until the submitter reuses the slot, which happens only after the
/// handle settles.
fn write_payload(worker_file: &File, data: &JobData, offset: u64) -> std::io::Result<()> {
    match data {
        JobData::Owned(d) => worker_file.write_all_at(d, offset),
        JobData::Segments(segs) => {
            let mut off = offset;
            for s in segs {
                s.for_each_part(|part| -> std::io::Result<()> {
                    worker_file.write_all_at(part, off)?;
                    off += part.len() as u64;
                    Ok(())
                })?;
            }
            Ok(())
        }
    }
}

/// Run one job's write with bounded retry; `None` on success.
fn run_job(worker_file: &File, job: &Job) -> Option<IoError> {
    let mut attempt: u32 = 0;
    loop {
        if let Some(h) = &job.hint {
            if !h.delay.is_zero() {
                std::thread::sleep(h.delay);
            }
        }
        let injected = job.hint.is_some_and(|h| attempt < h.fail_attempts);
        let res = if injected {
            Err(std::io::Error::new(ErrorKind::Interrupted, "injected transient flush failure"))
        } else {
            write_payload(worker_file, &job.data, job.offset)
        };
        match res {
            Ok(()) => return None,
            Err(e) => {
                if attempt >= job.policy.max_retries {
                    return Some(IoError::Exhausted {
                        op: "iwrite_at",
                        attempts: attempt + 1,
                        kind: e.kind(),
                        msg: e.to_string(),
                    });
                }
                let pause = backoff(&job.policy, attempt);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                attempt += 1;
            }
        }
    }
}

/// A file shared by all ranks of the process, with positioned I/O.
#[derive(Clone, Debug)]
pub struct SharedFile {
    inner: Arc<FileInner>,
}

impl SharedFile {
    /// Create (truncate) a file for read/write access.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<SharedFile> {
        Self::create_perturbed(path, None)
    }

    /// `create`, with the I/O worker hitting a perturbation point
    /// before each write.
    pub fn create_perturbed(
        path: impl AsRef<Path>,
        perturb: Option<Arc<Perturber>>,
    ) -> std::io::Result<SharedFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Self::from_file(file, perturb)
    }

    /// Open an existing file for read/write access.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<SharedFile> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Self::from_file(file, None)
    }

    fn from_file(file: File, perturb: Option<Arc<Perturber>>) -> std::io::Result<SharedFile> {
        let worker_file = file.try_clone()?;
        let (tx, rx) = channel::<Job>();
        let worker = std::thread::Builder::new()
            .name("tapioca-io".into())
            .spawn(move || {
                for job in rx {
                    if let Some(p) = &perturb {
                        p.point();
                    }
                    let error = run_job(&worker_file, &job);
                    // Record completion *before* signalling the handle:
                    // the flush event must land in the aggregator's trace
                    // lane ahead of anything ordered after `wait()` (in
                    // particular the release fence), or lane order stops
                    // being a happens-before witness for the checker.
                    // Failed writes are not durable and record nothing.
                    #[cfg(feature = "trace")]
                    if error.is_none() {
                        if let Some(stamp) = &job.stamp {
                            stamp.flush_done(job.offset, job.data.len() as u64);
                        }
                    }
                    let Job { data, notify, .. } = job;
                    // Only owned buffers come back; segment views simply
                    // drop their window refcounts.
                    let reclaimed = match data {
                        JobData::Owned(d) => Some(d),
                        JobData::Segments(_) => None,
                    };
                    notify.signal(reclaimed, error);
                }
            })?;
        Ok(SharedFile {
            inner: Arc::new(FileInner {
                file,
                tx: Mutex::new(Some(tx)),
                worker: Mutex::new(Some(worker)),
            }),
        })
    }

    /// Collectively open one shared file per communicator: every member
    /// passes the same `path`; exactly one OS file/worker is created.
    /// The worker inherits the world's perturber, if any.
    ///
    /// # Panics
    /// Panics when the file cannot be created: the open is collective
    /// (every member must receive the same handle), so there is no
    /// per-rank error to return without desynchronizing the group.
    pub fn open_shared(comm: &Comm, path: impl AsRef<Path>) -> SharedFile {
        let seq = comm.next_file_seq();
        let key = (comm.uid(), RegistryKind::File, seq, 0);
        let path = path.as_ref().to_path_buf();
        let perturb = comm.perturber();
        let shared = comm.world().get_or_create(key, move || {
            SharedFile::create_perturbed(&path, perturb).expect("create shared file")
        });
        comm.barrier(); // nobody writes before the file exists
        (*shared).clone()
    }

    /// Blocking positioned write.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> std::io::Result<()> {
        self.inner.file.write_all_at(data, offset)
    }

    /// Non-blocking positioned write: returns immediately; the I/O
    /// worker applies writes in submission order. Accepts an owned
    /// buffer (staged path) or [`WinSegment`] views (zero-copy path) —
    /// anything `Into<JobData>`.
    pub fn iwrite_at(&self, offset: u64, data: impl Into<JobData>) -> IoHandle {
        #[cfg(feature = "trace")]
        return self.submit(offset, data.into(), IoPolicy::default(), None, None);
        #[cfg(not(feature = "trace"))]
        self.submit(offset, data.into(), IoPolicy::default(), None)
    }

    /// Non-blocking vectored write of refcounted window views: the
    /// worker drains the segments in place, back to back starting at
    /// `offset`, without copying the payload out of the window.
    pub fn iwrite_at_vectored(&self, offset: u64, segments: Vec<WinSegment>) -> IoHandle {
        self.iwrite_at(offset, segments)
    }

    /// Non-blocking positioned write under an explicit retry policy,
    /// optionally with an injected fault.
    pub fn iwrite_at_policy(
        &self,
        offset: u64,
        data: impl Into<JobData>,
        policy: IoPolicy,
        hint: Option<FaultHint>,
        #[cfg(feature = "trace")] stamp: Option<TraceStamp>,
    ) -> IoHandle {
        #[cfg(feature = "trace")]
        return self.submit(offset, data.into(), policy, hint, stamp);
        #[cfg(not(feature = "trace"))]
        self.submit(offset, data.into(), policy, hint)
    }

    /// Non-blocking positioned write that records a flush-completion
    /// trace event (with the worker-side completion timestamp) when
    /// `stamp` is set.
    #[cfg(feature = "trace")]
    pub fn iwrite_at_traced(
        &self,
        offset: u64,
        data: impl Into<JobData>,
        stamp: Option<TraceStamp>,
    ) -> IoHandle {
        self.submit(offset, data.into(), IoPolicy::default(), None, stamp)
    }

    fn submit(
        &self,
        offset: u64,
        data: JobData,
        policy: IoPolicy,
        hint: Option<FaultHint>,
        #[cfg(feature = "trace")] stamp: Option<TraceStamp>,
    ) -> IoHandle {
        if data.is_empty() {
            return IoHandle::ready();
        }
        let notify = Arc::new(Notify::default());
        let handle = IoHandle { notify: Arc::clone(&notify) };
        let tx = lock_ok(&self.inner.tx);
        let sent = tx.as_ref().is_some_and(|t| {
            t.send(Job {
                offset,
                data,
                notify: Arc::clone(&notify),
                policy,
                hint,
                #[cfg(feature = "trace")]
                stamp,
            })
            .is_ok()
        });
        // A closed file or dead worker reports through the handle
        // instead of aborting the submitting rank.
        if !sent {
            handle.notify.signal(None, Some(IoError::Disconnected { op: "iwrite_at" }));
        }
        handle
    }

    /// Blocking positioned read of exactly `len` bytes.
    pub fn read_at(&self, offset: u64, len: usize) -> std::io::Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.inner.file.read_exact_at(&mut buf, offset)?;
        Ok(buf)
    }

    /// Current file length in bytes.
    pub fn len(&self) -> std::io::Result<u64> {
        Ok(self.inner.file.metadata()?.len())
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tapioca-mpi-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    /// `iwrite_at_policy` shim hiding the cfg-dependent stamp arg.
    fn iwrite_policy(
        f: &SharedFile,
        offset: u64,
        data: impl Into<JobData>,
        policy: IoPolicy,
        hint: Option<FaultHint>,
    ) -> IoHandle {
        #[cfg(feature = "trace")]
        return f.iwrite_at_policy(offset, data, policy, hint, None);
        #[cfg(not(feature = "trace"))]
        f.iwrite_at_policy(offset, data, policy, hint)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let f = SharedFile::create(tmp("rt")).unwrap();
        f.write_at(10, b"hello").unwrap();
        assert_eq!(f.read_at(10, 5).unwrap(), b"hello");
        assert_eq!(f.len().unwrap(), 15);
        assert!(!f.is_empty().unwrap());
    }

    #[test]
    fn iwrite_completes_and_is_ordered() {
        let f = SharedFile::create(tmp("iw")).unwrap();
        // Overlapping writes in submission order: the later one wins.
        let h1 = f.iwrite_at(0, vec![1u8; 8]);
        let h2 = f.iwrite_at(4, vec![2u8; 8]);
        assert!(!h2.test() || h2.test()); // test() callable before wait
        h1.wait().unwrap();
        h2.wait().unwrap();
        assert_eq!(f.read_at(0, 12).unwrap(), [1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn empty_iwrite_is_immediately_ready() {
        let f = SharedFile::create(tmp("empty")).unwrap();
        let h = f.iwrite_at(0, Vec::<u8>::new());
        assert!(h.test());
        h.wait().unwrap();
    }

    #[test]
    fn wait_reclaim_returns_the_buffer() {
        let f = SharedFile::create(tmp("reclaim")).unwrap();
        let h = f.iwrite_at(3, vec![9u8; 16]);
        let buf = h.wait_reclaim().unwrap().expect("non-empty write returns its buffer");
        assert_eq!(buf, vec![9u8; 16]);
        assert_eq!(f.read_at(3, 16).unwrap(), vec![9u8; 16]);
        // zero-byte flushes have no buffer to give back
        assert_eq!(f.iwrite_at(0, Vec::<u8>::new()).wait_reclaim().unwrap(), None);
    }

    #[test]
    fn try_parts_is_nonblocking() {
        let f = SharedFile::create(tmp("tryparts")).unwrap();
        // A stalled write is still in flight: try_parts hands the
        // handle back instead of blocking.
        let hint = FaultHint { fail_attempts: 0, delay: Duration::from_millis(100) };
        let h = iwrite_policy(&f, 0, vec![3u8; 8], IoPolicy::default(), Some(hint));
        let h = match h.try_parts() {
            Err(h) => h,
            Ok(_) => panic!("stalled write reported done immediately"),
        };
        h.wait().unwrap();
        // Once complete, try_parts returns the reclaimed buffer.
        let h2 = f.iwrite_at(16, vec![4u8; 8]);
        while !h2.test() {
            std::thread::sleep(Duration::from_millis(1));
        }
        match h2.try_parts() {
            Ok((buf, err)) => {
                assert_eq!(buf, Some(vec![4u8; 8]));
                assert!(err.is_none());
            }
            Err(_) => panic!("completed write still reported in flight"),
        }
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let f = SharedFile::create(tmp("conc")).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u8 {
                let f = f.clone();
                s.spawn(move || {
                    f.write_at(t as u64 * 100, &[t; 100]).unwrap();
                });
            }
        });
        for t in 0..8u8 {
            assert_eq!(f.read_at(t as u64 * 100, 100).unwrap(), vec![t; 100]);
        }
    }

    #[test]
    fn many_inflight_writes_drain_on_drop() {
        let path = tmp("drain");
        {
            let f = SharedFile::create(&path).unwrap();
            for i in 0..100u64 {
                f.iwrite_at(i * 4, (i as u32).to_le_bytes().to_vec());
            }
            // handles dropped without wait; Drop joins the worker
        }
        let f = SharedFile::open(&path).unwrap();
        for i in 0..100u64 {
            assert_eq!(f.read_at(i * 4, 4).unwrap(), (i as u32).to_le_bytes());
        }
    }

    #[test]
    fn transient_fault_within_budget_still_lands() {
        let f = SharedFile::create(tmp("transient")).unwrap();
        let policy = IoPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(10),
            op_timeout: Duration::from_secs(5),
        };
        let hint = FaultHint { fail_attempts: 2, delay: Duration::ZERO };
        let h = iwrite_policy(&f, 8, vec![5u8; 32], policy, Some(hint));
        assert_eq!(h.wait_reclaim().unwrap(), Some(vec![5u8; 32]));
        assert_eq!(f.read_at(8, 32).unwrap(), vec![5u8; 32]);
    }

    #[test]
    fn exhausted_budget_reports_and_returns_buffer() {
        let f = SharedFile::create(tmp("exhaust")).unwrap();
        let policy = IoPolicy {
            max_retries: 1,
            base_backoff: Duration::from_micros(10),
            op_timeout: Duration::from_secs(5),
        };
        let hint = FaultHint { fail_attempts: u32::MAX, delay: Duration::ZERO };
        let h = iwrite_policy(&f, 0, vec![7u8; 16], policy, Some(hint));
        let (buf, err) = h.wait_parts();
        // the buffer comes back for a direct-write fallback
        assert_eq!(buf, Some(vec![7u8; 16]));
        match err {
            Some(IoError::Exhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected Exhausted, got {other:?}"),
        }
        // nothing durable
        assert_eq!(f.len().unwrap(), 0);
    }

    #[test]
    fn stalled_wait_times_out() {
        let f = SharedFile::create(tmp("stall")).unwrap();
        let policy = IoPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            op_timeout: Duration::from_millis(5),
        };
        let hint = FaultHint { fail_attempts: 0, delay: Duration::from_millis(200) };
        let h = iwrite_policy(&f, 0, vec![1u8; 4], policy, Some(hint));
        let (buf, err) = h.wait_parts_timeout(Some(policy.op_timeout));
        assert_eq!(buf, None, "worker still owns the buffer");
        assert!(matches!(err, Some(IoError::Timeout { .. })), "got {err:?}");
        // the slow write still lands eventually (drop joins the worker)
        drop(f);
        let f = SharedFile::open(tmp("stall")).unwrap();
        assert_eq!(f.read_at(0, 4).unwrap(), vec![1u8; 4]);
    }

    #[test]
    fn vectored_iwrite_drains_window_in_place() {
        use crate::comm::make_world;
        use crate::rma::Window;
        let f = SharedFile::create(tmp("vectored")).unwrap();
        let c = make_world(1).into_iter().next().unwrap();
        // two-pane window: segments may span pane boundaries
        let win = Window::allocate_paned(&c, 32, 16);
        let payload: Vec<u8> = (0..32u8).collect();
        win.put(0, 0, &payload);
        // two views submitted as one vectored write: [8..24) then [24..32)
        let h = f.iwrite_at_vectored(100, vec![win.segment(0, 8, 16), win.segment(0, 24, 8)]);
        let reclaimed = h.wait_reclaim().unwrap();
        assert_eq!(reclaimed, None, "segment submissions have no buffer to give back");
        assert_eq!(f.read_at(100, 24).unwrap(), payload[8..32]);
    }

    #[test]
    fn failed_vectored_write_leaves_window_readable_for_fallback() {
        use crate::comm::make_world;
        use crate::rma::Window;
        let f = SharedFile::create(tmp("vecfail")).unwrap();
        let c = make_world(1).into_iter().next().unwrap();
        let win = Window::allocate(&c, 16);
        win.put(0, 0, &[6u8; 16]);
        let policy = IoPolicy {
            max_retries: 1,
            base_backoff: Duration::from_micros(10),
            op_timeout: Duration::from_secs(5),
        };
        let hint = FaultHint { fail_attempts: u32::MAX, delay: Duration::ZERO };
        let h = iwrite_policy(&f, 0, win.segment(0, 0, 16), policy, Some(hint));
        let (buf, err) = h.wait_parts();
        assert_eq!(buf, None);
        assert!(matches!(err, Some(IoError::Exhausted { .. })), "got {err:?}");
        // the submitter's fallback re-reads the same bytes from the window
        let mut d = [0u8; 16];
        win.read_local_into(0, 0, &mut d);
        assert_eq!(d, [6u8; 16]);
        assert_eq!(f.len().unwrap(), 0, "nothing durable");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_iwrite_records_completion() {
        use tapioca_trace::{TraceOp, TraceScope, Tracer};
        let tracer = Tracer::new(1);
        let scope = TraceScope::new(std::sync::Arc::clone(&tracer), 0, 2, vec![0]);
        scope.set_round(3);
        let f = SharedFile::create(tmp("traced")).unwrap();
        let h = f.iwrite_at_traced(96, vec![7u8; 64], Some(scope.stamp()));
        h.wait().unwrap();
        // the worker records the flush *before* signalling, so the event
        // is visible as soon as wait() returns
        let t = tracer.drain();
        let flush = t.events().iter().find(|e| e.op == TraceOp::Flush).expect("flush recorded");
        assert_eq!((flush.partition, flush.round, flush.bytes), (2, 3, 64));
        assert_eq!(flush.offset, 96);
    }
}
