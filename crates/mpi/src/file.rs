//! Shared files with positioned and non-blocking writes.
//!
//! Models the MPI I/O file interface TAPIOCA relies on: every rank can
//! write at an explicit offset of a shared file, and aggregators use the
//! *non-blocking* variant ([`SharedFile::iwrite_at`]) so the flush of one
//! buffer overlaps with the aggregation of the next — the paper's
//! double-buffer pipeline.
//!
//! Non-blocking writes are served by one dedicated I/O thread per file,
//! in submission order (MPI guarantees ordering of operations on a file
//! handle from one process; a single worker preserves it globally here,
//! which is stricter and therefore safe).

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::comm::{Comm, RegistryKind};
use crate::perturb::Perturber;
#[cfg(feature = "trace")]
use tapioca_trace::TraceStamp;

/// Completion notification for a non-blocking write. Carries the
/// written buffer back so drain loops can recycle it.
#[derive(Debug, Default)]
struct Notify {
    state: Mutex<NotifyState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct NotifyState {
    done: bool,
    /// The job's buffer, returned by the worker for reuse.
    reclaimed: Option<Vec<u8>>,
}

impl Notify {
    fn signal(&self, reclaimed: Option<Vec<u8>>) {
        let mut st = self.state.lock().unwrap();
        st.done = true;
        st.reclaimed = reclaimed;
        self.cv.notify_all();
    }

    fn wait_take(&self) -> Option<Vec<u8>> {
        let mut st = self.state.lock().unwrap();
        while !st.done {
            st = self.cv.wait(st).unwrap();
        }
        st.reclaimed.take()
    }

    fn is_done(&self) -> bool {
        self.state.lock().unwrap().done
    }
}

/// Handle to an in-flight non-blocking write.
#[derive(Debug)]
pub struct IoHandle {
    notify: Arc<Notify>,
}

impl IoHandle {
    /// Block until the write has been applied to the file.
    pub fn wait(self) {
        self.notify.wait_take();
    }

    /// Block until the write has been applied, reclaiming its buffer for
    /// reuse (`None` for zero-byte flushes). The double-buffer drain
    /// loop uses this to refill windows without per-round allocation.
    pub fn wait_reclaim(self) -> Option<Vec<u8>> {
        self.notify.wait_take()
    }

    /// Non-consuming completion test.
    pub fn test(&self) -> bool {
        self.notify.is_done()
    }

    /// An already-completed handle (for zero-byte flushes).
    pub fn ready() -> Self {
        let notify = Arc::new(Notify::default());
        notify.signal(None);
        IoHandle { notify }
    }
}

struct Job {
    offset: u64,
    data: Vec<u8>,
    notify: Arc<Notify>,
    /// When set, a flush-completion event is recorded after the write
    /// lands — from the worker thread, so the timestamp reflects the
    /// true end of the I/O, not its submission.
    #[cfg(feature = "trace")]
    stamp: Option<TraceStamp>,
}

#[derive(Debug)]
struct FileInner {
    file: File,
    tx: Mutex<Option<Sender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for FileInner {
    fn drop(&mut self) {
        // Closing the channel stops the worker after it drains the queue.
        self.tx.lock().unwrap().take();
        if let Some(h) = self.worker.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

/// A file shared by all ranks of the process, with positioned I/O.
#[derive(Clone, Debug)]
pub struct SharedFile {
    inner: Arc<FileInner>,
}

impl SharedFile {
    /// Create (truncate) a file for read/write access.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<SharedFile> {
        Self::create_perturbed(path, None)
    }

    /// `create`, with the I/O worker hitting a perturbation point
    /// before each write.
    pub fn create_perturbed(
        path: impl AsRef<Path>,
        perturb: Option<Arc<Perturber>>,
    ) -> std::io::Result<SharedFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self::from_file(file, perturb))
    }

    /// Open an existing file for read/write access.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<SharedFile> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Self::from_file(file, None))
    }

    fn from_file(file: File, perturb: Option<Arc<Perturber>>) -> SharedFile {
        let worker_file = file.try_clone().expect("clone file handle for I/O worker");
        let (tx, rx) = channel::<Job>();
        let worker = std::thread::Builder::new()
            .name("tapioca-io".into())
            .spawn(move || {
                for job in rx {
                    if let Some(p) = &perturb {
                        p.point();
                    }
                    worker_file
                        .write_all_at(&job.data, job.offset)
                        .expect("positioned write");
                    // Record completion *before* signalling the handle:
                    // the flush event must land in the aggregator's trace
                    // lane ahead of anything ordered after `wait()` (in
                    // particular the release fence), or lane order stops
                    // being a happens-before witness for the checker.
                    #[cfg(feature = "trace")]
                    if let Some(stamp) = &job.stamp {
                        stamp.flush_done(job.offset, job.data.len() as u64);
                    }
                    let Job { data, notify, .. } = job;
                    notify.signal(Some(data));
                }
            })
            .expect("spawn I/O worker");
        SharedFile {
            inner: Arc::new(FileInner {
                file,
                tx: Mutex::new(Some(tx)),
                worker: Mutex::new(Some(worker)),
            }),
        }
    }

    /// Collectively open one shared file per communicator: every member
    /// passes the same `path`; exactly one OS file/worker is created.
    /// The worker inherits the world's perturber, if any.
    pub fn open_shared(comm: &Comm, path: impl AsRef<Path>) -> SharedFile {
        let seq = comm.next_file_seq();
        let key = (comm.uid(), RegistryKind::File, seq, 0);
        let path = path.as_ref().to_path_buf();
        let perturb = comm.perturber();
        let shared = comm.world().get_or_create(key, move || {
            SharedFile::create_perturbed(&path, perturb).expect("create shared file")
        });
        comm.barrier(); // nobody writes before the file exists
        (*shared).clone()
    }

    /// Blocking positioned write.
    pub fn write_at(&self, offset: u64, data: &[u8]) {
        self.inner.file.write_all_at(data, offset).expect("positioned write");
    }

    /// Non-blocking positioned write: returns immediately; the I/O
    /// worker applies writes in submission order.
    pub fn iwrite_at(&self, offset: u64, data: Vec<u8>) -> IoHandle {
        #[cfg(feature = "trace")]
        return self.submit(offset, data, None);
        #[cfg(not(feature = "trace"))]
        self.submit(offset, data)
    }

    /// Non-blocking positioned write that records a flush-completion
    /// trace event (with the worker-side completion timestamp) when
    /// `stamp` is set.
    #[cfg(feature = "trace")]
    pub fn iwrite_at_traced(
        &self,
        offset: u64,
        data: Vec<u8>,
        stamp: Option<TraceStamp>,
    ) -> IoHandle {
        self.submit(offset, data, stamp)
    }

    fn submit(
        &self,
        offset: u64,
        data: Vec<u8>,
        #[cfg(feature = "trace")] stamp: Option<TraceStamp>,
    ) -> IoHandle {
        if data.is_empty() {
            return IoHandle::ready();
        }
        let notify = Arc::new(Notify::default());
        let handle = IoHandle { notify: Arc::clone(&notify) };
        let tx = self.inner.tx.lock().unwrap();
        tx.as_ref()
            .expect("file not closed")
            .send(Job {
                offset,
                data,
                notify,
                #[cfg(feature = "trace")]
                stamp,
            })
            .expect("I/O worker alive");
        handle
    }

    /// Blocking positioned read of exactly `len` bytes.
    pub fn read_at(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.inner.file.read_exact_at(&mut buf, offset).expect("positioned read");
        buf
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.inner.file.metadata().expect("stat").len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tapioca-mpi-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let f = SharedFile::create(tmp("rt")).unwrap();
        f.write_at(10, b"hello");
        assert_eq!(f.read_at(10, 5), b"hello");
        assert_eq!(f.len(), 15);
    }

    #[test]
    fn iwrite_completes_and_is_ordered() {
        let f = SharedFile::create(tmp("iw")).unwrap();
        // Overlapping writes in submission order: the later one wins.
        let h1 = f.iwrite_at(0, vec![1u8; 8]);
        let h2 = f.iwrite_at(4, vec![2u8; 8]);
        assert!(!h2.test() || h2.test()); // test() callable before wait
        h1.wait();
        h2.wait();
        assert_eq!(f.read_at(0, 12), [1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn empty_iwrite_is_immediately_ready() {
        let f = SharedFile::create(tmp("empty")).unwrap();
        let h = f.iwrite_at(0, vec![]);
        assert!(h.test());
        h.wait();
    }

    #[test]
    fn wait_reclaim_returns_the_buffer() {
        let f = SharedFile::create(tmp("reclaim")).unwrap();
        let h = f.iwrite_at(3, vec![9u8; 16]);
        let buf = h.wait_reclaim().expect("non-empty write returns its buffer");
        assert_eq!(buf, vec![9u8; 16]);
        assert_eq!(f.read_at(3, 16), vec![9u8; 16]);
        // zero-byte flushes have no buffer to give back
        assert_eq!(f.iwrite_at(0, vec![]).wait_reclaim(), None);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let f = SharedFile::create(tmp("conc")).unwrap();
        std::thread::scope(|s| {
            for t in 0..8u8 {
                let f = f.clone();
                s.spawn(move || {
                    f.write_at(t as u64 * 100, &[t; 100]);
                });
            }
        });
        for t in 0..8u8 {
            assert_eq!(f.read_at(t as u64 * 100, 100), vec![t; 100]);
        }
    }

    #[test]
    fn many_inflight_writes_drain_on_drop() {
        let path = tmp("drain");
        {
            let f = SharedFile::create(&path).unwrap();
            for i in 0..100u64 {
                f.iwrite_at(i * 4, (i as u32).to_le_bytes().to_vec());
            }
            // handles dropped without wait; Drop joins the worker
        }
        let f = SharedFile::open(&path).unwrap();
        for i in 0..100u64 {
            assert_eq!(f.read_at(i * 4, 4), (i as u32).to_le_bytes());
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_iwrite_records_completion() {
        use tapioca_trace::{TraceOp, TraceScope, Tracer};
        let tracer = Tracer::new(1);
        let scope = TraceScope::new(std::sync::Arc::clone(&tracer), 0, 2, vec![0]);
        scope.set_round(3);
        let f = SharedFile::create(tmp("traced")).unwrap();
        let h = f.iwrite_at_traced(96, vec![7u8; 64], Some(scope.stamp()));
        h.wait();
        // the worker records the flush *before* signalling, so the event
        // is visible as soon as wait() returns
        let t = tracer.drain();
        let flush = t.events().iter().find(|e| e.op == TraceOp::Flush).expect("flush recorded");
        assert_eq!((flush.partition, flush.round, flush.bytes), (2, 3, 64));
        assert_eq!(flush.offset, 96);
    }
}
