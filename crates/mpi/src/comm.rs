//! Communicators: rank groups with collectives.
//!
//! A [`Comm`] is a per-thread handle onto shared group state. Collectives
//! follow MPI semantics: every member must call the same collectives in
//! the same order; the implementation uses a shared slot vector bracketed
//! by two barrier phases (write / read), so a communicator's collectives
//! are reusable back-to-back without extra synchronization.

use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::p2p::Mailboxes;
use crate::perturb::Perturber;
use crate::sync::Barrier;
use crate::{Rank, Tag};

/// Kind discriminator for registry keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum RegistryKind {
    Split,
    Subgroup,
    Window,
    File,
}

/// Key identifying one shared object created collectively.
pub(crate) type RegistryKey = (u64, RegistryKind, u64, u64); // (comm uid, kind, seq, aux)

/// World-level shared state: mailboxes and the registry through which
/// collectives materialize shared objects (sub-communicators, windows,
/// shared files) exactly once per group.
pub struct WorldShared {
    pub(crate) mailboxes: Mailboxes,
    registry: Mutex<HashMap<RegistryKey, Arc<dyn Any + Send + Sync>>>,
    uid_counter: AtomicU64,
    /// Watchdog deadline for blocking collectives and receives created
    /// through this world; `None` disables the watchdog.
    pub(crate) watchdog: Option<Duration>,
    /// Schedule perturbation for this world, if any: synchronization
    /// boundaries (barriers, collectives, puts, fences, I/O dispatch)
    /// call [`Perturber::point`] before proceeding.
    pub(crate) perturb: Option<Arc<Perturber>>,
}

impl std::fmt::Debug for WorldShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldShared")
            .field("watchdog", &self.watchdog)
            .field("perturbed", &self.perturb.is_some())
            .finish()
    }
}

impl WorldShared {
    pub(crate) fn new_perturbed(
        watchdog: Option<Duration>,
        perturb: Option<Arc<Perturber>>,
    ) -> Arc<Self> {
        Arc::new(Self {
            mailboxes: Mailboxes::with_timeout(watchdog),
            registry: Mutex::new(HashMap::new()),
            uid_counter: AtomicU64::new(1),
            watchdog,
            perturb,
        })
    }

    pub(crate) fn next_uid(&self) -> u64 {
        self.uid_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Get or create the shared object for `key`. The first member to
    /// arrive runs `create`; everyone receives the same `Arc`.
    pub(crate) fn get_or_create<T, F>(&self, key: RegistryKey, create: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let mut reg = crate::lock_ok(&self.registry);
        let entry = reg
            .entry(key)
            .or_insert_with(|| Arc::new(create()) as Arc<dyn Any + Send + Sync>);
        Arc::clone(entry)
            .downcast::<T>()
            .expect("registry entry type matches its key kind")
    }
}

/// Group-level shared state of one communicator.
pub(crate) struct CommShared {
    /// Unique id of this communicator (stable across all members).
    pub(crate) uid: u64,
    /// World ranks of the members, ascending; `members[i]` is the world
    /// rank of comm rank `i`.
    pub(crate) members: Vec<Rank>,
    barrier: Barrier,
    slots: Mutex<Vec<Option<Vec<u8>>>>,
}

impl CommShared {
    fn new(uid: u64, members: Vec<Rank>, watchdog: Option<Duration>) -> Self {
        let n = members.len();
        Self {
            uid,
            members,
            barrier: Barrier::with_timeout(n, watchdog),
            slots: Mutex::new(vec![None; n]),
        }
    }
}

/// A per-thread communicator handle.
///
/// `Comm` is `Send` (it can be created in one scope and used by its
/// rank's thread) but deliberately not `Sync`: each rank owns exactly
/// one handle, mirroring MPI.
pub struct Comm {
    world: Arc<WorldShared>,
    shared: Arc<CommShared>,
    my_index: usize,
    split_calls: Cell<u64>,
    win_calls: Cell<u64>,
    file_calls: Cell<u64>,
    user_calls: Cell<u64>,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("uid", &self.shared.uid)
            .field("rank", &self.my_index)
            .field("size", &self.shared.members.len())
            .finish()
    }
}

impl Comm {
    pub(crate) fn new(world: Arc<WorldShared>, shared: Arc<CommShared>, my_index: usize) -> Self {
        Self {
            world,
            shared,
            my_index,
            split_calls: Cell::new(0),
            win_calls: Cell::new(0),
            file_calls: Cell::new(0),
            user_calls: Cell::new(0),
        }
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> Rank {
        self.my_index
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.shared.members.len()
    }

    /// World rank of this member.
    pub fn world_rank(&self) -> Rank {
        self.shared.members[self.my_index]
    }

    /// World rank of comm rank `r`.
    pub fn world_rank_of(&self, r: Rank) -> Rank {
        self.shared.members[r]
    }

    /// All members' world ranks, ascending.
    pub fn members(&self) -> &[Rank] {
        &self.shared.members
    }

    pub(crate) fn world(&self) -> &Arc<WorldShared> {
        &self.world
    }

    pub(crate) fn uid(&self) -> u64 {
        self.shared.uid
    }

    pub(crate) fn next_win_seq(&self) -> u64 {
        let s = self.win_calls.get();
        self.win_calls.set(s + 1);
        s
    }

    pub(crate) fn next_file_seq(&self) -> u64 {
        let s = self.file_calls.get();
        self.file_calls.set(s + 1);
        s
    }

    /// A per-communicator sequence number for caller-defined collective
    /// epochs. Every member calling the same collective protocol in the
    /// same order observes the same sequence (libraries like TAPIOCA use
    /// it to key their `subgroup` ids per `init` epoch).
    pub fn next_user_seq(&self) -> u64 {
        let s = self.user_calls.get();
        self.user_calls.set(s + 1);
        s
    }

    pub(crate) fn perturber(&self) -> Option<Arc<Perturber>> {
        self.world.perturb.clone()
    }

    /// One perturbation point, when this world is perturbed.
    fn perturb_point(&self) {
        if let Some(p) = &self.world.perturb {
            p.point();
        }
    }

    /// Block until every member has entered the barrier.
    pub fn barrier(&self) {
        self.perturb_point();
        self.shared.barrier.wait();
    }

    // ---- point-to-point -------------------------------------------------

    /// Tag space isolation between communicators.
    fn scoped_tag(&self, tag: Tag) -> Tag {
        self.shared.uid.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag
    }

    /// Send bytes to comm rank `dst` (non-blocking, buffered).
    pub fn send(&self, dst: Rank, tag: Tag, bytes: Vec<u8>) {
        let s = self.world_rank();
        let d = self.world_rank_of(dst);
        self.world.mailboxes.send(s, d, self.scoped_tag(tag), bytes);
    }

    /// Receive bytes from comm rank `src` (blocking).
    pub fn recv(&self, src: Rank, tag: Tag) -> Vec<u8> {
        let s = self.world_rank_of(src);
        let d = self.world_rank();
        self.world.mailboxes.recv(s, d, self.scoped_tag(tag))
    }

    /// Non-blocking receive from comm rank `src`.
    pub fn try_recv(&self, src: Rank, tag: Tag) -> Option<Vec<u8>> {
        let s = self.world_rank_of(src);
        let d = self.world_rank();
        self.world.mailboxes.try_recv(s, d, self.scoped_tag(tag))
    }

    /// All-to-all personalized exchange: `sends[d]` goes to comm rank
    /// `d`; returns one buffer per source rank. The workhorse of
    /// ROMIO-style two-phase redistribution.
    ///
    /// Collective: every member must call it with `sends.len() == size()`.
    pub fn alltoallv_bytes(&self, sends: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(sends.len(), self.size(), "one send buffer per member");
        const A2A_TAG: Tag = Tag::MAX - 1;
        for (d, bytes) in sends.into_iter().enumerate() {
            self.send(d, A2A_TAG, bytes);
        }
        (0..self.size()).map(|s| self.recv(s, A2A_TAG)).collect()
    }

    // ---- collectives ----------------------------------------------------

    /// Gather every member's byte vector; result indexed by comm rank.
    pub fn allgather_bytes(&self, mine: Vec<u8>) -> Vec<Vec<u8>> {
        self.perturb_point();
        {
            let mut slots = crate::lock_ok(&self.shared.slots);
            slots[self.my_index] = Some(mine);
        }
        self.shared.barrier.wait();
        let all: Vec<Vec<u8>> = {
            let slots = crate::lock_ok(&self.shared.slots);
            slots
                .iter()
                .map(|o| o.clone().expect("every member contributed"))
                .collect()
        };
        // Second phase: nobody overwrites a slot before all have read.
        self.shared.barrier.wait();
        all
    }

    /// Broadcast `bytes` from comm rank `root` to everyone.
    pub fn bcast(&self, root: Rank, bytes: Vec<u8>) -> Vec<u8> {
        if self.my_index == root {
            let mut slots = crate::lock_ok(&self.shared.slots);
            slots[root] = Some(bytes);
        }
        self.shared.barrier.wait();
        let out = {
            let slots = crate::lock_ok(&self.shared.slots);
            slots[root].clone().expect("root contributed")
        };
        self.shared.barrier.wait();
        out
    }

    /// Allgather of one `u64` per member.
    pub fn allgather_u64(&self, v: u64) -> Vec<u64> {
        self.allgather_bytes(v.to_le_bytes().to_vec())
            .into_iter()
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .collect()
    }

    /// `MPI_Allreduce(MPI_MINLOC)`: returns `(min value, comm rank of the
    /// owner)`. Ties resolve to the lowest rank, like MPI.
    pub fn allreduce_min_loc(&self, value: f64) -> (f64, Rank) {
        let all = self.allgather_bytes(value.to_le_bytes().to_vec());
        let mut best = (f64::INFINITY, usize::MAX);
        for (r, b) in all.into_iter().enumerate() {
            let v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
            if v < best.0 || (v == best.0 && r < best.1) {
                best = (v, r);
            }
        }
        best
    }

    /// Sum of one `u64` per member.
    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        self.allgather_u64(v).into_iter().sum()
    }

    /// Max of one `u64` per member.
    pub fn allreduce_max_u64(&self, v: u64) -> u64 {
        self.allgather_u64(v).into_iter().max().expect("non-empty comm")
    }

    /// Max of one `f64` per member.
    pub fn allreduce_max_f64(&self, v: f64) -> f64 {
        self.allgather_bytes(v.to_le_bytes().to_vec())
            .into_iter()
            .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Generic allreduce over per-member byte payloads: gather, then
    /// fold in rank order (deterministic for non-commutative ops).
    pub fn allreduce_bytes(
        &self,
        mine: Vec<u8>,
        op: impl Fn(Vec<u8>, &[u8]) -> Vec<u8>,
    ) -> Vec<u8> {
        let mut all = self.allgather_bytes(mine).into_iter();
        let first = all.next().expect("non-empty comm");
        all.fold(first, |acc, x| op(acc, &x))
    }

    /// Exclusive prefix sum of one `u64` per member (`MPI_Exscan`):
    /// rank r receives the sum over ranks `0..r` (0 for rank 0).
    /// The classic offset computation for packed shared-file writes.
    pub fn exscan_sum_u64(&self, v: u64) -> u64 {
        self.allgather_u64(v)[..self.my_index].iter().sum()
    }

    /// Gather one `u64` per member to `root`; non-roots receive `None`.
    pub fn gather_u64(&self, root: Rank, v: u64) -> Option<Vec<u64>> {
        // implemented over allgather (correct, if not minimal traffic —
        // this runtime models semantics, not wire cost)
        let all = self.allgather_u64(v);
        (self.my_index == root).then_some(all)
    }

    /// Split into sub-communicators by `color` (like `MPI_Comm_split`
    /// with `key = rank`). Members of the returned communicator are
    /// ordered by parent rank.
    pub fn split(&self, color: u64) -> Comm {
        let seq = self.split_calls.get();
        self.split_calls.set(seq + 1);
        let colors = self.allgather_u64(color);
        let group: Vec<usize> = (0..self.size()).filter(|&i| colors[i] == color).collect();
        let my_pos = group
            .iter()
            .position(|&i| i == self.my_index)
            .expect("caller is in its own color group");
        let members: Vec<Rank> = group.iter().map(|&i| self.shared.members[i]).collect();

        // Everyone in the group computes the same key; the registry makes
        // exactly one CommShared per (parent, call, color).
        let key: RegistryKey = (self.shared.uid, RegistryKind::Split, seq, color);
        let world = Arc::clone(&self.world);
        let uid_src = Arc::clone(&self.world);
        let members_clone = members.clone();
        let watchdog = self.world.watchdog;
        let shared = world.get_or_create(key, move || {
            CommShared::new(uid_src.next_uid(), members_clone, watchdog)
        });
        Comm::new(Arc::clone(&self.world), shared, my_pos)
    }

    /// Form a sub-communicator from an explicit member list (parent comm
    /// ranks, ascending). Unlike [`Comm::split`], a rank may join several
    /// subgroups (TAPIOCA partitions can overlap when a rank's data spans
    /// partition boundaries), and non-members do not participate at all.
    ///
    /// Every member must pass the identical `members` list and the same
    /// `key` (a caller-chosen id making this subgroup unique per parent
    /// communicator, e.g. `epoch * 1_000_000 + partition`).
    ///
    /// # Panics
    /// Panics if the caller is not in `members` or the list is not
    /// strictly ascending.
    pub fn subgroup(&self, members: &[Rank], key: u64) -> Comm {
        assert!(members.windows(2).all(|w| w[0] < w[1]), "members must be strictly ascending");
        let my_pos = members
            .iter()
            .position(|&m| m == self.my_index)
            .expect("caller must be a member of its own subgroup");
        let world_members: Vec<Rank> = members.iter().map(|&m| self.shared.members[m]).collect();
        let reg_key: RegistryKey = (self.shared.uid, RegistryKind::Subgroup, 0, key);
        let world = Arc::clone(&self.world);
        let uid_src = Arc::clone(&self.world);
        let watchdog = self.world.watchdog;
        let shared = world.get_or_create(reg_key, move || {
            CommShared::new(uid_src.next_uid(), world_members, watchdog)
        });
        Comm::new(Arc::clone(&self.world), shared, my_pos)
    }
}

/// Create the world communicator state for `n` ranks with no watchdog;
/// test-only convenience. Returns per-rank `Comm` handles.
#[cfg(test)]
pub(crate) fn make_world(n: usize) -> Vec<Comm> {
    make_world_with_watchdog(n, None)
}

/// Like [`make_world`], with a watchdog deadline applied to every
/// blocking barrier and receive of the world.
pub(crate) fn make_world_with_watchdog(n: usize, watchdog: Option<Duration>) -> Vec<Comm> {
    make_world_perturbed(n, watchdog, None)
}

/// Like [`make_world_with_watchdog`], additionally installing a
/// [`Perturber`] whose points fire at every synchronization boundary of
/// the world (barriers, collectives, RMA puts/fences, I/O dispatch).
pub(crate) fn make_world_perturbed(
    n: usize,
    watchdog: Option<Duration>,
    perturb: Option<Arc<Perturber>>,
) -> Vec<Comm> {
    let world = WorldShared::new_perturbed(watchdog, perturb);
    let uid = world.next_uid();
    let shared = Arc::new(CommShared::new(uid, (0..n).collect(), watchdog));
    (0..n)
        .map(|i| Comm::new(Arc::clone(&world), Arc::clone(&shared), i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: usize, f: impl Fn(Comm) + Sync) {
        let comms = make_world(n);
        std::thread::scope(|s| {
            for c in comms {
                s.spawn(|| f(c));
            }
        });
    }

    #[test]
    fn ranks_and_sizes() {
        run(4, |c| {
            assert_eq!(c.size(), 4);
            assert!(c.rank() < 4);
            assert_eq!(c.world_rank(), c.rank());
        });
    }

    #[test]
    fn allgather_orders_by_rank() {
        run(8, |c| {
            let all = c.allgather_u64(c.rank() as u64 * 10);
            assert_eq!(all, (0..8).map(|r| r * 10).collect::<Vec<u64>>());
        });
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        run(6, |c| {
            for round in 0..50u64 {
                let all = c.allgather_u64(round * 100 + c.rank() as u64);
                for (r, v) in all.iter().enumerate() {
                    assert_eq!(*v, round * 100 + r as u64);
                }
            }
        });
    }

    #[test]
    fn min_loc_picks_lowest_value_then_lowest_rank() {
        run(5, |c| {
            let v = match c.rank() {
                2 => 1.0,
                4 => 1.0,
                _ => 5.0 + c.rank() as f64,
            };
            let (val, loc) = c.allreduce_min_loc(v);
            assert_eq!(val, 1.0);
            assert_eq!(loc, 2, "tie resolves to the lowest rank");
        });
    }

    #[test]
    fn bcast_from_nonzero_root() {
        run(4, |c| {
            let payload = if c.rank() == 2 { vec![9, 9, 9] } else { vec![] };
            assert_eq!(c.bcast(2, payload), vec![9, 9, 9]);
        });
    }

    #[test]
    fn reductions() {
        run(7, |c| {
            assert_eq!(c.allreduce_sum_u64(c.rank() as u64), 21);
            assert_eq!(c.allreduce_max_u64(c.rank() as u64), 6);
            assert_eq!(c.allreduce_max_f64(-(c.rank() as f64)), 0.0);
        });
    }

    #[test]
    fn split_into_even_odd() {
        run(8, |c| {
            let sub = c.split(c.rank() as u64 % 2);
            assert_eq!(sub.size(), 4);
            let all = sub.allgather_u64(c.rank() as u64);
            let expect: Vec<u64> = (0..8).filter(|r| r % 2 == c.rank() as u64 % 2).collect();
            assert_eq!(all, expect);
            // sub-communicator p2p is isolated from the parent's tags
            if sub.rank() == 0 {
                sub.send(1, 3, vec![sub.rank() as u8]);
            }
            if sub.rank() == 1 {
                assert_eq!(sub.recv(0, 3), vec![0]);
            }
        });
    }

    #[test]
    fn nested_split() {
        run(8, |c| {
            let half = c.split((c.rank() / 4) as u64);
            let quarter = half.split((half.rank() / 2) as u64);
            assert_eq!(quarter.size(), 2);
            assert_eq!(quarter.allreduce_sum_u64(1), 2);
        });
    }

    #[test]
    fn overlapping_subgroups() {
        // partitions {0,1,2} and {2,3}: rank 2 is in both; process them
        // in ascending key order on every member (deadlock-free).
        run(4, |c| {
            let r = c.rank();
            if r <= 2 {
                let g = c.subgroup(&[0, 1, 2], 1);
                assert_eq!(g.allgather_u64(r as u64), vec![0, 1, 2]);
            }
            if r >= 2 {
                let g = c.subgroup(&[2, 3], 2);
                assert_eq!(g.allgather_u64(r as u64), vec![2, 3]);
                assert_eq!(g.world_rank_of(0), 2);
            }
        });
    }

    #[test]
    #[should_panic(expected = "member of its own subgroup")]
    fn subgroup_requires_membership() {
        let comms = make_world(2);
        let mut it = comms.into_iter();
        let c0 = it.next().unwrap();
        c0.subgroup(&[1], 9);
    }

    #[test]
    fn p2p_through_comm() {
        run(3, |c| {
            if c.rank() == 0 {
                c.send(2, 11, vec![5]);
            } else if c.rank() == 2 {
                assert_eq!(c.recv(0, 11), vec![5]);
            }
            c.barrier();
        });
    }

    #[test]
    fn exscan_computes_packed_offsets() {
        run(5, |c| {
            let my_len = (c.rank() as u64 + 1) * 10;
            let off = c.exscan_sum_u64(my_len);
            let expect: u64 = (0..c.rank() as u64).map(|r| (r + 1) * 10).sum();
            assert_eq!(off, expect);
        });
    }

    #[test]
    fn gather_only_root_receives() {
        run(4, |c| {
            let got = c.gather_u64(2, c.rank() as u64 * 5);
            if c.rank() == 2 {
                assert_eq!(got, Some(vec![0, 5, 10, 15]));
            } else {
                assert_eq!(got, None);
            }
        });
    }

    #[test]
    fn allreduce_bytes_folds_in_rank_order() {
        run(4, |c| {
            // non-commutative op: string concatenation
            let mine = vec![b'a' + c.rank() as u8];
            let out = c.allreduce_bytes(mine, |mut acc, x| {
                acc.extend_from_slice(x);
                acc
            });
            assert_eq!(out, b"abcd");
        });
    }

    #[test]
    fn alltoallv_exchanges_personalized_buffers() {
        run(5, |c| {
            let me = c.rank() as u8;
            let sends: Vec<Vec<u8>> =
                (0..5).map(|d| vec![me * 10 + d as u8; (d + 1) as usize]).collect();
            let recvd = c.alltoallv_bytes(sends);
            for (s, buf) in recvd.iter().enumerate() {
                assert_eq!(buf.len(), c.rank() + 1);
                assert!(buf.iter().all(|&b| b == s as u8 * 10 + me));
            }
        });
    }

    #[test]
    fn repeated_alltoallv_stays_ordered() {
        run(3, |c| {
            for round in 0..10u8 {
                let sends: Vec<Vec<u8>> = (0..3).map(|_| vec![round]).collect();
                let recvd = c.alltoallv_bytes(sends);
                assert!(recvd.iter().all(|b| b == &vec![round]));
            }
        });
    }

    #[test]
    fn try_recv_through_comm() {
        run(2, |c| {
            if c.rank() == 0 {
                // poll until the message lands (exercises the
                // non-blocking path without racing the sender)
                let mut got = None;
                while got.is_none() {
                    got = c.try_recv(1, 7);
                    std::hint::spin_loop();
                }
                assert_eq!(got, Some(vec![1]));
            } else {
                c.send(0, 7, vec![1]);
            }
            c.barrier();
        });
    }

    #[test]
    fn singleton_comm_collectives() {
        run(4, |c| {
            let me = c.split(c.rank() as u64);
            assert_eq!(me.size(), 1);
            assert_eq!(me.allgather_u64(7), vec![7]);
            assert_eq!(me.allreduce_min_loc(3.0), (3.0, 0));
            me.barrier();
        });
    }
}
