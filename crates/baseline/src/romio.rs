//! Thread-mode ROMIO-like collective buffering.
//!
//! `collective_write` is the counterpart of one
//! `MPI_File_write_at_all`: collective over the communicator, it
//! aggregates this call's data through `cb_aggregators` rank-order
//! aggregators with single-buffered rounds and blocking flushes.
//!
//! Implementation note: a per-call two-phase write *is* a degenerate
//! TAPIOCA run — schedule over just this call's declarations, rank-order
//! election, pipelining off — so this module drives TAPIOCA's own
//! pipeline in that configuration. The byte-level behaviour (file
//! domains, buffer rounds, per-segment writes) matches ROMIO's.

use tapioca::aggregation::run_write_pipeline;
use tapioca::config::TapiocaConfig;
use tapioca::placement::{PlacementStrategy, UniformTopology};
use tapioca::schedule::{compute_schedule, ScheduleParams, WriteDecl};
use tapioca_mpi::{Comm, SharedFile};

/// Collective-buffering knobs (the MPI-IO `cb_*` hints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpiIoConfig {
    /// Number of aggregators (`cb_nodes`).
    pub cb_aggregators: usize,
    /// Collective buffer size per aggregator (`cb_buffer_size`).
    pub cb_buffer_size: u64,
}

impl Default for MpiIoConfig {
    fn default() -> Self {
        // ROMIO defaults on the studied systems: 16 MB buffers.
        Self { cb_aggregators: 16, cb_buffer_size: 16 * 1024 * 1024 }
    }
}

/// One collective positioned write: every member passes its own
/// `(offset, data)`; ranks with nothing to write pass an empty slice.
/// Returns this rank's traffic counters.
///
/// Collective over `comm` — every member must call it, in the same
/// order relative to other collectives.
///
/// # Errors
/// Propagates [`tapioca::TapiocaError`] from the pipeline (I/O failure
/// or timeout of an aggregator flush).
pub fn collective_write(
    comm: &Comm,
    file: &SharedFile,
    offset: u64,
    data: &[u8],
    cfg: &MpiIoConfig,
) -> tapioca::Result<tapioca::aggregation::IoStats> {
    let epoch = comm.next_user_seq();

    // Exchange this call's declaration (offset, len) with everyone.
    let mut mine = Vec::with_capacity(16);
    mine.extend_from_slice(&offset.to_le_bytes());
    mine.extend_from_slice(&(data.len() as u64).to_le_bytes());
    let all = comm.allgather_bytes(mine);
    let decls: Vec<Vec<WriteDecl>> = all
        .into_iter()
        .map(|b| {
            let off = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(b[8..].try_into().expect("8 bytes"));
            if len == 0 {
                vec![]
            } else {
                vec![WriteDecl { offset: off, len }]
            }
        })
        .collect();

    let schedule = compute_schedule(&decls, ScheduleParams {
        num_aggregators: cfg.cb_aggregators,
        buffer_size: cfg.cb_buffer_size,
        align_to_buffer: false,
    });
    let tapioca_cfg = TapiocaConfig {
        num_aggregators: cfg.cb_aggregators,
        buffer_size: cfg.cb_buffer_size,
        pipelining: false,                        // single buffer
        strategy: PlacementStrategy::RankOrder,   // no topology awareness
        ..Default::default()
    };
    let topo = UniformTopology { num_ranks: comm.size() };
    let staged = vec![data.to_vec()];
    run_write_pipeline(comm, &schedule, &staged, file, &tapioca_cfg, &topo, 1_000_000 + epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca_mpi::Runtime;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tapioca-baseline-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn contiguous_collective_write_roundtrip() {
        let path = tmp("contig");
        let n = 6;
        let per = 128u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let payload: Vec<u8> = (0..per).map(|i| (r * 13 + i) as u8).collect();
            collective_write(&comm, &file, r * per, &payload, &MpiIoConfig {
                cb_aggregators: 3,
                cb_buffer_size: 100,
            })
            .unwrap();
        });
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, n as u64 * per);
        for r in 0..n as u64 {
            for i in 0..per {
                assert_eq!(bytes[(r * per + i) as usize], (r * 13 + i) as u8, "rank {r} byte {i}");
            }
        }
    }

    #[test]
    fn sequential_calls_like_soa() {
        // three independent collective calls, like writing x, y, z
        let path = tmp("soa");
        let n = 4;
        let var = 32u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let cfg = MpiIoConfig { cb_aggregators: 2, cb_buffer_size: 64 };
            for v in 0..3u64 {
                let payload = vec![(v * 50 + r + 1) as u8; var as usize];
                collective_write(&comm, &file, v * (n as u64 * var) + r * var, &payload, &cfg)
                    .unwrap();
            }
        });
        let bytes = std::fs::read(&path).unwrap();
        for v in 0..3u64 {
            for r in 0..n as u64 {
                let base = (v * 128 + r * 32) as usize;
                assert!(bytes[base..base + 32].iter().all(|&b| b == (v * 50 + r + 1) as u8));
            }
        }
    }

    #[test]
    fn ranks_with_no_data_participate() {
        let path = tmp("holes");
        Runtime::run(4, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let cfg = MpiIoConfig { cb_aggregators: 2, cb_buffer_size: 32 };
            if r.is_multiple_of(2) {
                collective_write(&comm, &file, r * 64, &[r as u8 + 1; 64], &cfg).unwrap();
            } else {
                collective_write(&comm, &file, 0, &[], &cfg).unwrap();
            }
        });
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes[0..64].iter().all(|&b| b == 1));
        assert!(bytes[128..192].iter().all(|&b| b == 3));
    }
}
