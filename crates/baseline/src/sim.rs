//! Simulation-mode MPI I/O baseline driver.
//!
//! Executes a [`tapioca::sim_exec::CollectiveSpec`] the way plain MPI I/O
//! would: one independent collective call per declared variable
//! (sequential within a file group, because a bulk-synchronous
//! application issues them back-to-back), rank-order aggregators, single
//! buffer. Plans are executed by the very same simulator as TAPIOCA's.

use tapioca::placement::{elect_partitions, PartitionElection, PlacementStrategy};
use tapioca::plan::{append_tapioca_plan, ExecutionPlan, OpId, OpKind, TapiocaPlanInput};
use tapioca::schedule::{compute_schedule, ScheduleParams, WriteDecl};
use tapioca::sim_exec::{simulate, CollectiveSpec, SimReport, StorageConfig};
use tapioca_topology::{MachineProfile, Rank, TopologyProvider};

use crate::romio::MpiIoConfig;

/// Simulate a collective operation through per-variable MPI I/O calls.
///
/// `cfg.cb_aggregators` is per file group, like TAPIOCA's
/// `num_aggregators` (the paper tunes "aggregators per Pset" /
/// "aggregators per OST" for both systems identically).
///
/// # Errors
/// Propagates [`tapioca::TapiocaError`] from the simulator (e.g. a
/// storage/profile kind mismatch).
pub fn run_mpiio_sim(
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
    cfg: &MpiIoConfig,
) -> tapioca::Result<SimReport> {
    let machine = &profile.machine;
    let mut plan = ExecutionPlan::new();

    for group in &spec.groups {
        assert_eq!(group.ranks.len(), group.decls.len());
        if let Some(&max_rank) = group.ranks.iter().max() {
            assert!(
                max_rank < machine.num_ranks(),
                "spec rank {max_rank} exceeds the machine's {} ranks",
                machine.num_ranks()
            );
        }
        let max_vars = group.decls.iter().map(Vec::len).max().unwrap_or(0);
        let io_nodes = machine.io_nodes_for(&group.ranks);
        let io = io_nodes.first().copied().unwrap_or(0);

        let mut entry_deps: Vec<OpId> = Vec::new();
        for v in 0..max_vars {
            // This call sees only variable v of each rank.
            let call_decls: Vec<Vec<WriteDecl>> = group
                .decls
                .iter()
                .map(|d| d.get(v).map(|&x| vec![x]).unwrap_or_default())
                .collect();
            let sched = compute_schedule(&call_decls, ScheduleParams {
                num_aggregators: cfg.cb_aggregators,
                buffer_size: cfg.cb_buffer_size,
                align_to_buffer: false,
            });
            if sched.partitions.is_empty() {
                continue;
            }
            let members_global: Vec<Vec<Rank>> = sched
                .partitions
                .iter()
                .map(|part| part.members.iter().map(|&m| group.ranks[m]).collect())
                .collect();
            let elections: Vec<PartitionElection<'_>> = sched
                .partitions
                .iter()
                .zip(&members_global)
                .map(|(part, members)| PartitionElection {
                    members,
                    weights: &part.member_bytes,
                    io,
                    partition_index: part.index,
                })
                .collect();
            let choices: Vec<usize> =
                elect_partitions(machine, &elections, PlacementStrategy::RankOrder);

            let ranks = &group.ranks;
            let node_of = |local: Rank| machine.node_of_rank(ranks[local]);
            let file = group.file;
            let range = append_tapioca_plan(&mut plan, &TapiocaPlanInput {
                schedule: &sched,
                aggregator_choice: &choices,
                node_of_rank: &node_of,
                file_of_partition: &|_| file,
                mode: spec.mode,
                pipelining: false, // single collective buffer
                entry_deps: entry_deps.clone(),
                // sequential calls never share a filesystem wave
                wave_base: (v as u64 + 1) * 1_000_000,
                crashes: Vec::new(),
            });

            // Barrier op: the next call starts only when this one is done
            // (bulk-synchronous application behaviour).
            let deps: Vec<OpId> = range.collect();
            let barrier = plan.push(OpKind::Transfer { src: 0, dst: 0, bytes: 0.0 }, deps);
            entry_deps = vec![barrier];
        }
    }
    simulate(profile, storage, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca::config::TapiocaConfig;
    use tapioca::sim_exec::{run_tapioca_sim, GroupSpec};
    use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
    use tapioca_topology::{mira_profile, theta_profile, MIB};
    use tapioca_workloads::hacc::{HaccIo, Layout};

    fn hacc_groups_single(nranks: usize, particles: u64, layout: Layout) -> CollectiveSpec {
        let w = HaccIo { num_ranks: nranks, particles_per_rank: particles, layout };
        CollectiveSpec {
            groups: vec![GroupSpec {
                file: 0,
                ranks: (0..nranks).collect(),
                decls: w.decls(),
            }],
            mode: AccessMode::Write,
        }
    }

    #[test]
    fn baseline_simulates_and_moves_all_bytes() {
        let profile = theta_profile(32, 4);
        let spec = hacc_groups_single(128, 2000, Layout::StructOfArrays);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let cfg = MpiIoConfig { cb_aggregators: 8, cb_buffer_size: 8 * MIB };
        let rep = run_mpiio_sim(&profile, &storage, &spec, &cfg).unwrap();
        assert!(rep.elapsed > 0.0);
        assert_eq!(rep.bytes, (128u64 * 2000 * 38) as f64);
    }

    #[test]
    fn tapioca_beats_baseline_on_soa_multivar() {
        // The paper's headline mechanism: SoA = 9 collective calls for
        // MPI I/O (partial buffers, sequential) vs one declared schedule
        // for TAPIOCA.
        let profile = theta_profile(32, 4);
        let spec = hacc_groups_single(128, 7000, Layout::StructOfArrays);
        let storage = StorageConfig::Lustre(LustreTunables::theta_hacc());
        let mpiio = run_mpiio_sim(&profile, &storage, &spec, &MpiIoConfig {
            cb_aggregators: 8,
            cb_buffer_size: 16 * MIB,
        })
        .unwrap();
        let tap = run_tapioca_sim(&profile, &storage, &spec, &TapiocaConfig {
            num_aggregators: 8,
            buffer_size: 16 * MIB,
            ..Default::default()
        })
        .unwrap();
        assert!(
            tap.bandwidth > mpiio.bandwidth,
            "TAPIOCA {} GiB/s must beat MPI I/O {} GiB/s on SoA",
            tap.bandwidth_gib(),
            mpiio.bandwidth_gib()
        );
    }

    #[test]
    fn aos_gap_is_smaller_than_soa_gap() {
        let profile = mira_profile(128, 4);
        let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
        let mk = |layout| {
            let w = HaccIo { num_ranks: 512, particles_per_rank: 6000, layout };
            CollectiveSpec {
                groups: vec![GroupSpec {
                    file: 0,
                    ranks: (0..512).collect(),
                    decls: w.decls(),
                }],
                mode: AccessMode::Write,
            }
        };
        let cb = MpiIoConfig { cb_aggregators: 16, cb_buffer_size: 4 * MIB };
        let tp = TapiocaConfig { num_aggregators: 16, buffer_size: 4 * MIB, ..Default::default() };
        let ratio = |layout| {
            let spec = mk(layout);
            let b = run_mpiio_sim(&profile, &storage, &spec, &cb).unwrap();
            let t = run_tapioca_sim(&profile, &storage, &spec, &tp).unwrap();
            t.bandwidth / b.bandwidth
        };
        let soa = ratio(Layout::StructOfArrays);
        let aos = ratio(Layout::ArrayOfStructs);
        assert!(soa > aos, "SoA speedup {soa:.2} should exceed AoS speedup {aos:.2}");
        assert!(aos >= 0.9, "TAPIOCA must not lose badly on AoS (got {aos:.2})");
    }
}
