//! A second, independent thread-mode implementation of two-phase
//! collective buffering, built the way ROMIO actually moves data: the
//! redistribution phase is an **all-to-all personalized exchange**
//! (`MPI_Alltoallv`) instead of one-sided puts.
//!
//! Having two data paths that must produce byte-identical files is a
//! strong cross-check on both: the RMA pipeline (`romio::collective_write`,
//! which reuses TAPIOCA's machinery) and this message-passing
//! implementation share only the schedule computation.
//!
//! Algorithm per collective call:
//! 1. allgather `(offset, len)` and compute the per-call schedule
//!    (ROMIO-style unaligned file domains);
//! 2. for each round: every rank packs, for every aggregator, the chunk
//!    bytes that fall into that aggregator's current window; one
//!    `alltoallv` delivers them; aggregators unpack into their buffer
//!    (offsets travel with the payload) and write the round's segments;
//! 3. a barrier closes the call (bulk-synchronous semantics).

use tapioca::schedule::{compute_schedule, Chunk, ScheduleParams, WriteDecl};
use tapioca_mpi::{Comm, SharedFile};

use crate::romio::MpiIoConfig;

/// Pack one chunk as (buf_offset u64, len u64, payload).
fn pack(into: &mut Vec<u8>, buf_offset: u64, payload: &[u8]) {
    into.extend_from_slice(&buf_offset.to_le_bytes());
    into.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    into.extend_from_slice(payload);
}

/// Collective positioned write via alltoallv redistribution.
///
/// Every member calls it with its own `(offset, data)`; empty slices for
/// ranks with nothing to write. Aggregators are the lowest member rank
/// of each partition (rank order, like the MPICH default).
pub fn collective_write_alltoall(
    comm: &Comm,
    file: &SharedFile,
    offset: u64,
    data: &[u8],
    cfg: &MpiIoConfig,
) {
    // 1. exchange declarations
    let mut mine = Vec::with_capacity(16);
    mine.extend_from_slice(&offset.to_le_bytes());
    mine.extend_from_slice(&(data.len() as u64).to_le_bytes());
    let all = comm.allgather_bytes(mine);
    let decls: Vec<Vec<WriteDecl>> = all
        .into_iter()
        .map(|b| {
            let off = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(b[8..].try_into().expect("8 bytes"));
            if len == 0 {
                vec![]
            } else {
                vec![WriteDecl { offset: off, len }]
            }
        })
        .collect();
    let schedule = compute_schedule(&decls, ScheduleParams {
        num_aggregators: cfg.cb_aggregators,
        buffer_size: cfg.cb_buffer_size,
        align_to_buffer: false,
    });

    let me = comm.rank();
    // rank-order aggregators: lowest member of each partition
    let aggregator_of: Vec<Option<usize>> = schedule
        .partitions
        .iter()
        .map(|p| p.members.first().copied())
        .collect();
    // which partitions am I the aggregator of?
    let my_parts: Vec<usize> = schedule
        .partitions
        .iter()
        .filter(|p| aggregator_of[p.index] == Some(me))
        .map(|p| p.index)
        .collect();
    let max_rounds = schedule
        .partitions
        .iter()
        .map(|p| p.rounds.len())
        .max()
        .unwrap_or(0);
    let my_chunks: &[Chunk] = &schedule.chunks_by_rank[me];

    let mut buffer = vec![0u8; cfg.cb_buffer_size as usize];
    for r in 0..max_rounds {
        // 2a. pack per destination aggregator
        let mut sends: Vec<Vec<u8>> = vec![Vec::new(); comm.size()];
        for c in my_chunks.iter().filter(|c| c.round as usize == r) {
            let agg = aggregator_of[c.partition].expect("partition with chunks has members");
            let payload = &data[c.var_offset as usize..(c.var_offset + c.len) as usize];
            pack(&mut sends[agg], c.buf_offset, payload);
        }
        // 2b. exchange
        let received = comm.alltoallv_bytes(sends);
        // 2c. aggregators unpack and write their round's segments
        for &p in &my_parts {
            let part = &schedule.partitions[p];
            if r >= part.rounds.len() {
                continue;
            }
            for src in &received {
                let mut cur = 0usize;
                while cur < src.len() {
                    let boff =
                        u64::from_le_bytes(src[cur..cur + 8].try_into().expect("8 bytes"));
                    let len = u64::from_le_bytes(
                        src[cur + 8..cur + 16].try_into().expect("8 bytes"),
                    ) as usize;
                    cur += 16;
                    buffer[boff as usize..boff as usize + len]
                        .copy_from_slice(&src[cur..cur + len]);
                    cur += len;
                }
            }
            for seg in &part.rounds[r].segments {
                file.write_at(
                    seg.file_offset,
                    &buffer[seg.buf_offset as usize..(seg.buf_offset + seg.len) as usize],
                )
                .expect("baseline write failed");
            }
        }
    }
    comm.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::romio::collective_write;
    use tapioca_mpi::Runtime;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tapioca-a2a-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn alltoall_write_roundtrip() {
        let path = tmp("rt");
        let n = 8;
        let per = 300u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let payload: Vec<u8> = (0..per).map(|i| (r * 11 + i) as u8).collect();
            collective_write_alltoall(&comm, &file, r * per, &payload, &MpiIoConfig {
                cb_aggregators: 3,
                cb_buffer_size: 128,
            });
        });
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, n as u64 * per);
        for r in 0..n as u64 {
            for i in 0..per {
                assert_eq!(bytes[(r * per + i) as usize], (r * 11 + i) as u8, "rank {r} byte {i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn two_implementations_write_identical_files() {
        // The RMA pipeline and the alltoallv path share only the
        // schedule; identical output cross-checks both data paths.
        let n = 6;
        let per = 257u64; // deliberately odd
        let p1 = tmp("rma");
        let p2 = tmp("a2a");
        let cfg = MpiIoConfig { cb_aggregators: 2, cb_buffer_size: 100 };
        Runtime::run(n, |comm| {
            let r = comm.rank() as u64;
            let payload: Vec<u8> = (0..per).map(|i| (r * 97 + i * 3) as u8).collect();
            let f1 = SharedFile::open_shared(&comm, &p1);
            collective_write(&comm, &f1, r * per, &payload, &cfg).unwrap();
            let f2 = SharedFile::open_shared(&comm, &p2);
            collective_write_alltoall(&comm, &f2, r * per, &payload, &cfg);
        });
        let a = std::fs::read(&p1).unwrap();
        let b = std::fs::read(&p2).unwrap();
        assert!(a == b, "data paths diverged");
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn sequential_multivar_calls() {
        let path = tmp("multivar");
        let n = 4;
        let var = 64u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let cfg = MpiIoConfig { cb_aggregators: 2, cb_buffer_size: 96 };
            for v in 0..3u64 {
                let payload = vec![(v * 40 + r + 1) as u8; var as usize];
                collective_write_alltoall(
                    &comm,
                    &file,
                    v * (n as u64 * var) + r * var,
                    &payload,
                    &cfg,
                );
            }
        });
        let bytes = std::fs::read(&path).unwrap();
        for v in 0..3u64 {
            for r in 0..n as u64 {
                let base = (v * 256 + r * 64) as usize;
                assert!(bytes[base..base + 64].iter().all(|&b| b == (v * 40 + r + 1) as u8));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ranks_without_data_still_collective() {
        let path = tmp("sparse");
        Runtime::run(5, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let cfg = MpiIoConfig { cb_aggregators: 2, cb_buffer_size: 64 };
            if r < 2 {
                collective_write_alltoall(&comm, &file, r * 100, &[r as u8 + 1; 100], &cfg);
            } else {
                collective_write_alltoall(&comm, &file, 0, &[], &cfg);
            }
        });
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes[0..100].iter().all(|&b| b == 1));
        assert!(bytes[100..200].iter().all(|&b| b == 2));
        std::fs::remove_file(&path).ok();
    }
}
