//! # tapioca-baseline
//!
//! The comparison baseline of the paper: a ROMIO-like **two-phase
//! collective buffering** MPI I/O implementation.
//!
//! Differences from TAPIOCA, mirroring Sec. II-B/IV of the paper:
//!
//! * **Per-call optimization only** — each collective write/read is
//!   scheduled in isolation. Multi-variable patterns (HACC-IO SoA)
//!   become independent collective calls that flush partially-filled
//!   aggregation buffers (paper Fig. 2).
//! * **Rank-order aggregator placement** — "a strategy consists in
//!   selecting the bridge node as a first aggregator and the other
//!   aggregators following a rank order"; no cost model, no topology.
//! * **No pipelining** — a single aggregation buffer per aggregator;
//!   the next round's aggregation waits for the current flush.
//!
//! Three implementations are provided: a thread-mode RMA-based one
//! ([`romio::collective_write`], reusing TAPIOCA's own pipeline in its
//! degenerate per-call configuration so measured differences are
//! attributable to the behaviours above), an independent thread-mode
//! **alltoallv** implementation ([`alltoall::collective_write_alltoall`],
//! the message-passing redistribution real ROMIO performs — the two
//! must produce byte-identical files, a strong cross-check), and the
//! simulation-mode driver ([`sim::run_mpiio_sim`]) used for the
//! figures.

pub mod alltoall;
pub mod romio;
pub mod sim;

pub use alltoall::collective_write_alltoall;
pub use romio::{collective_write, MpiIoConfig};
pub use sim::run_mpiio_sim;
