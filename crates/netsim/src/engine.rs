//! Event-driven flow simulator.
//!
//! Flows are submitted with a start time, a route (directed link ids) and
//! a byte count. Between events (arrivals and completions), every active
//! flow progresses at its max-min fair rate; the engine advances directly
//! from event to event, so simulated time is exact up to floating point.
//!
//! The driver pattern used by `tapioca::sim_exec` is incremental:
//! submit a batch of flows, [`Simulator::run_until_done`] on that batch
//! (other flows may still be in flight), inspect completion times, decide
//! the start time of the next batch, repeat. This is how fence-ordered
//! aggregation rounds overlap with asynchronous flushes exactly as in
//! Algorithm 3 of the paper.
//!
//! # Component-sharded incremental rates
//!
//! Max-min fairness factors along interference components (flows that
//! transitively share links — see the `components` module): the fair rates
//! inside one component are a pure function of its member routes and the
//! link capacities, untouched by flows elsewhere. The engine therefore
//! re-waterfills only components *dirtied* by an arrival, completion,
//! release, or capacity change; untouched components keep their frozen
//! rates and their cached per-component next-completion time, merged
//! through a global event index so [`Simulator::step`] never scans the
//! active set.
//!
//! Flow progress is anchored rather than settled eagerly: each active
//! flow carries `(anchor, remaining, rate)` and its byte count is only
//! re-settled when a re-waterfill changes its rate *bitwise*. Because
//! re-waterfilling an untouched component reproduces its rates exactly
//! (same members, same order, same capacities), the incremental engine
//! and the full-recompute reference ([`Recompute::Full`]) perform
//! identical floating-point operations on every flow and produce
//! **bit-identical** schedules — asserted by the equivalence sweeps here
//! and in `tests/netsim_incremental.rs`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use tapioca_topology::{Interconnect, LinkIx};

use crate::components::Components;
use crate::{SimTime, BYTE_EPS, TIME_EPS};

/// Identifier of a submitted flow.
pub type FlowId = usize;

/// Lifecycle of a flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowStatus {
    /// Waiting for dependency flows to complete.
    Waiting,
    /// Submitted, start time not reached yet.
    Pending,
    /// Currently transferring.
    Active,
    /// Finished at the given time.
    Done(SimTime),
}

#[derive(Debug)]
struct Flow {
    /// Route as a `(start, len)` span into the interned link arena.
    span: (u32, u32),
    remaining: f64,
    status: FlowStatus,
    /// Fair rate frozen at the last re-waterfill of this flow's
    /// component (0 until first waterfilled).
    rate: f64,
    /// Time `remaining` was last settled; progress since then is implied
    /// as `rate * (now - anchor)`.
    anchor: SimTime,
    /// Unsatisfied dependencies (count) for dependency-gated flows.
    deps_left: usize,
    /// Earliest allowed start (fixed part).
    start_min: SimTime,
    /// Extra fixed delay applied after release (latency, lock setup).
    extra_delay: f64,
    /// Release time accumulated from completed dependencies.
    dep_release: SimTime,
    /// Flows waiting on this one.
    dependents: Vec<FlowId>,
}

/// Total-ordered f64 key for the event heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TimeKey(pub(crate) f64);

impl Eq for TimeKey {}
impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// How the waterfilling loop locates the bottleneck link each round.
///
/// All variants freeze the same flows at the same rates in the same
/// order, so they produce **bit-identical** schedules (asserted by the
/// `algo_equivalence` tests); they differ only in how the per-round
/// minimum of `cap_rem / unfixed` is found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateAlgo {
    /// Linear rescan of every touched link per freeze round — O(L) per
    /// round. Kept as the reference implementation.
    Scan,
    /// Keyed min-heap over `cap_rem / unfixed` with lazy invalidation:
    /// each link mutation bumps a version counter and pushes a fresh
    /// entry; stale entries are skipped on pop. O(log L) per mutation,
    /// and rounds that freeze few flows no longer pay for every link.
    Heap,
    /// Pick Scan or Heap per component from its shape: wide fan-in
    /// components (short routes, many links) use the heap; mesh-shaped
    /// components (long routes touching most links every freeze batch)
    /// and small components use the scan, whose rescan is cheaper than
    /// the heap's re-push traffic there.
    #[default]
    Auto,
}

/// Which components a membership event re-waterfills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Recompute {
    /// Re-waterfill every live component at every membership-changing
    /// event — the reference engine, kept for equivalence sweeps and
    /// benchmarking the sharded path against.
    Full,
    /// Re-waterfill only dirtied components (the default). Bit-identical
    /// to [`Recompute::Full`] by construction (see the module docs).
    #[default]
    Incremental,
}

/// Flow-level network simulator over a fixed link-capacity table.
#[derive(Debug)]
pub struct Simulator {
    caps: Vec<f64>,
    time: SimTime,
    flows: Vec<Flow>,
    /// Count of currently transferring flows (the membership lists live
    /// in the component slots).
    n_active: usize,
    pending: BinaryHeap<Reverse<(TimeKey, FlowId)>>,
    /// Completion batching window, seconds: flows whose completion falls
    /// within this much of the chosen event time complete together.
    slack: f64,
    /// Reusable waterfilling scratch (see `refill_component`): dense
    /// per-link state plus the list of links touched by member flows.
    scratch: Scratch,
    /// Recorded events, when tracing is enabled.
    trace: Option<Vec<TraceEvent>>,
    /// Payload bytes routed per link (accumulated at submission).
    carried: Vec<f64>,
    /// Bottleneck search algorithm (see [`RateAlgo`]).
    rate_algo: RateAlgo,
    /// Incremental vs full re-waterfilling (see [`Recompute`]).
    recompute: Recompute,
    /// Interference components over active flows.
    comps: Components,
    /// Interned routes: flows hold `(start, len)` spans into this arena
    /// and identical routes share one span, so per-round resubmission of
    /// the same routes allocates nothing.
    route_arena: Vec<LinkIx>,
    /// Route-content hash → spans already present in the arena.
    route_dedup: HashMap<u64, Vec<(u32, u32)>>,
    /// Reusable buffer of roots drained from the dirty queue.
    refill_roots: Vec<u32>,
}

/// One recorded simulation event (when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: SimTime,
    /// The flow involved.
    pub flow: FlowId,
    /// What happened.
    pub kind: TraceKind,
}

/// Kinds of traced events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The flow began transferring (or completed instantly).
    Started,
    /// The flow finished.
    Finished,
}

/// Dense per-link scratch reused across component re-waterfills so the
/// hot path performs no allocation and touches only links the member
/// flows use.
#[derive(Debug, Default)]
struct Scratch {
    cap_rem: Vec<f64>,
    unfixed: Vec<u32>,
    /// Member-flow indices per link (only `touched` entries are valid).
    flows_on: Vec<Vec<usize>>,
    touched: Vec<LinkIx>,
    /// Position of each touched link inside `touched` — the heap's
    /// tie-break key, reproducing the scan's "first touched link with a
    /// strictly smaller share wins" selection exactly.
    pos: Vec<u32>,
    /// Per-link entry version for lazy heap invalidation; reset to 0 for
    /// touched links at the start of each re-waterfill.
    version: Vec<u32>,
    /// Links whose state changed while freezing the current bottleneck's
    /// flows (deduplicated via `mark`).
    changed: Vec<LinkIx>,
    /// `mark[l] == batch` means `l` is already queued in `changed`.
    mark: Vec<u64>,
    /// Monotone freeze-batch counter backing `mark`.
    batch: u64,
    /// Min-heap of `(share, touched-position, link, version)` entries;
    /// entries whose version lags `version[link]` are stale.
    heap: BinaryHeap<Reverse<(TimeKey, u32, LinkIx, u32)>>,
    /// Per-member solved rates for the component being refilled.
    rates: Vec<f64>,
    /// Per-member frozen flags for the component being refilled.
    fixed: Vec<bool>,
}

/// SplitMix64 finalizer, used to hash route contents for interning.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Component-shape heuristic behind [`RateAlgo::Auto`]; returns whether
/// to use the heap. Mesh-shaped components — average route length above
/// 1.5 links — mutate most touched links in every freeze batch, so the
/// heap's per-mutation re-push traffic costs more than the scan's
/// linear rescan (the 0.37x mesh regression the heap showed in
/// `BENCH_perf.json`). Small components never amortize heap setup.
fn auto_pick(links: usize, flows: usize, entries: usize) -> bool {
    links >= 64 && 2 * entries <= 3 * flows
}

impl Simulator {
    /// Build from an interconnect's link table.
    pub fn from_interconnect(net: &dyn Interconnect) -> Self {
        let caps = (0..net.num_links()).map(|l| net.link(l).capacity).collect();
        Self::with_capacities(caps)
    }

    /// Build from an explicit capacity table (bytes/s per link).
    pub fn with_capacities(caps: Vec<f64>) -> Self {
        Self {
            caps,
            time: 0.0,
            flows: Vec::new(),
            n_active: 0,
            pending: BinaryHeap::new(),
            slack: 0.0,
            scratch: Scratch::default(),
            trace: None,
            carried: Vec::new(),
            rate_algo: RateAlgo::default(),
            recompute: Recompute::default(),
            comps: Components::default(),
            route_arena: Vec::new(),
            route_dedup: HashMap::new(),
            refill_roots: Vec::new(),
        }
    }

    /// Select the bottleneck-search algorithm. All variants produce
    /// bit-identical schedules; [`RateAlgo::Scan`] is the reference and
    /// [`RateAlgo::Auto`] (the default) picks per component.
    pub fn set_rate_algo(&mut self, algo: RateAlgo) {
        self.rate_algo = algo;
    }

    /// Select incremental (default) or full re-waterfilling. Both are
    /// bit-identical; [`Recompute::Full`] exists as the reference for
    /// equivalence sweeps and benchmarks.
    pub fn set_recompute(&mut self, mode: Recompute) {
        self.recompute = mode;
    }

    /// Start recording start/finish events for every flow. Intended for
    /// debugging and timeline analysis of small runs; large simulations
    /// should leave it off (one record per flow transition).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded events so far (empty slice when tracing is off).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Bytes routed over a link across all submitted flows — the
    /// utilization accounting behind hot-spot analysis. (Effective
    /// bytes: filesystem penalty inflation is included, by design.)
    pub fn bytes_carried(&self, link: LinkIx) -> f64 {
        self.carried.get(link).copied().unwrap_or(0.0)
    }

    /// The most-loaded link and its carried bytes (`None` if nothing
    /// has completed yet).
    pub fn hottest_link(&self) -> Option<(LinkIx, f64)> {
        self.carried
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .filter(|(_, &b)| b > 0.0)
            .map(|(l, &b)| (l, b))
    }

    fn record(&mut self, flow: FlowId, kind: TraceKind) {
        let time = self.time;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent { time, flow, kind });
        }
    }

    /// Set the completion batching window: flows finishing within
    /// `seconds` of an event complete at that event (their tail bytes are
    /// forgiven). Zero (the default) is exact. Large simulations set a
    /// window far below the round time (e.g. 50 us against ~10 ms
    /// rounds) to collapse near-simultaneous completions into one rate
    /// recomputation — a <1% timing perturbation for an order-of-
    /// magnitude event-count reduction.
    pub fn set_completion_slack(&mut self, seconds: f64) {
        assert!(seconds >= 0.0 && seconds.is_finite());
        self.slack = seconds;
    }

    /// Append a virtual link (e.g. a storage service station) and return
    /// its index. Virtual links can appear in flow routes like any other.
    /// Component state is grown lazily, so this is safe mid-flight.
    pub fn add_virtual_link(&mut self, capacity: f64) -> LinkIx {
        assert!(capacity > 0.0 && capacity.is_finite());
        self.caps.push(capacity);
        self.comps.ensure_links(self.caps.len());
        self.caps.len() - 1
    }

    /// Scale every *existing* link capacity by `factor` — the
    /// fault-injection hook for modelling a degraded fabric (e.g. a
    /// `LinkDegrade` spec). Call before installing storage models so
    /// their virtual service stations keep their nominal rates.
    ///
    /// Safe mid-flight: every live component is marked dirty, so frozen
    /// rates and cached completion times are re-derived at the current
    /// time before the next event — in-flight flows are charged their
    /// old rate exactly up to the scale point.
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn scale_capacities(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "degrade factor must be in (0, 1]");
        for c in &mut self.caps {
            *c *= factor;
        }
        self.comps.mark_all_dirty();
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Number of flows submitted so far.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Status of a flow.
    pub fn status(&self, id: FlowId) -> FlowStatus {
        self.flows[id].status
    }

    /// Finish time of a flow, if it has completed.
    pub fn finish_time(&self, id: FlowId) -> Option<SimTime> {
        match self.flows[id].status {
            FlowStatus::Done(t) => Some(t),
            _ => None,
        }
    }

    /// Submit a flow of `bytes` over `route`, starting at `start`
    /// (clamped to "now"; the engine cannot rewrite the past).
    ///
    /// A zero-byte or empty-route flow completes the moment it starts.
    ///
    /// # Panics
    /// Panics if a route link is out of range.
    pub fn submit(&mut self, start: SimTime, route: impl AsRef<[LinkIx]>, bytes: f64) -> FlowId {
        self.submit_with_deps(start, 0.0, route, bytes, &[])
    }

    /// Submit a flow gated on dependencies: it is released when every
    /// flow in `deps` has completed, and starts at
    /// `max(start_min, latest dependency finish) + extra_delay`.
    ///
    /// This is how fence ordering, double-buffer reuse, and serialized
    /// flushes are expressed: the whole execution DAG can be submitted
    /// upfront and simulated in one pass with true overlap.
    ///
    /// The route is borrowed and interned (callers can reuse one scratch
    /// buffer across submissions); identical routes share arena storage.
    ///
    /// # Panics
    /// Panics if a route link is out of range, `bytes < 0`, or a
    /// dependency id has not been submitted yet.
    pub fn submit_with_deps(
        &mut self,
        start_min: SimTime,
        extra_delay: f64,
        route: impl AsRef<[LinkIx]>,
        bytes: f64,
        deps: &[FlowId],
    ) -> FlowId {
        let route = route.as_ref();
        assert!(bytes >= 0.0);
        assert!(extra_delay >= 0.0);
        for &l in route {
            assert!(l < self.caps.len(), "route link {l} out of range");
        }
        let id = self.flows.len();
        if self.carried.len() < self.caps.len() {
            self.carried.resize(self.caps.len(), 0.0);
        }
        for &l in route {
            self.carried[l] += bytes;
        }
        let span = self.intern(route);
        self.flows.push(Flow {
            span,
            remaining: bytes,
            status: FlowStatus::Waiting,
            rate: 0.0,
            anchor: 0.0,
            deps_left: 0,
            start_min,
            extra_delay,
            dep_release: 0.0,
            dependents: Vec::new(),
        });
        let mut deps_left = 0;
        let mut dep_release: SimTime = 0.0;
        for &d in deps {
            assert!(d < id, "dependency {d} not submitted yet");
            match self.flows[d].status {
                FlowStatus::Done(t) => dep_release = dep_release.max(t),
                _ => {
                    self.flows[d].dependents.push(id);
                    deps_left += 1;
                }
            }
        }
        let f = &mut self.flows[id];
        f.deps_left = deps_left;
        f.dep_release = dep_release;
        if deps_left == 0 {
            self.release(id);
        }
        id
    }

    /// Intern a route into the link arena, deduplicating identical
    /// contents, and return its `(start, len)` span.
    fn intern(&mut self, route: &[LinkIx]) -> (u32, u32) {
        if route.is_empty() {
            return (0, 0);
        }
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for &l in route {
            h = mix64(h ^ l as u64);
        }
        if let Some(spans) = self.route_dedup.get(&h) {
            for &(s, len) in spans {
                if len as usize == route.len()
                    && &self.route_arena[s as usize..s as usize + len as usize] == route
                {
                    return (s, len);
                }
            }
        }
        let start = self.route_arena.len();
        assert!(start + route.len() <= u32::MAX as usize, "route arena overflow");
        self.route_arena.extend_from_slice(route);
        let span = (start as u32, route.len() as u32);
        self.route_dedup.entry(h).or_default().push(span);
        span
    }

    /// Move a dependency-satisfied flow into the pending heap.
    fn release(&mut self, id: FlowId) {
        let f = &mut self.flows[id];
        debug_assert_eq!(f.deps_left, 0);
        let start = f.start_min.max(f.dep_release) + f.extra_delay;
        f.status = FlowStatus::Pending;
        self.pending.push(Reverse((TimeKey(start.max(self.time)), id)));
    }

    /// Mark a flow done at `t` and release any satisfied dependents.
    fn complete(&mut self, id: FlowId, t: SimTime) {
        self.flows[id].remaining = 0.0;
        self.flows[id].status = FlowStatus::Done(t);
        self.record(id, TraceKind::Finished);
        let dependents = std::mem::take(&mut self.flows[id].dependents);
        for dep in dependents {
            let f = &mut self.flows[dep];
            f.dep_release = f.dep_release.max(t);
            f.deps_left -= 1;
            if f.deps_left == 0 {
                self.release(dep);
            }
        }
    }

    /// Re-waterfill whatever the current [`Recompute`] mode says needs
    /// it: the dirtied components, or every live one.
    fn refill_dirty(&mut self) {
        if !self.comps.has_dirty() {
            return;
        }
        let mut roots = std::mem::take(&mut self.refill_roots);
        match self.recompute {
            Recompute::Incremental => self.comps.take_dirty(&mut roots),
            Recompute::Full => self.comps.take_all_live(&mut roots),
        }
        for &r in &roots {
            self.refill_component(r);
        }
        self.refill_roots = roots;
    }

    /// Max-min waterfilling over one component's member flows,
    /// allocation-free: the per-link scratch persists across calls and
    /// only touched links are reset. Semantics identical to
    /// [`crate::fairshare::max_min_rates`] restricted to the component
    /// (tested against it). Flows whose rate changed bitwise are settled
    /// and re-anchored at the current time; the component's completion
    /// heap is rebuilt and a fresh event-index entry published.
    fn refill_component(&mut self, root: u32) {
        let now = self.time;
        let rix = root as usize;
        {
            // Compact completed members. `retain` preserves the relative
            // order of live members, so the link touch order — and with
            // it the freeze order and the produced bits — is the same
            // whether or not a completed flow was already compacted out.
            let flows = &self.flows;
            let slot = &mut self.comps.slots[rix];
            slot.flows.retain(|&id| matches!(flows[id].status, FlowStatus::Active));
            slot.version = slot.version.wrapping_add(1);
            slot.completions.clear();
            if slot.flows.is_empty() {
                return;
            }
        }

        let scr = &mut self.scratch;
        if scr.cap_rem.len() < self.caps.len() {
            scr.cap_rem.resize(self.caps.len(), 0.0);
            scr.unfixed.resize(self.caps.len(), 0);
            scr.flows_on.resize_with(self.caps.len(), Vec::new);
            scr.pos.resize(self.caps.len(), 0);
            scr.version.resize(self.caps.len(), 0);
            scr.mark.resize(self.caps.len(), 0);
        }
        // Reset only what the previous refill touched.
        for &l in &scr.touched {
            scr.unfixed[l] = 0;
            scr.flows_on[l].clear();
        }
        scr.touched.clear();

        let members = &self.comps.slots[rix].flows;
        let n = members.len();
        scr.rates.clear();
        scr.rates.resize(n, f64::INFINITY);
        scr.fixed.clear();
        scr.fixed.resize(n, false);
        let mut entries = 0usize;
        for (k, &id) in members.iter().enumerate() {
            let (s, len) = self.flows[id].span;
            let route = &self.route_arena[s as usize..s as usize + len as usize];
            entries += route.len();
            for &l in route {
                if scr.unfixed[l] == 0 && scr.flows_on[l].is_empty() {
                    scr.touched.push(l);
                    scr.cap_rem[l] = self.caps[l];
                }
                scr.unfixed[l] += 1;
                scr.flows_on[l].push(k);
            }
        }
        let mut n_unfixed = n;

        let use_heap = match self.rate_algo {
            RateAlgo::Scan => false,
            RateAlgo::Heap => true,
            RateAlgo::Auto => auto_pick(scr.touched.len(), n, entries),
        };
        if !use_heap {
            while n_unfixed > 0 {
                // bottleneck link among touched ones
                let mut bott = usize::MAX;
                let mut fair = f64::INFINITY;
                for &l in &scr.touched {
                    if scr.unfixed[l] > 0 {
                        let f = scr.cap_rem[l] / scr.unfixed[l] as f64;
                        if f < fair {
                            fair = f;
                            bott = l;
                        }
                    }
                }
                debug_assert_ne!(bott, usize::MAX);
                let fair = fair.max(0.0);
                // freeze flows on the bottleneck; iterate over an
                // index range to avoid aliasing the scratch borrow
                for fi in 0..scr.flows_on[bott].len() {
                    let k = scr.flows_on[bott][fi];
                    if scr.fixed[k] {
                        continue;
                    }
                    scr.fixed[k] = true;
                    n_unfixed -= 1;
                    scr.rates[k] = fair;
                    let (s, len) = self.flows[members[k]].span;
                    for &l in &self.route_arena[s as usize..s as usize + len as usize] {
                        scr.unfixed[l] -= 1;
                        scr.cap_rem[l] = (scr.cap_rem[l] - fair).max(0.0);
                    }
                }
            }
        } else {
            scr.heap.clear();
            for (i, &l) in scr.touched.iter().enumerate() {
                scr.pos[l] = i as u32;
                scr.version[l] = 0;
                if scr.unfixed[l] > 0 {
                    let share = scr.cap_rem[l] / scr.unfixed[l] as f64;
                    scr.heap.push(Reverse((TimeKey(share), i as u32, l, 0)));
                }
            }
            while n_unfixed > 0 {
                let Reverse((TimeKey(share), _, bott, ver)) =
                    scr.heap.pop().expect("unfixed flows imply a live heap entry");
                // Lazy invalidation: entries outdated by later link
                // mutations (or fully frozen links) are skipped; the
                // survivor carries the link's *current* share, so the
                // selected bottleneck and rate equal the scan's.
                if scr.version[bott] != ver || scr.unfixed[bott] == 0 {
                    continue;
                }
                let fair = share.max(0.0);
                scr.batch += 1;
                for fi in 0..scr.flows_on[bott].len() {
                    let k = scr.flows_on[bott][fi];
                    if scr.fixed[k] {
                        continue;
                    }
                    scr.fixed[k] = true;
                    n_unfixed -= 1;
                    scr.rates[k] = fair;
                    let (s, len) = self.flows[members[k]].span;
                    for &l in &self.route_arena[s as usize..s as usize + len as usize] {
                        scr.unfixed[l] -= 1;
                        scr.cap_rem[l] = (scr.cap_rem[l] - fair).max(0.0);
                        if scr.mark[l] != scr.batch {
                            scr.mark[l] = scr.batch;
                            scr.changed.push(l);
                        }
                    }
                }
                // Re-key every link the batch mutated: bump its
                // version (invalidating old entries) and push one
                // fresh entry while it still has unfixed flows.
                for ci in 0..scr.changed.len() {
                    let l = scr.changed[ci];
                    scr.version[l] = scr.version[l].wrapping_add(1);
                    if scr.unfixed[l] > 0 {
                        let share = scr.cap_rem[l] / scr.unfixed[l] as f64;
                        scr.heap.push(Reverse((
                            TimeKey(share),
                            scr.pos[l],
                            l,
                            scr.version[l],
                        )));
                    }
                }
                scr.changed.clear();
            }
        }

        // Apply: settle flows whose rate changed bitwise, rebuild the
        // component's completion heap, publish one event-index entry.
        let mut min_ct = f64::INFINITY;
        for k in 0..n {
            let id = self.comps.slots[rix].flows[k];
            let r = self.scratch.rates[k];
            let f = &mut self.flows[id];
            if r.to_bits() != f.rate.to_bits() {
                if now > f.anchor {
                    f.remaining = (f.remaining - f.rate * (now - f.anchor)).max(0.0);
                }
                f.anchor = now;
                f.rate = r;
            }
            let ct = if f.remaining <= BYTE_EPS {
                f.anchor
            } else {
                f.anchor + f.remaining / f.rate
            };
            self.comps.slots[rix].completions.push(Reverse((TimeKey(ct), id)));
            if TimeKey(ct) < TimeKey(min_ct) {
                min_ct = ct;
            }
        }
        let version = self.comps.slots[rix].version;
        self.comps.index.push(Reverse((TimeKey(min_ct), root, version)));
    }

    /// Earliest cached completion across components, skipping index
    /// entries stranded by merges and re-waterfills.
    fn next_completion(&mut self) -> SimTime {
        while let Some(&Reverse((TimeKey(t), root, version))) = self.comps.index.peek() {
            if self.comps.entry_live(root, version) {
                return t;
            }
            self.comps.index.pop();
        }
        f64::INFINITY
    }

    /// Process one event (a batch of arrivals or a batch of completions).
    /// Returns `false` when the simulation is idle.
    pub fn step(&mut self) -> bool {
        // Activate any arrivals due "now" first.
        self.activate_due();

        if self.n_active == 0 {
            // Jump to the next arrival, if any.
            match self.pending.peek() {
                Some(&Reverse((TimeKey(t), _))) => {
                    self.time = self.time.max(t);
                    self.activate_due();
                    return true;
                }
                None => return false,
            }
        }

        // Re-waterfill dirtied components at the current time, before
        // it advances past the membership change that dirtied them.
        self.refill_dirty();

        let t_complete = self.next_completion();
        let t_arrival = self
            .pending
            .peek()
            .map(|&Reverse((TimeKey(t), _))| t)
            .unwrap_or(f64::INFINITY);

        if t_arrival < t_complete - TIME_EPS {
            self.time = t_arrival;
            self.activate_due();
        } else {
            self.finish_due(t_complete);
        }
        true
    }

    /// Move pending flows whose start time has come into the active set.
    ///
    /// Only arrivals that actually join a component dirty any rates:
    /// zero-byte and empty-route flows complete instantly without
    /// changing any link's membership, so an event consisting solely of
    /// them (fences, barrier ops) triggers no rate recomputation.
    fn activate_due(&mut self) {
        while let Some(&Reverse((TimeKey(t), id))) = self.pending.peek() {
            if t > self.time + TIME_EPS {
                break;
            }
            self.pending.pop();
            let (start, len) = self.flows[id].span;
            if self.flows[id].remaining <= BYTE_EPS || len == 0 {
                self.record(id, TraceKind::Started);
                self.complete(id, self.time);
            } else {
                let f = &mut self.flows[id];
                f.status = FlowStatus::Active;
                f.anchor = self.time;
                f.rate = 0.0;
                self.n_active += 1;
                self.record(id, TraceKind::Started);
                self.comps.ensure_links(self.caps.len());
                let route = &self.route_arena[start as usize..start as usize + len as usize];
                self.comps.attach(id, route);
            }
        }
    }

    /// Complete every flow due at `t_evt` — or within the completion-
    /// slack window of it — across all components, and mark their
    /// components dirty. Cross-component batching matches the classic
    /// full-scan retirement: any component whose cached next completion
    /// falls inside the window is drained at the event time.
    fn finish_due(&mut self, t_evt: SimTime) {
        self.time = t_evt;
        let limit = TimeKey(t_evt + self.slack);
        while let Some(&Reverse((t, root, version))) = self.comps.index.peek() {
            if !self.comps.entry_live(root, version) {
                self.comps.index.pop();
                continue;
            }
            if t > limit {
                break;
            }
            self.comps.index.pop();
            self.drain_component(root, limit);
        }
    }

    /// Pop and complete this component's members whose cached completion
    /// time is within `limit`, at the current time.
    fn drain_component(&mut self, root: u32, limit: TimeKey) {
        let t_evt = self.time;
        let rix = root as usize;
        while let Some(&Reverse((t, id))) = self.comps.slots[rix].completions.peek() {
            if t > limit {
                break;
            }
            self.comps.slots[rix].completions.pop();
            debug_assert!(matches!(self.flows[id].status, FlowStatus::Active));
            let (start, len) = self.flows[id].span;
            let slot = &mut self.comps.slots[rix];
            slot.live -= 1;
            slot.route_entries -= len;
            self.comps
                .release_links(&self.route_arena[start as usize..start as usize + len as usize]);
            self.n_active -= 1;
            self.complete(id, t_evt);
        }
        self.comps.mark_dirty(root);
    }

    /// Run until every flow in `ids` has completed; returns the latest of
    /// their finish times. Other flows keep progressing naturally.
    ///
    /// # Panics
    /// Panics if the simulation goes idle while some of `ids` are still
    /// incomplete (impossible unless the caller forgot to submit them).
    pub fn run_until_done(&mut self, ids: &[FlowId]) -> SimTime {
        while ids
            .iter()
            .any(|&id| !matches!(self.flows[id].status, FlowStatus::Done(_)))
        {
            assert!(self.step(), "simulator idle with flows outstanding");
        }
        ids.iter()
            .map(|&id| self.finish_time(id).expect("just completed"))
            .fold(0.0, f64::max)
    }

    /// Run until no pending or active flows remain; returns the final time.
    pub fn run_to_idle(&mut self) -> SimTime {
        while self.step() {}
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(caps: &[f64]) -> Simulator {
        Simulator::with_capacities(caps.to_vec())
    }

    #[test]
    fn single_flow_exact_time() {
        let mut s = sim(&[100.0]);
        let f = s.submit(0.0, vec![0], 250.0);
        assert_eq!(s.run_to_idle(), 2.5);
        assert_eq!(s.finish_time(f), Some(2.5));
    }

    #[test]
    fn two_equal_flows_share() {
        let mut s = sim(&[100.0]);
        let a = s.submit(0.0, vec![0], 100.0);
        let b = s.submit(0.0, vec![0], 100.0);
        s.run_to_idle();
        // each at 50 B/s -> 2 s
        assert!((s.finish_time(a).unwrap() - 2.0).abs() < 1e-9);
        assert!((s.finish_time(b).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn staggered_arrival_analytic() {
        // cap 100. f0 (300 B) starts at 0 alone: 100 B/s.
        // f1 (100 B) arrives at 1.0: both at 50 B/s.
        // f0 has 200 left at t=1. f1 finishes at 1 + 100/50 = 3.0,
        // f0 then has 200 - 100 = 100 left, full rate: 3.0 + 1.0 = 4.0.
        let mut s = sim(&[100.0]);
        let f0 = s.submit(0.0, vec![0], 300.0);
        let f1 = s.submit(1.0, vec![0], 100.0);
        s.run_to_idle();
        assert!((s.finish_time(f1).unwrap() - 3.0).abs() < 1e-9);
        assert!((s.finish_time(f0).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_chain() {
        let mut s = sim(&[100.0, 10.0]);
        let f = s.submit(0.0, vec![0, 1], 100.0);
        s.run_to_idle();
        assert!((s.finish_time(f).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_completes_at_start() {
        let mut s = sim(&[10.0]);
        let f = s.submit(5.0, vec![0], 0.0);
        s.run_to_idle();
        assert_eq!(s.finish_time(f), Some(5.0));
    }

    #[test]
    fn empty_route_completes_at_start() {
        let mut s = sim(&[]);
        let f = s.submit(2.0, Vec::<LinkIx>::new(), 1e9);
        s.run_to_idle();
        assert_eq!(s.finish_time(f), Some(2.0));
    }

    #[test]
    fn virtual_link_acts_as_sink() {
        let mut s = sim(&[100.0, 100.0]);
        let ost = s.add_virtual_link(10.0);
        let a = s.submit(0.0, vec![0, ost], 10.0);
        let b = s.submit(0.0, vec![1, ost], 10.0);
        s.run_to_idle();
        // both bottleneck on the sink at 5 B/s -> 2 s
        assert!((s.finish_time(a).unwrap() - 2.0).abs() < 1e-9);
        assert!((s.finish_time(b).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn run_until_done_leaves_others_running() {
        let mut s = sim(&[100.0, 100.0]);
        let quick = s.submit(0.0, vec![0], 100.0);
        let slow = s.submit(0.0, vec![1], 1000.0);
        let t = s.run_until_done(&[quick]);
        assert!((t - 1.0).abs() < 1e-9);
        assert_eq!(s.status(slow), FlowStatus::Active);
        // submit a follow-up that contends with `slow`
        let next = s.submit(t, vec![1], 100.0);
        s.run_to_idle();
        assert!(s.finish_time(next).unwrap() > 1.0 + 1.0 - 1e-9);
        assert!(s.finish_time(slow).unwrap() > 10.0 - 1e-9);
    }

    #[test]
    fn submission_in_past_is_clamped() {
        let mut s = sim(&[10.0]);
        s.submit(0.0, vec![0], 100.0);
        s.run_to_idle();
        let t = s.now();
        let f = s.submit(0.0, vec![0], 10.0); // "starts in the past"
        s.run_to_idle();
        assert!(s.finish_time(f).unwrap() >= t + 1.0 - 1e-9);
    }

    #[test]
    fn batch_completions_single_event() {
        // 64 identical flows through one link all complete at once.
        let mut s = sim(&[64.0]);
        let ids: Vec<_> = (0..64).map(|_| s.submit(0.0, vec![0], 10.0)).collect();
        s.run_to_idle();
        for id in ids {
            assert!((s.finish_time(id).unwrap() - 10.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_route_panics() {
        let mut s = sim(&[10.0]);
        s.submit(0.0, vec![3], 1.0);
    }

    #[test]
    fn dependency_chain_serializes() {
        let mut s = sim(&[10.0]);
        let a = s.submit(0.0, vec![0], 100.0); // 10 s
        let b = s.submit_with_deps(0.0, 0.0, vec![0], 50.0, &[a]); // +5 s
        let c = s.submit_with_deps(0.0, 0.5, vec![0], 10.0, &[b]); // +0.5 delay +1 s
        s.run_to_idle();
        assert!((s.finish_time(a).unwrap() - 10.0).abs() < 1e-9);
        assert!((s.finish_time(b).unwrap() - 15.0).abs() < 1e-9);
        assert!((s.finish_time(c).unwrap() - 16.5).abs() < 1e-9);
    }

    #[test]
    fn dependent_overlaps_with_unrelated_flow() {
        // flush(r-1) on link 1 overlaps with agg(r) on link 0 while
        // agg(r+1) waits for agg(r): the core pipelining pattern.
        let mut s = sim(&[10.0, 10.0]);
        let agg_r = s.submit(0.0, vec![0], 100.0); // 10 s
        let flush = s.submit_with_deps(0.0, 0.0, vec![1], 50.0, &[agg_r]); // 10..15
        let agg_r1 = s.submit_with_deps(0.0, 0.0, vec![0], 100.0, &[agg_r]); // 10..20
        s.run_to_idle();
        assert!((s.finish_time(flush).unwrap() - 15.0).abs() < 1e-9);
        assert!((s.finish_time(agg_r1).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dep_on_already_done_flow() {
        let mut s = sim(&[10.0]);
        let a = s.submit(0.0, vec![0], 10.0);
        s.run_to_idle(); // a done at t=1
        let b = s.submit_with_deps(0.0, 0.0, vec![0], 10.0, &[a]);
        s.run_to_idle();
        assert!((s.finish_time(b).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn multi_deps_wait_for_latest() {
        let mut s = sim(&[10.0, 1.0]);
        let fast = s.submit(0.0, vec![0], 10.0); // 1 s
        let slow = s.submit(0.0, vec![1], 10.0); // 10 s
        let gated = s.submit_with_deps(0.0, 0.0, vec![0], 10.0, &[fast, slow]);
        s.run_to_idle();
        assert!((s.finish_time(gated).unwrap() - 11.0).abs() < 1e-9);
        assert_eq!(s.status(gated), FlowStatus::Done(s.finish_time(gated).unwrap()));
    }

    #[test]
    fn start_min_dominates_when_later_than_deps() {
        let mut s = sim(&[10.0]);
        let a = s.submit(0.0, vec![0], 10.0); // done at 1
        let b = s.submit_with_deps(5.0, 0.0, vec![0], 10.0, &[a]);
        s.run_to_idle();
        assert!((s.finish_time(b).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn waiting_status_reported() {
        let mut s = sim(&[10.0]);
        let a = s.submit(0.0, vec![0], 100.0);
        let b = s.submit_with_deps(0.0, 0.0, vec![0], 1.0, &[a]);
        assert_eq!(s.status(b), FlowStatus::Waiting);
    }

    #[test]
    fn trace_records_lifecycle_in_order() {
        let mut s = sim(&[10.0]);
        s.enable_trace();
        let a = s.submit(0.0, vec![0], 10.0); // 0..1
        let b = s.submit_with_deps(0.0, 0.0, vec![0], 20.0, &[a]); // 1..3
        s.run_to_idle();
        let t = s.trace();
        assert_eq!(t.len(), 4);
        assert_eq!((t[0].flow, t[0].kind), (a, TraceKind::Started));
        assert_eq!((t[1].flow, t[1].kind), (a, TraceKind::Finished));
        assert_eq!((t[2].flow, t[2].kind), (b, TraceKind::Started));
        assert_eq!((t[3].flow, t[3].kind), (b, TraceKind::Finished));
        assert!((t[1].time - 1.0).abs() < 1e-9);
        assert!((t[3].time - 3.0).abs() < 1e-9);
        // times are non-decreasing
        assert!(t.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn link_byte_accounting() {
        let mut s = sim(&[10.0, 10.0]);
        s.submit(0.0, vec![0], 100.0);
        s.submit(0.0, vec![0, 1], 50.0);
        s.run_to_idle();
        assert_eq!(s.bytes_carried(0), 150.0);
        assert_eq!(s.bytes_carried(1), 50.0);
        assert_eq!(s.hottest_link(), Some((0, 150.0)));
        // virtual links participate too
        let v = s.add_virtual_link(5.0);
        s.submit(s.now(), vec![v], 20.0);
        s.run_to_idle();
        assert_eq!(s.bytes_carried(v), 20.0);
    }

    #[test]
    fn trace_off_by_default() {
        let mut s = sim(&[10.0]);
        s.submit(0.0, vec![0], 10.0);
        s.run_to_idle();
        assert!(s.trace().is_empty());
    }

    #[test]
    fn route_interning_dedups_identical_routes() {
        let mut s = sim(&[10.0, 10.0, 10.0]);
        for _ in 0..100 {
            s.submit(0.0, vec![0, 1, 2], 1.0);
        }
        // 100 identical routes share one 3-entry span.
        assert_eq!(s.route_arena.len(), 3);
        s.submit(0.0, vec![2, 1, 0], 1.0); // different content, new span
        assert_eq!(s.route_arena.len(), 6);
        s.run_to_idle();
        assert!((0..s.num_flows()).all(|f| s.finish_time(f).is_some()));
    }

    #[test]
    fn scale_capacities_mid_flight_recomputes_rates() {
        // A (200 B, link 0 @ 10 B/s) runs alone; B (10 B, link 1) is a
        // disjoint component finishing at t=1. Degrading to 50% after
        // B's completion must charge A its old rate up to t=1 (190 B
        // left) and the degraded rate (5 B/s) after: 1 + 190/5 = 39.
        let mut s = sim(&[10.0, 10.0]);
        let a = s.submit(0.0, vec![0], 200.0);
        let b = s.submit(0.0, vec![1], 10.0);
        s.run_until_done(&[b]);
        assert!((s.now() - 1.0).abs() < 1e-12);
        s.scale_capacities(0.5);
        s.run_to_idle();
        assert!(
            (s.finish_time(a).unwrap() - 39.0).abs() < 1e-9,
            "degrade mid-flight not applied: finished at {:?}",
            s.finish_time(a)
        );
    }

    #[test]
    fn degrade_between_rounds_matches_fresh_sim() {
        // Round 1 at full capacity, degrade, round 2 — round 2's finish
        // times must equal (bitwise) a fresh simulator built with the
        // degraded capacities running only round 2.
        let mut s1 = sim(&[40.0, 30.0, 20.0]);
        let r1: Vec<_> = (0..6)
            .map(|i| s1.submit(0.0, vec![i % 3], 10.0 + i as f64))
            .collect();
        let t_round = s1.run_until_done(&r1);
        s1.scale_capacities(0.25);
        let r2: Vec<_> = (0..6)
            .map(|i| s1.submit(t_round + 1.0, vec![(i + 1) % 3, i % 3], 7.0 * (i + 1) as f64))
            .collect();
        s1.run_to_idle();

        let mut s2 = sim(&[10.0, 7.5, 5.0]);
        let f2: Vec<_> = (0..6)
            .map(|i| s2.submit(t_round + 1.0, vec![(i + 1) % 3, i % 3], 7.0 * (i + 1) as f64))
            .collect();
        s2.run_to_idle();
        for (a, b) in r2.iter().zip(&f2) {
            assert_eq!(
                s1.finish_time(*a).map(f64::to_bits),
                s2.finish_time(*b).map(f64::to_bits),
                "round-2 flow diverged after mid-run degrade"
            );
        }
    }

    #[test]
    fn add_virtual_link_mid_flight_joins_components() {
        let mut s = sim(&[10.0]);
        let a = s.submit(0.0, vec![0], 100.0); // 10 s alone
        s.run_until_done(&[]); // no-op, still at t=0
        let v = s.add_virtual_link(2.0);
        let b = s.submit(0.0, vec![0, v], 20.0);
        s.run_to_idle();
        // b bottlenecks on v at 2 B/s -> 10 s; a gets the remaining 8.
        assert!((s.finish_time(b).unwrap() - 10.0).abs() < 1e-9);
        assert!(s.finish_time(a).unwrap() > 10.0);
    }

    mod algo_equivalence {
        use super::*;

        fn mix(x: u64) -> u64 {
            super::super::mix64(x)
        }

        /// Bit patterns of every flow's finish time after running the
        /// scenario built by `build` under the given algorithm and
        /// recompute mode.
        fn finishes(
            algo: RateAlgo,
            mode: Recompute,
            build: impl Fn(&mut Simulator),
        ) -> Vec<u64> {
            let mut s = Simulator::with_capacities(Vec::new());
            s.set_rate_algo(algo);
            s.set_recompute(mode);
            build(&mut s);
            s.run_to_idle();
            (0..s.num_flows())
                .map(|f| s.finish_time(f).expect("flow completed").to_bits())
                .collect()
        }

        fn assert_identical_labeled(label: &str, build: impl Fn(&mut Simulator)) {
            let reference = finishes(RateAlgo::Scan, Recompute::Full, &build);
            for algo in [RateAlgo::Scan, RateAlgo::Heap, RateAlgo::Auto] {
                for mode in [Recompute::Full, Recompute::Incremental] {
                    assert_eq!(
                        reference,
                        finishes(algo, mode, &build),
                        "{label}: {algo:?}/{mode:?} diverged from Scan/Full"
                    );
                }
            }
        }

        fn assert_identical(build: impl Fn(&mut Simulator)) {
            assert_identical_labeled("scenario", build);
        }

        /// The analytic scenarios from the tests above, replayed under
        /// every algorithm x recompute mode: finish times must match the
        /// Scan/Full reference to the last bit.
        #[test]
        fn analytic_scenarios_bit_identical() {
            assert_identical(|s| {
                s.add_virtual_link(100.0);
                s.submit(0.0, vec![0], 250.0);
            });
            assert_identical(|s| {
                s.add_virtual_link(100.0);
                s.submit(0.0, vec![0], 300.0);
                s.submit(1.0, vec![0], 100.0);
            });
            assert_identical(|s| {
                s.add_virtual_link(100.0);
                s.add_virtual_link(10.0);
                s.submit(0.0, vec![0, 1], 100.0);
            });
            assert_identical(|s| {
                s.add_virtual_link(100.0);
                s.add_virtual_link(100.0);
                let ost = s.add_virtual_link(10.0);
                s.submit(0.0, vec![0, ost], 10.0);
                s.submit(0.0, vec![1, ost], 10.0);
            });
            assert_identical(|s| {
                s.add_virtual_link(10.0);
                let a = s.submit(0.0, vec![0], 100.0);
                let b = s.submit_with_deps(0.0, 0.0, vec![0], 50.0, &[a]);
                s.submit_with_deps(0.0, 0.5, vec![0], 10.0, &[b]);
            });
            assert_identical(|s| {
                s.add_virtual_link(64.0);
                for _ in 0..64 {
                    s.submit(0.0, vec![0], 10.0);
                }
            });
        }

        /// Seeded sweep over irregular scenarios — staggered arrivals,
        /// shared links, dependency gating, zero-byte fences, completion
        /// slack, mid-run capacity degrades — asserting bit-identical
        /// schedules throughout.
        #[test]
        fn seeded_sweep_bit_identical() {
            for case in 0u64..60 {
                let nlinks = 3 + (mix(case * 5 + 1) % 10) as usize;
                let nflows = 1 + (mix(case * 11 + 2) % 40) as usize;
                let build = |s: &mut Simulator| {
                    for l in 0..nlinks {
                        s.add_virtual_link(1.0 + (mix(case * 17 + l as u64) % 64) as f64);
                    }
                    if case % 3 == 0 {
                        s.set_completion_slack(1e-3);
                    }
                    for i in 0..nflows {
                        let len = 1 + (mix(case * 23 + i as u64) % 4) as usize;
                        let route: Vec<usize> = (0..len)
                            .map(|h| (mix(case * 41 + i as u64 * 7 + h as u64) % nlinks as u64)
                                as usize)
                            .collect();
                        let bytes = (mix(case * 59 + i as u64) % 5000) as f64 / 7.0;
                        let start = (mix(case * 73 + i as u64) % 30) as f64 / 10.0;
                        // every third flow gates on an earlier one; every
                        // seventh is a zero-byte fence
                        let deps: Vec<FlowId> = if i >= 1 && i % 3 == 0 {
                            vec![(mix(case * 83 + i as u64) % i as u64) as usize]
                        } else {
                            Vec::new()
                        };
                        let bytes = if i % 7 == 6 { 0.0 } else { bytes };
                        s.submit_with_deps(start, 0.0, route, bytes, &deps);
                    }
                    if case % 4 == 1 {
                        // degrade mid-flight: run partway, scale, finish
                        for _ in 0..3 {
                            s.step();
                        }
                        s.scale_capacities(0.5);
                    }
                };
                assert_identical_labeled(&format!("case {case}"), build);
            }
        }
    }

    mod props {
        use super::*;
        use crate::fairshare::{max_min_rates, FlowDemand};

        fn mix(x: u64) -> u64 {
            super::super::mix64(x)
        }

        /// The engine's allocation-free waterfilling agrees with the
        /// reference implementation: the first completion happens at
        /// min(bytes_i / rate_i) under the reference rates.
        #[test]
        fn prop_engine_matches_reference_rates() {
            for case in 0u64..40 {
                let caps = [11.0, 23.0, 7.0, 17.0, 29.0];
                let nspecs = 1 + (mix(case * 7 + 1) % 9) as usize;
                let specs: Vec<(Vec<usize>, f64)> = (0..nspecs)
                    .map(|i| {
                        let len = 1 + (mix(case * 61 + i as u64) % 3) as usize;
                        let route: Vec<usize> = (0..len)
                            .map(|h| (mix(case * 127 + i as u64 * 11 + h as u64) % 5) as usize)
                            .collect();
                        let bytes = 10.0 + (mix(case * 211 + i as u64) % 4900) as f64 / 10.0;
                        (route, bytes)
                    })
                    .collect();

                let mut s = Simulator::with_capacities(caps.to_vec());
                for (route, bytes) in &specs {
                    s.submit(0.0, route, *bytes);
                }
                let demands: Vec<FlowDemand> = specs
                    .iter()
                    .map(|(r, _)| FlowDemand { route: r.clone() })
                    .collect();
                let rates = max_min_rates(&demands, |l| caps[l]);
                let expect_first = specs
                    .iter()
                    .zip(&rates)
                    .map(|((_, b), &r)| b / r)
                    .fold(f64::INFINITY, f64::min);
                // run to the first completion
                while s.step() {
                    if (0..s.num_flows()).any(|f| s.finish_time(f).is_some()) {
                        break;
                    }
                }
                let first = (0..s.num_flows())
                    .filter_map(|f| s.finish_time(f))
                    .fold(f64::INFINITY, f64::min);
                assert!((first - expect_first).abs() < 1e-6 * expect_first.max(1.0),
                    "case {case}: first completion {first} vs reference {expect_first}");
            }
        }

        /// Every submitted flow eventually completes, and completion
        /// time is lower-bounded by bytes / min-link-capacity.
        #[test]
        fn prop_all_complete_with_lower_bound() {
            for case in 0u64..40 {
                let caps = [7.0, 13.0, 29.0, 31.0, 5.0, 11.0];
                let nspecs = 1 + (mix(case * 13 + 3) % 19) as usize;
                let specs: Vec<(f64, Vec<usize>, f64)> = (0..nspecs)
                    .map(|i| {
                        let t = (mix(case * 31 + i as u64) % 50) as f64 / 10.0;
                        let len = 1 + (mix(case * 67 + i as u64) % 3) as usize;
                        let route: Vec<usize> = (0..len)
                            .map(|h| (mix(case * 151 + i as u64 * 13 + h as u64) % 6) as usize)
                            .collect();
                        let bytes = 1.0 + (mix(case * 251 + i as u64) % 9990) as f64 / 10.0;
                        (t, route, bytes)
                    })
                    .collect();

                let mut s = Simulator::with_capacities(caps.to_vec());
                let ids: Vec<_> = specs
                    .iter()
                    .map(|(t, route, bytes)| s.submit(*t, route, *bytes))
                    .collect();
                s.run_to_idle();
                for (id, (t, route, bytes)) in ids.iter().zip(&specs) {
                    let ft = s.finish_time(*id);
                    assert!(ft.is_some(), "case {case}: flow {id} never completed");
                    let minc = route.iter().map(|&l| caps[l]).fold(f64::INFINITY, f64::min);
                    let lb = t + bytes / minc;
                    assert!(ft.unwrap() >= lb - 1e-6,
                        "case {case}: flow {id} finished at {} before lower bound {lb}",
                        ft.unwrap());
                }
            }
        }

        /// More bytes on an otherwise identical flow never finishes
        /// earlier (monotonicity).
        #[test]
        fn prop_monotonic_in_bytes() {
            for case in 0u64..25 {
                let extra = 1.0 + (mix(case + 5) % 4990) as f64 / 10.0;
                let mut s1 = Simulator::with_capacities(vec![10.0, 20.0]);
                let a1 = s1.submit(0.0, vec![0, 1], 100.0);
                s1.submit(0.0, vec![1], 50.0);
                s1.run_to_idle();

                let mut s2 = Simulator::with_capacities(vec![10.0, 20.0]);
                let a2 = s2.submit(0.0, vec![0, 1], 100.0 + extra);
                s2.submit(0.0, vec![1], 50.0);
                s2.run_to_idle();

                assert!(s2.finish_time(a2).unwrap()
                    >= s1.finish_time(a1).unwrap() - 1e-9,
                    "case {case}");
            }
        }
    }
}
