//! Interference components over active flows.
//!
//! Two active flows *interfere* when their routes share a link (directly
//! or transitively); max-min waterfilling factors exactly along these
//! interference components — the fair share of every link in a component
//! is unaffected by flows outside it. The engine exploits that by
//! keeping a union-find over components keyed by link ownership: an
//! arrival unions the components of its route's links, a completion
//! merely decrements link occupancy, and only the touched component is
//! re-waterfilled while the rest keep their frozen rates and cached
//! completion times.
//!
//! Components are **never split**: when the last shared flow completes,
//! the survivors stay in one (over-merged) component until their links
//! go fully idle and are reclaimed by a later arrival. Over-merging is
//! harmless for exactness — waterfilling a union of link-disjoint flow
//! sets performs the same per-link arithmetic as waterfilling each set
//! alone — and it keeps the union-find monotone (no slot reuse, no
//! parent-chain surgery).
//!
//! Event lookup is a two-level heap: each slot holds a min-heap of its
//! members' completion times (rebuilt at each re-waterfill), and a
//! global index heap holds one `(next completion, root, version)` entry
//! per re-waterfill. Index entries are invalidated lazily: an entry is
//! live only while its slot is still a root and its version matches,
//! so merges and re-waterfills simply strand the old entries to be
//! skipped on pop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tapioca_topology::LinkIx;

use crate::engine::{FlowId, TimeKey};

/// Sentinel for "link currently owned by no component".
const NO_COMP: u32 = u32::MAX;

/// One component slot. Slots are allocated monotonically (at most one
/// per arrival) and never reused; a slot that loses a union keeps an
/// empty shell so stale parent pointers and index entries stay safe to
/// resolve.
#[derive(Debug, Default)]
pub(crate) struct CompSlot {
    /// Member flows in activation order (merge appends the loser's list
    /// to the winner's). Completed flows are compacted out at the next
    /// re-waterfill; the *relative* order of live members is preserved,
    /// which is what keeps the waterfill freeze order — and therefore
    /// the produced bits — independent of when compaction happens.
    pub flows: Vec<FlowId>,
    /// Min-heap of `(completion time, flow)` over members, rebuilt at
    /// each re-waterfill of this component.
    pub completions: BinaryHeap<Reverse<(TimeKey, FlowId)>>,
    /// Bumped at each re-waterfill; the global index stores the version
    /// an entry was published under, so older entries read as stale.
    pub version: u64,
    /// Members still transferring.
    pub live: u32,
    /// Total route entries across live members — the union weight (the
    /// heavier side keeps its root so merges move less state).
    pub route_entries: u32,
    /// Queued in the engine's dirty list.
    pub dirty: bool,
}

/// Union-find over component slots plus the link-ownership table and
/// the global completion index.
#[derive(Debug, Default)]
pub(crate) struct Components {
    parent: Vec<u32>,
    pub slots: Vec<CompSlot>,
    /// Owning component per link (`NO_COMP` when no active flow uses
    /// it). May lag behind unions; resolve through `find`.
    comp_of_link: Vec<u32>,
    /// Active flows currently routed over each link.
    link_active: Vec<u32>,
    /// Roots awaiting re-waterfill (deduplicated via `CompSlot::dirty`;
    /// entries may be stale after a merge — re-resolved on drain).
    dirty: Vec<u32>,
    /// Global event index: `(next completion, root, version)`.
    pub index: BinaryHeap<Reverse<(TimeKey, u32, u64)>>,
}

impl Components {
    /// Grow the per-link tables to cover `n` links.
    pub fn ensure_links(&mut self, n: usize) {
        if self.comp_of_link.len() < n {
            self.comp_of_link.resize(n, NO_COMP);
            self.link_active.resize(n, 0);
        }
    }

    /// Root of `c`, with path halving.
    pub fn find(&mut self, mut c: u32) -> u32 {
        while self.parent[c as usize] != c {
            let grand = self.parent[self.parent[c as usize] as usize];
            self.parent[c as usize] = grand;
            c = grand;
        }
        c
    }

    /// True while an index entry `(.., root, version)` still describes a
    /// live, un-rewaterfilled component.
    pub fn entry_live(&self, root: u32, version: u64) -> bool {
        self.parent[root as usize] == root && self.slots[root as usize].version == version
    }

    /// Queue `c`'s component for re-waterfilling.
    pub fn mark_dirty(&mut self, c: u32) {
        let r = self.find(c);
        let slot = &mut self.slots[r as usize];
        if !slot.dirty {
            slot.dirty = true;
            self.dirty.push(r);
        }
    }

    /// Queue every live component (capacity changes touch them all).
    pub fn mark_all_dirty(&mut self) {
        for i in 0..self.slots.len() as u32 {
            if self.parent[i as usize] == i && self.slots[i as usize].live > 0 {
                self.mark_dirty(i);
            }
        }
    }

    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Drain the dirty queue into `out` as resolved, deduplicated roots.
    pub fn take_dirty(&mut self, out: &mut Vec<u32>) {
        out.clear();
        while let Some(c) = self.dirty.pop() {
            let r = self.find(c);
            let slot = &mut self.slots[r as usize];
            if slot.dirty {
                slot.dirty = false;
                out.push(r);
            }
        }
    }

    /// Clear the dirty queue and emit *every* live root instead — the
    /// full-recompute reference mode re-waterfills them all.
    pub fn take_all_live(&mut self, out: &mut Vec<u32>) {
        out.clear();
        while let Some(c) = self.dirty.pop() {
            let r = self.find(c);
            self.slots[r as usize].dirty = false;
        }
        for i in 0..self.slots.len() as u32 {
            if self.parent[i as usize] == i && self.slots[i as usize].live > 0 {
                out.push(i);
            }
        }
    }

    /// Attach an activating flow: union the components its route's links
    /// belong to (allocating a fresh slot when all links were idle),
    /// append the flow, claim the links, and mark the result dirty.
    /// Returns the root.
    pub fn attach(&mut self, id: FlowId, route: &[LinkIx]) -> u32 {
        debug_assert!(!route.is_empty());
        let mut base = NO_COMP;
        for &l in route {
            let owner = self.comp_of_link[l];
            if owner == NO_COMP {
                continue;
            }
            let r = self.find(owner);
            if base == NO_COMP {
                base = r;
            } else if r != base {
                base = self.union(base, r);
            }
        }
        if base == NO_COMP {
            base = self.slots.len() as u32;
            self.parent.push(base);
            self.slots.push(CompSlot::default());
        }
        let slot = &mut self.slots[base as usize];
        slot.flows.push(id);
        slot.live += 1;
        slot.route_entries += route.len() as u32;
        for &l in route {
            self.link_active[l] += 1;
            self.comp_of_link[l] = base;
        }
        self.mark_dirty(base);
        base
    }

    /// Release a completed flow's links: decrement occupancy and return
    /// fully idle links to the unowned pool so a later arrival starts a
    /// fresh component instead of resurrecting this one.
    pub fn release_links(&mut self, route: &[LinkIx]) {
        for &l in route {
            self.link_active[l] -= 1;
            if self.link_active[l] == 0 {
                self.comp_of_link[l] = NO_COMP;
            }
        }
    }

    /// Union two roots; the side with more live route entries keeps its
    /// slot (ties break to the smaller id, so the merge direction is a
    /// deterministic function of the event history). The loser's member
    /// list is appended to the winner's and its shell is invalidated.
    fn union(&mut self, a: u32, b: u32) -> u32 {
        debug_assert!(a != b);
        let wa = self.slots[a as usize].route_entries;
        let wb = self.slots[b as usize].route_entries;
        let (win, lose) = if wa > wb || (wa == wb && a < b) { (a, b) } else { (b, a) };
        self.parent[lose as usize] = win;
        let loser = &mut self.slots[lose as usize];
        let mut moved = std::mem::take(&mut loser.flows);
        let live = loser.live;
        let entries = loser.route_entries;
        loser.live = 0;
        loser.route_entries = 0;
        loser.dirty = false;
        loser.completions.clear();
        loser.version = loser.version.wrapping_add(1);
        let winner = &mut self.slots[win as usize];
        winner.flows.append(&mut moved);
        winner.live += live;
        winner.route_entries += entries;
        win
    }
}
