//! # tapioca-netsim
//!
//! Flow-level discrete-event network/storage simulator.
//!
//! The TAPIOCA paper evaluates on 1,024-4,096 node allocations of Mira
//! and Theta — hardware we do not have. This crate provides the
//! substitute: a *flow-level* simulator in which every data transfer is a
//! flow over a route of directed links, and concurrent flows share link
//! capacity by **progressive max-min fairness** (waterfilling). Between
//! flow arrivals and completions the rate allocation is constant, so the
//! simulation advances event-by-event with exact arithmetic on flow
//! remainders.
//!
//! Flow-level simulation is the standard fidelity/speed compromise for
//! studying *relative* bandwidths of communication schedules: it captures
//! link contention, bottleneck shifts and pipelining overlap, while
//! abstracting packets and routing dynamics. This matches the paper's
//! claims we need to reproduce (who wins, by what factor, where the
//! crossovers are) rather than absolute GB/s.
//!
//! Entry point: [`Simulator`]. The driver in `tapioca::sim_exec` submits
//! aggregation-phase flows (rank -> aggregator) and I/O-phase flows
//! (aggregator -> storage) with start times derived from TAPIOCA's fence
//! semantics, and reads back completion times.

mod components;
pub mod engine;
pub mod fairshare;

pub use engine::{FlowId, FlowStatus, RateAlgo, Recompute, Simulator, TraceEvent, TraceKind};
pub use fairshare::{max_min_rates, FlowDemand};

/// Simulated time, in seconds since simulation start.
pub type SimTime = f64;

/// Comparison slack for simulated times (1 picosecond).
pub const TIME_EPS: f64 = 1e-12;

/// Bytes remaining below which a flow is considered complete.
///
/// Completion events are computed as `remaining / rate`, so floating
/// point dust accumulates at roughly one ulp of the byte count per event
/// — well under 1e-3 bytes even for multi-GiB flows over thousands of
/// events. Anything below this threshold is zero.
pub const BYTE_EPS: f64 = 1e-3;

// Compile-time sanity: the epsilons must stay far below the scales they
// guard (event times in seconds, flow sizes in bytes).
const _: () = {
    assert!(TIME_EPS < 1e-9);
    assert!(BYTE_EPS < 1.0);
};
