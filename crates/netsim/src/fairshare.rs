//! Max-min fair bandwidth allocation (progressive filling /
//! waterfilling).
//!
//! Given a set of flows, each traversing a list of directed links, and
//! per-link capacities, the max-min allocation raises every flow's rate
//! uniformly until some link saturates; flows through that link are
//! frozen at the fair share and the process repeats on the residual
//! network. The result is the unique allocation in which no flow's rate
//! can be increased without decreasing that of a flow with an equal or
//! smaller rate.
//!
//! Only links actually traversed by at least one flow are touched, so the
//! cost is `O(iterations * touched_links + flows * route_len)` regardless
//! of how large the machine's link table is.

use std::collections::HashMap;

use tapioca_topology::LinkIx;

/// A flow's demand: the links it traverses.
///
/// An empty route means node-local traffic: such flows get an infinite
/// rate (they complete instantly at the flow level; callers model local
/// memory bandwidth with an explicit virtual link when it matters).
#[derive(Debug, Clone, Default)]
pub struct FlowDemand {
    /// Directed links traversed (order irrelevant for rate computation).
    pub route: Vec<LinkIx>,
}

impl AsRef<[LinkIx]> for FlowDemand {
    fn as_ref(&self) -> &[LinkIx] {
        &self.route
    }
}

#[derive(Debug, Clone, Copy)]
struct LinkState {
    cap_remaining: f64,
    unfixed_flows: usize,
}

/// Compute the max-min fair rate of every flow.
///
/// Flows are anything route-slice-like (`&[LinkIx]`, [`FlowDemand`], …),
/// so hot callers can pass borrowed routes without cloning.
/// `capacity(link)` must return a positive, finite capacity for every
/// link appearing in a route. Returns one rate per flow, in the same
/// order; flows with empty routes get `f64::INFINITY`.
pub fn max_min_rates<R: AsRef<[LinkIx]>>(
    flows: &[R],
    capacity: impl Fn(LinkIx) -> f64,
) -> Vec<f64> {
    let mut rates = vec![f64::INFINITY; flows.len()];
    if flows.is_empty() {
        return rates;
    }

    // Build per-link state over touched links only, remembering which
    // flows cross each link so freezing is O(flows-on-link).
    let mut links: HashMap<LinkIx, LinkState> = HashMap::new();
    let mut link_flows: HashMap<LinkIx, Vec<usize>> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        for &l in f.as_ref() {
            let e = links.entry(l).or_insert_with(|| {
                let cap = capacity(l);
                assert!(cap > 0.0 && cap.is_finite(), "link {l} has capacity {cap}");
                LinkState { cap_remaining: cap, unfixed_flows: 0 }
            });
            e.unfixed_flows += 1;
            link_flows.entry(l).or_default().push(i);
        }
    }

    let mut fixed = vec![false; flows.len()];
    let mut n_unfixed = flows.iter().filter(|f| !f.as_ref().is_empty()).count();
    // Flows with empty routes are already at infinity.

    while n_unfixed > 0 {
        // Bottleneck link: minimal fair share among links with unfixed flows.
        let (&bott, fair) = links
            .iter()
            .filter(|(_, s)| s.unfixed_flows > 0)
            .map(|(l, s)| (l, s.cap_remaining / s.unfixed_flows as f64))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("unfixed flows must traverse some link");
        let fair = fair.max(0.0);

        // Freeze every unfixed flow crossing the bottleneck.
        let crossing = link_flows.get(&bott).expect("bottleneck has flows").clone();
        for i in crossing {
            if fixed[i] {
                continue;
            }
            fixed[i] = true;
            n_unfixed -= 1;
            rates[i] = fair;
            for &l in flows[i].as_ref() {
                let s = links.get_mut(&l).expect("route link present");
                s.unfixed_flows -= 1;
                s.cap_remaining = (s.cap_remaining - fair).max(0.0);
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(table: &[(LinkIx, f64)]) -> impl Fn(LinkIx) -> f64 + '_ {
        move |l| {
            table
                .iter()
                .find(|(ix, _)| *ix == l)
                .map(|(_, c)| *c)
                .unwrap_or_else(|| panic!("unknown link {l}"))
        }
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let flows = vec![
            FlowDemand { route: vec![0] },
            FlowDemand { route: vec![0] },
        ];
        let r = max_min_rates(&flows, caps(&[(0, 10.0)]));
        assert_eq!(r, vec![5.0, 5.0]);
    }

    #[test]
    fn bottleneck_frees_capacity_elsewhere() {
        // Classic 3-flow example: f0 on A, f1 on A+B, f2 on B.
        // A = 10, B = 4: f1 and f2 bottleneck on B at 2; f0 then gets 8.
        let flows = vec![
            FlowDemand { route: vec![0] },
            FlowDemand { route: vec![0, 1] },
            FlowDemand { route: vec![1] },
        ];
        let r = max_min_rates(&flows, caps(&[(0, 10.0), (1, 4.0)]));
        assert_eq!(r[1], 2.0);
        assert_eq!(r[2], 2.0);
        assert_eq!(r[0], 8.0);
    }

    #[test]
    fn empty_route_is_infinite() {
        let flows = vec![FlowDemand { route: vec![] }];
        let r = max_min_rates(&flows, |_| unreachable!());
        assert!(r[0].is_infinite());
    }

    #[test]
    fn single_flow_gets_min_link() {
        let flows = vec![FlowDemand { route: vec![0, 1, 2] }];
        let r = max_min_rates(&flows, caps(&[(0, 9.0), (1, 3.0), (2, 6.0)]));
        assert_eq!(r, vec![3.0]);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_rates::<FlowDemand>(&[], |_| 1.0).is_empty());
    }

    #[test]
    fn repeated_link_counts_once_per_traversal() {
        // A flow crossing the same link twice still only gets one share,
        // but the share accounts for two traversals in the count.
        // (Minimal routes never repeat links; this documents behaviour.)
        let flows = vec![FlowDemand { route: vec![0, 0] }];
        let r = max_min_rates(&flows, caps(&[(0, 8.0)]));
        // 2 "virtual flows" on link 0 -> fair share 4.
        assert_eq!(r, vec![4.0]);
    }

    #[test]
    fn many_symmetric_flows() {
        let flows: Vec<_> = (0..64)
            .map(|i| FlowDemand { route: vec![i % 4] })
            .collect();
        let r = max_min_rates(&flows, |_| 16.0);
        for x in r {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    mod props {
        use super::*;

        fn mix(mut x: u64) -> u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }

        /// No link is over-subscribed, and every flow is bottlenecked
        /// somewhere (max-min optimality certificate). Deterministic
        /// seeded sweep.
        #[test]
        fn prop_feasible_and_maxmin() {
            for case in 0u64..60 {
                let caps_raw: Vec<f64> =
                    (0..8).map(|l| 1.0 + (mix(case * 17 + l) % 990) as f64 / 10.0).collect();
                let nflows = 1 + (mix(case * 31 + 9) % 11) as usize;
                let routes: Vec<Vec<usize>> = (0..nflows)
                    .map(|f| {
                        let len = 1 + (mix(case * 131 + f as u64) % 3) as usize;
                        (0..len)
                            .map(|h| (mix(case * 997 + f as u64 * 7 + h as u64) % 8) as usize)
                            .collect()
                    })
                    .collect();

                let flows: Vec<_> = routes
                    .iter()
                    .map(|r| FlowDemand { route: r.clone() })
                    .collect();
                let rates = max_min_rates(&flows, |l| caps_raw[l]);

                // Feasibility: per-link sum of rates <= capacity.
                for (l, &cap) in caps_raw.iter().enumerate() {
                    let used: f64 = flows
                        .iter()
                        .zip(&rates)
                        .map(|(f, &r)| r * f.route.iter().filter(|&&x| x == l).count() as f64)
                        .sum();
                    assert!(used <= cap * (1.0 + 1e-9),
                        "case {case}: link {l} oversubscribed: {used} > {cap}");
                }

                // Max-min certificate: every flow crosses a saturated link
                // on which it has a maximal rate.
                for (i, f) in flows.iter().enumerate() {
                    let mut certified = false;
                    for &l in &f.route {
                        let used: f64 = flows
                            .iter()
                            .zip(&rates)
                            .map(|(g, &r)| {
                                r * g.route.iter().filter(|&&x| x == l).count() as f64
                            })
                            .sum();
                        let saturated = used >= caps_raw[l] * (1.0 - 1e-9);
                        let maximal = flows.iter().zip(&rates).all(|(g, &r)| {
                            !g.route.contains(&l) || r <= rates[i] * (1.0 + 1e-9)
                        });
                        if saturated && maximal {
                            certified = true;
                            break;
                        }
                    }
                    assert!(certified, "case {case}: flow {i} is not max-min bottlenecked");
                }
            }
        }
    }
}
