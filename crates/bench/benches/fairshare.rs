//! The max-min fair-share solver, the simulator's hot loop.
//!
//! Self-timed: median of repeated runs, printed as CSV.

use std::hint::black_box;
use std::time::Instant;
use tapioca_netsim::{max_min_rates, FlowDemand};

fn synth_flows(n: usize, links: usize, route_len: usize) -> Vec<FlowDemand> {
    (0..n)
        .map(|i| FlowDemand {
            route: (0..route_len)
                .map(|h| (i.wrapping_mul(2654435761).wrapping_add(h * 97)) % links)
                .collect(),
        })
        .collect()
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    println!("bench,flows,links,median_ns");
    for &(flows, links, route) in &[(64usize, 256usize, 6usize), (512, 2048, 8), (4096, 16384, 8)]
    {
        let demands = synth_flows(flows, links, route);
        let iters = if flows >= 4096 { 5 } else { 20 };
        let ns = median_ns(iters, || {
            black_box(max_min_rates(black_box(&demands), |_| 1e9));
        });
        println!("max_min_rates,{flows},{links},{ns}");
    }
}
