//! Criterion: the max-min fair-share solver, the simulator's hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tapioca_netsim::{max_min_rates, FlowDemand};

fn synth_flows(n: usize, links: usize, route_len: usize) -> Vec<FlowDemand> {
    (0..n)
        .map(|i| FlowDemand {
            route: (0..route_len)
                .map(|h| (i.wrapping_mul(2654435761).wrapping_add(h * 97)) % links)
                .collect(),
        })
        .collect()
}

fn bench_fairshare(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_min_rates");
    for &(flows, links, route) in &[(64usize, 256usize, 6usize), (512, 2048, 8), (4096, 16384, 8)] {
        let demands = synth_flows(flows, links, route);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{flows}flows_{links}links")),
            &demands,
            |b, d| b.iter(|| black_box(max_min_rates(black_box(d), |_| 1e9))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fairshare);
criterion_main!(benches);
