//! The aggregator election — one partition's full candidate scan under
//! each strategy (what every partition's MINLOC reduction computes in
//! aggregate).
//!
//! Self-timed: median of repeated runs, printed as CSV.

use std::hint::black_box;
use std::time::Instant;
use tapioca::placement::{elect_aggregator, PlacementStrategy};
use tapioca_topology::{mira_profile, theta_profile, MIB};

fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let mira = mira_profile(512, 16);
    let theta = theta_profile(512, 16);

    println!("bench,machine,members,median_ns");
    for &members_n in &[16usize, 64, 128] {
        // members spread across the machine, equal weights
        let members: Vec<usize> = (0..members_n).map(|i| i * 61 * 16 % 8192).collect();
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let weights = vec![16 * MIB; sorted.len()];

        for (name, machine) in [("mira", &mira.machine), ("theta", &theta.machine)] {
            let ns = median_ns(50, || {
                black_box(elect_aggregator(
                    machine,
                    black_box(&sorted),
                    &weights,
                    0,
                    0,
                    PlacementStrategy::TopologyAware,
                ));
            });
            println!("elect_aggregator,{name},{members_n},{ns}");
        }
    }
}
