//! Criterion: the aggregator election — one partition's full candidate
//! scan under each strategy (what every partition's MINLOC reduction
//! computes in aggregate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tapioca::placement::{elect_aggregator, PlacementStrategy};
use tapioca_topology::{mira_profile, theta_profile, MIB};

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("elect_aggregator");
    let mira = mira_profile(512, 16);
    let theta = theta_profile(512, 16);

    for &members_n in &[16usize, 64, 128] {
        // members spread across the machine, equal weights
        let members: Vec<usize> = (0..members_n).map(|i| i * 61 * 16 % 8192).collect();
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let weights = vec![16 * MIB; sorted.len()];

        group.bench_with_input(
            BenchmarkId::new("mira/topology-aware", members_n),
            &sorted,
            |b, m| {
                b.iter(|| {
                    black_box(elect_aggregator(
                        &mira.machine,
                        black_box(m),
                        &weights,
                        0,
                        0,
                        PlacementStrategy::TopologyAware,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("theta/topology-aware", members_n),
            &sorted,
            |b, m| {
                b.iter(|| {
                    black_box(elect_aggregator(
                        &theta.machine,
                        black_box(m),
                        &weights,
                        0,
                        0,
                        PlacementStrategy::TopologyAware,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_election);
criterion_main!(benches);
