//! Criterion: end-to-end costs — a full simulated collective at reduced
//! scale, and a real thread-mode write pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tapioca::api::Tapioca;
use tapioca::config::TapiocaConfig;
use tapioca::schedule::WriteDecl;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MIB};

fn bench_sim(c: &mut Criterion) {
    let profile = theta_profile(64, 4);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    let nranks = 256;
    let per = MIB;
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..nranks).collect(),
            decls: (0..nranks as u64)
                .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                .collect(),
        }],
        mode: AccessMode::Write,
    };
    let cfg = TapiocaConfig { num_aggregators: 16, buffer_size: 8 * MIB, ..Default::default() };
    c.bench_function("sim/ior_256ranks_64nodes", |b| {
        b.iter(|| black_box(run_tapioca_sim(&profile, &storage, black_box(&spec), &cfg)))
    });
}

fn bench_thread_pipeline(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("tapioca-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("e2e-{}", std::process::id()));
    c.bench_function("thread/write_pipeline_8ranks_64KiB", |b| {
        b.iter(|| {
            let path = path.clone();
            Runtime::run(8, move |comm| {
                let file = SharedFile::open_shared(&comm, &path);
                let r = comm.rank() as u64;
                let per = 64 * 1024u64;
                let decls = vec![WriteDecl { offset: r * per, len: per }];
                let mut io = Tapioca::init(&comm, file, decls, TapiocaConfig {
                    num_aggregators: 2,
                    buffer_size: 16 * 1024,
                    ..Default::default()
                });
                io.write(r * per, &vec![r as u8; per as usize]);
                io.finalize();
            });
        })
    });
    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim, bench_thread_pipeline
}
criterion_main!(benches);
