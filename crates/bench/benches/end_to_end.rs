//! End-to-end costs — a full simulated collective at reduced scale, and
//! a real thread-mode write pipeline.
//!
//! Self-timed: median of repeated runs, printed as CSV.

use std::hint::black_box;
use std::time::Instant;
use tapioca::prelude::*;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MIB};

fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_sim() {
    let profile = theta_profile(64, 4);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    let nranks = 256;
    let per = MIB;
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..nranks).collect(),
            decls: (0..nranks as u64)
                .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                .collect(),
        }],
        mode: AccessMode::Write,
    };
    let cfg = TapiocaConfig { num_aggregators: 16, buffer_size: 8 * MIB, ..Default::default() };
    let ns = median_ns(10, || {
        black_box(run_tapioca_sim(&profile, &storage, black_box(&spec), &cfg).unwrap());
    });
    println!("sim/ior_256ranks_64nodes,{ns}");
}

fn bench_thread_pipeline() {
    let dir = std::env::temp_dir().join("tapioca-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("e2e-{}", std::process::id()));
    let ns = median_ns(10, || {
        let path = path.clone();
        Runtime::run(8, move |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let per = 64 * 1024u64;
            let decls = vec![WriteDecl { offset: r * per, len: per }];
            let mut io = Session::builder(&comm, file)
                .declarations(decls)
                .config(TapiocaConfig {
                    num_aggregators: 2,
                    buffer_size: 16 * 1024,
                    ..Default::default()
                })
                .build()
                .expect("init failed");
            io.write(r * per, &vec![r as u8; per as usize]).expect("write failed");
            io.finalize();
        });
    });
    println!("thread/write_pipeline_8ranks_64KiB,{ns}");
    std::fs::remove_file(&path).ok();
}

fn main() {
    println!("bench,median_ns");
    bench_sim();
    bench_thread_pipeline();
}
