//! Cost of computing the round schedule (the `TAPIOCA_Init` work every
//! rank performs from the allgathered declarations).
//!
//! Self-timed: median of repeated runs, printed as CSV.

use std::hint::black_box;
use std::time::Instant;
use tapioca::schedule::{compute_schedule, ScheduleParams};
use tapioca_topology::MIB;
use tapioca_workloads::hacc::{HaccIo, Layout};

fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    println!("bench,layout,ranks,median_ns");
    for &ranks in &[256usize, 1024, 4096] {
        for layout in [Layout::ArrayOfStructs, Layout::StructOfArrays] {
            let w = HaccIo { num_ranks: ranks, particles_per_rank: 25_000, layout };
            let decls = w.decls();
            let params = ScheduleParams {
                num_aggregators: 16.max(ranks / 128),
                buffer_size: 16 * MIB,
                align_to_buffer: true,
            };
            let ns = median_ns(10, || {
                black_box(compute_schedule(black_box(&decls), params));
            });
            println!("compute_schedule,{layout:?},{ranks},{ns}");
        }
    }
}
