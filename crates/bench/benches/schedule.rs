//! Criterion: cost of computing the round schedule (the `TAPIOCA_Init`
//! work every rank performs from the allgathered declarations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tapioca::schedule::{compute_schedule, ScheduleParams};
use tapioca_topology::MIB;
use tapioca_workloads::hacc::{HaccIo, Layout};

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_schedule");
    for &ranks in &[256usize, 1024, 4096] {
        for layout in [Layout::ArrayOfStructs, Layout::StructOfArrays] {
            let w = HaccIo { num_ranks: ranks, particles_per_rank: 25_000, layout };
            let decls = w.decls();
            let params = ScheduleParams {
                num_aggregators: 16.max(ranks / 128),
                buffer_size: 16 * MIB,
                align_to_buffer: true,
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{layout:?}"), ranks),
                &decls,
                |b, decls| b.iter(|| black_box(compute_schedule(black_box(decls), params))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
