//! Fig. 2 — the mechanism figure: "Calling three independent MPI I/O
//! collective writes and TAPIOCA."
//!
//! The paper illustrates that per-call collective buffering flushes
//! "three almost empty buffers" while TAPIOCA's declared schedule
//! aggregates everything into full ones. Here we *measure* it on the
//! HACC-IO SoA workload: buffer fill factor and flush-segment size for
//! (a) TAPIOCA's all-variables schedule and (b) each variable scheduled
//! as its own collective call, plus the simulated bandwidth consequence
//! on Theta.

use tapioca::config::TapiocaConfig;
use tapioca::schedule::{compute_schedule, ScheduleParams};
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca::stats::schedule_stats;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_baseline::sim::run_mpiio_sim;
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, TopologyProvider, MIB};
use tapioca_workloads::hacc::{HaccIo, Layout, VAR_NAMES};

fn main() {
    // Args: an optional positional node count plus `--trace-out PATH`
    // to dump the simulated TAPIOCA collective's event trace as JSONL
    // (checkable with `checksim`).
    let mut nodes = 128usize;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trace-out" => {
                i += 1;
                trace_out = Some(argv.get(i).expect("--trace-out PATH").into());
            }
            other => nodes = other.parse().unwrap_or_else(|_| panic!("unknown option {other}")),
        }
        i += 1;
    }
    let rpn = RANKS_PER_NODE;
    let nranks = nodes * rpn;
    let w = HaccIo {
        num_ranks: nranks,
        particles_per_rank: 25_000,
        layout: Layout::StructOfArrays,
    };
    let decls = w.decls();
    let buffer = 16 * MIB;
    let aggregators = 48;

    // (a) TAPIOCA: one schedule over all nine declared variables.
    let tapioca_sched = compute_schedule(&decls, ScheduleParams {
        num_aggregators: aggregators,
        buffer_size: buffer,
        align_to_buffer: true,
    });
    let t = schedule_stats(&tapioca_sched);

    println!("# Fig. 2 mechanism - HACC-IO SoA, {nranks} ranks, 9 variables, 16 MB buffers");
    println!("schedule,mean_buffer_fill,flush_segments,mean_segment_kib");
    println!(
        "TAPIOCA (all vars declared),{:.3},{},{:.1}",
        t.mean_fill,
        t.flush_segments,
        t.mean_segment / 1024.0
    );

    // (b) plain collective I/O: nine independent schedules.
    let mut call_fills = Vec::new();
    for (v, var_name) in VAR_NAMES.iter().enumerate() {
        let call_decls: Vec<_> = decls
            .iter()
            .map(|d| d.get(v).map(|&x| vec![x]).unwrap_or_default())
            .collect();
        let sched = compute_schedule(&call_decls, ScheduleParams {
            num_aggregators: aggregators,
            buffer_size: buffer,
            align_to_buffer: false, // ROMIO file domains
        });
        let st = schedule_stats(&sched);
        println!(
            "MPI I/O call {} ({}),{:.3},{},{:.1}",
            v,
            var_name,
            st.mean_fill,
            st.flush_segments,
            st.mean_segment / 1024.0
        );
        call_fills.push(st.mean_fill);
    }
    let mean_call_fill = call_fills.iter().sum::<f64>() / call_fills.len() as f64;

    // Bandwidth consequence on Theta.
    let profile = theta_profile(nodes, rpn);
    let storage = StorageConfig::Lustre(LustreTunables::theta_hacc());
    let spec = CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..nranks).collect(), decls }],
        mode: AccessMode::Write,
    };
    let tracer = trace_out
        .as_ref()
        .map(|_| tapioca_trace::Tracer::new(profile.machine.num_ranks()));
    let tap = run_tapioca_sim(&profile, &storage, &spec, &TapiocaConfig {
        num_aggregators: aggregators,
        buffer_size: buffer,
        tracer: tracer.clone(),
        ..Default::default()
    })
    .expect("simulation failed");
    let mpi = run_mpiio_sim(&profile, &storage, &spec, &MpiIoConfig {
        cb_aggregators: aggregators,
        cb_buffer_size: buffer,
    })
    .expect("simulation failed");
    println!("# bandwidth: TAPIOCA {:.2} GiB/s, per-call MPI I/O {:.2} GiB/s",
        tap.bandwidth_gib(), mpi.bandwidth_gib());

    if let (Some(path), Some(tracer)) = (&trace_out, &tracer) {
        let summary = dump_trace_jsonl(tracer, path).expect("write trace");
        println!("# trace: {} ({} puts, {} flushes, {} rounds)",
            path.display(), summary.puts, summary.flushes, summary.rounds);
    }

    shape(
        "tapioca-buffers-are-full",
        t.mean_fill > 0.999,
        &format!("declared schedule fills {:.1}% of every non-final buffer", t.mean_fill * 100.0),
    );
    shape(
        "per-call-buffers-are-sparse",
        mean_call_fill < 0.35,
        &format!("independent calls fill only {:.1}% on average (9 vars -> ~1/9 density)",
            mean_call_fill * 100.0),
    );
    shape(
        "full-buffers-win",
        tap.bandwidth > mpi.bandwidth,
        &format!("{:.1}x bandwidth from declaring the writes up front",
            tap.bandwidth / mpi.bandwidth),
    );
}
