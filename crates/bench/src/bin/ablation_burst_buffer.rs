//! Ablation: the paper's Sec. VI future work, measured — aggregate in
//! DRAM or MCDRAM and flush to the node-local burst buffer with an
//! asynchronous drain, versus the base library's direct PFS writes.
//!
//! Setup: HACC-IO-sized checkpoint on 512 Theta nodes, 48 OSTs, 16 MB
//! stripes/buffers, 192 aggregators.
//!
//! Expected shape: staging collapses the *perceived* checkpoint time
//! (time until the data is durable on flash and the application
//! resumes) by a large factor, while the end-to-end time to the PFS
//! stays in the same regime as the direct write (the drain pays the
//! same Lustre service, just off the critical path).

use tapioca::config::TapiocaConfig;
use tapioca_bench::*;
use tapioca_pfs::LustreTunables;
use tapioca_tiers::{run_tiered_sim, Destination, Tier, TieredConfig};
use tapioca_topology::{theta_profile, MIB};
use tapioca_workloads::hacc::{Layout, PARTICLE_BYTES};

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let profile = theta_profile(nodes, RANKS_PER_NODE);
    let tun = LustreTunables::theta_hacc();
    let cfg = TapiocaConfig {
        num_aggregators: 192,
        buffer_size: 16 * MIB,
        ..Default::default()
    };

    let configs: [(&str, TieredConfig); 3] = [
        ("direct PFS (base library)", TieredConfig::default()),
        (
            "DRAM buffers + burst buffer",
            TieredConfig { buffer_tier: Tier::Dram, destination: Destination::BurstBufferThenDrain },
        ),
        ("MCDRAM buffers + burst buffer", TieredConfig::mcdram_burst_buffer()),
    ];

    println!("# Ablation - burst-buffer staging on {nodes} Theta nodes (Sec. VI future work)");
    println!("config,data_mib_per_rank,time_to_safe_s,time_to_pfs_s,perceived_gib_s,end_to_end_gib_s");
    let gib = (1u64 << 30) as f64;
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for &pp in &[25_000u64, 100_000] {
        let x = mib(pp * PARTICLE_BYTES);
        let spec = hacc_theta(nodes, RANKS_PER_NODE, pp, Layout::ArrayOfStructs);
        for (name, tiered) in configs {
            let r = run_tiered_sim(&profile, &tun, &spec, &cfg, &tiered);
            println!(
                "{name},{x:.3},{:.4},{:.4},{:.2},{:.2}",
                r.time_to_safe,
                r.time_to_pfs,
                r.perceived_bandwidth / gib,
                r.end_to_end_bandwidth / gib
            );
            rows.push((format!("{name}@{x:.2}"), r.time_to_safe, r.time_to_pfs, x));
            eprintln!("  [{x:.2} MiB] {name}: safe {:.3}s, pfs {:.3}s", r.time_to_safe, r.time_to_pfs);
        }
    }

    let get = |needle: &str, x: f64| {
        rows.iter()
            .find(|(n, ..)| n.starts_with(needle) && n.ends_with(&format!("{x:.2}")))
            .expect("row")
            .clone()
    };
    let x_hi = mib(100_000 * PARTICLE_BYTES);
    let direct = get("direct", x_hi);
    let bb = get("DRAM buffers", x_hi);
    let mcdram = get("MCDRAM buffers", x_hi);
    shape(
        "staging-collapses-perceived-time",
        bb.1 < 0.35 * direct.1,
        &format!("time-to-safe {:.2}s staged vs {:.2}s direct ({:.1}x)",
            bb.1, direct.1, direct.1 / bb.1),
    );
    shape(
        "drain-stays-in-the-same-regime",
        bb.2 < 2.0 * direct.2,
        &format!("time-to-PFS {:.2}s staged vs {:.2}s direct", bb.2, direct.2),
    );
    shape(
        "mcdram-not-slower-than-dram",
        mcdram.1 <= bb.1 * 1.001,
        &format!("MCDRAM safe {:.3}s vs DRAM {:.3}s", mcdram.1, bb.1),
    );
}
