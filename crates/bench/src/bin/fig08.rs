//! Fig. 8 — IOR on 512 Theta nodes (16 ranks/node), collective MPI I/O,
//! default Lustre settings vs user-optimized, read and write (the
//! paper's y-axis is log-scale because the gap is enormous).
//!
//! Paper setup: defaults are stripe_count = 1 OST and 1 MB stripes;
//! optimized is 48 OSTs, 8 MB stripes, shared file locks, 2 aggregators
//! per OST.
//!
//! Paper shape: reads go from ~0.8 to ~36 GB/s, writes from ~0.2 to
//! ~10 GB/s — an order of magnitude or more in both directions.

use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MIB};
use tapioca_workloads::ior::fig7_8_sizes;

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let profile = theta_profile(nodes, RANKS_PER_NODE);

    let mut points = Vec::new();
    for &bytes in &fig7_8_sizes() {
        let x = mib(bytes);
        for (env, storage, cb) in [
            (
                "Baseline",
                StorageConfig::Lustre(LustreTunables::theta_default()),
                MpiIoConfig { cb_aggregators: 48, cb_buffer_size: 16 * MIB },
            ),
            (
                "Optimized",
                StorageConfig::Lustre(LustreTunables::theta_optimized()),
                MpiIoConfig { cb_aggregators: 96, cb_buffer_size: 8 * MIB },
            ),
        ] {
            for (mname, mode) in [("Read", AccessMode::Read), ("Write", AccessMode::Write)] {
                let spec = ior_theta(nodes, RANKS_PER_NODE, bytes, mode);
                let r = measure_mpiio(&profile, &storage, &spec, &cb);
                points.push(Point {
                    series: format!("{env} - {mname}"),
                    x_mib: x,
                    gib_s: r.bandwidth_gib(),
                });
            }
        }
        eprintln!("  [{x:.2} MiB] done");
    }

    print_csv(
        &format!("Fig. 8 - IOR on {nodes} Theta nodes, 16 ranks/node, default Lustre settings vs tuned (log-scale gap)"),
        &points,
    );

    let x_hi = mib(*fig7_8_sizes().last().unwrap());
    let write_gain = series_at(&points, "Optimized - Write", x_hi)
        / series_at(&points, "Baseline - Write", x_hi);
    let read_gain = series_at(&points, "Optimized - Read", x_hi)
        / series_at(&points, "Baseline - Read", x_hi);
    shape(
        "write-tuning-gain-order-of-magnitude",
        write_gain >= 10.0,
        &format!("optimized/baseline write at 4 MiB = {write_gain:.0}x (paper: ~50x)"),
    );
    shape(
        "read-tuning-gain-order-of-magnitude",
        read_gain >= 10.0,
        &format!("optimized/baseline read at 4 MiB = {read_gain:.0}x (paper: ~45x)"),
    );
    shape(
        "tuned-reads-exceed-tuned-writes",
        series_at(&points, "Optimized - Read", x_hi)
            > series_at(&points, "Optimized - Write", x_hi),
        "read ceiling above write ceiling (paper: 36 vs 10 GB/s)",
    );
}
