//! `topoinfo` — inspect the machine models: node counts, link tables,
//! distance distributions, Pset / dragonfly structure, and I/O
//! attachment. Handy when calibrating or extending the profiles.
//!
//! Usage: `topoinfo [mira|theta] [nodes]`

use tapioca_topology::{mira_profile, theta_profile, StorageProfile, TopologyProvider, GIB};

fn main() {
    let machine = std::env::args().nth(1).unwrap_or_else(|| "theta".into());
    let nodes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);

    let profile = match machine.as_str() {
        "mira" => mira_profile(nodes, 16),
        "theta" => theta_profile(nodes, 16),
        m => panic!("unknown machine {m}"),
    };
    let m = &profile.machine;
    let net = m.interconnect();

    println!("{}", profile.name);
    println!("  nodes            : {}", m.num_nodes());
    println!("  ranks            : {} ({} per node)", m.num_ranks(), m.ranks_per_node());
    println!("  directed links   : {}", net.num_links());
    println!("  per-hop latency  : {:.0} ns", net.hop_latency() * 1e9);

    // link class inventory
    let mut by_class: std::collections::BTreeMap<String, (usize, f64)> = Default::default();
    for l in 0..net.num_links() {
        let link = net.link(l);
        let name = format!("{:?}", link.class);
        let e = by_class.entry(name).or_insert((0, link.capacity));
        e.0 += 1;
    }
    println!("  link classes:");
    for (class, (count, cap)) in &by_class {
        println!("    {class:<12} x{count:<8} {:.1} GiB/s", cap / GIB as f64);
    }

    // distance histogram over a deterministic node sample
    let n = m.num_nodes();
    let sample: Vec<usize> = (0..64.min(n)).map(|i| i * n / 64.min(n)).collect();
    let mut hist: std::collections::BTreeMap<u32, usize> = Default::default();
    for &a in &sample {
        for &b in &sample {
            if a != b {
                *hist.entry(net.hop_distance(a, b)).or_default() += 1;
            }
        }
    }
    println!("  hop-distance histogram (sampled):");
    let total: usize = hist.values().sum();
    for (d, c) in &hist {
        println!("    {d:>3} hops: {:>5.1}%  {}", 100.0 * *c as f64 / total as f64,
            "#".repeat(60 * c / total));
    }

    match (&profile.storage, m.fabric().as_torus(), m.fabric().as_dragonfly()) {
        (StorageProfile::Gpfs { ion_link_bw, ion_service_bw }, Some(t), _) => {
            println!("  GPFS I/O structure:");
            println!("    Psets          : {} x {} nodes", t.num_psets(),
                t.pset_config().unwrap().nodes_per_pset);
            println!("    bridge nodes   : {:?} (Pset 0)", t.bridge_nodes(0));
            println!("    ION uplink     : {:.1} GiB/s", ion_link_bw / GIB as f64);
            println!("    ION service    : {:.1} GiB/s effective", ion_service_bw / GIB as f64);
            let dmax = (0..t.pset_config().unwrap().nodes_per_pset)
                .map(|node| t.io_distance(node))
                .max()
                .unwrap();
            println!("    max hops to ION: {dmax} (within a Pset)");
        }
        (StorageProfile::Lustre { total_osts, ost_write_bw, ost_read_bw, lnet_bw }, _, Some(d)) => {
            println!("  dragonfly structure:");
            let p = d.params();
            println!("    groups         : {} x ({} x {}) routers x {} nodes",
                p.groups, p.rows, p.cols, p.nodes_per_router);
            println!("  Lustre storage:");
            println!("    OSTs           : {total_osts}");
            println!("    OST write/read : {:.2} / {:.2} GiB/s each",
                ost_write_bw / GIB as f64, ost_read_bw / GIB as f64);
            println!("    LNET aggregate : {:.0} GiB/s", lnet_bw / GIB as f64);
            println!("    I/O placement  : opaque to the cost model (C2 = 0, as on Theta)");
        }
        _ => {}
    }
}
