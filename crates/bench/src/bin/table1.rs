//! Table I — the "aggregator buffer size : stripe size" ratio study on
//! 512 Theta nodes (16 ranks/node), microbenchmark, TAPIOCA.
//!
//! Paper: with the stripe size adjusted to keep a given ratio to the
//! aggregation buffer, measured bandwidths were
//!
//! | ratio | 1:8 | 1:4 | 1:2 | 1:1 | 2:1 | 4:1 |
//! |---|---|---|---|---|---|---|
//! | GB/s | 0.36 | 0.64 | 0.91 | **1.57** | 1.08 | 1.14 |
//!
//! i.e. a 1:1 ratio — buffer exactly one stripe — is the sweet spot:
//! smaller buffers fragment stripes (extent-lock splitting), larger
//! buffers spread each flush over several OSTs (stream interleaving).
//!
//! We keep the stripe fixed at 8 MB and vary the buffer, which preserves
//! every ratio while keeping the filesystem constant.

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MIB};

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let profile = theta_profile(nodes, RANKS_PER_NODE);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized()); // 8 MB stripes
    let stripe = 8 * MIB;

    // ratio = buffer : stripe
    let ratios: [(u64, &str); 6] = [
        (stripe / 8, "1:8"),
        (stripe / 4, "1:4"),
        (stripe / 2, "1:2"),
        (stripe, "1:1"),
        (2 * stripe, "2:1"),
        (4 * stripe, "4:1"),
    ];

    println!("# Table I - aggregator buffer size : stripe size, {nodes} Theta nodes, 1 MiB/rank microbenchmark");
    println!("ratio,buffer_mib,bandwidth_gib_s");
    let mut results = Vec::new();
    for (buffer, label) in ratios {
        let cfg = TapiocaConfig {
            num_aggregators: 48,
            buffer_size: buffer,
            ..Default::default()
        };
        let spec = ior_theta(nodes, RANKS_PER_NODE, MIB, AccessMode::Write);
        let rep = measure_tapioca(&profile, &storage, &spec, &cfg);
        println!("{label},{},{:.4}", buffer / MIB, rep.bandwidth_gib());
        results.push((label, rep.bandwidth_gib()));
        eprintln!("  [{label}] {:.3} GiB/s", rep.bandwidth_gib());
    }

    let best = results.iter().max_by(|a, b| a.1.total_cmp(&b.1)).expect("rows");
    shape(
        "one-to-one-ratio-is-best",
        best.0 == "1:1",
        &format!("best ratio measured: {} at {:.2} GiB/s (paper: 1:1 at 1.57 GB/s)", best.0, best.1),
    );
    let val = |l: &str| results.iter().find(|(x, _)| *x == l).expect("row").1;
    shape(
        "monotone-rise-towards-1:1",
        val("1:8") <= val("1:4") && val("1:4") <= val("1:2") && val("1:2") <= val("1:1"),
        "bandwidth increases as the buffer approaches the stripe size",
    );
    shape(
        "drop-after-1:1",
        val("2:1") < val("1:1") && val("4:1") < val("1:1"),
        "multi-stripe buffers lose to the aligned 1:1 configuration",
    );
}
