//! Autotuner benchmark: runs the cost-model-guided search on the
//! paper's workloads (Mira/Theta × IOR/HACC × write/read) and writes
//! `BENCH_tune.json` at the repo root comparing tuned against
//! rule-based bandwidth, plus the search-work accounting that shows the
//! model pruning (≥4× fewer full simulations than the exhaustive grid).
//!
//! Usage:
//!
//! ```text
//! tunebench [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the workloads to CI-sized shapes while keeping the
//! output schema identical.
//!
//! Schema (`tapioca-tunebench/v2`):
//!
//! ```json
//! {
//!   "schema": "tapioca-tunebench/v2",
//!   "smoke": false,
//!   "rows": [ { "machine", "workload", "mode", "ranks",
//!               "rule_aggregators", "rule_buffer", "rule_bw",
//!               "tuned_aggregators", "tuned_buffer", "tuned_strategy",
//!               "tuned_pipelining", "tuned_tier", "tuned_bw",
//!               "grid_size", "model_evals", "sims_run", "cache_hits",
//!               "sim_savings", "sim_wall_ms" } ]
//! }
//! ```
//!
//! `sim_wall_ms` is the wall time of the confirmation stage (the
//! short-list simulations) — the number the incremental rate engine is
//! expected to shrink. It is the one machine-dependent column; everything
//! else is deterministic.
//!
//! Every row satisfies `tuned_bw >= rule_bw` by construction (the
//! rule-based config is always in the confirmed short-list) — the CI
//! `tune-smoke` job asserts it anyway.

use std::fmt::Write as _;

use tapioca::autotune::autotune;
use tapioca::placement::PlacementStrategy;
use tapioca::sim_exec::{CollectiveSpec, StorageConfig};
use tapioca_bench::{hacc_mira, hacc_theta, ior_mira, ior_theta};
use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
use tapioca_topology::{mira_profile, theta_profile, MachineProfile, MIB};
use tapioca_workloads::hacc::Layout;

fn strategy_name(s: PlacementStrategy) -> &'static str {
    match s {
        PlacementStrategy::TopologyAware => "topology_aware",
        PlacementStrategy::RankOrder => "rank_order",
        PlacementStrategy::ShortestPathToIo => "shortest_path_to_io",
        PlacementStrategy::WorstCase => "worst_case",
        PlacementStrategy::Random { .. } => "random",
    }
}

fn mode_name(mode: AccessMode) -> &'static str {
    match mode {
        AccessMode::Write => "write",
        AccessMode::Read => "read",
    }
}

/// One benchmark case: a machine, its storage, and a workload spec.
struct Case {
    machine: &'static str,
    workload: &'static str,
    profile: MachineProfile,
    storage: StorageConfig,
    spec: CollectiveSpec,
}

fn cases(smoke: bool) -> Vec<Case> {
    // Mira shapes are Pset-quantized (128 nodes per Pset).
    let (mira_nodes, mira_rpn) = if smoke { (128, 4) } else { (256, 16) };
    let (theta_nodes, theta_rpn) = if smoke { (32, 4) } else { (128, 16) };
    let per_rank = if smoke { MIB } else { 8 * MIB };
    let particles = per_rank / 38; // HACC: 38 bytes per particle

    let mut out = Vec::new();
    for mode in [AccessMode::Write, AccessMode::Read] {
        out.push(Case {
            machine: "mira",
            workload: "ior",
            profile: mira_profile(mira_nodes, mira_rpn),
            storage: StorageConfig::Gpfs(GpfsTunables::mira_optimized()),
            spec: ior_mira(mira_nodes, mira_rpn, per_rank, mode),
        });
        out.push(Case {
            machine: "theta",
            workload: "ior",
            profile: theta_profile(theta_nodes, theta_rpn),
            storage: StorageConfig::Lustre(LustreTunables::theta_optimized()),
            spec: ior_theta(theta_nodes, theta_rpn, per_rank, mode),
        });
        // The HACC builders fix Write mode; flip it for the read rows
        // (a restart reads the same declared layout back).
        let mut hm = hacc_mira(mira_nodes, mira_rpn, particles, Layout::ArrayOfStructs);
        hm.mode = mode;
        out.push(Case {
            machine: "mira",
            workload: "hacc",
            profile: mira_profile(mira_nodes, mira_rpn),
            storage: StorageConfig::Gpfs(GpfsTunables::mira_optimized()),
            spec: hm,
        });
        let mut ht = hacc_theta(theta_nodes, theta_rpn, particles, Layout::ArrayOfStructs);
        ht.mode = mode;
        out.push(Case {
            machine: "theta",
            workload: "hacc",
            profile: theta_profile(theta_nodes, theta_rpn),
            storage: StorageConfig::Lustre(LustreTunables::theta_hacc()),
            spec: ht,
        });
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tune.json").to_string()
        });

    let mut rows = String::new();
    let mut first = true;
    for case in cases(smoke) {
        let outcome = autotune(&case.profile, &case.storage, &case.spec)
            .expect("autotune failed on a shipped workload");
        let ranks: usize = case.spec.groups.iter().map(|g| g.ranks.len()).sum();
        let r = &outcome.report;
        eprintln!(
            "{}/{}/{}: rule {} aggr x {} MiB -> {:.2} GiB/s | tuned {} aggr x {} MiB \
             {} pipelining={} tier={} -> {:.2} GiB/s | {}",
            case.machine,
            case.workload,
            mode_name(case.spec.mode),
            outcome.rule.num_aggregators,
            outcome.rule.buffer_size / MIB,
            outcome.rule_bandwidth / (1u64 << 30) as f64,
            outcome.best.num_aggregators,
            outcome.best.buffer_size / MIB,
            strategy_name(outcome.best.strategy),
            outcome.best.pipelining,
            outcome.tier.name(),
            outcome.tuned_bandwidth / (1u64 << 30) as f64,
            r,
        );
        assert!(
            outcome.tuned_bandwidth >= outcome.rule_bandwidth,
            "tuned config lost to the rule-based anchor on {}/{}",
            case.machine,
            case.workload,
        );
        if !first {
            rows.push(',');
        }
        first = false;
        let _ = write!(
            rows,
            "\n    {{\"machine\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \
             \"ranks\": {ranks}, \
             \"rule_aggregators\": {}, \"rule_buffer\": {}, \"rule_bw\": {:.1}, \
             \"tuned_aggregators\": {}, \"tuned_buffer\": {}, \
             \"tuned_strategy\": \"{}\", \"tuned_pipelining\": {}, \
             \"tuned_tier\": \"{}\", \"tuned_bw\": {:.1}, \
             \"grid_size\": {}, \"model_evals\": {}, \"sims_run\": {}, \
             \"cache_hits\": {}, \"sim_savings\": {:.3}, \"sim_wall_ms\": {:.3}}}",
            case.machine,
            case.workload,
            mode_name(case.spec.mode),
            outcome.rule.num_aggregators,
            outcome.rule.buffer_size,
            outcome.rule_bandwidth,
            outcome.best.num_aggregators,
            outcome.best.buffer_size,
            strategy_name(outcome.best.strategy),
            outcome.best.pipelining,
            outcome.tier.name(),
            outcome.tuned_bandwidth,
            r.grid_size,
            r.model_evals + r.refine_evals,
            r.sims_run,
            r.cache_hits,
            r.sim_savings(),
            r.sim_wall_ns as f64 / 1e6,
        );
    }

    let json = format!(
        "{{\n  \"schema\": \"tapioca-tunebench/v2\",\n  \"smoke\": {smoke},\n  \
         \"rows\": [{rows}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write BENCH_tune.json");
    eprintln!("wrote {out_path}");
}
