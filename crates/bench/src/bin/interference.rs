//! Inter-job I/O interference. The paper's Sec. II-A explains *why* the
//! BG/Q partitions nodes into Psets with dedicated I/O nodes: "to
//! reduce as much as possible the impact of I/O interference between
//! jobs and ensure a good performance reproducibility". The dragonfly
//! machine shares links, LNET gateways and OSTs between all jobs.
//!
//! Experiment: run one HACC-IO job alone, then run two identical jobs
//! concurrently (disjoint node halves, separate files) and compare the
//! makespan. On Mira each job lives in its own Psets and writes its own
//! subfiles — near-perfect isolation. On Theta the jobs collide on the
//! shared Lustre OSTs — each job runs ~2x slower.

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::{CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
use tapioca_topology::{mira_profile, theta_profile, MIB};
use tapioca_workloads::hacc::{HaccIo, Layout};

/// One job's groups: `half` selects the lower or upper half of the
/// machine's ranks; files are namespaced per job.
fn job_groups(
    nranks: usize,
    half: usize,
    particles: u64,
    mira_subfiling: bool,
    rpn: usize,
) -> Vec<GroupSpec> {
    let base = half * nranks / 2;
    let job_ranks = nranks / 2;
    let file_base = half * 1000;
    if mira_subfiling {
        let rpp = NODES_PER_PSET * rpn;
        (0..job_ranks / rpp)
            .map(|p| {
                let w = HaccIo {
                    num_ranks: rpp,
                    particles_per_rank: particles,
                    layout: Layout::ArrayOfStructs,
                };
                GroupSpec {
                    file: file_base + p,
                    ranks: (base + p * rpp..base + (p + 1) * rpp).collect(),
                    decls: w.decls(),
                }
            })
            .collect()
    } else {
        let w = HaccIo {
            num_ranks: job_ranks,
            particles_per_rank: particles,
            layout: Layout::ArrayOfStructs,
        };
        vec![GroupSpec {
            file: file_base,
            ranks: (base..base + job_ranks).collect(),
            decls: w.decls(),
        }]
    }
}

fn main() {
    let particles = 25_000u64;
    println!("# Inter-job interference - one job alone vs two concurrent jobs (disjoint nodes)");
    println!("machine,alone_s,concurrent_s,slowdown");

    let mut slowdowns = Vec::new();
    for machine in ["mira", "theta"] {
        let nodes = 512;
        let rpn = RANKS_PER_NODE;
        let nranks = nodes * rpn;
        let (profile, storage, cfg, subfiling) = match machine {
            "mira" => (
                mira_profile(nodes, rpn),
                StorageConfig::Gpfs(GpfsTunables::mira_optimized()),
                TapiocaConfig { num_aggregators: 16, buffer_size: 16 * MIB, ..Default::default() },
                true,
            ),
            _ => (
                theta_profile(nodes, rpn),
                StorageConfig::Lustre(LustreTunables::theta_hacc()),
                TapiocaConfig { num_aggregators: 96, buffer_size: 16 * MIB, ..Default::default() },
                false,
            ),
        };

        let alone = CollectiveSpec {
            groups: job_groups(nranks, 0, particles, subfiling, rpn),
            mode: AccessMode::Write,
        };
        let t_alone = measure_tapioca(&profile, &storage, &alone, &cfg).elapsed;

        let mut groups = job_groups(nranks, 0, particles, subfiling, rpn);
        groups.extend(job_groups(nranks, 1, particles, subfiling, rpn));
        let both = CollectiveSpec { groups, mode: AccessMode::Write };
        let t_both = measure_tapioca(&profile, &storage, &both, &cfg).elapsed;

        let slowdown = t_both / t_alone;
        println!("{machine},{t_alone:.4},{t_both:.4},{slowdown:.2}");
        eprintln!("  [{machine}] alone {t_alone:.3}s, with a second job {t_both:.3}s ({slowdown:.2}x)");
        slowdowns.push((machine, slowdown));
    }

    let mira = slowdowns[0].1;
    let theta = slowdowns[1].1;
    shape(
        "psets-isolate-jobs",
        mira < 1.15,
        &format!("Mira slowdown with a concurrent job: {mira:.2}x (Psets give dedicated I/O paths)"),
    );
    shape(
        "shared-storage-interferes",
        theta > 1.5,
        &format!("Theta slowdown: {theta:.2}x (jobs share OSTs and LNET)"),
    );
    shape(
        "isolation-gap",
        theta > mira * 1.3,
        "the BG/Q partitioning rationale of Sec. II-A, reproduced",
    );
}
