//! `lintcheck` — custom source lint for the workspace, run in CI.
//!
//! Scans library sources under `crates/*/src` (binaries, benches, and
//! test code are exempt) for:
//!
//! * `unwrap` — `.unwrap()` in non-test library code;
//! * `expect` — `.expect(...)` in non-test library code;
//! * `panic` — `panic!(...)` in non-test library code;
//! * `lock-in-loop` — acquiring a `Mutex` inside a loop while another
//!   lock guard bound outside the loop is still live (lock-ordering /
//!   contention smell).
//!
//! Findings must either be fixed or justified in `lint-allow.txt` at
//! the workspace root, one entry per line:
//!
//! ```text
//! <rule> <path> -- <justification>
//! ```
//!
//! Exit status is non-zero on any unjustified finding, and on any
//! stale allowlist entry (so justifications cannot outlive the code
//! they excuse).

use std::fmt;
use std::path::{Path, PathBuf};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    rule: &'static str,
    path: String,
    line: usize,
    excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}:{}  {}", self.rule, self.path, self.line, self.excerpt)
    }
}

/// Collect `crates/*/src/**/*.rs`, skipping binary/bench/test sources.
fn library_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "bin" | "benches" | "tests" | "examples" | "target")
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs")
                && name.as_ref() != "tests.rs"
                && path.to_string_lossy().contains("/src/")
            {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Strip line comments and string literals so the patterns cannot
/// match inside either. Heuristic (no raw-string handling), which is
/// fine for a lint whose misses land in the allowlist with a reason.
fn sanitize(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            '\'' => {
                // char literal (or lifetime — a lifetime has no closing
                // quote within a couple of chars, so probe ahead).
                let probe: Vec<char> = chars.clone().take(3).collect();
                if probe.get(1) == Some(&'\'') || (probe.first() == Some(&'\\')) {
                    chars.next();
                    if probe.first() == Some(&'\\') {
                        chars.next();
                    }
                    chars.next();
                    out.push('\'');
                } else {
                    out.push('\'');
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// A `let`-bound guard acquisition: `let g = x.lock()...`.
fn binds_guard(s: &str) -> bool {
    s.contains("let ") && s.contains(".lock(")
}

fn opens_loop(s: &str) -> bool {
    let t = s.trim_start();
    (t.starts_with("for ") || t.starts_with("while ") || t.starts_with("loop")
        || t.contains(" for ")
        || t.contains(" while ")
        || t.contains(" loop "))
        && s.contains('{')
}

fn scan_file(root: &Path, path: &Path, findings: &mut Vec<Finding>) {
    let Ok(src) = std::fs::read_to_string(path) else { return };
    let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().to_string();
    scan_source(&rel, &src, findings);
}

fn scan_source(rel: &str, src: &str, findings: &mut Vec<Finding>) {
    // Guards held at (brace depth) and loops entered at (brace depth),
    // for the lock-in-loop rule.
    let mut depth: i64 = 0;
    let mut guards: Vec<i64> = Vec::new();
    let mut loops: Vec<i64> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break; // repo convention: the test module ends the file
        }
        let line = sanitize(raw);
        let lineno = i + 1;
        let excerpt = raw.trim().chars().take(90).collect::<String>();
        for (rule, pat) in
            [("unwrap", ".unwrap()"), ("expect", ".expect("), ("panic", "panic!(")]
        {
            if line.contains(pat) {
                findings.push(Finding { rule, path: rel.to_string(), line: lineno, excerpt: excerpt.clone() });
            }
        }
        // Lock-ordering smell: a lock acquired inside a loop while a
        // guard bound outside that loop is still live.
        let opens = opens_loop(&line);
        if line.contains(".lock(")
            && !binds_guard(&line)
            && !loops.is_empty()
            && guards.iter().any(|&g| loops.iter().any(|&l| g <= l))
        {
            findings.push(Finding {
                rule: "lock-in-loop",
                path: rel.to_string(),
                line: lineno,
                excerpt: excerpt.clone(),
            });
        }
        if opens {
            loops.push(depth);
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|&g| g < depth);
                    loops.retain(|&l| l < depth);
                }
                _ => {}
            }
        }
        if binds_guard(&line) {
            // A `let`-bound acquisition inside a loop while a guard
            // from outside the loop is live is the same smell.
            if guards.iter().any(|&g| loops.iter().any(|&l| g <= l)) {
                findings.push(Finding {
                    rule: "lock-in-loop",
                    path: rel.to_string(),
                    line: lineno,
                    excerpt,
                });
            }
            guards.push(depth);
        }
    }
}

#[derive(Debug)]
struct Allow {
    rule: String,
    path: String,
    used: bool,
}

fn load_allowlist(root: &Path) -> Vec<Allow> {
    let Ok(text) = std::fs::read_to_string(root.join("lint-allow.txt")) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let body = l.split(" -- ").next().unwrap_or(l);
            let mut it = body.split_whitespace();
            let rule = it.next()?.to_string();
            let path = it.next()?.to_string();
            Some(Allow { rule, path, used: false })
        })
        .collect()
}

fn main() {
    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = if root.join("crates").is_dir() {
        root
    } else {
        // Allow running from a crate directory.
        root.ancestors()
            .find(|a| a.join("crates").is_dir())
            .map(Path::to_path_buf)
            .unwrap_or(root)
    };
    let mut findings = Vec::new();
    let sources = library_sources(&root);
    for path in &sources {
        scan_file(&root, path, &mut findings);
    }
    let mut allows = load_allowlist(&root);
    let mut bad = 0usize;
    for f in &findings {
        let allowed = allows
            .iter_mut()
            .find(|a| a.rule == f.rule && f.path == a.path);
        match allowed {
            Some(a) => a.used = true,
            None => {
                println!("DENY  {f}");
                bad += 1;
            }
        }
    }
    for a in &allows {
        if !a.used {
            println!("STALE allowlist entry: {} {}", a.rule, a.path);
            bad += 1;
        }
    }
    println!(
        "lintcheck: {} files, {} finding(s), {} allowlisted, {} problem(s)",
        sources.len(),
        findings.len(),
        findings.len() - bad.min(findings.len()),
        bad
    );
    if bad > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<(&'static str, usize)> {
        let mut findings = Vec::new();
        scan_source("x.rs", src, &mut findings);
        findings.into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"why\");\n    panic!(\"no\");\n}\n";
        assert_eq!(rules(src), vec![("unwrap", 2), ("expect", 3), ("panic", 4)]);
    }

    #[test]
    fn ignores_comments_and_strings() {
        let src = "fn f() {\n    // x.unwrap()\n    let s = \"panic!(oops)\";\n}\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn stops_at_test_module() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn flags_lock_inside_loop_holding_guard() {
        let src = "fn f() {\n    let a = m.lock();\n    for x in xs {\n        n.lock();\n    }\n}\n";
        assert_eq!(rules(src), vec![("lock-in-loop", 4)]);
    }

    #[test]
    fn flags_bound_lock_inside_loop_holding_guard() {
        let src = "fn f() {\n    let a = m.lock();\n    for x in xs {\n        let b = n.lock();\n    }\n}\n";
        assert_eq!(rules(src), vec![("lock-in-loop", 4)]);
    }

    #[test]
    fn lock_in_loop_without_outer_guard_is_fine() {
        let src = "fn f() {\n    for x in xs {\n        let b = n.lock();\n    }\n}\n";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn guard_dropped_before_loop_is_fine() {
        let src = "fn f() {\n    {\n        let a = m.lock();\n    }\n    for x in xs {\n        n.lock();\n    }\n}\n";
        assert!(rules(src).is_empty());
    }
}
