//! Fig. 10 — microbenchmark on 512 Theta nodes (16 ranks/node):
//! every rank writes one contiguous block per collective call.
//!
//! Paper setup: 48 aggregators, 8 MB aggregation buffers, Lustre stripe
//! size 8 MB (the 1:1 ratio of Table I).
//!
//! Paper shape: TAPIOCA outperforms Cray MPI I/O at every message size,
//! reaching ~2x at 3.6 MB/rank — attributed to topology-aware placement
//! plus aggregation/I-O pipelining; "good portability of the I/O
//! performance with TAPIOCA regardless of the architecture".

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MIB};
use tapioca_workloads::ior::fig9_10_sizes;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `fig10 [NODES] [--autotune]` — with --autotune the TAPIOCA series
    // uses the cost-model-guided search per message size instead of the
    // paper's fixed hand-tuning.
    let autotune = args.iter().any(|a| a == "--autotune");
    let nodes = args
        .iter()
        .find_map(|s| s.parse().ok())
        .unwrap_or(512);
    let profile = theta_profile(nodes, RANKS_PER_NODE);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized()); // 48 OSTs, 8 MB stripes
    let tapioca_cfg = TapiocaConfig {
        num_aggregators: 48,
        buffer_size: 8 * MIB, // == stripe size (1:1)
        ..Default::default()
    };
    let mpiio_cfg = MpiIoConfig { cb_aggregators: 48, cb_buffer_size: 8 * MIB };

    let mut points = Vec::new();
    for &bytes in &fig9_10_sizes() {
        let x = mib(bytes);
        let spec = ior_theta(nodes, RANKS_PER_NODE, bytes, AccessMode::Write);
        let cfg = if autotune {
            let outcome = tapioca::autotune::autotune(&profile, &storage, &spec)
                .expect("autotune failed");
            eprintln!(
                "  [{x:.2} MiB] tuned: {} aggregators, {} MiB buffers ({})",
                outcome.best.num_aggregators,
                outcome.best.buffer_size / MIB,
                outcome.report,
            );
            outcome.best
        } else {
            tapioca_cfg.clone()
        };
        let t = measure_tapioca(&profile, &storage, &spec, &cfg);
        points.push(Point { series: "TAPIOCA".into(), x_mib: x, gib_s: t.bandwidth_gib() });
        let b = measure_mpiio(&profile, &storage, &spec, &mpiio_cfg);
        points.push(Point { series: "MPI I/O".into(), x_mib: x, gib_s: b.bandwidth_gib() });
        eprintln!("  [{x:.2} MiB] tapioca={:.2} mpiio={:.2} GiB/s", t.bandwidth_gib(), b.bandwidth_gib());
    }

    print_csv(
        &format!("Fig. 10 - microbenchmark on {nodes} Theta nodes, 16 ranks/node, 48 aggregators, 8 MB buffers = stripe"),
        &points,
    );

    shape(
        "tapioca-wins-everywhere",
        fig9_10_sizes().iter().all(|&b| {
            series_at(&points, "TAPIOCA", mib(b)) >= series_at(&points, "MPI I/O", mib(b))
        }),
        "TAPIOCA >= MPI I/O at every message size",
    );
    let x_hi = mib(*fig9_10_sizes().last().unwrap());
    let ratio_hi = series_at(&points, "TAPIOCA", x_hi) / series_at(&points, "MPI I/O", x_hi);
    shape(
        "about-2x-at-largest-size",
        (1.5..=4.0).contains(&ratio_hi),
        &format!("{ratio_hi:.2}x at 3.6 MiB (paper: ~2x)"),
    );
}
