//! Fig. 7 — IOR on 512 Mira nodes (16 ranks/node), collective MPI I/O,
//! baseline environment vs user-optimized environment, read and write.
//!
//! Paper setup: subfiling (one file per Pset); 16 aggregators per Pset
//! with 16 MB buffers (the defaults, which were also the best); the
//! "optimized" run sets environment variables "optimizing collective
//! calls and reducing lock contention by sharing files locks".
//!
//! Paper shape: optimized write outperforms the baseline ~3x at 4 MB;
//! reads gain only ~13% (reads take no write locks); reads are faster
//! than writes throughout.

use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, GpfsTunables};
use tapioca_topology::{mira_profile, MIB};
use tapioca_workloads::ior::fig7_8_sizes;

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let profile = mira_profile(nodes, RANKS_PER_NODE);
    let cfg = MpiIoConfig { cb_aggregators: 16, cb_buffer_size: 16 * MIB };

    let mut points = Vec::new();
    for &bytes in &fig7_8_sizes() {
        let x = mib(bytes);
        for (env, storage) in [
            ("Baseline", StorageConfig::Gpfs(GpfsTunables::mira_default())),
            ("Optimized", StorageConfig::Gpfs(GpfsTunables::mira_optimized())),
        ] {
            for (mname, mode) in [("Read", AccessMode::Read), ("Write", AccessMode::Write)] {
                let spec = ior_mira(nodes, RANKS_PER_NODE, bytes, mode);
                let r = measure_mpiio(&profile, &storage, &spec, &cfg);
                points.push(Point {
                    series: format!("{env} - {mname}"),
                    x_mib: x,
                    gib_s: r.bandwidth_gib(),
                });
            }
        }
        eprintln!("  [{x:.2} MiB] done");
    }

    print_csv(
        &format!("Fig. 7 - IOR on {nodes} Mira nodes, 16 ranks/node, baseline vs user-optimized MPI I/O"),
        &points,
    );

    let x_hi = mib(*fig7_8_sizes().last().unwrap());
    let write_gain = series_at(&points, "Optimized - Write", x_hi)
        / series_at(&points, "Baseline - Write", x_hi);
    let read_gain = series_at(&points, "Optimized - Read", x_hi)
        / series_at(&points, "Baseline - Read", x_hi);
    shape(
        "write-tuning-gain-about-3x",
        (2.0..=5.0).contains(&write_gain),
        &format!("optimized/baseline write at 4 MiB = {write_gain:.2}x (paper: 3x)"),
    );
    shape(
        "read-tuning-gain-small",
        read_gain < 1.4,
        &format!("optimized/baseline read at 4 MiB = {read_gain:.2}x (paper: +13%)"),
    );
    shape(
        "reads-faster-than-writes",
        fig7_8_sizes().iter().all(|&b| {
            series_at(&points, "Optimized - Read", mib(b))
                >= series_at(&points, "Optimized - Write", mib(b)) * 0.9
        }),
        "read bandwidth >= write bandwidth under tuning",
    );
}
