//! Fig. 12 — HACC-IO on 4,096 Mira nodes (64K ranks), one file per Pset,
//! 16 aggregators per Pset, 16 MB aggregation buffers.
//!
//! Paper shape: "the behavior is similar [to Fig. 11], with the peak I/O
//! bandwidth almost reached (the peak is estimated to 89.6 GBps on this
//! node count). As with experiments on 1,024 nodes, the gap with MPI I/O
//! decreases as the data size increases."

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::GpfsTunables;
use tapioca_topology::{mira_profile, MIB};
use tapioca_workloads::hacc::{Layout, PARTICLE_BYTES};

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let profile = mira_profile(nodes, RANKS_PER_NODE);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let tapioca_cfg = TapiocaConfig {
        num_aggregators: 16, // per Pset
        buffer_size: 16 * MIB,
        ..Default::default()
    };
    let mpiio_cfg = MpiIoConfig { cb_aggregators: 16, cb_buffer_size: 16 * MIB };

    let particle_counts: [u64; 4] = [5_000, 25_000, 50_000, 100_000];
    let mut points = Vec::new();
    for &pp in &particle_counts {
        let x = mib(pp * PARTICLE_BYTES);
        for layout in [Layout::ArrayOfStructs, Layout::StructOfArrays] {
            let lname = match layout {
                Layout::ArrayOfStructs => "AoS",
                Layout::StructOfArrays => "SoA",
            };
            let spec = hacc_mira(nodes, RANKS_PER_NODE, pp, layout);
            let t = measure_tapioca(&profile, &storage, &spec, &tapioca_cfg);
            points.push(Point { series: format!("TAPIOCA {lname}"), x_mib: x, gib_s: t.bandwidth_gib() });
            let b = measure_mpiio(&profile, &storage, &spec, &mpiio_cfg);
            points.push(Point { series: format!("MPI I/O {lname}"), x_mib: x, gib_s: b.bandwidth_gib() });
            eprintln!("  [{x:.2} MiB {lname}] tapioca={:.2} mpiio={:.2} GiB/s",
                t.bandwidth_gib(), b.bandwidth_gib());
        }
    }

    let n_psets = nodes / NODES_PER_PSET;
    print_csv(
        &format!("Fig. 12 - HACC-IO on {nodes} Mira nodes ({n_psets} Psets), file per Pset, 16 aggr/Pset, 16 MB buffers"),
        &points,
    );

    // The paper's peak estimate for 4,096 nodes: 89.6 GB/s (2.8 GB/s per Pset).
    let peak_gib = n_psets as f64 * 2.8;
    let x_hi = mib(100_000 * PARTICLE_BYTES);
    let best = series_at(&points, "TAPIOCA AoS", x_hi).max(series_at(&points, "TAPIOCA SoA", x_hi));
    shape(
        "peak-almost-reached",
        best >= 0.7 * peak_gib,
        &format!("TAPIOCA reaches {best:.1} of {peak_gib:.1} GiB/s ({:.0}%, paper: almost peak)",
            100.0 * best / peak_gib),
    );
    let x_lo = mib(5_000 * PARTICLE_BYTES);
    let gap_lo = series_at(&points, "TAPIOCA AoS", x_lo) / series_at(&points, "MPI I/O AoS", x_lo);
    let gap_hi = series_at(&points, "TAPIOCA AoS", x_hi) / series_at(&points, "MPI I/O AoS", x_hi);
    shape(
        "gap-decreases-with-size",
        gap_hi <= gap_lo && gap_lo >= 1.0,
        &format!("AoS gap {gap_lo:.2}x -> {gap_hi:.2}x"),
    );
    shape(
        "improvement-for-both-layouts",
        points.iter().filter(|p| p.series.starts_with("TAPIOCA")).all(|p| {
            let peer = p.series.replace("TAPIOCA", "MPI I/O");
            p.gib_s >= series_at(&points, &peer, p.x_mib)
        }),
        "TAPIOCA >= MPI I/O for AoS and SoA at every size",
    );
}
