//! Ablation: the double-buffer pipeline (paper Sec. IV-A).
//!
//! TAPIOCA allocates two buffers per aggregator and overlaps the
//! aggregation of round `r + 1` with the non-blocking flush of round
//! `r`. This ablation runs the identical schedule and placement with a
//! single buffer (round `r + 1` waits for the flush of round `r`),
//! isolating how much of TAPIOCA's win the overlap is worth on both
//! machines.

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_bench::*;
use tapioca_pfs::{GpfsTunables, LustreTunables};
use tapioca_topology::{mira_profile, theta_profile, MIB};
use tapioca_workloads::hacc::{Layout, PARTICLE_BYTES};

fn main() {
    let particle_counts: [u64; 4] = [5_000, 25_000, 50_000, 100_000];
    let mut points = Vec::new();

    // Theta: 512 nodes, 48 OSTs, 16 MB stripes/buffers.
    let theta = theta_profile(512, RANKS_PER_NODE);
    let theta_storage = StorageConfig::Lustre(LustreTunables::theta_hacc());
    // Mira: 512 nodes, file per Pset, 16 aggr/Pset.
    let mira = mira_profile(512, RANKS_PER_NODE);
    let mira_storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());

    for &pp in &particle_counts {
        let x = mib(pp * PARTICLE_BYTES);
        for pipelining in [true, false] {
            let tag = if pipelining { "pipelined" } else { "single-buffer" };
            let cfg_theta = TapiocaConfig {
                num_aggregators: 192,
                buffer_size: 16 * MIB,
                pipelining,
                ..Default::default()
            };
            let spec = hacc_theta(512, RANKS_PER_NODE, pp, Layout::ArrayOfStructs);
            let r = measure_tapioca(&theta, &theta_storage, &spec, &cfg_theta);
            points.push(Point { series: format!("Theta {tag}"), x_mib: x, gib_s: r.bandwidth_gib() });

            let cfg_mira = TapiocaConfig {
                num_aggregators: 16,
                buffer_size: 16 * MIB,
                pipelining,
                ..Default::default()
            };
            let spec = hacc_mira(512, RANKS_PER_NODE, pp, Layout::ArrayOfStructs);
            let r = measure_tapioca(&mira, &mira_storage, &spec, &cfg_mira);
            points.push(Point { series: format!("Mira {tag}"), x_mib: x, gib_s: r.bandwidth_gib() });
        }
        eprintln!("  [{x:.2} MiB] done");
    }

    print_csv("Ablation - double-buffer pipelining on/off, HACC-IO AoS, 512 nodes", &points);

    for sys in ["Theta", "Mira"] {
        let on = series_mean(&points, &format!("{sys} pipelined"));
        let off = series_mean(&points, &format!("{sys} single-buffer"));
        shape(
            &format!("{sys}-pipelining-helps"),
            on >= off,
            &format!("{sys}: pipelined {on:.2} vs single-buffer {off:.2} GiB/s ({:+.0}%)",
                100.0 * (on / off - 1.0)),
        );
    }
}
