//! Fig. 13 — HACC-IO on 1,024 Theta nodes (16 ranks/node, 16,384 ranks).
//!
//! Paper setup: Lustre with 48 OSTs, 16 MB stripes; TAPIOCA with 192
//! aggregators (4 per OST) and 16 MB aggregation buffers; MPI I/O with
//! the same stripe settings and aggregator count. Series: TAPIOCA vs
//! MPI I/O, each with AoS and SoA layouts, per-rank data 0.2-3.8 MB
//! (5K-100K particles).
//!
//! Paper shape: TAPIOCA greatly surpasses MPI I/O regardless of layout
//! (~7x around 1 MB/rank); the gap narrows as data size grows.

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::LustreTunables;
use tapioca_topology::{theta_profile, MIB};
use tapioca_workloads::hacc::{Layout, PARTICLE_BYTES};

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let profile = theta_profile(nodes, RANKS_PER_NODE);
    let storage = StorageConfig::Lustre(LustreTunables::theta_hacc()); // 48 OSTs, 16 MB stripes
    let aggregators = 192; // 4 per OST
    let tapioca_cfg = TapiocaConfig {
        num_aggregators: aggregators,
        buffer_size: 16 * MIB,
        ..Default::default()
    };
    let mpiio_cfg = MpiIoConfig { cb_aggregators: aggregators, cb_buffer_size: 16 * MIB };

    // 5K..100K particles per rank (0.18..3.8 MiB)
    let particle_counts: [u64; 6] = [5_000, 10_000, 25_000, 50_000, 75_000, 100_000];
    let mut points = Vec::new();
    for &pp in &particle_counts {
        let x = mib(pp * PARTICLE_BYTES);
        for layout in [Layout::ArrayOfStructs, Layout::StructOfArrays] {
            let lname = match layout {
                Layout::ArrayOfStructs => "AoS",
                Layout::StructOfArrays => "SoA",
            };
            let spec = hacc_theta(nodes, RANKS_PER_NODE, pp, layout);
            let t = measure_tapioca(&profile, &storage, &spec, &tapioca_cfg);
            points.push(Point { series: format!("TAPIOCA {lname}"), x_mib: x, gib_s: t.bandwidth_gib() });
            let b = measure_mpiio(&profile, &storage, &spec, &mpiio_cfg);
            points.push(Point { series: format!("MPI I/O {lname}"), x_mib: x, gib_s: b.bandwidth_gib() });
            eprintln!("  [{x:.2} MiB {lname}] tapioca={:.2} mpiio={:.2} GiB/s",
                t.bandwidth_gib(), b.bandwidth_gib());
        }
    }

    print_csv(
        &format!("Fig. 13 - HACC-IO on {nodes} Theta nodes, 16 ranks/node, 48 OSTs, 16 MB stripes"),
        &points,
    );

    // Shape checks against the paper's qualitative claims.
    let x_mid = mib(25_000 * PARTICLE_BYTES); // ~1 MB/rank
    let ratio_mid_aos = series_at(&points, "TAPIOCA AoS", x_mid) / series_at(&points, "MPI I/O AoS", x_mid);
    let ratio_mid_soa = series_at(&points, "TAPIOCA SoA", x_mid) / series_at(&points, "MPI I/O SoA", x_mid);
    shape(
        "tapioca-dominates-both-layouts",
        points.iter().filter(|p| p.series.starts_with("TAPIOCA")).all(|p| {
            let peer = p.series.replace("TAPIOCA", "MPI I/O");
            p.gib_s >= series_at(&points, &peer, p.x_mib)
        }),
        "TAPIOCA >= MPI I/O at every size and layout",
    );
    shape(
        "large-speedup-at-1mib",
        ratio_mid_aos >= 3.0 || ratio_mid_soa >= 3.0,
        &format!("speedup at ~1 MiB: AoS {ratio_mid_aos:.1}x, SoA {ratio_mid_soa:.1}x (paper ~7x)"),
    );
    let x_hi = mib(100_000 * PARTICLE_BYTES);
    let ratio_hi_aos = series_at(&points, "TAPIOCA AoS", x_hi) / series_at(&points, "MPI I/O AoS", x_hi);
    shape(
        "gap-narrows-with-size",
        ratio_hi_aos < ratio_mid_aos,
        &format!("AoS speedup {ratio_mid_aos:.1}x at ~1 MiB -> {ratio_hi_aos:.1}x at 3.8 MiB"),
    );
}
