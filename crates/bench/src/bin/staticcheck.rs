//! `staticcheck` — prove aggregation schedules safe before running
//! them, and cross-validate executor traces against the static model.
//!
//! ```text
//! Usage:
//!   staticcheck --suite           analyze the mira/theta x ior/hacc grid
//!                                 (plus fault-laden configs) and check
//!                                 that simulator traces linearize each
//!                                 static schedule
//!   staticcheck [OPTS]            analyze one workload
//!     --machine theta|mira        machine model            [theta]
//!     --nodes N                   nodes                    [8]
//!     --rpn R                     ranks per node           [2]
//!     --workload ior|hacc         decomposition            [ior]
//!     --ranks N                   writing ranks            [16]
//!     --bytes B                   bytes per rank (ior)     [4096]
//!     --aggregators A             aggregator count         [4]
//!     --buffer B                  buffer bytes             [1024]
//!     --faults SPEC               fault plan (iorsim syntax)
//! ```
//!
//! Exit status is non-zero if any schedule carries a static violation
//! or any trace diverges from its static schedule, so the binary
//! doubles as a CI gate.

use std::sync::Arc;

use tapioca::analyze::{analyze, derive_symbolic, StaticViolation};
use tapioca::config::TapiocaConfig;
use tapioca::schedule::WriteDecl;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_check::static_::{conformance_as, Executor};
use tapioca_mpi::{FaultPlan, FaultSpec};
use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
use tapioca_topology::{mira_profile, theta_profile, MachineProfile, TopologyProvider};
use tapioca_trace::Tracer;
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

struct Workload {
    name: String,
    profile: MachineProfile,
    storage: StorageConfig,
    decls: Vec<Vec<WriteDecl>>,
    cfg: TapiocaConfig,
}

fn storage_for(profile: &MachineProfile) -> StorageConfig {
    match profile.storage {
        tapioca_topology::StorageProfile::Gpfs { .. } => {
            StorageConfig::Gpfs(GpfsTunables::mira_optimized())
        }
        tapioca_topology::StorageProfile::Lustre { .. } => {
            StorageConfig::Lustre(LustreTunables::theta_optimized())
        }
    }
}

/// The mira/theta x ior/hacc grid, plus fault-laden configs: every
/// combination the dynamic check suite exercises, proved statically.
fn suite() -> Vec<Workload> {
    let mut out = Vec::new();
    let machines: Vec<(&str, MachineProfile)> =
        vec![("theta", theta_profile(8, 2)), ("mira", mira_profile(128, 1))];
    for (mname, profile) in machines {
        let storage = storage_for(&profile);
        for (wname, decls) in [
            ("ior", IorSpec { num_ranks: 16, bytes_per_rank: 4096 }.decls()),
            (
                "hacc",
                HaccIo { num_ranks: 16, particles_per_rank: 100, layout: Layout::StructOfArrays }
                    .decls(),
            ),
        ] {
            for (aggr, buf) in [(2usize, 512u64), (4, 1024), (4, 2048)] {
                out.push(Workload {
                    name: format!("{mname}/{wname}/A{aggr}/B{buf}"),
                    profile: profile.clone(),
                    storage,
                    decls: decls.clone(),
                    cfg: TapiocaConfig {
                        num_aggregators: aggr,
                        buffer_size: buf,
                        ..Default::default()
                    },
                });
            }
        }
    }
    // Fault-laden configs: the static model must predict the crash,
    // the retries, and the degrade point.
    let theta = theta_profile(8, 2);
    let storage = storage_for(&theta);
    let ior = IorSpec { num_ranks: 16, bytes_per_rank: 4096 }.decls();
    for (name, faults) in [
        (
            "theta/ior-crash",
            FaultPlan::seeded(11).with(FaultSpec::AggregatorCrash { partition: 1, round: 1 }),
        ),
        (
            "theta/ior-flaky",
            FaultPlan::seeded(7).with(FaultSpec::TransientFlushError { probability: 0.4 }),
        ),
        (
            "theta/ior-stall",
            FaultPlan::seeded(3).with(FaultSpec::FlushStall { partition: 0, round: 1 }),
        ),
    ] {
        out.push(Workload {
            name: name.into(),
            profile: theta.clone(),
            storage,
            decls: ior.clone(),
            cfg: TapiocaConfig {
                num_aggregators: 4,
                buffer_size: 1024,
                faults: Some(faults),
                ..Default::default()
            },
        });
    }
    out
}

/// Analyze one workload and (when `conform` is set) run the simulator
/// and check its trace against the static schedule. Returns the number
/// of violations found.
fn run_one(w: &Workload, conform: bool) -> usize {
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..w.decls.len()).collect(),
            decls: w.decls.clone(),
        }],
        mode: AccessMode::Write,
    };
    let sym = match derive_symbolic(&w.profile, &spec, &w.cfg) {
        Ok(sym) => sym,
        Err(e) => {
            println!("{:<28} DERIVE FAILED: {e}", w.name);
            return 1;
        }
    };
    let mut violations: Vec<StaticViolation> = analyze(&sym, &w.cfg);
    let npart: usize = sym.groups.iter().map(|g| g.partitions.len()).sum();
    let nrounds: usize =
        sym.groups.iter().flat_map(|g| &g.partitions).map(|p| p.rounds.len()).sum();

    let mut conf_label = String::new();
    if conform && violations.is_empty() {
        let tracer = Tracer::new(w.profile.machine.num_ranks());
        let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..w.cfg.clone() };
        match run_tapioca_sim(&w.profile, &w.storage, &spec, &cfg) {
            Ok(_) => {
                let trace = tracer.drain();
                let diverging = conformance_as(&sym, &trace, Executor::Sim);
                conf_label = format!(
                    " | sim trace {} events {}",
                    trace.events().len(),
                    if diverging.is_empty() { "conforms" } else { "DIVERGES" }
                );
                violations.extend(diverging);
            }
            Err(e) => {
                println!("{:<28} SIM FAILED: {e}", w.name);
                return 1;
            }
        }
    }
    if violations.is_empty() {
        println!(
            "{:<28} OK   | {npart} partitions, {nrounds} rounds, {} bytes{conf_label}",
            w.name,
            sym.total_bytes()
        );
    } else {
        println!("{:<28} FAIL | {} violation(s){conf_label}", w.name, violations.len());
        for v in &violations {
            println!("    {v}");
        }
    }
    violations.len()
}

fn parse_args(args: &[String]) -> Result<Workload, String> {
    let mut machine = "theta".to_string();
    let mut nodes = 8usize;
    let mut rpn = 2usize;
    let mut workload = "ior".to_string();
    let mut ranks = 16usize;
    let mut bytes = 4096u64;
    let mut aggregators = 4usize;
    let mut buffer = 1024u64;
    let mut faults: Option<FaultPlan> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--machine" => machine = val("--machine")?,
            "--nodes" => nodes = val("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--rpn" => rpn = val("--rpn")?.parse().map_err(|e| format!("--rpn: {e}"))?,
            "--workload" => workload = val("--workload")?,
            "--ranks" => ranks = val("--ranks")?.parse().map_err(|e| format!("--ranks: {e}"))?,
            "--bytes" => bytes = val("--bytes")?.parse().map_err(|e| format!("--bytes: {e}"))?,
            "--aggregators" => {
                aggregators =
                    val("--aggregators")?.parse().map_err(|e| format!("--aggregators: {e}"))?;
            }
            "--buffer" => {
                buffer = val("--buffer")?.parse().map_err(|e| format!("--buffer: {e}"))?;
            }
            "--faults" => faults = Some(FaultPlan::parse(&val("--faults")?)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let profile = match machine.as_str() {
        "theta" => theta_profile(nodes, rpn),
        "mira" => mira_profile(nodes, rpn),
        other => return Err(format!("unknown machine {other}")),
    };
    let decls = match workload.as_str() {
        "ior" => IorSpec { num_ranks: ranks, bytes_per_rank: bytes }.decls(),
        "hacc" => HaccIo {
            num_ranks: ranks,
            particles_per_rank: (bytes / 36).max(1),
            layout: Layout::StructOfArrays,
        }
        .decls(),
        other => return Err(format!("unknown workload {other}")),
    };
    let storage = storage_for(&profile);
    Ok(Workload {
        name: format!("{machine}/{workload}/A{aggregators}/B{buffer}"),
        profile,
        storage,
        decls,
        cfg: TapiocaConfig {
            num_aggregators: aggregators,
            buffer_size: buffer,
            faults,
            ..Default::default()
        },
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut total = 0usize;
    if args.iter().any(|a| a == "--suite") {
        for w in suite() {
            total += run_one(&w, true);
        }
    } else {
        match parse_args(&args) {
            Ok(w) => total += run_one(&w, true),
            Err(e) => {
                eprintln!("staticcheck: {e}");
                std::process::exit(2);
            }
        }
    }
    if total > 0 {
        eprintln!("staticcheck: {total} violation(s)");
        std::process::exit(1);
    }
    println!("staticcheck: all schedules prove out");
}
