//! Fig. 9 — microbenchmark on 1,024 Mira nodes (16 ranks/node):
//! every rank writes one contiguous block per collective call.
//!
//! Paper setup: 32 aggregators per Pset, 32 MB aggregation buffers,
//! one file per Pset; tuned MPI I/O as the comparison.
//!
//! Paper shape: **near parity** — "both methods provide similar results.
//! Since every process sends the same amount of data at the same time in
//! one contiguous chunk, the benefit of a topology-aware aggregators
//! placement is negligible as well as the advantage of the I/O
//! scheduling computed in TAPIOCA." (The BG/Q MPI stack is mature.)

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, GpfsTunables};
use tapioca_topology::{mira_profile, MIB};
use tapioca_workloads::ior::fig9_10_sizes;

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let profile = mira_profile(nodes, RANKS_PER_NODE);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let tapioca_cfg = TapiocaConfig {
        num_aggregators: 32, // per Pset
        buffer_size: 32 * MIB,
        ..Default::default()
    };
    let mpiio_cfg = MpiIoConfig { cb_aggregators: 32, cb_buffer_size: 32 * MIB };

    let mut points = Vec::new();
    for &bytes in &fig9_10_sizes() {
        let x = mib(bytes);
        let spec = ior_mira(nodes, RANKS_PER_NODE, bytes, AccessMode::Write);
        let t = measure_tapioca(&profile, &storage, &spec, &tapioca_cfg);
        points.push(Point { series: "TAPIOCA".into(), x_mib: x, gib_s: t.bandwidth_gib() });
        let b = measure_mpiio(&profile, &storage, &spec, &mpiio_cfg);
        points.push(Point { series: "MPI I/O".into(), x_mib: x, gib_s: b.bandwidth_gib() });
        eprintln!("  [{x:.2} MiB] tapioca={:.2} mpiio={:.2} GiB/s", t.bandwidth_gib(), b.bandwidth_gib());
    }

    print_csv(
        &format!("Fig. 9 - microbenchmark on {nodes} Mira nodes, 16 ranks/node, 32 aggr/Pset, 32 MB buffers"),
        &points,
    );

    // Parity check: the two curves stay within a modest band of each
    // other (the paper's Fig. 9 curves nearly coincide).
    let worst_ratio = fig9_10_sizes()
        .iter()
        .map(|&b| {
            let t = series_at(&points, "TAPIOCA", mib(b));
            let m = series_at(&points, "MPI I/O", mib(b));
            (t / m).max(m / t)
        })
        .fold(0.0, f64::max);
    shape(
        "near-parity-on-mature-bgq-stack",
        worst_ratio <= 1.6,
        &format!("worst pointwise ratio {worst_ratio:.2} (paper: curves overlap)"),
    );
    shape(
        "tapioca-not-slower",
        fig9_10_sizes().iter().all(|&b| {
            series_at(&points, "TAPIOCA", mib(b)) >= 0.95 * series_at(&points, "MPI I/O", mib(b))
        }),
        "TAPIOCA >= 0.95x MPI I/O at every size",
    );
}
