//! Fig. 11 — HACC-IO on 1,024 Mira nodes (16 ranks/node), one file per
//! Pset, 16 aggregators per Pset, 16 MB aggregation buffers.
//!
//! Paper shape: subfiling + declared multi-variable scheduling lets
//! TAPIOCA reach up to ~90% of the Pset-limited peak; it outperforms the
//! (well-tuned) MPI I/O even on large messages, and the gap shrinks as
//! the data size grows. The SoA layout is where MPI I/O collapses (nine
//! independent collective calls flushing near-empty buffers, paper
//! Fig. 2) — the source of the headline "12x faster on BG/Q".

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::GpfsTunables;
use tapioca_topology::{mira_profile, GIB, MIB};
use tapioca_workloads::hacc::{Layout, PARTICLE_BYTES};

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let profile = mira_profile(nodes, RANKS_PER_NODE);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let tapioca_cfg = TapiocaConfig {
        num_aggregators: 16, // per Pset
        buffer_size: 16 * MIB,
        ..Default::default()
    };
    let mpiio_cfg = MpiIoConfig { cb_aggregators: 16, cb_buffer_size: 16 * MIB };

    let particle_counts: [u64; 6] = [5_000, 10_000, 25_000, 50_000, 75_000, 100_000];
    let mut points = Vec::new();
    for &pp in &particle_counts {
        let x = mib(pp * PARTICLE_BYTES);
        for layout in [Layout::ArrayOfStructs, Layout::StructOfArrays] {
            let lname = match layout {
                Layout::ArrayOfStructs => "AoS",
                Layout::StructOfArrays => "SoA",
            };
            let spec = hacc_mira(nodes, RANKS_PER_NODE, pp, layout);
            let t = measure_tapioca(&profile, &storage, &spec, &tapioca_cfg);
            points.push(Point { series: format!("TAPIOCA {lname}"), x_mib: x, gib_s: t.bandwidth_gib() });
            let b = measure_mpiio(&profile, &storage, &spec, &mpiio_cfg);
            points.push(Point { series: format!("MPI I/O {lname}"), x_mib: x, gib_s: b.bandwidth_gib() });
            eprintln!("  [{x:.2} MiB {lname}] tapioca={:.2} mpiio={:.2} GiB/s",
                t.bandwidth_gib(), b.bandwidth_gib());
        }
    }

    let n_psets = nodes / NODES_PER_PSET;
    print_csv(
        &format!("Fig. 11 - HACC-IO on {nodes} Mira nodes ({n_psets} Psets), file per Pset, 16 aggr/Pset, 16 MB buffers"),
        &points,
    );

    // Peak: each Pset is served by one 2.8 GiB/s GPFS station.
    let peak_gib = n_psets as f64 * 2.8 * GIB as f64 / GIB as f64;
    let x_hi = mib(100_000 * PARTICLE_BYTES);
    let best = series_at(&points, "TAPIOCA AoS", x_hi).max(series_at(&points, "TAPIOCA SoA", x_hi));
    shape(
        "tapioca-near-peak",
        best >= 0.75 * peak_gib,
        &format!("TAPIOCA reaches {best:.1} of {peak_gib:.1} GiB/s peak ({:.0}%, paper: ~90%)",
            100.0 * best / peak_gib),
    );
    shape(
        "tapioca-wins-even-on-large-messages",
        points.iter().filter(|p| p.series.starts_with("TAPIOCA")).all(|p| {
            let peer = p.series.replace("TAPIOCA", "MPI I/O");
            p.gib_s >= series_at(&points, &peer, p.x_mib)
        }),
        "TAPIOCA >= MPI I/O everywhere",
    );
    let x_lo = mib(5_000 * PARTICLE_BYTES);
    let gap_lo = series_at(&points, "TAPIOCA AoS", x_lo) / series_at(&points, "MPI I/O AoS", x_lo);
    let gap_hi = series_at(&points, "TAPIOCA AoS", x_hi) / series_at(&points, "MPI I/O AoS", x_hi);
    shape(
        "gap-decreases-as-size-increases",
        gap_hi <= gap_lo,
        &format!("AoS gap {gap_lo:.2}x at 0.18 MiB -> {gap_hi:.2}x at 3.8 MiB"),
    );
    let soa_ratio = series_mean(&points, "TAPIOCA SoA") / series_mean(&points, "MPI I/O SoA");
    shape(
        "soa-is-the-headline-layout",
        soa_ratio >= 3.0,
        &format!("mean SoA speedup {soa_ratio:.1}x (paper: up to 12x on BG/Q)"),
    );
}
