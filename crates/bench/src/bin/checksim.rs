//! `checksim` — replay recorded pipeline traces through the
//! `tapioca-check` protocol checker.
//!
//! ```text
//! Usage:
//!   checksim FILE.jsonl...        check traces dumped with --trace-out
//!   checksim --suite              run the trace-equivalence workloads on
//!                                 BOTH executors and check every trace
//!   checksim --perturb N          run the thread pipeline under N seeded
//!                                 schedule perturbations, checking each
//!                                 interleaving's trace
//!   --seed-base S                 first perturbation seed      [1]
//!   --faults                      also run the fault-injection recovery
//!                                 workloads (aggregator crash, transient
//!                                 flush errors) on both executors and
//!                                 check their recovery traces
//! ```
//!
//! Exit status is non-zero if any checked trace carries a violation, so
//! the binary doubles as a CI gate. Every violation is printed with its
//! machine-readable code and a human diagnosis.

use std::sync::Arc;

use tapioca::prelude::*;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_check::{check, parse_jsonl, Violation};
use tapioca_mpi::{FaultPlan, FaultSpec, Runtime, SharedFile};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MachineProfile, TopologyProvider};
use tapioca_trace::{Trace, Tracer};
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

/// One workload of the cross-executor suite — mirrors the configs the
/// `trace_equivalence` integration test pins.
struct Workload {
    name: &'static str,
    profile: MachineProfile,
    decls: Vec<Vec<WriteDecl>>,
    cfg: TapiocaConfig,
}

fn suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "hacc-soa",
            profile: theta_profile(8, 2),
            decls: HaccIo { num_ranks: 16, particles_per_rank: 100, layout: Layout::StructOfArrays }
                .decls(),
            cfg: TapiocaConfig { num_aggregators: 4, buffer_size: 2048, ..Default::default() },
        },
        Workload {
            name: "hacc-aos",
            profile: theta_profile(4, 4),
            decls: HaccIo { num_ranks: 16, particles_per_rank: 80, layout: Layout::ArrayOfStructs }
                .decls(),
            cfg: TapiocaConfig { num_aggregators: 3, buffer_size: 1536, ..Default::default() },
        },
        Workload {
            name: "ior",
            profile: theta_profile(8, 2),
            decls: IorSpec { num_ranks: 16, bytes_per_rank: 4096 }.decls(),
            cfg: TapiocaConfig { num_aggregators: 4, buffer_size: 1024, ..Default::default() },
        },
        Workload {
            name: "ior-nopipe",
            profile: theta_profile(8, 2),
            decls: IorSpec { num_ranks: 16, bytes_per_rank: 2000 }.decls(),
            cfg: TapiocaConfig {
                num_aggregators: 2,
                buffer_size: 512,
                pipelining: false,
                ..Default::default()
            },
        },
    ]
}

/// Fault-injected variants of the suite: the traces must still pass the
/// checker — recovery epochs (re-election) and retried flushes included.
fn fault_suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "ior-crash",
            profile: theta_profile(8, 2),
            decls: IorSpec { num_ranks: 16, bytes_per_rank: 4096 }.decls(),
            cfg: TapiocaConfig {
                num_aggregators: 4,
                buffer_size: 1024,
                faults: Some(
                    FaultPlan::seeded(11)
                        .with(FaultSpec::AggregatorCrash { partition: 1, round: 1 }),
                ),
                ..Default::default()
            },
        },
        Workload {
            name: "hacc-flaky",
            profile: theta_profile(8, 2),
            decls: HaccIo { num_ranks: 16, particles_per_rank: 100, layout: Layout::StructOfArrays }
                .decls(),
            cfg: TapiocaConfig {
                num_aggregators: 4,
                buffer_size: 2048,
                faults: Some(
                    FaultPlan::seeded(7)
                        .with(FaultSpec::TransientFlushError { probability: 0.4 }),
                ),
                ..Default::default()
            },
        },
    ]
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-checksim");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Simulator trace of one workload.
fn sim_trace(w: &Workload) -> Trace {
    let tracer = Tracer::new(w.profile.machine.num_ranks());
    let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..w.cfg.clone() };
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..w.decls.len()).collect(),
            decls: w.decls.clone(),
        }],
        mode: AccessMode::Write,
    };
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    run_tapioca_sim(&w.profile, &storage, &spec, &cfg).expect("simulation failed");
    tracer.drain()
}

/// Thread-mode trace of one workload; `seed` enables schedule
/// perturbation for that seed.
fn thread_trace(w: &Workload, label: &str, seed: Option<u64>) -> Trace {
    let n = w.decls.len();
    let tracer = Tracer::new(w.profile.machine.num_ranks());
    let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..w.cfg.clone() };
    let machine = Arc::new(w.profile.machine.clone());
    let path = tmp(label);
    let decls = w.decls.clone();
    let path2 = path.clone();
    let body = move |comm: tapioca_mpi::Comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let mine = decls[comm.rank()].clone();
        let mut io = Session::builder(&comm, file)
            .declarations(mine.clone())
            .config(cfg.clone())
            .topology(machine.clone())
            .build()
            .expect("init failed");
        for d in &mine {
            io.write(d.offset, &vec![0xC3u8; d.len as usize]).expect("write failed");
        }
        io.finalize();
    };
    match seed {
        Some(s) => Runtime::run_perturbed(n, s, body),
        None => Runtime::run(n, body),
    };
    std::fs::remove_file(&path).ok();
    tracer.drain()
}

/// Check one trace, print the verdict, and return the violation count.
fn report(label: &str, trace: &Trace) -> usize {
    let violations: Vec<Violation> = check(trace);
    if violations.is_empty() {
        println!("{label}: OK ({} events)", trace.len());
    } else {
        println!("{label}: {} violation(s)", violations.len());
        for v in &violations {
            println!("  {v}");
        }
    }
    violations.len()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut run_suite = false;
    let mut with_faults = false;
    let mut perturb: Option<u64> = None;
    let mut seed_base = 1u64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--suite" => run_suite = true,
            "--faults" => with_faults = true,
            "--perturb" => {
                i += 1;
                perturb = Some(argv.get(i).expect("--perturb N").parse().expect("seed count"));
            }
            "--seed-base" => {
                i += 1;
                seed_base = argv.get(i).expect("--seed-base S").parse().expect("seed base");
            }
            "--help" | "-h" => {
                println!("see the module docs at the top of checksim.rs");
                return;
            }
            other if other.starts_with("--") => panic!("unknown option {other}"),
            file => files.push(std::path::PathBuf::from(file)),
        }
        i += 1;
    }
    if files.is_empty() && !run_suite && !with_faults && perturb.is_none() {
        eprintln!("checksim: nothing to do — pass trace files, --suite, or --perturb N");
        std::process::exit(2);
    }

    let mut total = 0usize;
    for f in &files {
        let doc = std::fs::read_to_string(f)
            .unwrap_or_else(|e| panic!("read {}: {e}", f.display()));
        let trace = parse_jsonl(&doc).unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        total += report(&f.display().to_string(), &trace);
    }

    if run_suite {
        println!("# cross-executor protocol suite");
        for w in &suite() {
            total += report(&format!("sim:{}", w.name), &sim_trace(w));
            let label = format!("thread:{}", w.name);
            total += report(&label, &thread_trace(w, &label, None));
        }
    }

    if with_faults {
        println!("# fault-injection recovery suite");
        for w in &fault_suite() {
            total += report(&format!("sim:{}", w.name), &sim_trace(w));
            let label = format!("thread:{}", w.name);
            total += report(&label, &thread_trace(w, &label, None));
        }
    }

    if let Some(n) = perturb {
        // Perturb the two workloads that exercise both pipelined and
        // unpipelined flushing; alternate to spread the seed budget.
        println!("# schedule perturbation: {n} seeds starting at {seed_base}");
        let ws = suite();
        let targets = [&ws[0], &ws[3]];
        for k in 0..n {
            let seed = seed_base + k;
            let w = targets[(k % 2) as usize];
            let label = format!("perturb:{}:seed{}", w.name, seed);
            total += report(&label, &thread_trace(w, &label, Some(seed)));
        }
    }

    if total > 0 {
        eprintln!("checksim: {total} violation(s) found");
        std::process::exit(1);
    }
}
