//! Fig. 14 — HACC-IO on 2,048 Theta nodes (16 ranks/node, 32,768 ranks).
//!
//! Paper setup: Lustre with 48 OSTs, 16 MB stripes; 384 aggregators
//! (8 per OST) for both methods; 16 MB aggregation buffers.
//!
//! Paper shape: same as Fig. 13 at twice the scale — "even on the
//! largest case (3.6 MB) and an array of structures data layout, our
//! method is 4 times faster than MPI I/O".

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::LustreTunables;
use tapioca_topology::{theta_profile, MIB};
use tapioca_workloads::hacc::{Layout, PARTICLE_BYTES};

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let profile = theta_profile(nodes, RANKS_PER_NODE);
    let storage = StorageConfig::Lustre(LustreTunables::theta_hacc());
    let aggregators = 384; // 8 per OST
    let tapioca_cfg = TapiocaConfig {
        num_aggregators: aggregators,
        buffer_size: 16 * MIB,
        ..Default::default()
    };
    let mpiio_cfg = MpiIoConfig { cb_aggregators: aggregators, cb_buffer_size: 16 * MIB };

    let particle_counts: [u64; 5] = [5_000, 25_000, 50_000, 75_000, 100_000];
    let mut points = Vec::new();
    for &pp in &particle_counts {
        let x = mib(pp * PARTICLE_BYTES);
        for layout in [Layout::ArrayOfStructs, Layout::StructOfArrays] {
            let lname = match layout {
                Layout::ArrayOfStructs => "AoS",
                Layout::StructOfArrays => "SoA",
            };
            let spec = hacc_theta(nodes, RANKS_PER_NODE, pp, layout);
            let t = measure_tapioca(&profile, &storage, &spec, &tapioca_cfg);
            points.push(Point { series: format!("TAPIOCA {lname}"), x_mib: x, gib_s: t.bandwidth_gib() });
            let b = measure_mpiio(&profile, &storage, &spec, &mpiio_cfg);
            points.push(Point { series: format!("MPI I/O {lname}"), x_mib: x, gib_s: b.bandwidth_gib() });
            eprintln!("  [{x:.2} MiB {lname}] tapioca={:.2} mpiio={:.2} GiB/s",
                t.bandwidth_gib(), b.bandwidth_gib());
        }
    }

    print_csv(
        &format!("Fig. 14 - HACC-IO on {nodes} Theta nodes, 16 ranks/node, 48 OSTs, 16 MB stripes, 384 aggregators"),
        &points,
    );

    let x_hi = mib(100_000 * PARTICLE_BYTES); // ~3.6 MB/rank
    let ratio_hi_aos = series_at(&points, "TAPIOCA AoS", x_hi) / series_at(&points, "MPI I/O AoS", x_hi);
    shape(
        "tapioca-dominates-both-layouts",
        points.iter().filter(|p| p.series.starts_with("TAPIOCA")).all(|p| {
            let peer = p.series.replace("TAPIOCA", "MPI I/O");
            p.gib_s >= series_at(&points, &peer, p.x_mib)
        }),
        "TAPIOCA >= MPI I/O at every size and layout",
    );
    shape(
        "aos-speedup-at-largest-size",
        ratio_hi_aos >= 2.0,
        &format!("AoS speedup at 3.6 MiB: {ratio_hi_aos:.1}x (paper: 4x)"),
    );
    let soa_tap = series_mean(&points, "TAPIOCA SoA");
    let soa_mpi = series_mean(&points, "MPI I/O SoA");
    shape(
        "soa-gap-exceeds-aos-gap",
        soa_tap / soa_mpi >= ratio_hi_aos,
        &format!("mean SoA speedup {:.1}x >= AoS {:.1}x", soa_tap / soa_mpi, ratio_hi_aos),
    );
}
