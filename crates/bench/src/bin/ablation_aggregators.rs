//! Ablation: number of aggregators (the paper tunes 16-32 per Pset on
//! Mira and 48-384 on Theta; "the number of aggregators or the buffer
//! size needed in collective I/O remains still an open topic", ref 19).
//!
//! Sweep the aggregator count on Theta with everything else at the
//! paper's tuned values and report the bandwidth curve. Expected shape:
//! rising while aggregators add OST coverage, flattening once every OST
//! is kept busy.

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MIB};

fn main() {
    let nodes = 512;
    let profile = theta_profile(nodes, RANKS_PER_NODE);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    let counts = [6usize, 12, 24, 48, 96, 192, 384];

    println!("# Ablation - aggregator count on {nodes} Theta nodes, IOR 1 MiB/rank, 8 MB buffers = stripe");
    println!("aggregators,bandwidth_gib_s");
    let mut rows = Vec::new();
    for &a in &counts {
        let cfg = TapiocaConfig {
            num_aggregators: a,
            buffer_size: 8 * MIB,
            ..Default::default()
        };
        let spec = ior_theta(nodes, RANKS_PER_NODE, MIB, AccessMode::Write);
        let r = measure_tapioca(&profile, &storage, &spec, &cfg);
        println!("{a},{:.4}", r.bandwidth_gib());
        rows.push((a, r.bandwidth_gib()));
        eprintln!("  [{a} aggregators] {:.2} GiB/s", r.bandwidth_gib());
    }

    let few = rows.first().expect("rows").1;
    let best = rows.iter().map(|r| r.1).fold(0.0, f64::max);
    let at48 = rows.iter().find(|(a, _)| *a == 48).expect("48 present").1;
    shape(
        "too-few-aggregators-starve-the-osts",
        few < 0.7 * best,
        &format!("6 aggregators reach {few:.2} vs best {best:.2} GiB/s"),
    );
    shape(
        "about-one-per-ost-suffices",
        at48 >= 0.6 * best,
        &format!("48 aggregators (1/OST) reach {:.0}% of best", 100.0 * at48 / best),
    );
}
