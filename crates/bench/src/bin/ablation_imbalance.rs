//! Ablation: load imbalance. Real HACC domains never hold exactly the
//! same particle count per rank; the declared weights `omega(i, A)` are
//! precisely how TAPIOCA's Init phase sees that imbalance. Sweep the
//! per-rank spread and watch bandwidth degrade gracefully — the
//! partitioning by *bytes* (not by ranks) keeps aggregator load balanced
//! even when rank loads are not.

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::{CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MIB};
use tapioca_workloads::hacc::{HaccIo, Layout};

fn main() {
    let nodes = 256;
    let rpn = RANKS_PER_NODE;
    let nranks = nodes * rpn;
    let profile = theta_profile(nodes, rpn);
    let storage = StorageConfig::Lustre(LustreTunables::theta_hacc());
    let cfg = TapiocaConfig {
        num_aggregators: 96,
        buffer_size: 16 * MIB,
        ..Default::default()
    };
    let mean = 25_000u64; // ~1 MB per rank on average

    println!("# Ablation - per-rank load imbalance, HACC-IO AoS on {nodes} Theta nodes");
    println!("spread,bandwidth_gib_s");
    let mut rows = Vec::new();
    for spread in [0.0, 0.2, 0.5, 0.8] {
        let counts = HaccIo::imbalanced_counts(nranks, mean, spread, 42);
        let decls = HaccIo::decls_with_counts(&counts, Layout::ArrayOfStructs);
        let spec = CollectiveSpec {
            groups: vec![GroupSpec { file: 0, ranks: (0..nranks).collect(), decls }],
            mode: AccessMode::Write,
        };
        let r = measure_tapioca(&profile, &storage, &spec, &cfg);
        println!("{spread},{:.4}", r.bandwidth_gib());
        rows.push((spread, r.bandwidth_gib()));
        eprintln!("  [spread {spread}] {:.2} GiB/s", r.bandwidth_gib());
    }

    let balanced = rows[0].1;
    let worst = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    shape(
        "graceful-degradation-under-imbalance",
        worst >= 0.7 * balanced,
        &format!(
            "byte-partitioning holds bandwidth within {:.0}% of balanced even at 80% spread",
            100.0 * (1.0 - worst / balanced)
        ),
    );
}
