//! Ablation: aggregator placement strategies (paper Sec. IV-B).
//!
//! The paper's contribution is the `TopoAware(A) = min(C1 + C2)`
//! election. This ablation holds everything else fixed on Mira (where
//! the I/O-node distances are known, so the full cost model is active)
//! and swaps the strategy:
//!
//! * `TopologyAware` — the paper's objective;
//! * `RankOrder` — MPICH-style first-member placement;
//! * `ShortestPathToIo` — bridge-greedy heuristic (ignores C1);
//! * `Random` — seeded random member;
//! * `WorstCase` — maximizes the objective (adversarial upper bound).

use tapioca::config::TapiocaConfig;
use tapioca::placement::PlacementStrategy;
use tapioca::sim_exec::StorageConfig;
use tapioca_bench::*;
use tapioca_pfs::GpfsTunables;
use tapioca_topology::{mira_profile, MIB};
use tapioca_workloads::hacc::{Layout, PARTICLE_BYTES};

fn main() {
    let nodes = 512;
    let profile = mira_profile(nodes, RANKS_PER_NODE);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let strategies: [(&str, PlacementStrategy); 5] = [
        ("TopologyAware", PlacementStrategy::TopologyAware),
        ("RankOrder", PlacementStrategy::RankOrder),
        ("ShortestPathToIo", PlacementStrategy::ShortestPathToIo),
        ("Random", PlacementStrategy::Random { seed: 7 }),
        ("WorstCase", PlacementStrategy::WorstCase),
    ];
    let particle_counts: [u64; 3] = [10_000, 50_000, 100_000];

    let mut points = Vec::new();
    for &pp in &particle_counts {
        let x = mib(pp * PARTICLE_BYTES);
        for (name, strategy) in strategies {
            let cfg = TapiocaConfig {
                num_aggregators: 16,
                buffer_size: 16 * MIB,
                strategy,
                ..Default::default()
            };
            let spec = hacc_mira(nodes, RANKS_PER_NODE, pp, Layout::ArrayOfStructs);
            let r = measure_tapioca(&profile, &storage, &spec, &cfg);
            points.push(Point { series: name.into(), x_mib: x, gib_s: r.bandwidth_gib() });
        }
        eprintln!("  [{x:.2} MiB] done");
    }

    print_csv(
        "Ablation - placement strategies, HACC-IO AoS on 512 Mira nodes, 16 aggr/Pset",
        &points,
    );

    let mean = |s: &str| series_mean(&points, s);
    let best = strategies.iter().map(|(n, _)| mean(n)).fold(0.0, f64::max);
    shape(
        "topology-aware-competitive-with-best",
        mean("TopologyAware") >= 0.95 * best,
        &format!(
            "TopoAware {:.2} | RankOrder {:.2} | ShortestIo {:.2} | Random {:.2} | Worst {:.2} GiB/s \
             (I/O-bound configs leave placement a second-order term; the cost model must not lose to \
             naive strategies)",
            mean("TopologyAware"),
            mean("RankOrder"),
            mean("ShortestPathToIo"),
            mean("Random"),
            mean("WorstCase")
        ),
    );
    shape(
        "topology-aware-beats-uninformed-placement",
        mean("TopologyAware") >= mean("Random") && mean("TopologyAware") >= mean("WorstCase"),
        "cost-model election >= random and adversarial placement",
    );
    shape(
        "worst-case-is-worst",
        strategies.iter().all(|(n, _)| mean("WorstCase") <= mean(n) * 1.001),
        "adversarial placement loses to every strategy",
    );
}
