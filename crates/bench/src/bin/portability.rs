//! Portability: the paper's core engineering claim — "we show
//! substantial improvement of I/O access *without modifying the code
//! from one system to another*" — extended to a third machine the paper
//! never evaluated: a commodity fat-tree cluster with Lustre.
//!
//! The same TAPIOCA code (schedule, election, pipeline) runs against all
//! three `TopologyProvider`s; only the machine profile changes. Expected
//! shape: TAPIOCA >= tuned MPI I/O on every machine, with the familiar
//! SoA gap.

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::{GpfsTunables, LockMode, LustreTunables};
use tapioca_topology::{
    cluster_profile, mira_profile, theta_profile, MachineProfile, TopologyProvider, MIB,
};
use tapioca_workloads::hacc::Layout;

fn main() {
    let particles = 25_000u64; // ~1 MB/rank

    struct Case {
        profile: MachineProfile,
        storage: StorageConfig,
        aggregators: usize,
        buffer: u64,
        mira_style_subfiling: bool,
    }
    let cases = [
        Case {
            profile: mira_profile(512, RANKS_PER_NODE),
            storage: StorageConfig::Gpfs(GpfsTunables::mira_optimized()),
            aggregators: 16,
            buffer: 16 * MIB,
            mira_style_subfiling: true,
        },
        Case {
            profile: theta_profile(512, RANKS_PER_NODE),
            storage: StorageConfig::Lustre(LustreTunables::theta_hacc()),
            aggregators: 192,
            buffer: 16 * MIB,
            mira_style_subfiling: false,
        },
        Case {
            profile: cluster_profile(512, 8),
            storage: StorageConfig::Lustre(LustreTunables {
                stripe_count: 32,
                stripe_size: 8 * MIB,
                lock_mode: LockMode::Shared,
            }),
            aggregators: 64,
            buffer: 8 * MIB,
            mira_style_subfiling: false,
        },
    ];

    println!("# Portability - identical TAPIOCA code on three machines, HACC-IO ~1 MB/rank");
    println!("machine,layout,tapioca_gib_s,mpiio_gib_s,speedup");
    let mut all_win = true;
    let mut soa_beats_aos_everywhere = true;
    for case in &cases {
        let rpn = case.profile.machine.ranks_per_node();
        let nodes = case.profile.machine.num_nodes();
        let mut ratios = Vec::new();
        for layout in [Layout::ArrayOfStructs, Layout::StructOfArrays] {
            let lname = match layout {
                Layout::ArrayOfStructs => "AoS",
                Layout::StructOfArrays => "SoA",
            };
            let spec = if case.mira_style_subfiling {
                hacc_mira(nodes, rpn, particles, layout)
            } else {
                hacc_theta(nodes, rpn, particles, layout)
            };
            let t = measure_tapioca(&case.profile, &case.storage, &spec, &TapiocaConfig {
                num_aggregators: case.aggregators,
                buffer_size: case.buffer,
                ..Default::default()
            });
            let b = measure_mpiio(&case.profile, &case.storage, &spec, &MpiIoConfig {
                cb_aggregators: case.aggregators,
                cb_buffer_size: case.buffer,
            });
            let ratio = t.bandwidth / b.bandwidth;
            println!(
                "{},{lname},{:.2},{:.2},{ratio:.2}",
                case.profile.name,
                t.bandwidth_gib(),
                b.bandwidth_gib()
            );
            all_win &= ratio >= 0.999;
            ratios.push(ratio);
            eprintln!("  [{}] {lname}: {:.2} vs {:.2} GiB/s",
                case.profile.name, t.bandwidth_gib(), b.bandwidth_gib());
        }
        soa_beats_aos_everywhere &= ratios[1] >= ratios[0] * 0.999;
    }

    shape(
        "tapioca-wins-on-every-machine",
        all_win,
        "unchanged library code >= tuned MPI I/O on BG/Q, XC40, and a fat-tree cluster",
    );
    shape(
        "soa-gap-is-machine-independent",
        soa_beats_aos_everywhere,
        "the declared-schedule advantage on multi-variable layouts appears on all three",
    );
}
