//! Tracked performance harness: self-times the aggregator election
//! (node-folded fast path vs. the naive pairwise oracle) and the netsim
//! rate computation (incremental heap vs. full bottleneck scan), then
//! writes `BENCH_perf.json` at the repo root in a stable schema.
//!
//! Usage:
//!
//! ```text
//! perfbench [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks every sweep to CI-sized shapes (seconds, not
//! minutes) while keeping the output schema identical, so the CI job
//! can validate the file without caring which mode produced it.
//!
//! Schema (`tapioca-perfbench/v4`):
//!
//! ```json
//! {
//!   "schema": "tapioca-perfbench/v4",
//!   "smoke": false,
//!   "suites": {
//!     "election": [ { "machine", "strategy", "members", "ranks",
//!                     "ranks_per_node", "reps", "naive_ns", "fast_ns",
//!                     "speedup", "same_winner" } ],
//!     "netsim":   [ { "workload", "links", "flows", "reps", "scan_ns",
//!                     "heap_ns", "auto_ns", "speedup", "auto_speedup",
//!                     "identical" } ],
//!     "netsim_incremental":
//!                 [ { "workload", "links", "flows", "parts", "reps",
//!                     "scan_ns", "full_ns", "incr_ns", "speedup",
//!                     "identical" } ],
//!     "streaming":
//!                 [ { "machine", "workload", "ranks", "bytes_per_rank",
//!                     "epochs", "reps", "staged_ns", "streamed_ns",
//!                     "speedup", "staged_copy_bytes",
//!                     "streamed_copy_bytes", "identical" } ],
//!     "dataplane":
//!                 [ { "machine", "workload", "ranks", "ranks_per_node",
//!                     "bytes_per_rank", "epochs", "reps", "raw_puts",
//!                     "coalesced_puts", "merged_puts",
//!                     "coalesced_chunks", "put_op_reduction",
//!                     "copy_bytes_eliminated", "raw_ns", "coalesced_ns",
//!                     "speedup", "sim_raw_elapsed_s",
//!                     "sim_coalesced_elapsed_s", "sim_speedup",
//!                     "identical" } ]
//!   }
//! }
//! ```
//!
//! `netsim_incremental` times the component-sharded engine on
//! multi-partition round workloads (the shape `sim_exec` submits):
//! `scan_ns` is the pre-sharding engine (bottleneck scan, full recompute
//! on every event), `full_ns` re-waterfills every component per event
//! with the `Auto` algorithm, and `incr_ns` re-waterfills only dirty
//! components. `speedup` is `full_ns / incr_ns`; `identical` asserts all
//! three produce bitwise-equal schedules.
//!
//! `streaming` times the thread-mode write path over multi-epoch
//! timestep loops: `staged_ns` replays the pre-streaming behaviour (per
//! epoch: allgather declarations, recompute the schedule, copy the
//! payload into staging buffers, run the batch pipeline) while
//! `streamed_ns` reuses one `Session` whose `write()` feeds bytes
//! straight into the round pipeline. `*_copy_bytes` count staging-buffer
//! copies — the streamed column must be 0 on these in-order workloads —
//! and `identical` asserts both legs produce bitwise-equal files.
//!
//! `dataplane` measures intra-node put coalescing on small-chunk
//! collective writes whose round windows span several co-located ranks.
//! Each row runs the same batch pipeline twice through the thread
//! executor — `coalescing: false` (one wire put per chunk) vs
//! `coalescing: true` (co-located contiguous chunks deposited into a
//! node leader's gather buffer and forwarded as one merged put) — and
//! reports the wire-op accounting (`put_op_reduction` is
//! `raw_puts / coalesced_puts`; `merged_puts`/`coalesced_chunks` are
//! the leader-issued merges and the chunks folded into them) plus wall
//! times. `copy_bytes_eliminated` counts flushed bytes submitted as
//! refcounted in-place window segments — bytes the pre-vectored flush
//! path memcpy'd into an owned staging buffer per segment. The `sim_*`
//! columns run the same workload through the simulator executor, whose
//! transfer granularity is already per (round, source node): coalescing
//! is intrinsic there, so its elapsed ratio documents invariance
//! (~1.0x) rather than a win. `identical` asserts the raw and coalesced
//! legs produce bitwise-equal files. The thread-executor `speedup`
//! column depends on host parallelism: the coalesced leg trades one
//! extra intra-node copy per chunk for far fewer window-pane lock
//! acquisitions and wire ops, so it wins when member threads actually
//! run concurrently, while on a single-CPU host the two legs time
//! within scheduler noise of parity and the deterministic
//! `put_op_reduction` / `copy_bytes_eliminated` columns carry the
//! signal.

use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use tapioca::aggregation::{run_write_pipeline, IoStats};
use tapioca::placement::{elect_aggregator, elect_aggregator_fast, PlacementStrategy};
use tapioca::prelude::*;
use tapioca::schedule::{compute_schedule, ScheduleParams};
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_netsim::{RateAlgo, Recompute, Simulator};
use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
use tapioca_topology::{mira_profile, theta_profile, MachineProfile, TopologyProvider};

/// SplitMix64 — the workspace has no external RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Median wall time of `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn strategy_name(s: PlacementStrategy) -> &'static str {
    match s {
        PlacementStrategy::TopologyAware => "topology_aware",
        PlacementStrategy::RankOrder => "rank_order",
        PlacementStrategy::ShortestPathToIo => "shortest_path_to_io",
        PlacementStrategy::WorstCase => "worst_case",
        PlacementStrategy::Random { .. } => "random",
    }
}

/// An irregular, rank-sorted membership: clustered node runs plus
/// scattered stragglers — the shape real partitions take.
fn irregular_members(rng: &mut Rng, num_ranks: usize, target: usize) -> Vec<usize> {
    let mut set = std::collections::BTreeSet::new();
    while set.len() < target {
        if rng.below(3) > 0 {
            let start = rng.below(num_ranks as u64) as usize;
            let run = 1 + rng.below(24) as usize;
            for r in start..(start + run).min(num_ranks) {
                set.insert(r);
                if set.len() >= target {
                    break;
                }
            }
        } else {
            set.insert(rng.below(num_ranks as u64) as usize);
        }
    }
    set.into_iter().collect()
}

fn election_suite(smoke: bool, json: &mut String) {
    let machines: Vec<(&str, MachineProfile)> =
        vec![("mira", mira_profile(512, 16)), ("theta", theta_profile(512, 16))];
    let sizes: &[usize] = if smoke { &[64, 256] } else { &[256, 1024, 4096] };
    let strategies = [
        PlacementStrategy::TopologyAware,
        PlacementStrategy::RankOrder,
        PlacementStrategy::ShortestPathToIo,
        PlacementStrategy::WorstCase,
        PlacementStrategy::Random { seed: 0xfeed },
    ];

    let mut first = true;
    for (name, profile) in &machines {
        let topo = &profile.machine;
        for &members_n in sizes {
            let mut rng = Rng(0xe1ec_7104 ^ members_n as u64);
            let members = irregular_members(&mut rng, topo.num_ranks(), members_n);
            let weights: Vec<u64> =
                members.iter().map(|_| rng.below(64 * 1024 * 1024)).collect();
            let io = topo.io_nodes_for(&members).first().copied().unwrap_or(0);

            for strategy in strategies {
                // The oracle is O(P^2) route walks; keep large shapes to
                // a single timed run so the full sweep stays tractable.
                let naive_reps = if members_n >= 2048 { 1 } else { 5 };
                let mut naive_pick = 0usize;
                let naive_ns = median_ns(naive_reps, || {
                    naive_pick = black_box(elect_aggregator(
                        topo,
                        black_box(&members),
                        &weights,
                        io,
                        3,
                        strategy,
                    ));
                });
                let mut fast_pick = 0usize;
                let fast_ns = median_ns(naive_reps.max(5), || {
                    fast_pick = black_box(elect_aggregator_fast(
                        topo,
                        black_box(&members),
                        &weights,
                        io,
                        3,
                        strategy,
                    ));
                });
                let speedup = naive_ns as f64 / (fast_ns as f64).max(1.0);
                eprintln!(
                    "election {name} {strat} members={members_n}: naive {naive_ns} ns, \
                     fast {fast_ns} ns ({speedup:.1}x, same_winner={})",
                    naive_pick == fast_pick,
                    strat = strategy_name(strategy),
                );
                if !first {
                    json.push(',');
                }
                first = false;
                let _ = write!(
                    json,
                    "\n    {{\"machine\": \"{name}\", \"strategy\": \"{}\", \
                     \"members\": {members_n}, \"ranks\": {}, \"ranks_per_node\": {}, \
                     \"reps\": {naive_reps}, \"naive_ns\": {naive_ns}, \
                     \"fast_ns\": {fast_ns}, \"speedup\": {speedup:.3}, \
                     \"same_winner\": {}}}",
                    strategy_name(strategy),
                    topo.num_ranks(),
                    topo.ranks_per_node(),
                    naive_pick == fast_pick,
                );
            }
        }
    }
}

/// The two rate-computation regimes the sweep covers:
///
/// * `FanIn` — every flow crosses exactly one link, flows spread over
///   many links (the wide independent-bottleneck shape of per-round
///   aggregation traffic): water-filling runs one freeze batch per
///   distinct bottleneck, so the scan degenerates to O(L²) while the
///   heap stays O(L log L);
/// * `Mesh` — random 1–4 link routes, so each freeze batch perturbs a
///   large fraction of the touched links (the scan's best case).
#[derive(Clone, Copy, PartialEq)]
enum Workload {
    FanIn,
    Mesh,
}

/// Build one workload: staggered starts, a sprinkling of zero-byte
/// fences, link capacities and routes from a seeded generator.
fn build_netsim(s: &mut Simulator, links: usize, flows: usize, kind: Workload) {
    let mut rng = Rng(0x5eed_ca5e ^ (links * 31 + flows) as u64);
    for _ in 0..links {
        s.add_virtual_link(1.0 + rng.below(64) as f64);
    }
    for i in 0..flows {
        let len = match kind {
            Workload::FanIn => 1,
            Workload::Mesh => 1 + rng.below(4) as usize,
        };
        let route: Vec<usize> = (0..len).map(|_| rng.below(links as u64) as usize).collect();
        let bytes =
            if i % 17 == 0 { 0.0 } else { (1 + rng.below(5000)) as f64 / 7.0 };
        let start = rng.below(30) as f64 / 10.0;
        s.submit(start, route, bytes);
    }
}

/// Finish-time bit patterns — the equivalence check reused from the
/// engine's test suite.
fn finishes(algo: RateAlgo, links: usize, flows: usize, kind: Workload) -> Vec<u64> {
    let mut s = Simulator::with_capacities(Vec::new());
    s.set_rate_algo(algo);
    build_netsim(&mut s, links, flows, kind);
    s.run_to_idle();
    (0..s.num_flows()).map(|f| s.finish_time(f).map(f64::to_bits).unwrap_or(0)).collect()
}

fn netsim_suite(smoke: bool, json: &mut String) {
    let shapes: &[(usize, usize)] =
        if smoke { &[(16, 64), (64, 256)] } else { &[(64, 512), (256, 2048), (1024, 8192)] };
    let mut first = true;
    for &(links, flows) in shapes {
        for kind in [Workload::FanIn, Workload::Mesh] {
            let kind_name = match kind {
                Workload::FanIn => "fan_in",
                Workload::Mesh => "mesh",
            };
            let reps = if flows >= 4096 { 3 } else { 7 };
            // median_ns times the whole closure (the event loop consumes
            // the simulator), so construction is timed separately and
            // subtracted.
            let time_algo = |algo: RateAlgo| {
                median_ns(reps, || {
                    let mut s = Simulator::with_capacities(Vec::new());
                    s.set_rate_algo(algo);
                    build_netsim(&mut s, links, flows, kind);
                    black_box(s.run_to_idle());
                })
            };
            let scan_total = time_algo(RateAlgo::Scan);
            let heap_total = time_algo(RateAlgo::Heap);
            let auto_total = time_algo(RateAlgo::Auto);
            let build_only = median_ns(reps, || {
                let mut s = Simulator::with_capacities(Vec::new());
                build_netsim(&mut s, links, flows, kind);
                black_box(&s);
            });
            let scan_ns = scan_total.saturating_sub(build_only).max(1);
            let heap_ns = heap_total.saturating_sub(build_only).max(1);
            let auto_ns = auto_total.saturating_sub(build_only).max(1);
            let reference = finishes(RateAlgo::Scan, links, flows, kind);
            let identical = finishes(RateAlgo::Heap, links, flows, kind) == reference
                && finishes(RateAlgo::Auto, links, flows, kind) == reference;
            let speedup = scan_ns as f64 / heap_ns as f64;
            let auto_speedup = scan_ns as f64 / auto_ns as f64;
            eprintln!(
                "netsim {kind_name} links={links} flows={flows}: scan {scan_ns} ns, \
                 heap {heap_ns} ns ({speedup:.1}x), auto {auto_ns} ns \
                 ({auto_speedup:.1}x, identical={identical})"
            );
            if !first {
                json.push(',');
            }
            first = false;
            let _ = write!(
                json,
                "\n    {{\"workload\": \"{kind_name}\", \"links\": {links}, \
                 \"flows\": {flows}, \"reps\": {reps}, \
                 \"scan_ns\": {scan_ns}, \"heap_ns\": {heap_ns}, \
                 \"auto_ns\": {auto_ns}, \"speedup\": {speedup:.3}, \
                 \"auto_speedup\": {auto_speedup:.3}, \"identical\": {identical}}}"
            );
        }
    }
}

/// Multi-partition fence-ordered rounds — the flow shape `sim_exec`
/// submits for TAPIOCA's Algorithm-3 schedule. Each partition's ranks
/// feed an aggregator over partition-private links, round `r` gated on
/// round `r-1`; cross-partition interference is either zero (Mira
/// subfiling: every Pset writes its own file through its own bridge) or
/// confined to a few shared gateway links (Theta: Aries groups sharing
/// LNET routers). This is where component sharding pays — an event in
/// one partition dirties only that partition's component.
#[derive(Clone, Copy, PartialEq)]
enum RoundWorkload {
    /// Fully link-disjoint partitions (mira/ior subfiling shape).
    Disjoint,
    /// Partitions share a small pool of gateway links (theta/hacc shape).
    SharedGateways,
}

/// Shape of one incremental-suite case.
struct RoundShape {
    parts: usize,
    links_per_part: usize,
    shared: usize,
    rounds: usize,
    flows_per_round: usize,
}

impl RoundShape {
    fn links(&self) -> usize {
        self.parts * self.links_per_part + self.shared
    }

    fn flows(&self) -> usize {
        self.parts * self.rounds * self.flows_per_round
    }
}

/// Build one multi-partition round workload.
fn build_rounds(s: &mut Simulator, shape: &RoundShape, kind: RoundWorkload) {
    let mut rng = Rng(0x0a99_0000 ^ (shape.links() * 131 + shape.flows()) as u64);
    for _ in 0..shape.links() {
        s.add_virtual_link(1.0 + rng.below(64) as f64);
    }
    let gateway_base = shape.parts * shape.links_per_part;
    for p in 0..shape.parts {
        let base = p * shape.links_per_part;
        let mut prev_round: Vec<usize> = Vec::new();
        for _ in 0..shape.rounds {
            let mut this_round = Vec::with_capacity(shape.flows_per_round);
            for _ in 0..shape.flows_per_round {
                let len = 1 + rng.below(3) as usize;
                let mut route = Vec::with_capacity(len + 1);
                while route.len() < len {
                    let l = base + rng.below(shape.links_per_part as u64) as usize;
                    if !route.contains(&l) {
                        route.push(l);
                    }
                }
                if kind == RoundWorkload::SharedGateways && rng.below(4) == 0 {
                    route.push(gateway_base + rng.below(shape.shared as u64) as usize);
                }
                let bytes = (1 + rng.below(5000)) as f64 / 7.0;
                let start = rng.below(10) as f64 / 10.0;
                this_round.push(s.submit_with_deps(start, 0.0, &route, bytes, &prev_round));
            }
            prev_round = this_round;
        }
    }
}

/// Finish-time bit patterns of one incremental-suite configuration.
fn round_finishes(
    algo: RateAlgo,
    mode: Recompute,
    shape: &RoundShape,
    kind: RoundWorkload,
) -> Vec<u64> {
    let mut s = Simulator::with_capacities(Vec::new());
    s.set_rate_algo(algo);
    s.set_recompute(mode);
    build_rounds(&mut s, shape, kind);
    s.run_to_idle();
    (0..s.num_flows()).map(|f| s.finish_time(f).map(f64::to_bits).unwrap_or(0)).collect()
}

fn netsim_incremental_suite(smoke: bool, json: &mut String) {
    let shapes: &[RoundShape] = if smoke {
        &[
            RoundShape { parts: 4, links_per_part: 8, shared: 4, rounds: 4, flows_per_round: 4 },
            RoundShape { parts: 8, links_per_part: 8, shared: 8, rounds: 4, flows_per_round: 4 },
        ]
    } else {
        &[
            RoundShape { parts: 8, links_per_part: 8, shared: 8, rounds: 8, flows_per_round: 8 },
            RoundShape { parts: 16, links_per_part: 16, shared: 8, rounds: 8, flows_per_round: 8 },
            RoundShape { parts: 32, links_per_part: 32, shared: 8, rounds: 8, flows_per_round: 8 },
        ]
    };
    let mut first = true;
    for shape in shapes {
        for kind in [RoundWorkload::Disjoint, RoundWorkload::SharedGateways] {
            let kind_name = match kind {
                RoundWorkload::Disjoint => "disjoint_rounds",
                RoundWorkload::SharedGateways => "shared_gateways",
            };
            // Disjoint cases carry no gateway links at all.
            let shared = if kind == RoundWorkload::Disjoint { 0 } else { shape.shared };
            let shape = RoundShape { shared, ..*shape };
            let reps = if shape.flows() >= 2048 { 3 } else { 7 };
            let time_cfg = |algo: RateAlgo, mode: Recompute| {
                median_ns(reps, || {
                    let mut s = Simulator::with_capacities(Vec::new());
                    s.set_rate_algo(algo);
                    s.set_recompute(mode);
                    build_rounds(&mut s, &shape, kind);
                    black_box(s.run_to_idle());
                })
            };
            let scan_total = time_cfg(RateAlgo::Scan, Recompute::Full);
            let full_total = time_cfg(RateAlgo::Auto, Recompute::Full);
            let incr_total = time_cfg(RateAlgo::Auto, Recompute::Incremental);
            let build_only = median_ns(reps, || {
                let mut s = Simulator::with_capacities(Vec::new());
                build_rounds(&mut s, &shape, kind);
                black_box(&s);
            });
            let scan_ns = scan_total.saturating_sub(build_only).max(1);
            let full_ns = full_total.saturating_sub(build_only).max(1);
            let incr_ns = incr_total.saturating_sub(build_only).max(1);
            let reference = round_finishes(RateAlgo::Scan, Recompute::Full, &shape, kind);
            let identical =
                round_finishes(RateAlgo::Auto, Recompute::Full, &shape, kind) == reference
                    && round_finishes(RateAlgo::Auto, Recompute::Incremental, &shape, kind)
                        == reference;
            let speedup = full_ns as f64 / incr_ns as f64;
            let links = shape.links();
            let flows = shape.flows();
            eprintln!(
                "netsim_incremental {kind_name} links={links} flows={flows} \
                 parts={}: scan {scan_ns} ns, full {full_ns} ns, incr {incr_ns} ns \
                 ({speedup:.1}x, identical={identical})",
                shape.parts,
            );
            if !first {
                json.push(',');
            }
            first = false;
            let _ = write!(
                json,
                "\n    {{\"workload\": \"{kind_name}\", \"links\": {links}, \
                 \"flows\": {flows}, \"parts\": {}, \"reps\": {reps}, \
                 \"scan_ns\": {scan_ns}, \"full_ns\": {full_ns}, \
                 \"incr_ns\": {incr_ns}, \"speedup\": {speedup:.3}, \
                 \"identical\": {identical}}}",
                shape.parts,
            );
        }
    }
}

/// One streaming-suite case: a machine topology, a declaration layout,
/// and a timestep count.
struct StreamCase {
    machine: &'static str,
    workload: &'static str,
    profile: MachineProfile,
    decls: Vec<Vec<WriteDecl>>,
    cfg: TapiocaConfig,
    epochs: u64,
}

/// Contiguous per-rank blocks — the IOR shape.
fn ior_decls(ranks: usize, per: u64) -> Vec<Vec<WriteDecl>> {
    (0..ranks as u64).map(|r| vec![WriteDecl { offset: r * per, len: per }]).collect()
}

/// Field-major struct-of-arrays — the HACC shape, with variable extents
/// aligned to the pipeline buffer so in-order writes stream copy-free.
fn soa_decls(ranks: usize, vars: u64, var_bytes: u64) -> Vec<Vec<WriteDecl>> {
    (0..ranks as u64)
        .map(|r| {
            (0..vars)
                .map(|v| WriteDecl {
                    offset: v * ranks as u64 * var_bytes + r * var_bytes,
                    len: var_bytes,
                })
                .collect()
        })
        .collect()
}

/// Payload of declared write `var` of `rank` at timestep `epoch`.
fn stream_payload(rank: usize, var: usize, len: u64, epoch: u64) -> Vec<u8> {
    (0..len).map(|i| (rank as u64 * 131 + var as u64 * 17 + i * 3 + epoch * 59) as u8).collect()
}

/// One streamed run: a single reused [`Session`] over `epochs`
/// timesteps. Returns the total staging-copy bytes across all ranks.
fn run_streamed(case: &StreamCase, path: &std::path::Path) -> u64 {
    let machine = Arc::new(case.profile.machine.clone());
    let decls = case.decls.clone();
    let cfg = case.cfg.clone();
    let epochs = case.epochs;
    let path = path.to_path_buf();
    let copies = Runtime::run(decls.len(), move |comm| {
        let file = SharedFile::open_shared(&comm, &path);
        let r = comm.rank();
        let mine = decls[r].clone();
        let mut io = Session::builder(&comm, file)
            .declarations(mine.clone())
            .config(cfg.clone())
            .topology(machine.clone())
            .build()
            .expect("session build failed");
        let mut copied = 0u64;
        for epoch in 0..epochs {
            for (v, d) in mine.iter().enumerate() {
                io.write(d.offset, &stream_payload(r, v, d.len, epoch)).expect("write failed");
            }
            copied += io.stats().expect("epoch completed").staging_copy_bytes;
        }
        io.finalize();
        copied
    });
    copies.iter().sum()
}

/// One staged-replay run: the pre-streaming per-epoch behaviour —
/// allgather the declarations, recompute the schedule, copy the payload
/// into staging buffers, run the batch pipeline. Returns the total
/// staging-copy bytes across all ranks.
fn run_staged(case: &StreamCase, path: &std::path::Path) -> u64 {
    let machine = Arc::new(case.profile.machine.clone());
    let decls = case.decls.clone();
    let cfg = case.cfg.clone();
    let epochs = case.epochs;
    let params = ScheduleParams {
        num_aggregators: cfg.num_aggregators,
        buffer_size: cfg.buffer_size,
        align_to_buffer: true,
    };
    let path = path.to_path_buf();
    let copies = Runtime::run(decls.len(), move |comm| {
        let file = SharedFile::open_shared(&comm, &path);
        let r = comm.rank();
        let mine = decls[r].clone();
        let mut copied = 0u64;
        for epoch in 0..epochs {
            // what every init-per-epoch caller used to pay: decl
            // exchange + schedule recomputation + payload staging
            let mut header = Vec::with_capacity(mine.len() * 16);
            for d in &mine {
                header.extend_from_slice(&d.offset.to_le_bytes());
                header.extend_from_slice(&d.len.to_le_bytes());
            }
            let all = comm.allgather_bytes(header);
            let all_decls: Vec<Vec<WriteDecl>> = all
                .iter()
                .map(|buf| {
                    buf.chunks_exact(16)
                        .map(|c| WriteDecl {
                            offset: u64::from_le_bytes(c[..8].try_into().expect("8-byte field")),
                            len: u64::from_le_bytes(c[8..].try_into().expect("8-byte field")),
                        })
                        .collect()
                })
                .collect();
            let schedule = compute_schedule(&all_decls, params);
            let staged: Vec<Vec<u8>> = mine
                .iter()
                .enumerate()
                .map(|(v, d)| stream_payload(r, v, d.len, epoch))
                .collect();
            copied += staged.iter().map(|b| b.len() as u64).sum::<u64>();
            let seq = comm.next_user_seq();
            run_write_pipeline(&comm, &schedule, &staged, &file, &cfg, machine.as_ref(), seq * 2)
                .expect("staged pipeline failed");
        }
        copied
    });
    copies.iter().sum()
}

fn streaming_suite(smoke: bool, json: &mut String) {
    let (ranks, buffer, ior_per, soa_var, epochs) = if smoke {
        (8usize, 32 * 1024u64, 256 * 1024u64, 32 * 1024u64, 4u64)
    } else {
        (16, 256 * 1024, 1 << 20, 128 * 1024, 6)
    };
    let cfg = |aggr: usize| TapiocaConfig {
        num_aggregators: aggr,
        buffer_size: buffer,
        ..Default::default()
    };
    let cases = vec![
        StreamCase {
            machine: "mira",
            workload: "ior",
            profile: mira_profile(128, 4),
            decls: ior_decls(ranks, ior_per),
            cfg: cfg(4),
            epochs,
        },
        StreamCase {
            machine: "mira",
            workload: "hacc",
            profile: mira_profile(128, 4),
            decls: soa_decls(ranks, 9, soa_var),
            cfg: cfg(4),
            epochs,
        },
        StreamCase {
            machine: "theta",
            workload: "ior",
            profile: theta_profile(8, 2),
            decls: ior_decls(ranks, ior_per),
            cfg: cfg(4),
            epochs,
        },
        StreamCase {
            machine: "theta",
            workload: "hacc",
            profile: theta_profile(8, 2),
            decls: soa_decls(ranks, 9, soa_var),
            cfg: cfg(4),
            epochs,
        },
    ];

    let dir = std::env::temp_dir().join("tapioca-perfbench-streaming");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let mut first = true;
    for case in &cases {
        let name = format!("{}-{}", case.machine, case.workload);
        let p_str = dir.join(format!("{name}-str-{}", std::process::id()));
        let p_stg = dir.join(format!("{name}-stg-{}", std::process::id()));

        // correctness pass (untimed): both legs must write the same file
        let streamed_copy_bytes = run_streamed(case, &p_str);
        let staged_copy_bytes = run_staged(case, &p_stg);
        let identical = std::fs::read(&p_str).expect("read streamed file")
            == std::fs::read(&p_stg).expect("read staged file");

        let reps = 3;
        let streamed_ns = median_ns(reps, || {
            black_box(run_streamed(case, &p_str));
        });
        let staged_ns = median_ns(reps, || {
            black_box(run_staged(case, &p_stg));
        });
        std::fs::remove_file(&p_str).ok();
        std::fs::remove_file(&p_stg).ok();

        let bytes_per_rank: u64 = case.decls[0].iter().map(|d| d.len).sum();
        let speedup = staged_ns as f64 / (streamed_ns as f64).max(1.0);
        eprintln!(
            "streaming {name} ranks={ranks} bytes/rank={bytes_per_rank} epochs={}: \
             staged {staged_ns} ns ({staged_copy_bytes} copied), \
             streamed {streamed_ns} ns ({streamed_copy_bytes} copied) \
             ({speedup:.2}x, identical={identical})",
            case.epochs,
        );
        if !first {
            json.push(',');
        }
        first = false;
        let _ = write!(
            json,
            "\n    {{\"machine\": \"{}\", \"workload\": \"{}\", \"ranks\": {ranks}, \
             \"bytes_per_rank\": {bytes_per_rank}, \"epochs\": {}, \"reps\": {reps}, \
             \"staged_ns\": {staged_ns}, \"streamed_ns\": {streamed_ns}, \
             \"speedup\": {speedup:.3}, \"staged_copy_bytes\": {staged_copy_bytes}, \
             \"streamed_copy_bytes\": {streamed_copy_bytes}, \"identical\": {identical}}}",
            case.machine, case.workload, case.epochs,
        );
    }
}

/// One dataplane-suite case: a machine and a declaration layout shaped
/// so each round window spans several co-located ranks (the
/// precondition for intra-node put coalescing), plus the schedule knobs
/// that keep it that way.
struct DataplaneCase {
    machine: &'static str,
    workload: &'static str,
    profile: MachineProfile,
    decls: Vec<Vec<WriteDecl>>,
    aggregators: usize,
    buffer: u64,
    epochs: u64,
}

impl DataplaneCase {
    fn cfg(&self, coalescing: bool) -> TapiocaConfig {
        TapiocaConfig {
            num_aggregators: self.aggregators,
            buffer_size: self.buffer,
            coalescing,
            ..Default::default()
        }
    }

    /// The same workload as a single-group collective spec for the
    /// simulator executor.
    fn spec(&self) -> CollectiveSpec {
        CollectiveSpec {
            groups: vec![GroupSpec {
                file: 0,
                ranks: (0..self.decls.len()).collect(),
                decls: self.decls.clone(),
            }],
            mode: AccessMode::Write,
        }
    }

    fn storage(&self) -> StorageConfig {
        match self.machine {
            "mira" => StorageConfig::Gpfs(GpfsTunables::mira_optimized()),
            _ => StorageConfig::Lustre(LustreTunables::theta_optimized()),
        }
    }
}

/// One thread-mode run: a single reused [`Session`] streaming `epochs`
/// timesteps of identical payloads, so window/gather allocations are
/// paid once and the measurement is the steady-state put + flush path.
/// Returns the stats merged across all ranks and epochs.
fn run_dataplane(case: &DataplaneCase, coalescing: bool, path: &std::path::Path) -> IoStats {
    let machine = Arc::new(case.profile.machine.clone());
    let cfg = case.cfg(coalescing);
    let decls = case.decls.clone();
    let epochs = case.epochs;
    let path = path.to_path_buf();
    let stats = Runtime::run(decls.len(), move |comm| {
        let file = SharedFile::open_shared(&comm, &path);
        let r = comm.rank();
        let mine = decls[r].clone();
        let data: Vec<Vec<u8>> =
            mine.iter().enumerate().map(|(v, d)| stream_payload(r, v, d.len, 0)).collect();
        let mut io = Session::builder(&comm, file)
            .declarations(mine.clone())
            .config(cfg.clone())
            .topology(machine.clone())
            .build()
            .expect("session build failed");
        let mut total = IoStats::default();
        for _ in 0..epochs {
            for (v, d) in mine.iter().enumerate() {
                io.write(d.offset, &data[v]).expect("write failed");
            }
            total.merge(io.stats().expect("epoch completed"));
        }
        io.finalize();
        total
    });
    let mut t = IoStats::default();
    for s in &stats {
        t.merge(s);
    }
    t
}

fn dataplane_suite(smoke: bool, json: &mut String) {
    let (ranks, epochs) = if smoke { (32usize, 2u64) } else { (64, 4) };
    // 16 ranks per node on Mira (the put-op-reduction shape the paper's
    // machines actually run), 8 on Theta; chunks small enough that
    // per-operation overhead — not the memcpy — dominates the
    // aggregation phase, which is the regime coalescing targets.
    // One aggregator per 16 contiguous ranks keeps every partition
    // entirely within one or two nodes.
    let cases = vec![
        DataplaneCase {
            machine: "mira",
            workload: "ior",
            profile: mira_profile(128, 16),
            decls: ior_decls(ranks, 8 * 1024),
            aggregators: ranks / 16,
            buffer: 64 * 1024,
            epochs,
        },
        DataplaneCase {
            machine: "mira",
            workload: "hacc",
            profile: mira_profile(128, 16),
            decls: soa_decls(ranks, 9, 2 * 1024),
            aggregators: ranks / 16,
            buffer: 32 * 1024,
            epochs,
        },
        DataplaneCase {
            machine: "theta",
            workload: "ior",
            profile: theta_profile(8, 8),
            decls: ior_decls(ranks, 8 * 1024),
            aggregators: ranks / 16,
            buffer: 64 * 1024,
            epochs,
        },
        DataplaneCase {
            machine: "theta",
            workload: "hacc",
            profile: theta_profile(8, 8),
            decls: soa_decls(ranks, 9, 2 * 1024),
            aggregators: ranks / 16,
            buffer: 32 * 1024,
            epochs,
        },
    ];

    let dir = std::env::temp_dir().join("tapioca-perfbench-dataplane");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let mut first = true;
    for case in &cases {
        let name = format!("{}-{}", case.machine, case.workload);
        let p_raw = dir.join(format!("{name}-raw-{}", std::process::id()));
        let p_co = dir.join(format!("{name}-co-{}", std::process::id()));

        // correctness pass (untimed): identical bytes, wire accounting
        let raw = run_dataplane(case, false, &p_raw);
        let co = run_dataplane(case, true, &p_co);
        let identical = std::fs::read(&p_raw).expect("read raw file")
            == std::fs::read(&p_co).expect("read coalesced file");
        assert_eq!(raw.put_bytes, co.put_bytes, "wire byte totals must agree");
        assert_eq!(
            co.puts + co.coalesced_chunks - co.coalesced_puts,
            raw.puts,
            "merged-put arithmetic must hold"
        );

        let reps = if smoke { 3 } else { 5 };
        let raw_ns = median_ns(reps, || {
            black_box(run_dataplane(case, false, &p_raw));
        });
        let coalesced_ns = median_ns(reps, || {
            black_box(run_dataplane(case, true, &p_co));
        });
        std::fs::remove_file(&p_raw).ok();
        std::fs::remove_file(&p_co).ok();

        // Simulator executor: transfers are already batched per
        // (round, source node), so coalescing must be a no-op there.
        let storage = case.storage();
        let spec = case.spec();
        let sim_raw = run_tapioca_sim(&case.profile, &storage, &spec, &case.cfg(false))
            .expect("sim (raw) failed");
        let sim_co = run_tapioca_sim(&case.profile, &storage, &spec, &case.cfg(true))
            .expect("sim (coalesced) failed");
        let sim_speedup = sim_raw.elapsed / sim_co.elapsed.max(f64::MIN_POSITIVE);

        let put_op_reduction = raw.puts as f64 / (co.puts as f64).max(1.0);
        let speedup = raw_ns as f64 / (coalesced_ns as f64).max(1.0);
        let bytes_per_rank: u64 = case.decls[0].iter().map(|d| d.len).sum();
        let rpn = case.profile.machine.ranks_per_node();
        eprintln!(
            "dataplane {name} ranks={ranks} rpn={rpn} bytes/rank={bytes_per_rank}: \
             puts {} -> {} ({put_op_reduction:.1}x fewer ops, {} merged), \
             raw {raw_ns} ns, coalesced {coalesced_ns} ns ({speedup:.2}x, \
             sim {sim_speedup:.3}x, identical={identical})",
            raw.puts, co.puts, co.coalesced_puts,
        );
        if !first {
            json.push(',');
        }
        first = false;
        let _ = write!(
            json,
            "\n    {{\"machine\": \"{}\", \"workload\": \"{}\", \"ranks\": {ranks}, \
             \"ranks_per_node\": {rpn}, \"bytes_per_rank\": {bytes_per_rank}, \
             \"epochs\": {}, \"reps\": {reps}, \"raw_puts\": {}, \
             \"coalesced_puts\": {}, \"merged_puts\": {}, \"coalesced_chunks\": {}, \
             \"put_op_reduction\": {put_op_reduction:.3}, \
             \"copy_bytes_eliminated\": {}, \"raw_ns\": {raw_ns}, \
             \"coalesced_ns\": {coalesced_ns}, \"speedup\": {speedup:.3}, \
             \"sim_raw_elapsed_s\": {:.9}, \"sim_coalesced_elapsed_s\": {:.9}, \
             \"sim_speedup\": {sim_speedup:.3}, \"identical\": {identical}}}",
            case.machine,
            case.workload,
            case.epochs,
            raw.puts,
            co.puts,
            co.coalesced_puts,
            co.coalesced_chunks,
            co.flush_bytes,
            sim_raw.elapsed,
            sim_co.elapsed,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json").to_string()
        });

    let mut election = String::new();
    let mut netsim = String::new();
    let mut incremental = String::new();
    let mut streaming = String::new();
    election_suite(smoke, &mut election);
    netsim_suite(smoke, &mut netsim);
    netsim_incremental_suite(smoke, &mut incremental);
    streaming_suite(smoke, &mut streaming);
    let mut dataplane = String::new();
    dataplane_suite(smoke, &mut dataplane);

    let json = format!(
        "{{\n  \"schema\": \"tapioca-perfbench/v4\",\n  \"smoke\": {smoke},\n  \
         \"suites\": {{\n   \"election\": [{election}\n   ],\n   \
         \"netsim\": [{netsim}\n   ],\n   \
         \"netsim_incremental\": [{incremental}\n   ],\n   \
         \"streaming\": [{streaming}\n   ],\n   \
         \"dataplane\": [{dataplane}\n   ]\n  }}\n}}\n"
    );
    std::fs::write(&out, json).expect("write BENCH_perf.json");
    eprintln!("wrote {out}");
}
