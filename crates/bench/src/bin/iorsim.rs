//! `iorsim` — an IOR-like command-line driver for the simulation
//! backend: pick a machine, a workload and a method, get a bandwidth
//! report. The "run your own experiment" tool of this repository.
//!
//! ```text
//! Usage: iorsim [options]
//!   --machine mira|theta|cluster   platform model      [theta]
//!   --nodes N                compute nodes             [512]
//!   --rpn N                  ranks per node            [16]
//!   --size BYTES             data per rank             [1000000]
//!   --layout contig|aos|soa  workload layout           [contig]
//!   --method tapioca|mpiio   I/O library               [tapioca]
//!   --mode write|read        direction                 [write]
//!   --aggregators N          aggregators (per Pset on Mira) [48 | 16]
//!   --buffer BYTES           aggregation buffer        [8388608]
//!   --stripes N              Lustre stripe count       [48]
//!   --stripe-size BYTES      Lustre stripe size        [8388608]
//!   --placement topo|rank|io|random|worst   election   [topo]
//!   --no-pipeline            disable double buffering
//!   --autotune               cost-model-guided config search (tapioca only);
//!                            overrides --aggregators/--buffer/--placement/--no-pipeline
//!   --faults PLAN            fault plan, e.g. seed=7,crash=0@1,flaky=0.2
//!   --trace-out PATH         write the event trace as JSONL (tapioca only)
//! ```

use tapioca::config::TapiocaConfig;
use tapioca::placement::PlacementStrategy;
use tapioca::sim_exec::StorageConfig;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_bench::*;
use tapioca_pfs::{AccessMode, GpfsTunables, LockMode, LustreTunables};
use tapioca_topology::{cluster_profile, mira_profile, theta_profile, MIB};
use tapioca_workloads::hacc::{HaccIo, Layout};

#[derive(Debug)]
struct Args {
    machine: String,
    nodes: usize,
    rpn: usize,
    size: u64,
    layout: String,
    method: String,
    mode: String,
    aggregators: Option<usize>,
    buffer: u64,
    stripes: usize,
    stripe_size: u64,
    placement: String,
    pipeline: bool,
    autotune: bool,
    faults: Option<tapioca::FaultPlan>,
    trace_out: Option<std::path::PathBuf>,
}

fn parse() -> Args {
    let mut a = Args {
        machine: "theta".into(),
        nodes: 512,
        rpn: 16,
        size: 1_000_000,
        layout: "contig".into(),
        method: "tapioca".into(),
        mode: "write".into(),
        aggregators: None,
        buffer: 8 * MIB,
        stripes: 48,
        stripe_size: 8 * MIB,
        placement: "topo".into(),
        pipeline: true,
        autotune: false,
        faults: None,
        trace_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let next = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).unwrap_or_else(|| panic!("missing value for {}", argv[*i - 1])).clone()
        };
        match argv[i].as_str() {
            "--machine" => a.machine = next(&mut i),
            "--nodes" => a.nodes = next(&mut i).parse().expect("nodes"),
            "--rpn" => a.rpn = next(&mut i).parse().expect("rpn"),
            "--size" => a.size = next(&mut i).parse().expect("size"),
            "--layout" => a.layout = next(&mut i),
            "--method" => a.method = next(&mut i),
            "--mode" => a.mode = next(&mut i),
            "--aggregators" => a.aggregators = Some(next(&mut i).parse().expect("aggregators")),
            "--buffer" => a.buffer = next(&mut i).parse().expect("buffer"),
            "--stripes" => a.stripes = next(&mut i).parse().expect("stripes"),
            "--stripe-size" => a.stripe_size = next(&mut i).parse().expect("stripe-size"),
            "--placement" => a.placement = next(&mut i),
            "--no-pipeline" => a.pipeline = false,
            "--autotune" => a.autotune = true,
            "--faults" => {
                let spec = next(&mut i);
                a.faults =
                    Some(tapioca::FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("{e}")));
            }
            "--trace-out" => a.trace_out = Some(next(&mut i).into()),
            "--help" | "-h" => {
                println!("see the module docs at the top of iorsim.rs");
                std::process::exit(0);
            }
            other => panic!("unknown option {other}"),
        }
        i += 1;
    }
    a
}

fn main() {
    let a = parse();
    let mode = match a.mode.as_str() {
        "write" => AccessMode::Write,
        "read" => AccessMode::Read,
        m => panic!("unknown mode {m}"),
    };
    let strategy = match a.placement.as_str() {
        "topo" => PlacementStrategy::TopologyAware,
        "rank" => PlacementStrategy::RankOrder,
        "io" => PlacementStrategy::ShortestPathToIo,
        "random" => PlacementStrategy::Random { seed: 1 },
        "worst" => PlacementStrategy::WorstCase,
        p => panic!("unknown placement {p}"),
    };

    let (profile, storage, default_aggr) = match a.machine.as_str() {
        "theta" => (
            theta_profile(a.nodes, a.rpn),
            StorageConfig::Lustre(LustreTunables {
                stripe_count: a.stripes,
                stripe_size: a.stripe_size,
                lock_mode: LockMode::Shared,
            }),
            48,
        ),
        "mira" => (
            mira_profile(a.nodes, a.rpn),
            StorageConfig::Gpfs(GpfsTunables::mira_optimized()),
            16,
        ),
        "cluster" => (
            cluster_profile(a.nodes, a.rpn),
            StorageConfig::Lustre(LustreTunables {
                stripe_count: a.stripes.min(32),
                stripe_size: a.stripe_size,
                lock_mode: LockMode::Shared,
            }),
            32,
        ),
        m => panic!("unknown machine {m}"),
    };
    let aggregators = a.aggregators.unwrap_or(default_aggr);

    let particles = a.size / 38;
    let spec = match (a.machine.as_str(), a.layout.as_str()) {
        ("mira", "contig") => ior_mira(a.nodes, a.rpn, a.size, mode),
        ("mira", "aos") => hacc_mira(a.nodes, a.rpn, particles, Layout::ArrayOfStructs),
        ("mira", "soa") => hacc_mira(a.nodes, a.rpn, particles, Layout::StructOfArrays),
        // Theta and the generic cluster both use one shared file
        (_, "contig") => ior_theta(a.nodes, a.rpn, a.size, mode),
        (_, "aos") => hacc_theta(a.nodes, a.rpn, particles, Layout::ArrayOfStructs),
        (_, "soa") => hacc_theta(a.nodes, a.rpn, particles, Layout::StructOfArrays),
        (_, l) => panic!("unknown layout {l}"),
    };

    let tracer = match (&a.trace_out, a.method.as_str()) {
        (Some(_), "tapioca") => {
            Some(tapioca_trace::Tracer::new(tapioca_topology::TopologyProvider::num_ranks(
                &profile.machine,
            )))
        }
        (Some(_), m) => panic!("--trace-out only supported with --method tapioca, not {m}"),
        (None, _) => None,
    };

    let mut tapioca_cfg = TapiocaConfig {
        num_aggregators: aggregators,
        buffer_size: a.buffer,
        pipelining: a.pipeline,
        strategy,
        tracer: tracer.clone(),
        faults: a.faults.clone(),
        ..Default::default()
    };
    if a.autotune {
        assert_eq!(a.method, "tapioca", "--autotune only supported with --method tapioca");
        let outcome = tapioca::autotune::autotune_from(&profile, &storage, &spec, &tapioca_cfg)
            .expect("autotune failed");
        println!(
            "autotune     : {} aggregators, {} MiB buffers, {:?}, pipeline {}, tier {} ({})",
            outcome.best.num_aggregators,
            outcome.best.buffer_size / MIB,
            outcome.best.strategy,
            outcome.best.pipelining,
            outcome.tier.name(),
            outcome.report,
        );
        tapioca_cfg = outcome.best;
    }

    let report = match a.method.as_str() {
        "tapioca" => measure_tapioca(&profile, &storage, &spec, &tapioca_cfg),
        "mpiio" => measure_mpiio(&profile, &storage, &spec, &MpiIoConfig {
            cb_aggregators: aggregators,
            cb_buffer_size: a.buffer,
        }),
        m => panic!("unknown method {m}"),
    };

    let gib = (1u64 << 30) as f64;
    println!("machine      : {}", profile.name);
    println!("ranks        : {} ({} nodes x {} ranks)", a.nodes * a.rpn, a.nodes, a.rpn);
    println!("workload     : {} {} of {} bytes/rank", a.layout, a.mode, a.size);
    let (shown_aggr, shown_buf, shown_pipe) = if a.method == "tapioca" {
        (tapioca_cfg.num_aggregators, tapioca_cfg.buffer_size, tapioca_cfg.pipelining)
    } else {
        (aggregators, a.buffer, a.pipeline)
    };
    println!("method       : {} ({shown_aggr} aggregators, {} MiB buffers, pipeline {shown_pipe})",
        a.method, shown_buf / MIB);
    if a.machine != "mira" {
        println!("lustre       : {} OSTs, {} MiB stripes", a.stripes, a.stripe_size / MIB);
    }
    println!("data moved   : {:.2} GiB", report.bytes / gib);
    println!("elapsed      : {:.3} s", report.elapsed);
    println!("bandwidth    : {:.2} GiB/s", report.bandwidth / gib);
    if a.faults.is_some() {
        println!("faults       : {} injected, {} retries, {} re-elections, {} degraded",
            report.faults_injected, report.retries, report.reelections, report.degraded);
    }

    if let (Some(path), Some(tracer)) = (&a.trace_out, &tracer) {
        let summary = dump_trace_jsonl(tracer, path).expect("write trace");
        println!("trace        : {} ({} puts, {} flushes, {} rounds, overlap {:.2})",
            path.display(), summary.puts, summary.flushes, summary.rounds,
            summary.overlap_fraction);
    }

    if let Some(hacc) = match a.layout.as_str() {
        "aos" | "soa" => Some(HaccIo {
            num_ranks: a.nodes * a.rpn,
            particles_per_rank: particles,
            layout: Layout::ArrayOfStructs,
        }),
        _ => None,
    } {
        println!("particles    : {} per rank ({} total)", particles,
            hacc.num_ranks as u64 * particles);
    }
}
