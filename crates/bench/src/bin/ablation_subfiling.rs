//! Ablation: subfiling on Mira. The paper notes "we used a recommended
//! subfiling technique on Mira (one file per Pset)" and that "subfiling
//! is an efficient technique to improve I/O performance on the BG/Q".
//! Quantify it: HACC-IO through TAPIOCA writing one file per Pset versus
//! a single shared file spanning every Pset.

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::{CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_bench::*;
use tapioca_pfs::GpfsTunables;
use tapioca_topology::{mira_profile, MIB};
use tapioca_workloads::hacc::{HaccIo, Layout};

fn main() {
    let nodes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let rpn = RANKS_PER_NODE;
    let profile = mira_profile(nodes, rpn);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let n_psets = nodes / NODES_PER_PSET;

    println!("# Ablation - subfiling (file per Pset) vs one shared file, {nodes} Mira nodes");
    println!("layout,particles_per_rank,subfiled_gib_s,shared_gib_s");
    let mut worst_gain = f64::INFINITY;
    for &pp in &[25_000u64, 100_000] {
        // subfiled: the standard harness spec (one group per Pset);
        // TAPIOCA gets 16 aggregators per Pset either way (shared-file
        // mode uses 16 * n_psets over the single span).
        let subfiled = hacc_mira(nodes, rpn, pp, Layout::ArrayOfStructs);
        let sub_cfg = TapiocaConfig {
            num_aggregators: 16,
            buffer_size: 16 * MIB,
            ..Default::default()
        };
        let a = measure_tapioca(&profile, &storage, &subfiled, &sub_cfg);

        let nranks = nodes * rpn;
        let w = HaccIo { num_ranks: nranks, particles_per_rank: pp, layout: Layout::ArrayOfStructs };
        let shared = CollectiveSpec {
            groups: vec![GroupSpec { file: 0, ranks: (0..nranks).collect(), decls: w.decls() }],
            mode: tapioca_pfs::AccessMode::Write,
        };
        let shared_cfg = TapiocaConfig {
            num_aggregators: 16 * n_psets,
            buffer_size: 16 * MIB,
            ..Default::default()
        };
        let b = measure_tapioca(&profile, &storage, &shared, &shared_cfg);

        println!(
            "AoS,{pp},{:.4},{:.4}",
            a.bandwidth_gib(),
            b.bandwidth_gib()
        );
        worst_gain = worst_gain.min(a.bandwidth / b.bandwidth);
        eprintln!("  [{pp} particles] subfiled {:.2} vs shared {:.2} GiB/s",
            a.bandwidth_gib(), b.bandwidth_gib());
    }

    shape(
        "subfiling-wins",
        worst_gain > 1.2,
        &format!("file-per-Pset is at least {worst_gain:.2}x the shared file (paper: recommended technique)"),
    );
}
