//! Shared harness: workload -> `CollectiveSpec` builders for both
//! machines, sweep runners, CSV output, and shape checking.

use tapioca::config::TapiocaConfig;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, SimReport, StorageConfig};
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_baseline::sim::run_mpiio_sim;
use tapioca_pfs::AccessMode;
use tapioca_topology::{MachineProfile, Rank};
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

/// Ranks per node used throughout the paper's evaluation.
pub const RANKS_PER_NODE: usize = 16;

/// Nodes per Pset on Mira (fixed by the BG/Q architecture).
pub const NODES_PER_PSET: usize = 128;

/// Build an IOR collective for Mira with subfiling (one file per Pset,
/// as the paper recommends and uses).
pub fn ior_mira(nodes: usize, rpn: usize, bytes_per_rank: u64, mode: AccessMode) -> CollectiveSpec {
    let ranks_per_pset = NODES_PER_PSET * rpn;
    let n_psets = nodes / NODES_PER_PSET;
    let spec = IorSpec { num_ranks: ranks_per_pset, bytes_per_rank };
    let groups = (0..n_psets)
        .map(|p| GroupSpec {
            file: p,
            ranks: (p * ranks_per_pset..(p + 1) * ranks_per_pset).collect(),
            decls: spec.decls(),
        })
        .collect();
    CollectiveSpec { groups, mode }
}

/// Build an IOR collective for Theta (single shared file).
pub fn ior_theta(nodes: usize, rpn: usize, bytes_per_rank: u64, mode: AccessMode) -> CollectiveSpec {
    let n = nodes * rpn;
    let spec = IorSpec { num_ranks: n, bytes_per_rank };
    CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..n).collect(), decls: spec.decls() }],
        mode,
    }
}

/// Build a HACC-IO collective for Mira with subfiling.
pub fn hacc_mira(nodes: usize, rpn: usize, particles_per_rank: u64, layout: Layout) -> CollectiveSpec {
    let ranks_per_pset = NODES_PER_PSET * rpn;
    let n_psets = nodes / NODES_PER_PSET;
    let w = HaccIo { num_ranks: ranks_per_pset, particles_per_rank, layout };
    let groups = (0..n_psets)
        .map(|p| GroupSpec {
            file: p,
            ranks: (p * ranks_per_pset..(p + 1) * ranks_per_pset).collect(),
            decls: w.decls(),
        })
        .collect();
    CollectiveSpec { groups, mode: AccessMode::Write }
}

/// Build a HACC-IO collective for Theta (single shared file).
pub fn hacc_theta(nodes: usize, rpn: usize, particles_per_rank: u64, layout: Layout) -> CollectiveSpec {
    let n = nodes * rpn;
    let w = HaccIo { num_ranks: n, particles_per_rank, layout };
    CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..n).collect(), decls: w.decls() }],
        mode: AccessMode::Write,
    }
}

/// All global ranks of a spec (for io-node queries in custom drivers).
pub fn all_ranks(spec: &CollectiveSpec) -> Vec<Rank> {
    spec.groups.iter().flat_map(|g| g.ranks.iter().copied()).collect()
}

/// One measured point of a series.
#[derive(Debug, Clone)]
pub struct Point {
    /// Series label (e.g. "TAPIOCA AoS").
    pub series: String,
    /// Per-rank data size in MiB (the x-axis of every figure).
    pub x_mib: f64,
    /// Measured aggregate bandwidth, GiB/s.
    pub gib_s: f64,
}

/// Run TAPIOCA at one point.
pub fn measure_tapioca(
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
    cfg: &TapiocaConfig,
) -> SimReport {
    // Bench binaries run vetted configs; surface a sim error loudly.
    run_tapioca_sim(profile, storage, spec, cfg).expect("simulation failed")
}

/// Run the MPI I/O baseline at one point.
pub fn measure_mpiio(
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
    cfg: &MpiIoConfig,
) -> SimReport {
    run_mpiio_sim(profile, storage, spec, cfg).expect("simulation failed")
}

/// Print a CSV block: header then one row per point.
pub fn print_csv(title: &str, points: &[Point]) {
    println!("# {title}");
    println!("series,data_size_mib_per_rank,bandwidth_gib_s");
    for p in points {
        println!("{},{:.3},{:.4}", p.series, p.x_mib, p.gib_s);
    }
}

/// Mean bandwidth of a series.
pub fn series_mean(points: &[Point], series: &str) -> f64 {
    let v: Vec<f64> = points
        .iter()
        .filter(|p| p.series == series)
        .map(|p| p.gib_s)
        .collect();
    assert!(!v.is_empty(), "series {series} is empty");
    v.iter().sum::<f64>() / v.len() as f64
}

/// Bandwidth of a series at a given x (must exist).
pub fn series_at(points: &[Point], series: &str, x_mib: f64) -> f64 {
    points
        .iter()
        .find(|p| p.series == series && (p.x_mib - x_mib).abs() < 1e-9)
        .unwrap_or_else(|| panic!("no point for {series} at {x_mib}"))
        .gib_s
}

/// Print a shape verdict line (the `# SHAPE` footer of every binary).
pub fn shape(name: &str, holds: bool, detail: &str) {
    println!("# SHAPE {}: {} ({detail})", name, if holds { "PASS" } else { "FAIL" });
}

/// MiB helper for x-axis labels.
pub fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 20) as f64
}

/// Drain `tracer` and write its merged, time-ordered trace to `path` as
/// JSON Lines (one event per line); returns the trace's summary so the
/// caller can print it. Backs the `--trace-out` option of the drivers.
pub fn dump_trace_jsonl(
    tracer: &tapioca_trace::Tracer,
    path: &std::path::Path,
) -> std::io::Result<tapioca_trace::TraceSummary> {
    use std::io::Write as _;
    let trace = tracer.drain();
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    trace.write_jsonl(&mut w)?;
    w.flush()?;
    Ok(trace.summary())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mira_spec_has_one_group_per_pset() {
        let s = ior_mira(512, 4, 1024, AccessMode::Write);
        assert_eq!(s.groups.len(), 4);
        assert_eq!(s.groups[0].ranks.len(), 512);
        assert_eq!(s.groups[1].ranks[0], 512);
        // decls are rebased per subfile
        assert_eq!(s.groups[1].decls[0][0].offset, 0);
    }

    #[test]
    fn theta_spec_is_single_group() {
        let s = hacc_theta(32, 4, 100, Layout::StructOfArrays);
        assert_eq!(s.groups.len(), 1);
        assert_eq!(s.groups[0].decls[0].len(), 9);
    }

    #[test]
    fn series_helpers() {
        let pts = vec![
            Point { series: "A".into(), x_mib: 1.0, gib_s: 2.0 },
            Point { series: "A".into(), x_mib: 2.0, gib_s: 4.0 },
            Point { series: "B".into(), x_mib: 1.0, gib_s: 1.0 },
        ];
        assert_eq!(series_mean(&pts, "A"), 3.0);
        assert_eq!(series_at(&pts, "B", 1.0), 1.0);
    }
}
