//! # tapioca-bench
//!
//! The harness that regenerates **every table and figure** of the
//! paper's evaluation (Sec. V). One binary per experiment:
//!
//! | binary | paper artifact | setup |
//! |---|---|---|
//! | `fig07` | Fig. 7 | IOR on 512 Mira nodes, baseline vs tuned, R/W |
//! | `fig08` | Fig. 8 | IOR on 512 Theta nodes, baseline vs tuned, R/W |
//! | `fig09` | Fig. 9 | microbenchmark, 1,024 Mira nodes, TAPIOCA vs MPI I/O |
//! | `fig10` | Fig. 10 | microbenchmark, 512 Theta nodes, TAPIOCA vs MPI I/O |
//! | `table1` | Table I | buffer:stripe ratio sweep on Theta |
//! | `fig11` | Fig. 11 | HACC-IO, 1,024 Mira nodes, AoS+SoA |
//! | `fig12` | Fig. 12 | HACC-IO, 4,096 Mira nodes, AoS+SoA |
//! | `fig13` | Fig. 13 | HACC-IO, 1,024 Theta nodes, AoS+SoA |
//! | `fig14` | Fig. 14 | HACC-IO, 2,048 Theta nodes, AoS+SoA |
//! | `ablation_pipeline` | — | double buffering on/off |
//! | `ablation_placement` | — | placement strategy comparison |
//! | `ablation_aggregators` | — | aggregator count sweep |
//!
//! Each binary prints CSV (one row per point, bandwidths in GiB/s) and a
//! `# SHAPE` footer stating the qualitative property the paper reports
//! and whether this run reproduces it. `EXPERIMENTS.md` records the
//! outcomes. Absolute numbers come from a simulator calibrated only with
//! the constants in `DESIGN.md`, so shapes — who wins, by what factor,
//! where gaps narrow — are the claim, not GB/s.

pub mod harness;

pub use harness::*;
