//! Memoized simulator evaluations for the tuner.
//!
//! The contract: two candidates with equal [`Candidate::sim_key`] hashes
//! differ only in model-only dimensions (the tier assignment), so
//! `run_tapioca_sim` produces bit-identical reports for them — the
//! second evaluation may be served from the cache. Keys cover every
//! simulator-visible dimension (aggregators, buffer, strategy,
//! pipelining); the cache must not be reused across different
//! `(profile, storage, spec)` triples.
//!
//! [`Candidate::sim_key`]: crate::autotune::model::Candidate::sim_key

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::Result;

/// Thread-safe memo table of `config hash -> simulated bandwidth`.
#[derive(Debug, Default)]
pub struct SimCache {
    map: Mutex<HashMap<u64, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the memoized bandwidth for `key`, or run `eval` and store
    /// its result. `eval` runs outside the lock, so parallel evaluations
    /// of *distinct* keys never serialize on each other; callers are
    /// expected to dedup keys before fanning out (the search does), so
    /// no two threads evaluate the same key.
    ///
    /// # Errors
    /// Propagates `eval`'s error without caching anything.
    pub fn eval(&self, key: u64, eval: impl FnOnce() -> Result<f64>) -> Result<f64> {
        if let Some(&bw) = self.map.lock().expect("sim cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(bw);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bw = eval()?;
        self.map.lock().expect("sim cache poisoned").insert(key, bw);
        Ok(bw)
    }

    /// Evaluations served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Evaluations that ran the simulator.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct configurations stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("sim cache poisoned").len()
    }

    /// True when nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_eval_of_a_key_is_served_from_memory() {
        let cache = SimCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache
                .eval(42, || {
                    calls += 1;
                    Ok(7.5)
                })
                .unwrap();
            assert_eq!(v, 7.5);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SimCache::new();
        let err = cache.eval(1, || {
            Err(crate::TapiocaError::InvalidConfig("boom".into()))
        });
        assert!(err.is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.eval(1, || Ok(1.0)).unwrap(), 1.0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = SimCache::new();
        cache.eval(1, || Ok(1.0)).unwrap();
        cache.eval(2, || Ok(2.0)).unwrap();
        assert_eq!(cache.eval(1, || unreachable!()).unwrap(), 1.0);
        assert_eq!(cache.eval(2, || unreachable!()).unwrap(), 2.0);
    }
}
