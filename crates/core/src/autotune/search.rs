//! Coarse-to-fine, cost-model-guided configuration search.
//!
//! Stage 1 (*coarse*) enumerates the full multi-dimensional grid —
//! aggregator count × buffer size × placement strategy × pipelining ×
//! coalescing × tier assignment — and scores every point with the
//! analytic model ω
//! ([`CostModel`]), which costs arithmetic, not simulations. Stage 2
//! (*refine*) densifies the aggregator ladder around the coarse winner
//! and rescores. Stage 3 (*confirm*) hands the model's short-list — plus
//! the rule-based configuration as a regression anchor — to
//! `run_tapioca_sim`, fanned out over std threads with results memoized
//! in a [`SimCache`] keyed by the simulator-visible config hash.
//!
//! Because the rule-based anchor is always confirmed, the tuned result
//! can never be slower than the paper's hand-tuning *as measured by the
//! simulator* — the invariant the golden regression suite pins.
//!
//! Everything is deterministic: candidate enumeration order is fixed,
//! ties in ω and in simulated bandwidth resolve to the earlier
//! candidate, and the thread fan-out writes results into pre-assigned
//! slots.

use std::time::Instant;

use tapioca_topology::{MachineProfile, StorageProfile};

use crate::autotune::cache::SimCache;
use crate::autotune::model::{Candidate, CostModel, TierAssignment};
use crate::autotune::report::TuneReport;
use crate::autotune::rule_based;
use crate::config::TapiocaConfig;
use crate::error::Result;
use crate::placement::PlacementStrategy;
use crate::sim_exec::{run_tapioca_sim, CollectiveSpec, StorageConfig};

/// The tuner's search space, derived from the machine, the storage
/// tunables, and *every* file group of the spec.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Aggregator-count ladder (per file group), ascending.
    pub aggregators: Vec<usize>,
    /// Buffer-size ladder, ascending, anchored on the storage granule.
    pub buffers: Vec<u64>,
    /// Election strategies worth searching (`Random`/`WorstCase` are
    /// ablations, not tuning candidates).
    pub strategies: Vec<PlacementStrategy>,
    /// Pipelining on/off.
    pub pipelining: Vec<bool>,
    /// Intra-node put coalescing on/off. Like the tier, this dimension
    /// is decided by ω alone: the flow simulator's bandwidth is
    /// coalescing-invariant (it batches per node already), so the
    /// short-list dedup keeps whichever variant the model prefers.
    pub coalescing: Vec<bool>,
    /// Tier assignments (KNL tiers only exist on Lustre machines).
    pub tiers: Vec<TierAssignment>,
}

impl SearchSpace {
    /// Derive the space from the rule-based seed and the smallest file
    /// group: a candidate aggregator count must be valid for **every**
    /// group, so the ladder is capped by the minimum group size (the
    /// first-group-only derivation was a real bug — a small trailing
    /// group would have been handed more aggregators than members).
    ///
    /// # Errors
    /// Propagates [`rule_based`]'s storage/profile mismatch error.
    pub fn derive(
        profile: &MachineProfile,
        storage: &StorageConfig,
        spec: &CollectiveSpec,
    ) -> Result<SearchSpace> {
        let min_group = spec.groups.iter().map(|g| g.ranks.len()).min().unwrap_or(1).max(1);
        let seed = rule_based(profile, storage, min_group)?;
        let base = seed.num_aggregators.max(4);
        let mut aggregators: Vec<usize> = [base / 4, base / 2, base, base * 2, base * 4]
            .into_iter()
            .map(|a| a.clamp(1, min_group))
            .collect();
        aggregators.sort_unstable();
        aggregators.dedup();

        // Buffer ladder around the storage granule (stripe / GPFS
        // block): half, 1:1 (Table I's winner), 2x, 4x.
        let granule = match storage {
            StorageConfig::Lustre(tun) => tun.stripe_size,
            StorageConfig::Gpfs(tun) => tun.block_size,
        }
        .max(64 * 1024);
        let mut buffers: Vec<u64> = vec![granule / 2, granule, granule * 2, granule * 4];
        buffers.sort_unstable();
        buffers.dedup();

        let tiers = match profile.storage {
            // KNL memory tiers and node-local burst buffers exist on the
            // Lustre machines of the paper (Theta); BG/Q has neither.
            StorageProfile::Lustre { .. } => vec![
                TierAssignment::DramDirect,
                TierAssignment::McdramDirect,
                TierAssignment::McdramBurstBuffer,
            ],
            StorageProfile::Gpfs { .. } => vec![TierAssignment::DramDirect],
        };

        Ok(SearchSpace {
            aggregators,
            buffers,
            strategies: vec![
                PlacementStrategy::TopologyAware,
                PlacementStrategy::ShortestPathToIo,
                PlacementStrategy::RankOrder,
            ],
            pipelining: vec![true, false],
            coalescing: vec![false, true],
            tiers,
        })
    }

    /// Number of points in the exhaustive grid.
    pub fn grid_size(&self) -> usize {
        self.aggregators.len()
            * self.buffers.len()
            * self.strategies.len()
            * self.pipelining.len()
            * self.coalescing.len()
            * self.tiers.len()
    }

    /// Enumerate the grid in a fixed, deterministic order.
    fn candidates(&self) -> Vec<Candidate> {
        let mut out = Vec::with_capacity(self.grid_size());
        for &aggregators in &self.aggregators {
            for &buffer_size in &self.buffers {
                for &strategy in &self.strategies {
                    for &pipelining in &self.pipelining {
                        for &coalescing in &self.coalescing {
                            for &tier in &self.tiers {
                                out.push(Candidate {
                                    aggregators,
                                    buffer_size,
                                    strategy,
                                    pipelining,
                                    coalescing,
                                    tier,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Result of a full autotuning run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The winning configuration (simulator-confirmed dimensions),
    /// carrying over the seed config's faults/policy/tracer.
    pub best: TapiocaConfig,
    /// The model-selected tier assignment for the winning config (the
    /// base simulator cannot confirm this dimension; `tapioca-tiers`
    /// cross-checks it).
    pub tier: TierAssignment,
    /// The rule-based configuration the search is anchored on.
    pub rule: TapiocaConfig,
    /// Simulated bandwidth of `best`, bytes/s.
    pub tuned_bandwidth: f64,
    /// Simulated bandwidth of `rule`, bytes/s.
    pub rule_bandwidth: f64,
    /// Every simulator-confirmed candidate with its bandwidth, in
    /// confirmation order (the rule-based anchor is last).
    pub confirmed: Vec<(TapiocaConfig, f64)>,
    /// Work accounting.
    pub report: TuneReport,
}

/// Tune with default seed config (no faults, no tracer).
///
/// # Errors
/// Propagates model construction and simulator errors.
pub fn autotune(
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
) -> Result<TuneOutcome> {
    autotune_from(profile, storage, spec, &TapiocaConfig::default())
}

/// Tune, inheriting non-tuned fields (faults, I/O policy, tracer) from
/// `base` in the returned configs. The tuning simulations themselves
/// always run clean — fault injection and tracing are stripped so the
/// measured bandwidths reflect the configuration, not the fault plan.
///
/// # Errors
/// Propagates model construction and simulator errors.
pub fn autotune_from(
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
    base: &TapiocaConfig,
) -> Result<TuneOutcome> {
    let space = SearchSpace::derive(profile, storage, spec)?;
    let model = CostModel::new(profile, storage, spec)?;
    let min_group = spec.groups.iter().map(|g| g.ranks.len()).min().unwrap_or(1).max(1);

    // Stage 0 — static screen: discard grid points the static analyzer
    // proves illegal (double buffer over tier capacity) before spending
    // any model or simulator work on them.
    let grid = space.candidates();
    let (pruned, legal): (Vec<Candidate>, Vec<Candidate>) = grid
        .iter()
        .copied()
        .partition(|c| crate::analyze::screen_candidate(c).is_some());
    let static_pruned = pruned.len();

    // Stage 1 — coarse: score the surviving grid with ω.
    let mut scored: Vec<(f64, Candidate)> =
        legal.iter().map(|c| (model.score(c), *c)).collect();
    let model_evals = scored.len();

    // Stage 2 — refine: densify the aggregator ladder around the coarse
    // winner (geometric midpoints towards its neighbors) and rescore.
    let mut refine_evals = 0usize;
    if let Some(&(_, coarse_best)) = scored
        .iter()
        .min_by(|a, b| a.0.total_cmp(&b.0))
    {
        let a = coarse_best.aggregators;
        for next in [a * 3 / 4, a * 3 / 2] {
            let next = next.clamp(1, min_group);
            if next != a && !space.aggregators.contains(&next) {
                let c = Candidate { aggregators: next, ..coarse_best };
                scored.push((model.score(&c), c));
                refine_evals += 1;
            }
        }
    }

    // Stage 3 — confirm: short-list the model's best points (dedup by
    // sim key, keeping the model-preferred tier variant of each), append
    // the rule-based anchor, and simulate in parallel. The short-list
    // budget stays well under a quarter of the grid — the savings the
    // model buys.
    let budget = (space.grid_size() / 16).clamp(4, 10);
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&i, &j| scored[i].0.total_cmp(&scored[j].0).then(i.cmp(&j)));
    let mut shortlist: Vec<Candidate> = Vec::new();
    for &i in &order {
        let (score, cand) = scored[i];
        if !score.is_finite() {
            break;
        }
        if shortlist.iter().all(|c| c.sim_key() != cand.sim_key()) {
            shortlist.push(cand);
            if shortlist.len() >= budget {
                break;
            }
        }
    }
    let rule = rule_based(profile, storage, min_group)?;
    let rule_cand = Candidate {
        aggregators: rule.num_aggregators,
        buffer_size: rule.buffer_size,
        strategy: rule.strategy,
        pipelining: rule.pipelining,
        coalescing: false,
        tier: TierAssignment::DramDirect,
    };
    if shortlist.iter().all(|c| c.sim_key() != rule_cand.sim_key()) {
        shortlist.push(rule_cand);
    }

    // Clean evaluation config: no faults, no tracer, default policy.
    let clean = TapiocaConfig {
        num_aggregators: base.num_aggregators,
        buffer_size: base.buffer_size,
        ..TapiocaConfig::default()
    };
    let cache = SimCache::new();
    let confirm_start = Instant::now();
    let bandwidths = confirm_parallel(profile, storage, spec, &clean, &cache, &shortlist)?;
    let sim_wall_ns = confirm_start.elapsed().as_nanos() as u64;

    let rule_bandwidth = *bandwidths.last().expect("anchor always confirmed");
    let rule_bw_of = |c: &Candidate| {
        if c.sim_key() == rule_cand.sim_key() { Some(rule_bandwidth) } else { None }
    };
    let _ = rule_bw_of; // (anchor may also appear mid-list; bandwidths carry it)

    // Winner: max simulated bandwidth, ties to the earlier (model-
    // preferred) short-list entry.
    let mut best_i = 0usize;
    for (i, bw) in bandwidths.iter().enumerate() {
        if *bw > bandwidths[best_i] {
            best_i = i;
        }
    }
    let best_cand = shortlist[best_i];
    let report = TuneReport {
        grid_size: space.grid_size(),
        static_pruned,
        model_evals,
        refine_evals,
        shortlist: shortlist.len(),
        sims_run: cache.misses(),
        cache_hits: cache.hits(),
        sim_wall_ns,
    };
    Ok(TuneOutcome {
        best: best_cand.to_config(base),
        tier: best_cand.tier,
        rule: TapiocaConfig {
            num_aggregators: rule.num_aggregators,
            buffer_size: rule.buffer_size,
            strategy: rule.strategy,
            pipelining: rule.pipelining,
            ..base.clone()
        },
        tuned_bandwidth: bandwidths[best_i],
        rule_bandwidth,
        confirmed: shortlist
            .iter()
            .zip(&bandwidths)
            .map(|(c, &bw)| (c.to_config(base), bw))
            .collect(),
        report,
    })
}

/// Confirm the short-list in the simulator, one std thread per chunk,
/// results written into pre-assigned slots (deterministic regardless of
/// scheduling). Keys are deduped by construction, so no two threads
/// ever evaluate the same cache key.
fn confirm_parallel(
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
    clean: &TapiocaConfig,
    cache: &SimCache,
    shortlist: &[Candidate],
) -> Result<Vec<f64>> {
    let eval_one = |cand: &Candidate| -> Result<f64> {
        cache.eval(cand.sim_key(), || {
            let cfg = cand.to_config(clean);
            let rep = run_tapioca_sim(profile, storage, spec, &cfg)?;
            Ok(rep.bandwidth)
        })
    };
    let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    if shortlist.len() < 2 || threads < 2 {
        return shortlist.iter().map(eval_one).collect();
    }
    let chunk = shortlist.len().div_ceil(threads.min(shortlist.len()));
    let results: Vec<Result<Vec<f64>>> = std::thread::scope(|s| {
        let eval_one = &eval_one;
        let handles: Vec<_> = shortlist
            .chunks(chunk)
            .map(|ch| s.spawn(move || ch.iter().map(eval_one).collect::<Result<Vec<f64>>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("tuner worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(shortlist.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::WriteDecl;
    use crate::sim_exec::GroupSpec;
    use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
    use tapioca_topology::{mira_profile, theta_profile, MIB};

    fn theta_spec(n: usize, per: u64) -> CollectiveSpec {
        CollectiveSpec {
            groups: vec![GroupSpec {
                file: 0,
                ranks: (0..n).collect(),
                decls: (0..n as u64)
                    .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                    .collect(),
            }],
            mode: AccessMode::Write,
        }
    }

    #[test]
    fn space_is_capped_by_the_smallest_group() {
        let profile = mira_profile(256, 4);
        let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
        // Two groups: 512 ranks and 12 ranks.
        let spec = CollectiveSpec {
            groups: vec![
                GroupSpec {
                    file: 0,
                    ranks: (0..512).collect(),
                    decls: (0..512u64).map(|r| vec![WriteDecl { offset: r * MIB, len: MIB }]).collect(),
                },
                GroupSpec {
                    file: 1,
                    ranks: (512..524).collect(),
                    decls: (0..12u64).map(|r| vec![WriteDecl { offset: r * MIB, len: MIB }]).collect(),
                },
            ],
            mode: AccessMode::Write,
        };
        let space = SearchSpace::derive(&profile, &storage, &spec).unwrap();
        assert!(space.aggregators.iter().all(|&a| a <= 12), "{:?}", space.aggregators);
    }

    #[test]
    fn tuned_beats_or_matches_rule_based_and_saves_sims() {
        let profile = theta_profile(64, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = theta_spec(256, MIB);
        let out = autotune(&profile, &storage, &spec).unwrap();
        assert!(out.tuned_bandwidth >= out.rule_bandwidth);
        assert!(out.best.num_aggregators >= 1 && out.best.num_aggregators <= 256);
        assert!(out.report.sim_savings() >= 4.0, "{}", out.report);
        assert!(out.report.sims_run as usize <= out.report.grid_size / 4);
    }

    #[test]
    fn autotune_is_deterministic() {
        let profile = theta_profile(64, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = theta_spec(128, MIB / 2);
        let a = autotune(&profile, &storage, &spec).unwrap();
        let b = autotune(&profile, &storage, &spec).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.tier, b.tier);
        assert_eq!(a.tuned_bandwidth.to_bits(), b.tuned_bandwidth.to_bits());
    }

    #[test]
    fn base_fields_are_carried_into_the_tuned_config() {
        let profile = theta_profile(16, 2);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = theta_spec(32, MIB / 4);
        let base = TapiocaConfig {
            faults: Some(crate::FaultPlan::seeded(9)),
            ..TapiocaConfig::default()
        };
        let out = autotune_from(&profile, &storage, &spec, &base).unwrap();
        assert_eq!(out.best.faults.as_ref().map(|f| f.seed), Some(9));
        // The tuning sims themselves must have run clean: a fault plan
        // in the base config cannot perturb the measured bandwidths.
        let clean = autotune(&profile, &storage, &spec).unwrap();
        assert_eq!(out.tuned_bandwidth.to_bits(), clean.tuned_bandwidth.to_bits());
    }

    #[test]
    fn single_rank_group_degenerates_gracefully() {
        let profile = theta_profile(4, 1);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = theta_spec(1, MIB);
        let out = autotune(&profile, &storage, &spec).unwrap();
        assert_eq!(out.best.num_aggregators, 1, "one rank can host one aggregator");
        assert!(out.tuned_bandwidth >= out.rule_bandwidth);
    }
}
