//! Tuning-run accounting: how much work the search did, and how much
//! the cost model saved over an exhaustive grid.

/// Counters of one [`crate::autotune::autotune`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuneReport {
    /// Size of the exhaustive search grid the coarse stage enumerated.
    pub grid_size: usize,
    /// Grid points the static analyzer proved illegal and discarded
    /// before any model or simulator work (see
    /// `crate::analyze::screen_candidate`).
    pub static_pruned: usize,
    /// ω evaluations in the coarse stage (= `grid_size` minus the
    /// statically pruned points).
    pub model_evals: usize,
    /// Additional ω evaluations in the refinement stage.
    pub refine_evals: usize,
    /// Short-list size handed to the simulator (after sim-key dedup,
    /// including the rule-based anchor).
    pub shortlist: usize,
    /// Full simulations actually run (cache misses).
    pub sims_run: u64,
    /// Simulator evaluations served from the memo cache.
    pub cache_hits: u64,
    /// Wall time of the confirmation stage (the short-list simulations),
    /// in nanoseconds. The one non-deterministic field: compare the
    /// counters, report the wall time.
    pub sim_wall_ns: u64,
}

impl TuneReport {
    /// How many times fewer simulations the guided search ran than an
    /// exhaustive sweep of the grid would have (the acceptance metric of
    /// the tuning subsystem: ≥ 4 on every shipped workload).
    pub fn sim_savings(&self) -> f64 {
        self.grid_size as f64 / self.sims_run.max(1) as f64
    }
}

impl std::fmt::Display for TuneReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "grid {} | static pruned {} | model evals {} (+{} refine) | shortlist {} | sims {} ({} cached, {:.1} ms) | {:.1}x fewer sims than exhaustive",
            self.grid_size,
            self.static_pruned,
            self.model_evals,
            self.refine_evals,
            self.shortlist,
            self.sims_run,
            self.cache_hits,
            self.sim_wall_ns as f64 / 1e6,
            self.sim_savings()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_ratio_is_grid_over_sims() {
        let r = TuneReport { grid_size: 120, sims_run: 10, ..Default::default() };
        assert_eq!(r.sim_savings(), 12.0);
        // No sims at all must not divide by zero.
        let r0 = TuneReport { grid_size: 8, sims_run: 0, ..Default::default() };
        assert_eq!(r0.sim_savings(), 8.0);
    }

    #[test]
    fn display_mentions_the_headline_numbers() {
        let r = TuneReport {
            grid_size: 240,
            static_pruned: 12,
            model_evals: 228,
            refine_evals: 6,
            shortlist: 9,
            sims_run: 9,
            cache_hits: 3,
            sim_wall_ns: 1_500_000,
        };
        let s = r.to_string();
        assert!(s.contains("grid 240") && s.contains("sims 9"));
    }
}
