//! Cost-model-guided configuration autotuning.
//!
//! The paper notes that "the number of aggregators or the buffer size
//! needed in collective I/O remains still an open topic" (its ref. 19)
//! and reports hand-tuned values per experiment (16-32 per Pset on
//! Mira, 48-384 on Theta, buffer = stripe). This subsystem turns that
//! open topic into an offline procedure over the declared workload —
//! exactly what `TAPIOCA_Init`'s information makes possible:
//!
//! * [`rule_based`] — the paper's own hand-tuning, generalized, as the
//!   seed and the regression anchor;
//! * [`model`] — an analytic cost model ω(A) reproducing the paper's
//!   latency/bandwidth aggregation formula over cached topology
//!   distances, cheap enough to score an entire configuration grid;
//! * [`search`] — a coarse-to-fine search over aggregator count ×
//!   buffer size × placement strategy × pipelining × tier assignment
//!   that prunes with ω and confirms only a short-list in the
//!   simulator, in parallel, memoized through [`cache`];
//! * [`report`] — work accounting (the ≥4× fewer-sims acceptance
//!   metric);
//! * [`empirical_sweep`] — the original 1-D aggregator sweep, kept as a
//!   baseline.

pub mod cache;
pub mod model;
pub mod report;
pub mod search;

pub use cache::SimCache;
pub use model::{Candidate, CostModel, TierAssignment};
pub use report::TuneReport;
pub use search::{autotune, autotune_from, SearchSpace, TuneOutcome};

use tapioca_topology::{MachineProfile, StorageProfile};

use crate::config::TapiocaConfig;
use crate::error::{Result, TapiocaError};
use crate::sim_exec::{run_tapioca_sim, CollectiveSpec, StorageConfig};

/// Rule-based tuning: the paper's own settings, generalized.
///
/// * Lustre: buffer = stripe size (Table I's 1:1), aggregators = a small
///   multiple of the stripe count (the paper uses 1-8 per OST; 2 is the
///   robust middle of our `ablation_aggregators` sweep), capped at the
///   rank count.
/// * GPFS: buffer = 16 MB (the validated default), aggregators = 16 per
///   Pset group.
///
/// `group_ranks` is the number of ranks writing one file (a Pset's worth
/// under subfiling). With multiple groups, pass the **smallest** group's
/// size — every group elects the same number of aggregators, so the
/// count must be valid for all of them.
///
/// # Errors
/// [`TapiocaError::InvalidConfig`] when the storage config kind does not
/// match the machine profile.
pub fn rule_based(
    profile: &MachineProfile,
    storage: &StorageConfig,
    group_ranks: usize,
) -> Result<TapiocaConfig> {
    match (&profile.storage, storage) {
        (StorageProfile::Lustre { .. }, StorageConfig::Lustre(tun)) => Ok(TapiocaConfig {
            num_aggregators: (2 * tun.stripe_count).min(group_ranks).max(1),
            buffer_size: tun.stripe_size,
            ..Default::default()
        }),
        (StorageProfile::Gpfs { .. }, StorageConfig::Gpfs(_)) => Ok(TapiocaConfig {
            num_aggregators: 16.min(group_ranks).max(1),
            buffer_size: 16 * 1024 * 1024,
            ..Default::default()
        }),
        _ => Err(TapiocaError::InvalidConfig(
            "storage config kind does not match the machine profile".into(),
        )),
    }
}

/// The aggregator-count cap a spec imposes: the smallest group's rank
/// count. (Every group elects `num_aggregators` aggregators from its own
/// members, so a count valid for the first group only is a bug — the
/// cap must hold for *all* groups.)
fn min_group_ranks(spec: &CollectiveSpec) -> usize {
    spec.groups.iter().map(|g| g.ranks.len()).min().unwrap_or(1).max(1)
}

/// Result of an empirical sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning configuration.
    pub best: TapiocaConfig,
    /// Every candidate with its simulated bandwidth (bytes/s).
    pub candidates: Vec<(TapiocaConfig, f64)>,
}

/// Empirical tuning: sweep aggregator counts around the rule-based
/// guess (x1/4 .. x4) through the simulator and keep the fastest.
///
/// The ladder is capped by the **smallest** file group in the spec, so
/// every candidate is electable in every group. For the full
/// multi-dimensional, model-pruned search see [`search::autotune`].
///
/// # Errors
/// Propagates [`TapiocaError`] from [`rule_based`] and the simulator.
pub fn empirical_sweep(
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
) -> Result<TuneResult> {
    let group_ranks = min_group_ranks(spec);
    let seed = rule_based(profile, storage, group_ranks)?;
    let base = seed.num_aggregators.max(4);
    let mut counts: Vec<usize> = [base / 4, base / 2, base, base * 2, base * 4]
        .into_iter()
        .filter(|&a| a >= 1 && a <= group_ranks)
        .collect();
    counts.dedup();
    if counts.is_empty() {
        counts.push(group_ranks);
    }

    let mut candidates = Vec::new();
    for a in counts {
        let cfg = TapiocaConfig { num_aggregators: a, ..seed.clone() };
        let rep = run_tapioca_sim(profile, storage, spec, &cfg)?;
        candidates.push((cfg, rep.bandwidth));
    }
    let best = candidates
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one candidate")
        .0
        .clone();
    Ok(TuneResult { best, candidates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::WriteDecl;
    use crate::sim_exec::GroupSpec;
    use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
    use tapioca_topology::{mira_profile, theta_profile, MIB};

    fn group(file: usize, ranks: std::ops::Range<usize>, per: u64) -> GroupSpec {
        let n = ranks.len() as u64;
        GroupSpec {
            file,
            ranks: ranks.collect(),
            decls: (0..n).map(|r| vec![WriteDecl { offset: r * per, len: per }]).collect(),
        }
    }

    #[test]
    fn rule_based_matches_paper_tuning() {
        let theta = theta_profile(512, 16);
        let cfg = rule_based(
            &theta,
            &StorageConfig::Lustre(LustreTunables::theta_optimized()),
            8192,
        )
        .unwrap();
        assert_eq!(cfg.buffer_size, 8 * MIB, "buffer = stripe (Table I)");
        assert_eq!(cfg.num_aggregators, 96, "2 per OST");

        let mira = mira_profile(512, 16);
        let cfg =
            rule_based(&mira, &StorageConfig::Gpfs(GpfsTunables::mira_optimized()), 2048).unwrap();
        assert_eq!(cfg.num_aggregators, 16);
        assert_eq!(cfg.buffer_size, 16 * MIB);
    }

    #[test]
    fn rule_based_caps_at_group_size() {
        let theta = theta_profile(32, 4);
        let cfg = rule_based(
            &theta,
            &StorageConfig::Lustre(LustreTunables::theta_optimized()),
            10,
        )
        .unwrap();
        assert_eq!(cfg.num_aggregators, 10);
    }

    #[test]
    fn empirical_sweep_never_picks_a_loser() {
        let profile = theta_profile(64, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = CollectiveSpec {
            groups: vec![group(0, 0..256, MIB)],
            mode: AccessMode::Write,
        };
        let result = empirical_sweep(&profile, &storage, &spec).unwrap();
        let best_bw = result
            .candidates
            .iter()
            .find(|(c, _)| c.num_aggregators == result.best.num_aggregators)
            .expect("best is a candidate")
            .1;
        for (cfg, bw) in &result.candidates {
            assert!(best_bw >= *bw, "{:?} beats the chosen config", cfg.num_aggregators);
        }
        assert!(result.candidates.len() >= 3);
    }

    /// Regression for the first-group-only bug: with two groups of
    /// unequal size, every swept candidate must be electable in the
    /// *smaller* group too — under the old `groups.first()` derivation a
    /// large leading group let the ladder exceed the trailing group's
    /// rank count and the sweep either failed or tuned garbage.
    #[test]
    fn empirical_sweep_caps_at_the_smallest_group() {
        let profile = theta_profile(64, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = CollectiveSpec {
            groups: vec![group(0, 0..240, MIB), group(1, 240..246, MIB)],
            mode: AccessMode::Write,
        };
        let result = empirical_sweep(&profile, &storage, &spec).unwrap();
        for (cfg, _) in &result.candidates {
            assert!(
                cfg.num_aggregators <= 6,
                "candidate {} exceeds the 6-rank trailing group",
                cfg.num_aggregators
            );
        }
        assert!(result.best.num_aggregators <= 6);
    }

    /// `group_ranks = 1` boundary: the ladder collapses but the sweep
    /// still returns a (single) valid candidate.
    #[test]
    fn empirical_sweep_single_rank_group() {
        let profile = theta_profile(4, 1);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = CollectiveSpec {
            groups: vec![group(0, 0..1, MIB)],
            mode: AccessMode::Write,
        };
        let result = empirical_sweep(&profile, &storage, &spec).unwrap();
        assert_eq!(result.best.num_aggregators, 1);
        assert!(!result.candidates.is_empty());
    }

    #[test]
    fn mismatched_storage_rejected() {
        let mira = mira_profile(128, 4);
        let err = rule_based(&mira, &StorageConfig::Lustre(LustreTunables::theta_optimized()), 100)
            .unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }
}
