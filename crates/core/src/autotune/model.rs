//! The analytic cost model ω: a cheap, closed-form estimate of a
//! collective operation's elapsed time under a candidate configuration.
//!
//! The model reproduces the structure of the paper's aggregation-cost
//! formula (Sec. IV-B): the aggregation phase pays
//! `Σ_i l·d(i, A) + ω(i, A)/B(i → A)` into each aggregator plus
//! `l·d(A, IO) + ω(A, IO)/B(A → IO)` out of it, and the I/O phase pays
//! the storage backend's service time. Every topology distance and path
//! bandwidth is read through the memoized [`NodeMetricCache`], folded
//! per node exactly like the fast election path — an ω evaluation after
//! the one-time [`CostModel::new`] precomputation is pure arithmetic,
//! about six orders of magnitude cheaper than a `run_tapioca_sim` call.
//!
//! ω is used to *rank* candidates, not to predict absolute bandwidth:
//! the short-list it produces is confirmed in the simulator (see
//! [`crate::autotune::search`]), so the model only has to order
//! configurations roughly right for the search to converge.

use std::collections::HashMap;

use tapioca_pfs::{AccessMode, LockMode};
use tapioca_topology::{
    IoNodeId, MachineProfile, NodeId, NodeMetricCache, StorageProfile, TopologyProvider, GIB,
};

use crate::error::{Result, TapiocaError};
use crate::placement::PlacementStrategy;
use crate::sim_exec::{CollectiveSpec, StorageConfig};

/// Where aggregation buffers live and where flushes land — the tier
/// dimension of the search (the paper's Sec. VI one-to-many extension,
/// modelled by `tapioca-tiers`).
///
/// The base simulator has no tier stations, so this dimension is scored
/// and selected by ω alone; `tapioca-tiers::run_tiered_sim` is the
/// cross-check (exercised by `tunebench`). Constants mirror
/// `TierSpec::knl_default`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierAssignment {
    /// DRAM aggregation buffers, flushes straight to the PFS (the base
    /// library on every machine).
    DramDirect,
    /// MCDRAM aggregation buffers, direct PFS flushes (KNL machines).
    McdramDirect,
    /// MCDRAM buffers staged on the node-local burst buffer, drained to
    /// the PFS asynchronously; ω scores its *time-to-safe*.
    McdramBurstBuffer,
}

impl TierAssignment {
    /// Stable label for reports and golden tests.
    pub fn name(self) -> &'static str {
        match self {
            TierAssignment::DramDirect => "dram_direct",
            TierAssignment::McdramDirect => "mcdram_direct",
            TierAssignment::McdramBurstBuffer => "mcdram_burst_buffer",
        }
    }

    /// Per-node write bandwidth of the buffer tier, bytes/s (KNL DRAM
    /// at 90 GiB/s, MCDRAM at 400 GiB/s — `TierSpec::knl_default`).
    fn buffer_bw(self) -> f64 {
        match self {
            TierAssignment::DramDirect => 90.0 * GIB as f64,
            TierAssignment::McdramDirect | TierAssignment::McdramBurstBuffer => {
                400.0 * GIB as f64
            }
        }
    }

    /// Memory capacity bound for the double buffer, bytes.
    pub fn buffer_capacity(self) -> u64 {
        match self {
            TierAssignment::DramDirect => 192 * GIB,
            TierAssignment::McdramDirect | TierAssignment::McdramBurstBuffer => 16 * GIB,
        }
    }
}

/// One point of the search space: the four simulator-visible dimensions
/// plus the model-only tier assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Aggregator (= partition) count per file group.
    pub aggregators: usize,
    /// Aggregation buffer size, bytes.
    pub buffer_size: u64,
    /// Election strategy.
    pub strategy: PlacementStrategy,
    /// Double-buffered flush pipeline on/off.
    pub pipelining: bool,
    /// Intra-node put coalescing on/off. Model-scored only: the flow
    /// simulator already batches transfers per (round, source node), so
    /// its bandwidth is coalescing-invariant and the dimension is
    /// excluded from [`Candidate::sim_key`].
    pub coalescing: bool,
    /// Buffer/staging tier.
    pub tier: TierAssignment,
}

impl Candidate {
    /// Materialize the candidate as a [`crate::config::TapiocaConfig`],
    /// inheriting every non-tuned field (faults, I/O policy, tracer)
    /// from `base`.
    pub fn to_config(&self, base: &crate::config::TapiocaConfig) -> crate::config::TapiocaConfig {
        crate::config::TapiocaConfig {
            num_aggregators: self.aggregators,
            buffer_size: self.buffer_size,
            strategy: self.strategy,
            pipelining: self.pipelining,
            coalescing: self.coalescing,
            ..base.clone()
        }
    }

    /// Hash of the *simulator-visible* dimensions (tier and coalescing
    /// excluded): two candidates with equal keys produce bit-identical
    /// `run_tapioca_sim` results, which is the memoization contract of
    /// [`crate::autotune::cache::SimCache`]. Coalescing is excluded
    /// because the flow simulator batches per (round, source node)
    /// regardless — only ω and the thread executor see the difference.
    pub fn sim_key(&self) -> u64 {
        let strat = match self.strategy {
            PlacementStrategy::TopologyAware => 1u64,
            PlacementStrategy::RankOrder => 2,
            PlacementStrategy::ShortestPathToIo => 3,
            PlacementStrategy::WorstCase => 4,
            PlacementStrategy::Random { seed } => 5u64.wrapping_add(seed << 3),
        };
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for v in [self.aggregators as u64, self.buffer_size, strat, self.pipelining as u64] {
            x ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = x.rotate_left(23).wrapping_mul(0x94D0_49BB_1331_11EB);
        }
        x ^ (x >> 29)
    }
}

/// Aggregation-time estimates per placement strategy: seconds for one
/// aggregator on the strategy's chosen node to absorb the *whole*
/// group's traffic (divided by the partition count at scoring time).
#[derive(Debug, Clone, Copy)]
struct StrategyTimes {
    topo_aware: f64,
    rank_order: f64,
    shortest_io: f64,
    worst_case: f64,
    mean: f64,
}

impl StrategyTimes {
    fn of(&self, strategy: PlacementStrategy) -> f64 {
        match strategy {
            PlacementStrategy::TopologyAware => self.topo_aware,
            PlacementStrategy::RankOrder => self.rank_order,
            PlacementStrategy::ShortestPathToIo => self.shortest_io,
            PlacementStrategy::WorstCase => self.worst_case,
            PlacementStrategy::Random { .. } => self.mean,
        }
    }
}

/// Precomputed facts about one file group.
#[derive(Debug)]
struct GroupFacts {
    /// File-span extent covered by the group's declarations, bytes.
    span: u64,
    /// Total payload bytes.
    bytes: f64,
    /// Members (for capping the useful aggregator count).
    ranks: usize,
    /// Mean co-located members per compute node — the merge factor an
    /// intra-node coalescing run can reach.
    rpn: f64,
    agg: StrategyTimes,
}

/// Storage-side facts shared by every group.
#[derive(Debug)]
enum StorageFacts {
    Lustre {
        stripe_count: usize,
        stripe_size: u64,
        shared_locks: bool,
        ost_write_bw: f64,
        ost_read_bw: f64,
        /// Total LNET ceiling across the modelled gateways, bytes/s.
        lnet_total_bw: f64,
    },
    Gpfs {
        block_size: u64,
        shared_locks: bool,
        /// Per-Pset service ceiling, bytes/s (min of ION link and GPFS
        /// service bandwidth).
        group_bw: f64,
    },
}

/// Lock-discipline penalty on flushes that are not a multiple of the
/// storage's lock granularity: misaligned flushes straddle stripe/block
/// boundaries, and under exclusive tokens every straddle pays a
/// revocation chain. Multiplies the I/O time.
fn align_penalty(buffer: u64, granule: u64, shared_locks: bool) -> f64 {
    let aligned =
        granule > 0 && (buffer.is_multiple_of(granule) || granule.is_multiple_of(buffer.max(1)));
    match (aligned, shared_locks) {
        (true, _) => 1.0,
        (false, true) => 1.3,
        (false, false) => 2.5,
    }
}

/// Number of LNET gateways the simulator models (`sim_exec`).
const MODEL_LNET_GATEWAYS: f64 = 8.0;

/// Node-local SSD write bandwidth (burst buffer), bytes/s.
const SSD_WRITE_BW: f64 = 2.0 * GIB as f64;

/// Cost of one intra-node gather deposit as a fraction of the network
/// injection latency: a shared-memory store plus a counter bump, far
/// below a NIC doorbell but not free.
const INTRA_DEPOSIT_FRACTION: f64 = 0.1;

/// The cost model: build once per `(profile, storage, spec)`, then call
/// [`CostModel::score`] per candidate.
#[derive(Debug)]
pub struct CostModel {
    latency: f64,
    mode: AccessMode,
    groups: Vec<GroupFacts>,
    storage: StorageFacts,
}

impl CostModel {
    /// Precompute per-group topology folds and storage facts. Cost is
    /// `O(Σ_g nodes(g)²)` memoized topology queries — paid once for the
    /// whole search, not per candidate.
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] when the storage config kind does
    /// not match the machine profile, or the spec has no groups.
    pub fn new(
        profile: &MachineProfile,
        storage: &StorageConfig,
        spec: &CollectiveSpec,
    ) -> Result<CostModel> {
        let storage_facts = match (&profile.storage, storage) {
            (
                StorageProfile::Lustre { total_osts: _, ost_write_bw, ost_read_bw, lnet_bw },
                StorageConfig::Lustre(tun),
            ) => StorageFacts::Lustre {
                stripe_count: tun.stripe_count,
                stripe_size: tun.stripe_size,
                shared_locks: tun.lock_mode == LockMode::Shared,
                ost_write_bw: *ost_write_bw,
                ost_read_bw: *ost_read_bw,
                lnet_total_bw: MODEL_LNET_GATEWAYS * *lnet_bw,
            },
            (
                StorageProfile::Gpfs { ion_link_bw, ion_service_bw },
                StorageConfig::Gpfs(tun),
            ) => StorageFacts::Gpfs {
                block_size: tun.block_size,
                shared_locks: tun.lock_mode == LockMode::Shared,
                group_bw: ion_link_bw.min(*ion_service_bw),
            },
            _ => {
                return Err(TapiocaError::InvalidConfig(
                    "storage config kind does not match the machine profile".into(),
                ))
            }
        };
        if spec.groups.is_empty() {
            return Err(TapiocaError::InvalidConfig("spec has no file groups to tune".into()));
        }

        let machine = &profile.machine;
        let mut cache = NodeMetricCache::new();
        let groups = spec.groups.iter().map(|g| group_facts(machine, &mut cache, g)).collect();
        Ok(CostModel {
            latency: machine.latency(),
            mode: spec.mode,
            groups,
            storage: storage_facts,
        })
    }

    /// ω(candidate): estimated elapsed seconds of the collective under
    /// the candidate configuration. Lower is better; `f64::INFINITY`
    /// marks an infeasible point (e.g. a double buffer that does not fit
    /// the tier).
    pub fn score(&self, cand: &Candidate) -> f64 {
        if cand.aggregators == 0 || cand.buffer_size == 0 {
            return f64::INFINITY;
        }
        if 2 * cand.buffer_size > cand.tier.buffer_capacity() {
            return f64::INFINITY;
        }
        let mut worst = 0.0f64;
        for g in &self.groups {
            let t = self.score_group(g, cand);
            worst = worst.max(t);
        }
        worst
    }

    fn score_group(&self, g: &GroupFacts, cand: &Candidate) -> f64 {
        if g.bytes == 0.0 {
            return 0.0;
        }
        // Partition geometry mirrors `compute_schedule` with
        // `align_to_buffer`: the span splits into at most `aggregators`
        // buffer-aligned extents; small spans yield fewer partitions.
        let b = cand.buffer_size;
        let raw_extent = g.span.div_ceil(cand.aggregators as u64).max(1);
        let extent = raw_extent.div_ceil(b) * b;
        let parts = (g.span.div_ceil(extent) as usize).clamp(1, cand.aggregators.min(g.ranks));
        let rounds = extent.div_ceil(b).max(1);

        // Aggregation phase: the strategy's chosen-node fold, scaled to
        // this candidate's partition count, plus per-round fence latency
        // and the memory-side staging copy into the tier's buffers.
        let fence_overhead = rounds as f64 * 4.0 * self.latency;
        let copy = g.bytes / parts as f64 / cand.tier.buffer_bw();

        // Per-op latency of the write-plane window fill: every RMA put
        // pays one injection latency. Raw mode issues one put per member
        // per round. Coalescing folds each node's co-located members
        // into one merged put per round (a ~rpn× op reduction) but pays
        // an intra-node deposit per member plus one extra staging pass
        // through the leader's gather buffer — so it only wins when the
        // latency saved on many small puts beats the added copy, which
        // is exactly the high-ranks-per-node, small-chunk regime. Reads
        // drain through a different (uncoalesced) pipeline and carry no
        // such term.
        let members = (g.ranks as f64 / parts as f64).max(1.0);
        let t_ops = if self.mode != AccessMode::Write {
            0.0
        } else if cand.coalescing && g.rpn >= 2.0 {
            let wire = (members / g.rpn).ceil().max(1.0);
            rounds as f64
                * self.latency
                * (wire + members * INTRA_DEPOSIT_FRACTION)
                + g.bytes / parts as f64 / cand.tier.buffer_bw()
        } else {
            rounds as f64 * members * self.latency
        };
        let t_agg =
            g.agg.of(cand.strategy) / parts as f64 + fence_overhead + copy + t_ops;

        // I/O phase: backend service time for the group's bytes.
        let t_io = match &self.storage {
            StorageFacts::Lustre {
                stripe_count,
                stripe_size,
                shared_locks,
                ost_write_bw,
                ost_read_bw,
                lnet_total_bw,
            } => {
                if cand.tier == TierAssignment::McdramBurstBuffer
                    && self.mode == AccessMode::Write
                {
                    // Time-to-safe: each aggregator streams to its
                    // node-local flash, no shared bottleneck.
                    g.bytes / (parts as f64 * SSD_WRITE_BW)
                } else {
                    let ost_bw = match self.mode {
                        AccessMode::Write => *ost_write_bw,
                        AccessMode::Read => *ost_read_bw,
                    };
                    let streams = parts.min(*stripe_count).max(1) as f64;
                    let bw = (streams * ost_bw).min(*lnet_total_bw);
                    g.bytes / bw * align_penalty(b, *stripe_size, *shared_locks)
                }
            }
            StorageFacts::Gpfs { block_size, shared_locks, group_bw } => {
                g.bytes / group_bw * align_penalty(b, *block_size, *shared_locks)
            }
        };

        // Double buffering overlaps all but the first round's fill with
        // the flushes of the previous round.
        if cand.pipelining && rounds > 1 {
            t_agg.max(t_io) + t_agg.min(t_io) / rounds as f64
        } else {
            t_agg + t_io
        }
    }
}

/// Fold one group's member set per node and evaluate the paper's
/// aggregation-cost formula for an aggregator on every distinct node,
/// reducing to the per-strategy chosen-node times.
fn group_facts(
    machine: &dyn TopologyProvider,
    cache: &mut NodeMetricCache,
    group: &crate::sim_exec::GroupSpec,
) -> GroupFacts {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    let mut total = 0u64;
    let mut by_rank_bytes: Vec<u64> = Vec::with_capacity(group.ranks.len());
    for decls in &group.decls {
        let mut mine = 0u64;
        for d in decls {
            if d.len > 0 {
                lo = lo.min(d.offset);
                hi = hi.max(d.offset + d.len);
                mine += d.len;
            }
        }
        total += mine;
        by_rank_bytes.push(mine);
    }
    let span = hi.saturating_sub(lo);

    // Per-node member count and byte totals, insertion-ordered so the
    // fold below is deterministic.
    let mut slot_of: HashMap<NodeId, usize> = HashMap::new();
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut count: Vec<f64> = Vec::new();
    let mut bytes: Vec<f64> = Vec::new();
    for (&r, &w) in group.ranks.iter().zip(&by_rank_bytes) {
        let node = machine.node_of_rank(r);
        let s = *slot_of.entry(node).or_insert_with(|| {
            nodes.push(node);
            count.push(0.0);
            bytes.push(0.0);
            nodes.len() - 1
        });
        count[s] += 1.0;
        bytes[s] += w as f64;
    }

    let rpn = if nodes.is_empty() {
        1.0
    } else {
        group.ranks.len() as f64 / nodes.len() as f64
    };
    let io: IoNodeId = machine.io_nodes_for(&group.ranks).first().copied().unwrap_or(0);
    let l = machine.latency();
    let nn = nodes.len();

    // t(s): whole-group aggregation time into a candidate node s —
    // the folded `Σ_i l·d(i,A) + ω(i)/B(i→A)` plus `C2(s)`.
    let mut t = vec![0.0f64; nn];
    let mut io_dist = vec![u32::MAX; nn];
    for s in 0..nn {
        let intra = cache.pair(machine, nodes[s], nodes[s]).bw;
        let mut acc = bytes[s] / intra;
        for k in 0..nn {
            if k == s {
                continue;
            }
            let pm = cache.pair(machine, nodes[k], nodes[s]);
            acc += count[k] * l * pm.dist as f64 + bytes[k] / pm.bw;
        }
        let im = cache.io(machine, nodes[s], io);
        if let (Some(d), Some(bw)) = (im.dist, im.bw) {
            acc += l * d as f64 + total as f64 / bw;
            io_dist[s] = d;
        }
        t[s] = acc;
    }

    let min = t.iter().copied().fold(f64::INFINITY, f64::min);
    let max = t.iter().copied().fold(0.0f64, f64::max);
    let mean = t.iter().sum::<f64>() / nn as f64;
    // ShortestPathToIo elects the member closest to the I/O node
    // (first node on a tie, matching MINLOC); unknown distances (Theta)
    // degenerate to the first node, like the election itself.
    let io_pick = (0..nn).min_by_key(|&s| io_dist[s]).unwrap_or(0);

    GroupFacts {
        span,
        bytes: total as f64,
        ranks: group.ranks.len().max(1),
        rpn,
        agg: StrategyTimes {
            topo_aware: min,
            rank_order: t[0],
            shortest_io: t[io_pick],
            worst_case: max,
            mean,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::WriteDecl;
    use crate::sim_exec::GroupSpec;
    use tapioca_pfs::{GpfsTunables, LustreTunables};
    use tapioca_topology::{mira_profile, theta_profile, MIB};

    fn theta_spec(n: usize, per: u64) -> CollectiveSpec {
        CollectiveSpec {
            groups: vec![GroupSpec {
                file: 0,
                ranks: (0..n).collect(),
                decls: (0..n as u64)
                    .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                    .collect(),
            }],
            mode: AccessMode::Write,
        }
    }

    fn cand(aggregators: usize, buffer: u64) -> Candidate {
        Candidate {
            aggregators,
            buffer_size: buffer,
            strategy: PlacementStrategy::TopologyAware,
            pipelining: true,
            coalescing: false,
            tier: TierAssignment::DramDirect,
        }
    }

    #[test]
    fn model_prefers_stripe_aligned_buffers() {
        let profile = theta_profile(64, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = theta_spec(256, 4 * MIB);
        let m = CostModel::new(&profile, &storage, &spec).unwrap();
        let aligned = m.score(&cand(48, 8 * MIB));
        let misaligned = m.score(&cand(48, 8 * MIB + 4096));
        assert!(aligned < misaligned, "{aligned} vs {misaligned}");
    }

    #[test]
    fn model_rewards_parallel_osts_up_to_the_stripe_count() {
        let profile = theta_profile(64, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = theta_spec(256, 4 * MIB);
        let m = CostModel::new(&profile, &storage, &spec).unwrap();
        assert!(m.score(&cand(32, 8 * MIB)) < m.score(&cand(1, 8 * MIB)));
    }

    #[test]
    fn model_ranks_topology_aware_at_or_above_worst_case() {
        let profile = mira_profile(128, 4);
        let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
        let spec = CollectiveSpec {
            groups: vec![GroupSpec {
                file: 0,
                ranks: (0..512).collect(),
                decls: (0..512u64).map(|r| vec![WriteDecl { offset: r * MIB, len: MIB }]).collect(),
            }],
            mode: AccessMode::Write,
        };
        let m = CostModel::new(&profile, &storage, &spec).unwrap();
        let ta = m.score(&cand(16, 16 * MIB));
        let worst = m.score(&Candidate {
            strategy: PlacementStrategy::WorstCase,
            ..cand(16, 16 * MIB)
        });
        assert!(ta <= worst);
    }

    #[test]
    fn infeasible_candidates_score_infinite() {
        let profile = theta_profile(64, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let m = CostModel::new(&profile, &storage, &theta_spec(64, MIB)).unwrap();
        assert_eq!(m.score(&cand(0, MIB)), f64::INFINITY);
        let too_big = Candidate {
            tier: TierAssignment::McdramDirect,
            ..cand(4, 9 * GIB)
        };
        assert_eq!(m.score(&too_big), f64::INFINITY);
    }

    #[test]
    fn zero_byte_groups_cost_nothing() {
        let profile = theta_profile(64, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = CollectiveSpec {
            groups: vec![GroupSpec {
                file: 0,
                ranks: vec![0, 1],
                decls: vec![vec![WriteDecl { offset: 0, len: 0 }], vec![]],
            }],
            mode: AccessMode::Write,
        };
        let m = CostModel::new(&profile, &storage, &spec).unwrap();
        assert_eq!(m.score(&cand(4, MIB)), 0.0);
    }

    #[test]
    fn mismatched_storage_kind_is_rejected() {
        let profile = mira_profile(128, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let err = CostModel::new(&profile, &storage, &theta_spec(16, MIB)).unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn sim_keys_ignore_the_tier_and_coalescing_dimensions() {
        let a = cand(8, MIB);
        let b = Candidate { tier: TierAssignment::McdramBurstBuffer, ..a };
        assert_eq!(a.sim_key(), b.sim_key());
        let co = Candidate { coalescing: true, ..a };
        assert_eq!(a.sim_key(), co.sim_key());
        let c = Candidate { aggregators: 9, ..a };
        assert_ne!(a.sim_key(), c.sim_key());
    }

    #[test]
    fn coalescing_wins_on_dense_nodes_and_loses_on_sparse_ones() {
        // 16 ranks/node, many small chunks: the merged-put latency
        // saving dominates the extra gather copy.
        let dense = theta_profile(16, 16);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let spec = theta_spec(256, 8 * 1024);
        let m = CostModel::new(&dense, &storage, &spec).unwrap();
        let raw = cand(8, MIB);
        let co = Candidate { coalescing: true, ..raw };
        assert!(
            m.score(&co) < m.score(&raw),
            "16 rpn small chunks must favour coalescing: {} vs {}",
            m.score(&co),
            m.score(&raw)
        );

        // 1 rank/node: no runs can form, so coalescing must not be
        // scored cheaper than raw.
        let sparse = theta_profile(64, 1);
        let spec = theta_spec(64, 4 * MIB);
        let m = CostModel::new(&sparse, &storage, &spec).unwrap();
        let raw = cand(8, MIB);
        let co = Candidate { coalescing: true, ..raw };
        assert!(m.score(&co) >= m.score(&raw), "1 rpn has nothing to merge");
    }
}
