//! Schedule statistics: quantifying the paper's Fig. 2.
//!
//! Fig. 2 of the paper contrasts three independent collective MPI I/O
//! writes — each flushing an almost-empty aggregation buffer — with
//! TAPIOCA aggregating all declared variables into full buffers. This
//! module measures that mechanism on a concrete [`Schedule`]: buffer
//! fill factors, flush segment counts and sizes, and per-aggregator
//! load balance. The `fig02` bench binary prints the comparison the
//! figure illustrates.

use crate::schedule::Schedule;

#[cfg(feature = "trace")]
pub use tapioca_trace::{Trace, TraceSummary};

/// Render a [`TraceSummary`] as a compact human-readable report —
/// the executed counterpart of [`ScheduleStats`]: where `schedule_stats`
/// predicts rounds and fill factors from the schedule, this reports what
/// an executor (thread mode or the simulator) actually recorded.
#[cfg(feature = "trace")]
pub fn trace_report(s: &TraceSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "rounds:             {}", s.rounds);
    let _ = writeln!(out, "aggregation bytes:  {} ({} puts)", s.aggregation_bytes, s.puts);
    let _ = writeln!(out, "io bytes:           {} ({} flushes)", s.io_bytes, s.flushes);
    let _ = writeln!(out, "fences:             {}", s.fences);
    let _ = writeln!(out, "overlap fraction:   {:.3}", s.overlap_fraction);
    let _ = writeln!(out, "aggregator fills:");
    for (rank, bytes) in &s.aggregator_fill_bytes {
        let _ = writeln!(out, "  rank {rank}: {bytes} B");
    }
    out
}

/// Aggregate statistics of one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Partitions carrying at least one byte.
    pub active_partitions: usize,
    /// Total rounds across partitions.
    pub total_rounds: usize,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Mean buffer fill factor over *non-final* rounds (final rounds are
    /// legitimately partial); 1.0 means every flushed buffer was full —
    /// the TAPIOCA side of Fig. 2.
    pub mean_fill: f64,
    /// Smallest fill factor over non-final rounds.
    pub min_fill: f64,
    /// Total flush segments (contiguous file ranges written).
    pub flush_segments: usize,
    /// Mean flush segment length, bytes.
    pub mean_segment: f64,
    /// Max / min bytes over active partitions (aggregator load balance;
    /// 1.0 is perfect).
    pub load_imbalance: f64,
}

/// Compute statistics for a schedule.
///
/// Fill factors are measured against the configured buffer size, using
/// each partition's non-final rounds (every partition's last round may
/// be partial by construction).
pub fn schedule_stats(s: &Schedule) -> ScheduleStats {
    let buf = s.params.buffer_size as f64;
    let mut fills = Vec::new();
    let mut segments = 0usize;
    let mut seg_bytes = 0u64;
    let mut per_part = Vec::new();
    let mut total_rounds = 0usize;

    for p in &s.partitions {
        let bytes = p.total_bytes();
        if bytes == 0 {
            continue;
        }
        per_part.push(bytes);
        total_rounds += p.rounds.len();
        for (r, round) in p.rounds.iter().enumerate() {
            segments += round.segments.len();
            seg_bytes += round.bytes;
            if r + 1 < p.rounds.len() {
                fills.push(round.bytes as f64 / buf);
            }
        }
    }

    let mean_fill = if fills.is_empty() {
        1.0 // single-round partitions only: nothing was avoidably partial
    } else {
        fills.iter().sum::<f64>() / fills.len() as f64
    };
    let min_fill = fills.iter().copied().fold(1.0, f64::min);
    let (max_b, min_b) = per_part
        .iter()
        .fold((0u64, u64::MAX), |(mx, mn), &b| (mx.max(b), mn.min(b)));
    ScheduleStats {
        active_partitions: per_part.len(),
        total_rounds,
        total_bytes: per_part.iter().sum(),
        mean_fill,
        min_fill,
        flush_segments: segments,
        mean_segment: if segments == 0 { 0.0 } else { seg_bytes as f64 / segments as f64 },
        load_imbalance: if per_part.is_empty() || min_b == 0 {
            f64::INFINITY
        } else {
            max_b as f64 / min_b as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{compute_schedule, ScheduleParams, WriteDecl};

    fn dense(n: usize, per: u64) -> Vec<Vec<WriteDecl>> {
        (0..n as u64)
            .map(|r| vec![WriteDecl { offset: r * per, len: per }])
            .collect()
    }

    #[test]
    fn dense_schedule_fills_buffers_completely() {
        let s = compute_schedule(&dense(8, 1024), ScheduleParams {
            num_aggregators: 4,
            buffer_size: 256,
            align_to_buffer: true,
        });
        let st = schedule_stats(&s);
        assert_eq!(st.total_bytes, 8192);
        assert_eq!(st.mean_fill, 1.0);
        assert_eq!(st.min_fill, 1.0);
        assert_eq!(st.load_imbalance, 1.0);
        assert_eq!(st.mean_segment, 256.0);
    }

    #[test]
    fn sparse_single_var_schedule_has_partial_buffers() {
        // Like one SoA collective call: only 1/4 of each window holds
        // data (var segment of 64 B inside a 256 B rank block).
        let decls: Vec<Vec<WriteDecl>> = (0..8u64)
            .map(|r| vec![WriteDecl { offset: r * 256, len: 64 }])
            .collect();
        let s = compute_schedule(&decls, ScheduleParams {
            num_aggregators: 2,
            buffer_size: 256,
            align_to_buffer: true,
        });
        let st = schedule_stats(&s);
        assert!(st.mean_fill < 0.5, "sparse declarations must show partial fill, got {}", st.mean_fill);
        assert_eq!(st.total_bytes, 512);
    }

    #[test]
    fn empty_schedule() {
        let s = compute_schedule(&[vec![], vec![]], ScheduleParams {
            num_aggregators: 2,
            buffer_size: 64,
            align_to_buffer: true,
        });
        let st = schedule_stats(&s);
        assert_eq!(st.active_partitions, 0);
        assert_eq!(st.total_bytes, 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_report_names_every_counter() {
        use tapioca_trace::{Phase, Trace, TraceEvent, TraceOp, NO_OFFSET, NO_PEER};
        let t = Trace::from_events(vec![
            TraceEvent {
                t_ns: 1,
                rank: 0,
                partition: 0,
                round: 0,
                phase: Phase::Aggregation,
                op: TraceOp::RmaPut,
                bytes: 64,
                offset: NO_OFFSET,
                peer: 1,
                coalesced: 0,
            },
            TraceEvent {
                t_ns: 2,
                rank: 1,
                partition: 0,
                round: 0,
                phase: Phase::Io,
                op: TraceOp::Flush,
                bytes: 64,
                offset: NO_OFFSET,
                peer: NO_PEER,
                coalesced: 0,
            },
        ]);
        let rep = trace_report(&t.summary());
        assert!(rep.contains("aggregation bytes:  64 (1 puts)"));
        assert!(rep.contains("io bytes:           64 (1 flushes)"));
        assert!(rep.contains("rank 1: 64 B"));
    }

    #[test]
    fn segment_counting_matches_rounds() {
        let s = compute_schedule(&dense(4, 100), ScheduleParams {
            num_aggregators: 1,
            buffer_size: 64,
            align_to_buffer: true,
        });
        let st = schedule_stats(&s);
        // dense file: one segment per round
        assert_eq!(st.flush_segments, st.total_rounds);
    }
}
