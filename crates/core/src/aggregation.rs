//! Thread-mode execution of the aggregation pipeline — Algorithm 3 of
//! the paper, run for real on `tapioca-mpi` primitives.
//!
//! Per partition (every rank processes the partitions it has data in, in
//! ascending index order — a global total order, so overlapping
//! partition memberships cannot deadlock):
//!
//! 1. the members form a sub-communicator and elect their aggregator
//!    with an `allreduce(MINLOC)` over the placement cost;
//! 2. the aggregator exposes **two** pipeline buffers in an RMA window;
//! 3. for each round `r`: members `put` their chunks into buffer
//!    `r % 2`; a fence closes the epoch; the aggregator launches a
//!    *non-blocking* flush of that buffer and — before releasing the next
//!    round — waits for the flush that previously used the *other*
//!    buffer (round `r-1`'s fill target is only reused in round `r+1`);
//!    a second fence releases the members into round `r + 1`.
//!
//! The net effect is the paper's overlap: the flush of round `r` runs
//! concurrently with the puts of round `r + 1`.
//!
//! ## Fault handling
//!
//! When the config carries a [`tapioca_mpi::FaultPlan`], the pipeline
//! consults it *purely*: every member derives the identical fault
//! schedule from the plan's seed, so recovery decisions are collectively
//! computable and no extra messaging (which could itself deadlock) is
//! needed. Three rungs, in escalating order:
//!
//! * **Transient flush errors** within the retry budget are absorbed by
//!   the file worker (bounded retry with exponential backoff under the
//!   config's [`tapioca_mpi::IoPolicy`]); the aggregator records one
//!   `Retry` trace event per failed attempt.
//! * **Aggregator crash** at round `cr`: the crashed aggregator is
//!   demoted after the fence that closes round `cr` (its in-flight
//!   flushes are drained first, so rounds `< cr` are durable); the
//!   members re-elect a standby via the same MINLOC with the dead
//!   candidate's cost forced to infinity, allocate a fresh window (a new
//!   fence epoch), and *replay* the lost round's puts into it. Rounds
//!   `>= cr` then flow through the standby.
//! * **Graceful degradation**: a fault that exhausts the retry budget
//!   (or a declared stall) is detected *before* the round runs — every
//!   member writes its own remaining chunks directly to the file and the
//!   partition exits through one barrier. Slower, but deadlock-free and
//!   byte-identical.

use tapioca_mpi::{Comm, IoHandle, SharedFile, Window};
use tapioca_topology::TopologyProvider;

#[cfg(feature = "trace")]
use std::sync::Arc;
#[cfg(feature = "trace")]
use tapioca_trace::TraceScope;

use crate::config::TapiocaConfig;
use crate::error::{io_err, Result};
use crate::placement::election_cost;
use crate::schedule::{FlushSegment, Schedule};

/// Key namespace so several `Tapioca` instances on one communicator
/// never collide in the subgroup registry.
fn subgroup_key(epoch: u64, partition: usize) -> u64 {
    epoch * 1_000_000 + partition as u64
}

/// Per-rank instrumentation of one pipeline run — what this rank's
/// thread actually did, for observability and for tests that check the
/// executed traffic against the schedule's predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Partitions this rank participated in.
    pub partitions: usize,
    /// Partitions this rank was elected aggregator of (re-elections
    /// included).
    pub elected: usize,
    /// One-sided puts issued (one per chunk; crash replays re-count).
    pub puts: u64,
    /// Bytes deposited via puts.
    pub put_bytes: u64,
    /// Fences passed.
    pub fences: u64,
    /// Flush operations issued (as aggregator).
    pub flushes: u64,
    /// Bytes flushed to the file (as aggregator).
    pub flush_bytes: u64,
    /// Faults injected from the config's plan (failed flush attempts,
    /// crashes, degrade triggers; counted once per partition event).
    pub faults_injected: u64,
    /// Flush retries performed by the file worker for this rank's
    /// aggregated segments.
    pub retries: u64,
    /// Standby re-elections after an aggregator crash (counted by the
    /// partition's lowest member).
    pub reelections: u64,
    /// Partitions this rank participated in that fell back to direct
    /// per-rank writes (every member counts its own participation, so
    /// each rank can report a degraded outcome).
    pub degraded: u64,
}

impl IoStats {
    /// Accumulate another run's counters.
    pub fn merge(&mut self, other: &IoStats) {
        self.partitions += other.partitions;
        self.elected += other.elected;
        self.puts += other.puts;
        self.put_bytes += other.put_bytes;
        self.fences += other.fences;
        self.flushes += other.flushes;
        self.flush_bytes += other.flush_bytes;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.reelections += other.reelections;
        self.degraded += other.degraded;
    }
}

/// One in-flight flush plus what is needed to recover it: its segment
/// and the window slot it was read from (the slot is not refilled until
/// the round after the drain, so its bytes are intact for a fallback).
struct Flight {
    handle: IoHandle,
    seg: FlushSegment,
    slot: usize,
}

/// Wait for one in-flight flush; on failure or timeout, fall back to a
/// synchronous direct write of the same bytes (from the reclaimed buffer
/// when the worker handed it back, else re-read from the window slot).
#[allow(clippy::too_many_arguments)]
fn settle_flight(
    f: Flight,
    win: &Window,
    my_idx: usize,
    b: usize,
    file: &SharedFile,
    timeout: std::time::Duration,
    free_bufs: &mut Vec<Vec<u8>>,
) -> Result<()> {
    let Flight { handle, seg, slot } = f;
    let (buf, err) = handle.wait_parts_timeout(Some(timeout));
    match err {
        None => {
            free_bufs.extend(buf);
            Ok(())
        }
        Some(_) => {
            let data = match buf {
                Some(d) => d,
                None => {
                    // Timed out: the worker still owns the buffer, but
                    // the window slot it was filled from is only reused
                    // two rounds later — its bytes are still intact.
                    let mut d = vec![0u8; seg.len as usize];
                    win.read_local_into(my_idx, slot * b + seg.buf_offset as usize, &mut d);
                    d
                }
            };
            file.write_at(seg.file_offset, &data).map_err(|e| io_err("write_at", e))
        }
    }
}

/// Run the write pipeline for this rank. `staged[var]` holds the data of
/// the rank's declared write `var`; lengths must match the declarations
/// used to compute `schedule`.
pub fn run_write_pipeline(
    comm: &Comm,
    schedule: &Schedule,
    staged: &[Vec<u8>],
    file: &SharedFile,
    cfg: &TapiocaConfig,
    topo: &dyn TopologyProvider,
    epoch: u64,
) -> Result<IoStats> {
    let me = comm.rank();
    let b = cfg.buffer_size as usize;
    let policy = cfg.io_policy;
    let mut stats = IoStats::default();

    for part in &schedule.partitions {
        if part.members.binary_search(&me).is_err() {
            continue;
        }
        let pcomm = comm.subgroup(&part.members, subgroup_key(epoch, part.index));
        let my_idx = pcomm.rank();

        // Aggregator election: my cost, MINLOC across the partition.
        let io = topo.io_nodes_for(&part.members).first().copied().unwrap_or(0);
        let my_cost = election_cost(
            topo,
            &part.members,
            &part.member_bytes,
            io,
            part.index,
            cfg.strategy,
            my_idx,
        );
        let (_, mut agg_idx) = pcomm.allreduce_min_loc(my_cost);
        stats.partitions += 1;
        if my_idx == agg_idx {
            stats.elected += 1;
        }

        // Fault schedule of this partition, derived identically by every
        // member (pure functions of the plan): the crash round (only
        // meaningful with a standby available) and the first round whose
        // injected fault exhausts the retry budget.
        let plan = cfg.faults.as_ref();
        let nrounds = part.rounds.len();
        let crash_round: Option<usize> = plan
            .and_then(|p| p.crash_at(part.index as u32))
            .map(|cr| cr as usize)
            .filter(|&cr| part.members.len() > 1 && cr < nrounds);
        let degrade_at: Option<usize> = plan.and_then(|p| {
            (0..nrounds).find(|&r| {
                part.rounds[r].segments.iter().enumerate().any(|(s, _)| {
                    p.flush_fault(part.index as u32, r as u32, s as u32)
                        .is_some_and(|h| h.exceeds(&policy))
                })
            })
        });

        let mut win = Window::allocate(&pcomm, if my_idx == agg_idx { 2 * b } else { 0 });
        // Attach this rank's trace scope to the window so puts and
        // fences are recorded at their call sites. The election result
        // is recorded once per partition, by the lowest member.
        #[cfg(feature = "trace")]
        if let Some(tracer) = &cfg.tracer {
            let scope =
                TraceScope::new(Arc::clone(tracer), me, part.index as u32, part.members.clone());
            if my_idx == 0 {
                scope.elect(part.members[agg_idx], part.total_bytes());
            }
            win.set_trace_scope(scope);
        }
        let mut inflight: [Vec<Flight>; 2] = [Vec::new(), Vec::new()];
        // Flush buffers reclaimed from completed writes, refilled with
        // `read_local_into`: after warm-up the drain loop allocates
        // nothing per round.
        let mut free_bufs: Vec<Vec<u8>> = Vec::new();
        // First round replayed through a re-elected standby; window slot
        // of round r is (r - base) % 2 so the fresh window starts at 0.
        let mut base = 0usize;

        let my_chunks: Vec<_> = schedule.chunks_by_rank[me]
            .iter()
            .filter(|c| c.partition == part.index)
            .collect();

        for (r, round) in part.rounds.iter().enumerate() {
            #[cfg(feature = "trace")]
            if let Some(scope) = win.trace_scope() {
                scope.set_round(r as u32);
            }

            // Graceful degradation: a fault at this round exhausts the
            // retry budget. Every member knows (the plan is shared), so
            // instead of collectively feeding an aggregator that cannot
            // flush, each member writes its own remaining chunks
            // directly. Slower, but byte-identical and deadlock-free.
            if degrade_at == Some(r) {
                #[cfg(feature = "trace")]
                if my_idx == 0 {
                    if let Some(scope) = win.trace_scope() {
                        let remaining: u64 =
                            part.rounds[r..].iter().map(|rd| rd.bytes).sum();
                        scope.degrade(remaining);
                    }
                }
                for c in my_chunks.iter().filter(|c| c.round as usize >= r) {
                    let data = &staged[c.var]
                        [c.var_offset as usize..(c.var_offset + c.len) as usize];
                    file.write_at(c.file_offset, data).map_err(|e| io_err("write_at", e))?;
                }
                if my_idx == agg_idx {
                    for fs in &mut inflight {
                        for f in fs.drain(..) {
                            settle_flight(
                                f,
                                &win,
                                my_idx,
                                b,
                                file,
                                policy.op_timeout,
                                &mut free_bufs,
                            )?;
                        }
                    }
                }
                stats.degraded += 1;
                if my_idx == 0 {
                    stats.faults_injected += 1;
                }
                break;
            }

            let mut buf = (r - base) % 2;
            for c in my_chunks.iter().filter(|c| c.round as usize == r) {
                let data = &staged[c.var]
                    [c.var_offset as usize..(c.var_offset + c.len) as usize];
                win.put(agg_idx, buf * b + c.buf_offset as usize, data);
                stats.puts += 1;
                stats.put_bytes += c.len;
            }
            // Close the access epoch of round r.
            win.fence(&pcomm);
            stats.fences += 1;

            // Aggregator crash: the fill of round r is lost with the
            // crashed window. Drain the old aggregator's in-flight
            // flushes (rounds < r stay durable), re-elect a standby with
            // the dead candidate excluded, open a fresh window (a new
            // fence epoch for the checker), and replay round r into it.
            if crash_round == Some(r) {
                let old_agg = agg_idx;
                if my_idx == old_agg {
                    for fs in &mut inflight {
                        for f in fs.drain(..) {
                            settle_flight(
                                f,
                                &win,
                                my_idx,
                                b,
                                file,
                                policy.op_timeout,
                                &mut free_bufs,
                            )?;
                        }
                    }
                }
                #[cfg(feature = "trace")]
                if my_idx == 0 {
                    if let Some(scope) = win.trace_scope() {
                        scope.crash(part.members[old_agg]);
                    }
                }
                let standby_cost = if my_idx == old_agg { f64::INFINITY } else { my_cost };
                let (_, new_agg) = pcomm.allreduce_min_loc(standby_cost);
                agg_idx = new_agg;
                if my_idx == 0 {
                    stats.reelections += 1;
                    stats.faults_injected += 1;
                }
                if my_idx == agg_idx {
                    stats.elected += 1;
                }
                win = Window::allocate(&pcomm, if my_idx == agg_idx { 2 * b } else { 0 });
                #[cfg(feature = "trace")]
                if let Some(tracer) = &cfg.tracer {
                    let scope = TraceScope::new(
                        Arc::clone(tracer),
                        me,
                        part.index as u32,
                        part.members.clone(),
                    );
                    scope.set_round(r as u32);
                    // Every member marks the epoch reset on its own lane
                    // before any replayed put.
                    scope.reelect(part.members[agg_idx]);
                    win.set_trace_scope(scope);
                }
                base = r;
                buf = 0;
                for c in my_chunks.iter().filter(|c| c.round as usize == r) {
                    let data = &staged[c.var]
                        [c.var_offset as usize..(c.var_offset + c.len) as usize];
                    win.put(agg_idx, c.buf_offset as usize, data);
                    stats.puts += 1;
                    stats.put_bytes += c.len;
                }
                win.fence(&pcomm);
                stats.fences += 1;
            }

            if my_idx == agg_idx {
                let mut handles: Vec<Flight> = Vec::with_capacity(round.segments.len());
                for (s, seg) in round.segments.iter().enumerate() {
                    let hint =
                        plan.and_then(|p| p.flush_fault(part.index as u32, r as u32, s as u32));
                    if let Some(h) = &hint {
                        // Within-budget by construction (the exhausting
                        // round degrades above); count the injected
                        // failures and record one Retry event each.
                        stats.faults_injected += h.fail_attempts as u64;
                        stats.retries += h.fail_attempts as u64;
                        #[cfg(feature = "trace")]
                        if let Some(scope) = win.trace_scope() {
                            for _ in 0..h.fail_attempts {
                                scope.retry(seg.file_offset, seg.len);
                            }
                        }
                    }
                    let mut data = free_bufs.pop().unwrap_or_default();
                    data.resize(seg.len as usize, 0);
                    win.read_local_into(my_idx, buf * b + seg.buf_offset as usize, &mut data);
                    stats.flushes += 1;
                    stats.flush_bytes += seg.len;
                    #[cfg(feature = "trace")]
                    let h = file.iwrite_at_policy(
                        seg.file_offset,
                        data,
                        policy,
                        hint,
                        win.trace_scope().map(|s| s.stamp()),
                    );
                    #[cfg(not(feature = "trace"))]
                    let h = file.iwrite_at_policy(seg.file_offset, data, policy, hint);
                    handles.push(Flight { handle: h, seg: *seg, slot: buf });
                }
                if cfg.pipelining {
                    inflight[buf] = handles;
                    // Round r+1 fills the other buffer; its previous
                    // flush (round r-1) must have drained first.
                    for f in inflight[(buf + 1) % 2].drain(..) {
                        settle_flight(
                            f,
                            &win,
                            my_idx,
                            b,
                            file,
                            policy.op_timeout,
                            &mut free_bufs,
                        )?;
                    }
                } else {
                    for f in handles {
                        settle_flight(
                            f,
                            &win,
                            my_idx,
                            b,
                            file,
                            policy.op_timeout,
                            &mut free_bufs,
                        )?;
                    }
                }
            }
            // Release every member into round r+1 only after the
            // aggregator confirmed the reused buffer is free.
            win.fence(&pcomm);
            stats.fences += 1;
        }

        if my_idx == agg_idx {
            for fs in &mut inflight {
                for f in fs.drain(..) {
                    settle_flight(f, &win, my_idx, b, file, policy.op_timeout, &mut free_bufs)?;
                }
            }
        }
        // All flushes of this partition are durable before anyone leaves.
        pcomm.barrier();
    }
    Ok(stats)
}

/// Run the two-phase *read* pipeline: aggregators read each round's
/// segments from the file into their window buffer; members fetch their
/// chunks with one-sided `get`s. Returns one buffer per declared var.
///
/// Reads use a single buffer (no flush to overlap with); the paper's
/// machinery — partitions, election, rounds, fences — is identical.
/// Faults are not injected on the read path.
pub fn run_read_pipeline(
    comm: &Comm,
    schedule: &Schedule,
    var_lens: &[u64],
    file: &SharedFile,
    cfg: &TapiocaConfig,
    topo: &dyn TopologyProvider,
    epoch: u64,
) -> Result<Vec<Vec<u8>>> {
    let me = comm.rank();
    let b = cfg.buffer_size as usize;
    let mut out: Vec<Vec<u8>> = var_lens.iter().map(|&l| vec![0u8; l as usize]).collect();

    for part in &schedule.partitions {
        if part.members.binary_search(&me).is_err() {
            continue;
        }
        let pcomm = comm.subgroup(&part.members, subgroup_key(epoch, part.index));
        let my_idx = pcomm.rank();
        let io = topo.io_nodes_for(&part.members).first().copied().unwrap_or(0);
        let my_cost = election_cost(
            topo,
            &part.members,
            &part.member_bytes,
            io,
            part.index,
            cfg.strategy,
            my_idx,
        );
        let (_, agg_idx) = pcomm.allreduce_min_loc(my_cost);
        let win = Window::allocate(&pcomm, if my_idx == agg_idx { b } else { 0 });

        let my_chunks: Vec<_> = schedule.chunks_by_rank[me]
            .iter()
            .filter(|c| c.partition == part.index)
            .collect();

        for (r, round) in part.rounds.iter().enumerate() {
            if my_idx == agg_idx {
                for seg in &round.segments {
                    let data = file
                        .read_at(seg.file_offset, seg.len as usize)
                        .map_err(|e| io_err("read_at", e))?;
                    win.write_local(my_idx, seg.buf_offset as usize, &data);
                }
            }
            win.fence(&pcomm);
            for c in my_chunks.iter().filter(|c| c.round as usize == r) {
                // One-sided read straight into the output buffer — no
                // intermediate Vec per chunk.
                win.get_into(
                    agg_idx,
                    c.buf_offset as usize,
                    &mut out[c.var][c.var_offset as usize..(c.var_offset + c.len) as usize],
                );
            }
            win.fence(&pcomm);
        }
        pcomm.barrier();
    }
    Ok(out)
}
