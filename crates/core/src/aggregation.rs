//! Thread-mode execution of the aggregation pipeline — Algorithm 3 of
//! the paper, run for real on `tapioca-mpi` primitives.
//!
//! Per partition (every rank processes the partitions it has data in, in
//! ascending index order — a global total order, so overlapping
//! partition memberships cannot deadlock):
//!
//! 1. the members form a sub-communicator and elect their aggregator
//!    with an `allreduce(MINLOC)` over the placement cost;
//! 2. the aggregator exposes **two** pipeline buffers in an RMA window;
//! 3. for each round `r`: members `put` their chunks into buffer
//!    `r % 2`; a fence closes the epoch; the aggregator launches a
//!    *non-blocking* flush of that buffer and — before releasing the next
//!    round — waits for the flush that previously used the *other*
//!    buffer (round `r-1`'s fill target is only reused in round `r+1`);
//!    a second fence releases the members into round `r + 1`.
//!
//! The net effect is the paper's overlap: the flush of round `r` runs
//! concurrently with the puts of round `r + 1`.
//!
//! ## Execution drivers
//!
//! The pipeline state of one partition lives in `PartitionRun`:
//! election results, the RMA window, the in-flight flush slots, and the
//! fault schedule. Rounds are executed one at a time through
//! `PartitionRun::run_round`, pulling payload bytes from a
//! `ChunkSource`. Two drivers share this machinery:
//!
//! * [`run_write_pipeline`] — the *batch* driver: all payloads are at
//!   hand (a `StagedSource`), so it simply runs every round of every
//!   partition back to back. The baseline and equivalence tests use it
//!   as the reference executor.
//! * the *streaming* session in [`crate::api`] — rounds run as soon as
//!   their contributions arrive at `write()` call sites, and partition
//!   state is cached across epochs (`CachedPart`) so repeated
//!   checkpoints skip subgroup formation, election, and window
//!   allocation.
//!
//! Both drivers issue the identical collective sequence, so file bytes,
//! traces, and stats cannot diverge between them.
//!
//! ## Fault handling
//!
//! When the config carries a [`tapioca_mpi::FaultPlan`], the pipeline
//! consults it *purely*: every member derives the identical fault
//! schedule from the plan's seed, so recovery decisions are collectively
//! computable and no extra messaging (which could itself deadlock) is
//! needed. Three rungs, in escalating order:
//!
//! * **Transient flush errors** within the retry budget are absorbed by
//!   the file worker (bounded retry with exponential backoff under the
//!   config's [`tapioca_mpi::IoPolicy`]); the aggregator records one
//!   `Retry` trace event per failed attempt.
//! * **Aggregator crash** at round `cr`: the crashed aggregator is
//!   demoted after the fence that closes round `cr` (its in-flight
//!   flushes are drained first, so rounds `< cr` are durable); the
//!   members re-elect a standby via the same MINLOC with the dead
//!   candidate's cost forced to infinity, allocate a fresh window (a new
//!   fence epoch), and *replay* the lost round's puts into it. Rounds
//!   `>= cr` then flow through the standby.
//! * **Graceful degradation**: a fault that exhausts the retry budget
//!   (or a declared stall) is detected *before* the round runs — every
//!   member writes its own remaining chunks directly to the file and the
//!   partition exits through one barrier. Slower, but deadlock-free and
//!   byte-identical. `run_round` reports the degrade to its driver,
//!   which performs the direct writes (the batch driver immediately;
//!   the streaming session as the remaining bytes arrive).

use std::sync::Arc;

use tapioca_mpi::{Comm, DepositBoard, IoError, IoHandle, Rank, SharedFile, Window};
use tapioca_topology::TopologyProvider;

#[cfg(feature = "trace")]
use tapioca_trace::TraceScope;

use crate::config::TapiocaConfig;
use crate::error::{io_err, Result};
use crate::placement::election_cost;
use crate::schedule::{
    compute_coalesce_plan, Chunk, CoalescePlan, FlushSegment, PartitionInfo, Schedule,
};

/// Key namespace so several `Tapioca` instances on one communicator
/// never collide in the subgroup registry.
fn subgroup_key(epoch: u64, partition: usize) -> u64 {
    epoch * 1_000_000 + partition as u64
}

/// Per-rank instrumentation of one pipeline run — what this rank's
/// thread actually did, for observability and for tests that check the
/// executed traffic against the schedule's predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Partitions this rank participated in.
    pub partitions: usize,
    /// Partitions this rank was elected aggregator of (re-elections
    /// included).
    pub elected: usize,
    /// One-sided wire puts issued: one per uncoalesced chunk plus one
    /// per merged run led by this rank (crash replays re-count).
    pub puts: u64,
    /// Bytes deposited via puts.
    pub put_bytes: u64,
    /// Fences passed.
    pub fences: u64,
    /// Flush operations issued (as aggregator).
    pub flushes: u64,
    /// Bytes flushed to the file (as aggregator).
    pub flush_bytes: u64,
    /// Faults injected from the config's plan (failed flush attempts,
    /// crashes, degrade triggers; counted once per partition event).
    pub faults_injected: u64,
    /// Flush retries performed by the file worker for this rank's
    /// aggregated segments.
    pub retries: u64,
    /// Standby re-elections after an aggregator crash (counted by the
    /// partition's lowest member).
    pub reelections: u64,
    /// Partitions this rank participated in that fell back to direct
    /// per-rank writes (every member counts its own participation, so
    /// each rank can report a degraded outcome).
    pub degraded: u64,
    /// Merged puts issued by this rank as a node leader (each replaces
    /// `>= 2` ordinary puts on the wire).
    pub coalesced_puts: u64,
    /// This rank's chunks that travelled inside a merged put (deposited
    /// into a node leader's gather buffer instead of being put
    /// individually).
    pub coalesced_chunks: u64,
    /// Bytes copied into pending staging buffers by the streaming
    /// session because they arrived before (or after) the round that
    /// consumes them could run. Zero for in-order call sequences — the
    /// streamed payload then flows straight from the caller's slice
    /// into the RMA window.
    pub staging_copy_bytes: u64,
}

impl IoStats {
    /// Accumulate another run's counters.
    pub fn merge(&mut self, other: &IoStats) {
        self.partitions += other.partitions;
        self.elected += other.elected;
        self.puts += other.puts;
        self.put_bytes += other.put_bytes;
        self.fences += other.fences;
        self.flushes += other.flushes;
        self.flush_bytes += other.flush_bytes;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.reelections += other.reelections;
        self.degraded += other.degraded;
        self.coalesced_puts += other.coalesced_puts;
        self.coalesced_chunks += other.coalesced_chunks;
        self.staging_copy_bytes += other.staging_copy_bytes;
    }
}

/// Where `run_round` reads the payload of a chunk from. `idx` is the
/// chunk's position in the partition chunk slice handed to `run_round`,
/// letting the streaming session address its per-chunk state without
/// searching.
pub(crate) trait ChunkSource {
    /// The bytes of chunk `c` (this rank's `idx`-th chunk of the
    /// partition being run).
    fn chunk_data(&self, idx: usize, c: &Chunk) -> &[u8];
}

/// Batch source: every declared variable fully materialized, indexed by
/// `Chunk::var` / `Chunk::var_offset`.
pub(crate) struct StagedSource<'a>(pub &'a [Vec<u8>]);

impl ChunkSource for StagedSource<'_> {
    fn chunk_data(&self, _idx: usize, c: &Chunk) -> &[u8] {
        &self.0[c.var][c.var_offset as usize..(c.var_offset + c.len) as usize]
    }
}

/// One in-flight flush plus what is needed to recover it: its segment
/// and the window slot it was read from (the slot is not refilled until
/// the round after the drain, so its bytes are intact for a fallback).
struct Flight {
    handle: IoHandle,
    seg: FlushSegment,
    slot: usize,
}

/// Settle one completed (or failed) zero-copy flush: nothing to do on
/// success (the worker drained the window views in place); on failure,
/// fall back to a synchronous direct write of the same bytes, re-read
/// from the window slot — it is only refilled two rounds after the
/// flush launch, so its bytes are intact even after a timeout.
fn settle_parts(
    err: Option<IoError>,
    seg: FlushSegment,
    slot: usize,
    win: &Window,
    my_idx: usize,
    b: usize,
    file: &SharedFile,
) -> Result<()> {
    match err {
        None => Ok(()),
        Some(_) => {
            let mut d = vec![0u8; seg.len as usize];
            win.read_local_into(my_idx, slot * b + seg.buf_offset as usize, &mut d);
            file.write_at(seg.file_offset, &d).map_err(|e| io_err("write_at", e))
        }
    }
}

/// Wait for one in-flight flush, then settle it (see [`settle_parts`]).
fn settle_flight(
    f: Flight,
    win: &Window,
    my_idx: usize,
    b: usize,
    file: &SharedFile,
    timeout: std::time::Duration,
) -> Result<()> {
    let Flight { handle, seg, slot } = f;
    let (_, err) = handle.wait_parts_timeout(Some(timeout));
    settle_parts(err, seg, slot, win, my_idx, b, file)
}

/// What [`PartitionRun::run_round`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundOutcome {
    /// The round's puts, fences, and flush executed; the run advanced.
    Ran,
    /// The partition degraded *at* this round: the fault schedule
    /// exhausts the retry budget here, so no collective work ran. The
    /// driver must write every remaining chunk (round `>=` the current
    /// [`PartitionRun::next_round`]) directly to the file, then call
    /// [`PartitionRun::finish`].
    Degraded,
}

/// Per-rank coalescing state of one partition: the shared run plan,
/// the node-leader gather window (one full aggregation buffer on
/// leaders, empty elsewhere, finely paned so concurrent member
/// deposits rarely contend), and the deposit board tracking how many
/// chunks of the leader's runs have landed this round. Deposits land
/// at their chunk's `buf_offset`, so every run the leader owns in a
/// round reads its packed range directly; fences separate rounds, so
/// a single gather buffer (no double buffering) suffices. The
/// rendezvous is wait-free: the depositor whose counter bump reaches
/// the round's expected total (a pure function of the plan) forwards
/// the leader's merged runs itself and retires the count, so no
/// thread ever blocks waiting for co-members.
pub(crate) struct GatherCtx {
    plan: Arc<CoalescePlan>,
    gather: Window,
    board: DepositBoard,
}

/// Partition state worth keeping across epochs when the declarations —
/// and therefore the schedule and the election inputs — are unchanged:
/// the sub-communicator, the MINLOC winner and this rank's cost, the
/// RMA window (with both pipeline buffers), and the coalescing gather
/// state. Only cacheable for fault-free configs (a crash replaces the
/// window mid-run).
pub(crate) struct CachedPart {
    pcomm: Comm,
    agg_idx: usize,
    my_cost: f64,
    win: Window,
    coalesce: Option<GatherCtx>,
}

/// The live pipeline state of one partition on this rank, between
/// [`PartitionRun::enter`] and [`PartitionRun::finish`]. Drivers feed
/// it rounds in ascending order; it performs the collective sequence of
/// Algorithm 3 exactly as the historical batch loop did.
pub(crate) struct PartitionRun {
    pcomm: Comm,
    #[cfg(feature = "trace")]
    me: usize,
    my_idx: usize,
    agg_idx: usize,
    my_cost: f64,
    win: Window,
    inflight: [Vec<Flight>; 2],
    coalesce: Option<GatherCtx>,
    /// First round replayed through a re-elected standby; window slot
    /// of round r is (r - base) % 2 so the fresh window starts at 0.
    base: usize,
    crash_round: Option<usize>,
    degrade_at: Option<usize>,
    /// Next round to execute; on a degrade outcome this stays at the
    /// degrade round.
    pub(crate) next_round: usize,
    degraded: bool,
}

impl PartitionRun {
    /// Join partition `part`: form (or restore) the sub-communicator,
    /// elect (or restore) the aggregator, allocate (or reuse) the RMA
    /// window, and derive the fault schedule. With a [`CachedPart`] the
    /// collective prologue — subgroup formation, `allreduce(MINLOC)`,
    /// window allocation — is skipped entirely; the trace scope and the
    /// election event are still re-recorded so every epoch's trace is
    /// self-contained.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn enter(
        comm: &Comm,
        part: &PartitionInfo,
        cfg: &TapiocaConfig,
        topo: &dyn TopologyProvider,
        epoch: u64,
        cache: Option<CachedPart>,
        coalesce: Option<&Arc<CoalescePlan>>,
        stats: &mut IoStats,
    ) -> PartitionRun {
        let b = cfg.buffer_size as usize;
        #[allow(unused_mut)]
        let (pcomm, agg_idx, my_cost, mut win, coalesce) = match cache {
            Some(c) => (c.pcomm, c.agg_idx, c.my_cost, c.win, c.coalesce),
            None => {
                let pcomm = comm.subgroup(&part.members, subgroup_key(epoch, part.index));
                let my_idx = pcomm.rank();

                // Aggregator election: my cost, MINLOC across the
                // partition.
                let io = topo.io_nodes_for(&part.members).first().copied().unwrap_or(0);
                let my_cost = election_cost(
                    topo,
                    &part.members,
                    &part.member_bytes,
                    io,
                    part.index,
                    cfg.strategy,
                    my_idx,
                );
                let (_, agg_idx) = pcomm.allreduce_min_loc(my_cost);
                // One pane per pipeline slot: a flush draining slot A
                // in place coexists with round r+1's puts filling
                // slot B instead of serializing on one region lock.
                let win = Window::allocate_paned(
                    &pcomm,
                    if my_idx == agg_idx { 2 * b } else { 0 },
                    b,
                );
                let ctx = coalesce.and_then(|plan| {
                    if !plan.runs().iter().any(|run| run.partition == part.index) {
                        return None;
                    }
                    // Collective pair: every member agrees on whether
                    // the partition has runs (the plan is pure shared
                    // data) and passes through both allocations.
                    let leads = plan.runs().iter().any(|run| {
                        run.partition == part.index && run.leader == part.members[my_idx]
                    });
                    let gather = Window::allocate_paned(
                        &pcomm,
                        if leads { b } else { 0 },
                        (b / 16).max(64),
                    );
                    let board = DepositBoard::allocate(&pcomm);
                    Some(GatherCtx { plan: Arc::clone(plan), gather, board })
                });
                (pcomm, agg_idx, my_cost, win, ctx)
            }
        };
        let my_idx = pcomm.rank();
        stats.partitions += 1;
        if my_idx == agg_idx {
            stats.elected += 1;
        }

        // Fault schedule of this partition, derived identically by every
        // member (pure functions of the plan): the crash round (only
        // meaningful with a standby available) and the first round whose
        // injected fault exhausts the retry budget.
        let plan = cfg.faults.as_ref();
        let policy = cfg.io_policy;
        let nrounds = part.rounds.len();
        let crash_round: Option<usize> = plan
            .and_then(|p| p.crash_at(part.index as u32))
            .map(|cr| cr as usize)
            .filter(|&cr| part.members.len() > 1 && cr < nrounds);
        let degrade_at: Option<usize> = plan.and_then(|p| {
            (0..nrounds).find(|&r| {
                part.rounds[r].segments.iter().enumerate().any(|(s, _)| {
                    p.flush_fault(part.index as u32, r as u32, s as u32)
                        .is_some_and(|h| h.exceeds(&policy))
                })
            })
        });

        // Attach this rank's trace scope to the window so puts and
        // fences are recorded at their call sites. The election result
        // is recorded once per partition, by the lowest member.
        #[cfg(feature = "trace")]
        if let Some(tracer) = &cfg.tracer {
            let scope = TraceScope::new(
                Arc::clone(tracer),
                comm.rank(),
                part.index as u32,
                part.members.clone(),
            );
            if my_idx == 0 {
                scope.elect(part.members[agg_idx], part.total_bytes());
            }
            win.set_trace_scope(scope);
        }

        PartitionRun {
            pcomm,
            #[cfg(feature = "trace")]
            me: comm.rank(),
            my_idx,
            agg_idx,
            my_cost,
            win,
            inflight: [Vec::new(), Vec::new()],
            coalesce,
            base: 0,
            crash_round,
            degrade_at,
            next_round: 0,
            degraded: false,
        }
    }

    /// Blocking drain of one in-flight slot, in launch order.
    fn drain_slot(&mut self, slot: usize, file: &SharedFile, cfg: &TapiocaConfig) -> Result<()> {
        let b = cfg.buffer_size as usize;
        for f in std::mem::take(&mut self.inflight[slot]) {
            settle_flight(f, &self.win, self.my_idx, b, file, cfg.io_policy.op_timeout)?;
        }
        Ok(())
    }

    /// Completer half of coalescing for round `r`: forward every run
    /// `leader_global` leads this round as **one** merged put from the
    /// leader's gather buffer into the aggregator's slot. Called by
    /// whichever co-located depositor's counter bump completed the
    /// round's expected total — possibly the leader itself, possibly a
    /// co-member — so the traced operation is pinned to the leader's
    /// lane via `put_from`'s `lane` argument, keeping the wire-put
    /// schedule deterministic for the static conformance bridge.
    #[allow(clippy::too_many_arguments)]
    fn forward_merged_runs(
        &self,
        part: &PartitionInfo,
        r: usize,
        leader_global: Rank,
        leader_local: usize,
        buf: usize,
        b: usize,
        stats: &mut IoStats,
    ) {
        let ctx = self.coalesce.as_ref().expect("completer fires only with coalescing active");
        for run in ctx.plan.runs_led_by(part.index, r as u32, leader_global) {
            self.win.put_from(
                self.agg_idx,
                buf * b + run.buf_offset as usize,
                &ctx.gather,
                leader_local,
                run.buf_offset as usize,
                run.len as usize,
                run.chunks.len() as u32,
                leader_global,
            );
            stats.puts += 1;
            stats.coalesced_puts += 1;
        }
    }

    /// Re-issue this rank's merged puts of round `r` into a fresh
    /// post-crash window (slot 0). The gather buffer survived the
    /// crash with its bytes intact and the round's completer retired
    /// the deposit count before the lost fill's fence, so no member
    /// re-deposits and each leader replays its own runs directly.
    fn replay_merged_runs(&mut self, part: &PartitionInfo, r: usize, stats: &mut IoStats) {
        let Some(ctx) = self.coalesce.as_ref() else { return };
        let me = part.members[self.my_idx];
        for run in ctx.plan.runs_led_by(part.index, r as u32, me) {
            self.win.put_from(
                self.agg_idx,
                run.buf_offset as usize,
                &ctx.gather,
                self.my_idx,
                run.buf_offset as usize,
                run.len as usize,
                run.chunks.len() as u32,
                me,
            );
            stats.puts += 1;
            stats.coalesced_puts += 1;
        }
    }

    /// Execute round `self.next_round` of `part`. `chunks` is this
    /// rank's full chunk slice of the partition (sorted by
    /// `(round, file_offset)`); `src` supplies each chunk's bytes.
    ///
    /// On [`RoundOutcome::Ran`] the run advanced to the next round. On
    /// [`RoundOutcome::Degraded`] the in-flight flushes were drained and
    /// the barrier obligations recorded, but the remaining chunks are
    /// the *driver's* to write directly (their offsets are disjoint from
    /// everything the pipeline flushed, so ordering cannot change file
    /// bytes).
    pub(crate) fn run_round(
        &mut self,
        part: &PartitionInfo,
        chunks: &[Chunk],
        file: &SharedFile,
        cfg: &TapiocaConfig,
        src: &dyn ChunkSource,
        stats: &mut IoStats,
    ) -> Result<RoundOutcome> {
        let r = self.next_round;
        let round = &part.rounds[r];
        let b = cfg.buffer_size as usize;
        let policy = cfg.io_policy;
        let plan = cfg.faults.as_ref();

        #[cfg(feature = "trace")]
        if let Some(scope) = self.win.trace_scope() {
            scope.set_round(r as u32);
        }

        // Graceful degradation: a fault at this round exhausts the
        // retry budget. Every member knows (the plan is shared), so
        // instead of collectively feeding an aggregator that cannot
        // flush, each member writes its own remaining chunks directly.
        // Slower, but byte-identical and deadlock-free.
        if self.degrade_at == Some(r) {
            #[cfg(feature = "trace")]
            if self.my_idx == 0 {
                if let Some(scope) = self.win.trace_scope() {
                    let remaining: u64 = part.rounds[r..].iter().map(|rd| rd.bytes).sum();
                    scope.degrade(remaining);
                }
            }
            if self.my_idx == self.agg_idx {
                self.drain_slot(0, file, cfg)?;
                self.drain_slot(1, file, cfg)?;
            }
            stats.degraded += 1;
            if self.my_idx == 0 {
                stats.faults_injected += 1;
            }
            self.degraded = true;
            return Ok(RoundOutcome::Degraded);
        }

        let mut buf = (r - self.base) % 2;
        for (i, c) in chunks.iter().enumerate() {
            if c.round as usize != r {
                continue;
            }
            let data = src.chunk_data(i, c);
            match self.coalesce.as_ref().and_then(|ctx| ctx.plan.run_for_chunk(c)) {
                Some(run) => {
                    // Intra-node staging, not a wire op: deposit into
                    // the node leader's gather buffer and bump its
                    // deposit counter. Untraced — only the merged put
                    // is a window access the checker models. The
                    // depositor whose bump completes the round's
                    // expected total (a pure function of the plan, so
                    // exactly one member observes it) retires the
                    // count and forwards the leader's packed runs
                    // inline; nobody ever blocks on the board.
                    let leader_global = run.leader;
                    let leader = part
                        .members
                        .binary_search(&leader_global)
                        .expect("run leader is a partition member");
                    let ctx = self.coalesce.as_ref().unwrap();
                    ctx.gather.put(leader, c.buf_offset as usize, data);
                    stats.put_bytes += c.len;
                    stats.coalesced_chunks += 1;
                    let expected: u64 = ctx
                        .plan
                        .runs_led_by(part.index, r as u32, leader_global)
                        .map(|rn| rn.chunks.len() as u64)
                        .sum();
                    if ctx.board.add(leader, 1) == expected {
                        ctx.board.sub(leader, expected);
                        self.forward_merged_runs(part, r, leader_global, leader, buf, b, stats);
                    }
                }
                None => {
                    self.win.put(self.agg_idx, buf * b + c.buf_offset as usize, data);
                    stats.puts += 1;
                    stats.put_bytes += c.len;
                }
            }
        }
        // Close the access epoch of round r.
        self.win.fence(&self.pcomm);
        stats.fences += 1;

        // Aggregator crash: the fill of round r is lost with the
        // crashed window. Drain the old aggregator's in-flight
        // flushes (rounds < r stay durable), re-elect a standby with
        // the dead candidate excluded, open a fresh window (a new
        // fence epoch for the checker), and replay round r into it.
        if self.crash_round == Some(r) {
            let old_agg = self.agg_idx;
            if self.my_idx == old_agg {
                self.drain_slot(0, file, cfg)?;
                self.drain_slot(1, file, cfg)?;
            }
            #[cfg(feature = "trace")]
            if self.my_idx == 0 {
                if let Some(scope) = self.win.trace_scope() {
                    scope.crash(part.members[old_agg]);
                }
            }
            let standby_cost = if self.my_idx == old_agg { f64::INFINITY } else { self.my_cost };
            let (_, new_agg) = self.pcomm.allreduce_min_loc(standby_cost);
            self.agg_idx = new_agg;
            if self.my_idx == 0 {
                stats.reelections += 1;
                stats.faults_injected += 1;
            }
            if self.my_idx == self.agg_idx {
                stats.elected += 1;
            }
            self.win = Window::allocate_paned(
                &self.pcomm,
                if self.my_idx == self.agg_idx { 2 * b } else { 0 },
                b,
            );
            #[cfg(feature = "trace")]
            if let Some(tracer) = &cfg.tracer {
                let scope = TraceScope::new(
                    Arc::clone(tracer),
                    self.me,
                    part.index as u32,
                    part.members.clone(),
                );
                scope.set_round(r as u32);
                // Every member marks the epoch reset on its own lane
                // before any replayed put.
                scope.reelect(part.members[self.agg_idx]);
                self.win.set_trace_scope(scope);
            }
            self.base = r;
            buf = 0;
            for (i, c) in chunks.iter().enumerate() {
                if c.round as usize != r {
                    continue;
                }
                if let Some(ctx) = &self.coalesce {
                    if ctx.plan.run_for_chunk(c).is_some() {
                        // Already deposited before the lost fill; the
                        // leader alone replays the merged put below.
                        continue;
                    }
                }
                let data = src.chunk_data(i, c);
                self.win.put(self.agg_idx, c.buf_offset as usize, data);
                stats.puts += 1;
                stats.put_bytes += c.len;
            }
            self.replay_merged_runs(part, r, stats);
            self.win.fence(&self.pcomm);
            stats.fences += 1;
        }

        if self.my_idx == self.agg_idx {
            let mut handles: Vec<Flight> = Vec::with_capacity(round.segments.len());
            for (s, seg) in round.segments.iter().enumerate() {
                let hint =
                    plan.and_then(|p| p.flush_fault(part.index as u32, r as u32, s as u32));
                if let Some(h) = &hint {
                    // Within-budget by construction (the exhausting
                    // round degrades above); count the injected
                    // failures and record one Retry event each.
                    stats.faults_injected += h.fail_attempts as u64;
                    stats.retries += h.fail_attempts as u64;
                    #[cfg(feature = "trace")]
                    if let Some(scope) = self.win.trace_scope() {
                        for _ in 0..h.fail_attempts {
                            scope.retry(seg.file_offset, seg.len);
                        }
                    }
                }
                // Zero-copy flush: hand the worker refcounted views of
                // the window slot instead of copying it into an owned
                // buffer. The slot is refilled two rounds later, after
                // this flush has drained, so the bytes stay stable for
                // the write and for the failure fallback's re-read.
                let view = self.win.segment(
                    self.my_idx,
                    buf * b + seg.buf_offset as usize,
                    seg.len as usize,
                );
                stats.flushes += 1;
                stats.flush_bytes += seg.len;
                #[cfg(feature = "trace")]
                let h = file.iwrite_at_policy(
                    seg.file_offset,
                    view,
                    policy,
                    hint,
                    self.win.trace_scope().map(|s| s.stamp()),
                );
                #[cfg(not(feature = "trace"))]
                let h = file.iwrite_at_policy(seg.file_offset, view, policy, hint);
                handles.push(Flight { handle: h, seg: *seg, slot: buf });
            }
            if cfg.pipelining {
                self.inflight[buf] = handles;
                // Round r+1 fills the other buffer; its previous
                // flush (round r-1) must have drained first.
                self.drain_slot((buf + 1) % 2, file, cfg)?;
            } else {
                for f in handles {
                    settle_flight(f, &self.win, self.my_idx, b, file, policy.op_timeout)?;
                }
            }
        }
        // Release every member into round r+1 only after the
        // aggregator confirmed the reused buffer is free.
        self.win.fence(&self.pcomm);
        stats.fences += 1;
        self.next_round = r + 1;
        Ok(RoundOutcome::Ran)
    }

    /// Leave the partition: drain both in-flight slots in order, then
    /// the closing barrier — all flushes of this partition are durable
    /// before anyone leaves.
    pub(crate) fn finish(&mut self, file: &SharedFile, cfg: &TapiocaConfig) -> Result<()> {
        if self.my_idx == self.agg_idx {
            self.drain_slot(0, file, cfg)?;
            self.drain_slot(1, file, cfg)?;
        }
        self.pcomm.barrier();
        Ok(())
    }

    /// Keep the reusable state for the next epoch. Only valid after
    /// [`PartitionRun::finish`] on a fault-free run: a crash replaces
    /// the window mid-run and a degrade abandons the pipeline, so both
    /// invalidate the cache.
    pub(crate) fn into_cache(self) -> CachedPart {
        debug_assert!(
            !self.degraded && self.crash_round.is_none(),
            "faulted partitions must not be cached"
        );
        CachedPart {
            pcomm: self.pcomm,
            agg_idx: self.agg_idx,
            my_cost: self.my_cost,
            win: self.win,
            coalesce: self.coalesce,
        }
    }
}

/// Run the write pipeline for this rank, batch-style. `staged[var]`
/// holds the data of the rank's declared write `var`; lengths must
/// match the declarations used to compute `schedule`.
pub fn run_write_pipeline(
    comm: &Comm,
    schedule: &Schedule,
    staged: &[Vec<u8>],
    file: &SharedFile,
    cfg: &TapiocaConfig,
    topo: &dyn TopologyProvider,
    epoch: u64,
) -> Result<IoStats> {
    let me = comm.rank();
    let mut stats = IoStats::default();
    let src = StagedSource(staged);
    let coalesce: Option<Arc<CoalescePlan>> = cfg
        .coalescing
        .then(|| Arc::new(compute_coalesce_plan(schedule, |rk| topo.node_of_rank(rk))));

    for part in &schedule.partitions {
        if part.members.binary_search(&me).is_err() {
            continue;
        }
        let my_chunks: Vec<Chunk> = schedule.chunks_by_rank[me]
            .iter()
            .filter(|c| c.partition == part.index)
            .copied()
            .collect();

        let mut run =
            PartitionRun::enter(comm, part, cfg, topo, epoch, None, coalesce.as_ref(), &mut stats);
        while run.next_round < part.rounds.len() {
            match run.run_round(part, &my_chunks, file, cfg, &src, &mut stats)? {
                RoundOutcome::Ran => {}
                RoundOutcome::Degraded => {
                    let dr = run.next_round;
                    for (i, c) in my_chunks.iter().enumerate() {
                        if c.round as usize >= dr {
                            file.write_at(c.file_offset, src.chunk_data(i, c))
                                .map_err(|e| io_err("write_at", e))?;
                        }
                    }
                    break;
                }
            }
        }
        run.finish(file, cfg)?;
    }
    Ok(stats)
}

/// Run the two-phase *read* pipeline: aggregators read each round's
/// segments from the file into their window buffer; members fetch their
/// chunks with one-sided `get`s. Returns one buffer per declared var.
///
/// Reads use a single buffer (no flush to overlap with); the paper's
/// machinery — partitions, election, rounds, fences — is identical.
/// Faults are not injected on the read path.
pub fn run_read_pipeline(
    comm: &Comm,
    schedule: &Schedule,
    var_lens: &[u64],
    file: &SharedFile,
    cfg: &TapiocaConfig,
    topo: &dyn TopologyProvider,
    epoch: u64,
) -> Result<Vec<Vec<u8>>> {
    let me = comm.rank();
    let b = cfg.buffer_size as usize;
    let mut out: Vec<Vec<u8>> = var_lens.iter().map(|&l| vec![0u8; l as usize]).collect();

    for part in &schedule.partitions {
        if part.members.binary_search(&me).is_err() {
            continue;
        }
        let pcomm = comm.subgroup(&part.members, subgroup_key(epoch, part.index));
        let my_idx = pcomm.rank();
        let io = topo.io_nodes_for(&part.members).first().copied().unwrap_or(0);
        let my_cost = election_cost(
            topo,
            &part.members,
            &part.member_bytes,
            io,
            part.index,
            cfg.strategy,
            my_idx,
        );
        let (_, agg_idx) = pcomm.allreduce_min_loc(my_cost);
        let win = Window::allocate(&pcomm, if my_idx == agg_idx { b } else { 0 });

        let my_chunks: Vec<_> = schedule.chunks_by_rank[me]
            .iter()
            .filter(|c| c.partition == part.index)
            .collect();

        for (r, round) in part.rounds.iter().enumerate() {
            if my_idx == agg_idx {
                for seg in &round.segments {
                    let data = file
                        .read_at(seg.file_offset, seg.len as usize)
                        .map_err(|e| io_err("read_at", e))?;
                    win.write_local(my_idx, seg.buf_offset as usize, &data);
                }
            }
            win.fence(&pcomm);
            for c in my_chunks.iter().filter(|c| c.round as usize == r) {
                // One-sided read straight into the output buffer — no
                // intermediate Vec per chunk.
                win.get_into(
                    agg_idx,
                    c.buf_offset as usize,
                    &mut out[c.var][c.var_offset as usize..(c.var_offset + c.len) as usize],
                );
            }
            win.fence(&pcomm);
        }
        pcomm.barrier();
    }
    Ok(out)
}
