//! Thread-mode execution of the aggregation pipeline — Algorithm 3 of
//! the paper, run for real on `tapioca-mpi` primitives.
//!
//! Per partition (every rank processes the partitions it has data in, in
//! ascending index order — a global total order, so overlapping
//! partition memberships cannot deadlock):
//!
//! 1. the members form a sub-communicator and elect their aggregator
//!    with an `allreduce(MINLOC)` over the placement cost;
//! 2. the aggregator exposes **two** pipeline buffers in an RMA window;
//! 3. for each round `r`: members `put` their chunks into buffer
//!    `r % 2`; a fence closes the epoch; the aggregator launches a
//!    *non-blocking* flush of that buffer and — before releasing the next
//!    round — waits for the flush that previously used the *other*
//!    buffer (round `r-1`'s fill target is only reused in round `r+1`);
//!    a second fence releases the members into round `r + 1`.
//!
//! The net effect is the paper's overlap: the flush of round `r` runs
//! concurrently with the puts of round `r + 1`.

use tapioca_mpi::{Comm, IoHandle, SharedFile, Window};
use tapioca_topology::TopologyProvider;

#[cfg(feature = "trace")]
use std::sync::Arc;
#[cfg(feature = "trace")]
use tapioca_trace::TraceScope;

use crate::config::TapiocaConfig;
use crate::placement::election_cost;
use crate::schedule::Schedule;

/// Key namespace so several `Tapioca` instances on one communicator
/// never collide in the subgroup registry.
fn subgroup_key(epoch: u64, partition: usize) -> u64 {
    epoch * 1_000_000 + partition as u64
}

/// Per-rank instrumentation of one pipeline run — what this rank's
/// thread actually did, for observability and for tests that check the
/// executed traffic against the schedule's predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Partitions this rank participated in.
    pub partitions: usize,
    /// Partitions this rank was elected aggregator of.
    pub elected: usize,
    /// One-sided puts issued (one per chunk).
    pub puts: u64,
    /// Bytes deposited via puts.
    pub put_bytes: u64,
    /// Fences passed.
    pub fences: u64,
    /// Flush operations issued (as aggregator).
    pub flushes: u64,
    /// Bytes flushed to the file (as aggregator).
    pub flush_bytes: u64,
}

impl IoStats {
    /// Accumulate another run's counters.
    pub fn merge(&mut self, other: &IoStats) {
        self.partitions += other.partitions;
        self.elected += other.elected;
        self.puts += other.puts;
        self.put_bytes += other.put_bytes;
        self.fences += other.fences;
        self.flushes += other.flushes;
        self.flush_bytes += other.flush_bytes;
    }
}

/// Run the write pipeline for this rank. `staged[var]` holds the data of
/// the rank's declared write `var`; lengths must match the declarations
/// used to compute `schedule`.
pub fn run_write_pipeline(
    comm: &Comm,
    schedule: &Schedule,
    staged: &[Vec<u8>],
    file: &SharedFile,
    cfg: &TapiocaConfig,
    topo: &dyn TopologyProvider,
    epoch: u64,
) -> IoStats {
    let me = comm.rank();
    let b = cfg.buffer_size as usize;
    let mut stats = IoStats::default();

    for part in &schedule.partitions {
        if part.members.binary_search(&me).is_err() {
            continue;
        }
        let pcomm = comm.subgroup(&part.members, subgroup_key(epoch, part.index));
        let my_idx = pcomm.rank();

        // Aggregator election: my cost, MINLOC across the partition.
        let io = topo.io_nodes_for(&part.members).first().copied().unwrap_or(0);
        let my_cost = election_cost(
            topo,
            &part.members,
            &part.member_bytes,
            io,
            part.index,
            cfg.strategy,
            my_idx,
        );
        let (_, agg_idx) = pcomm.allreduce_min_loc(my_cost);
        stats.partitions += 1;
        if my_idx == agg_idx {
            stats.elected += 1;
        }

        #[allow(unused_mut)]
        let mut win = Window::allocate(&pcomm, if my_idx == agg_idx { 2 * b } else { 0 });
        // Attach this rank's trace scope to the window so puts and
        // fences are recorded at their call sites. The election result
        // is recorded once per partition, by the lowest member.
        #[cfg(feature = "trace")]
        if let Some(tracer) = &cfg.tracer {
            let scope =
                TraceScope::new(Arc::clone(tracer), me, part.index as u32, part.members.clone());
            if my_idx == 0 {
                scope.elect(part.members[agg_idx], part.total_bytes());
            }
            win.set_trace_scope(scope);
        }
        let mut inflight: [Vec<IoHandle>; 2] = [Vec::new(), Vec::new()];
        // Flush buffers reclaimed from completed writes, refilled with
        // `read_local_into`: after warm-up the drain loop allocates
        // nothing per round.
        let mut free_bufs: Vec<Vec<u8>> = Vec::new();

        let my_chunks: Vec<_> = schedule.chunks_by_rank[me]
            .iter()
            .filter(|c| c.partition == part.index)
            .collect();

        for (r, round) in part.rounds.iter().enumerate() {
            let buf = r % 2;
            #[cfg(feature = "trace")]
            if let Some(scope) = win.trace_scope() {
                scope.set_round(r as u32);
            }
            for c in my_chunks.iter().filter(|c| c.round as usize == r) {
                let data = &staged[c.var]
                    [c.var_offset as usize..(c.var_offset + c.len) as usize];
                win.put(agg_idx, buf * b + c.buf_offset as usize, data);
                stats.puts += 1;
                stats.put_bytes += c.len;
            }
            // Close the access epoch of round r.
            win.fence(&pcomm);
            stats.fences += 1;

            if my_idx == agg_idx {
                let mut handles: Vec<IoHandle> = Vec::with_capacity(round.segments.len());
                for seg in &round.segments {
                    let mut data = free_bufs.pop().unwrap_or_default();
                    data.resize(seg.len as usize, 0);
                    win.read_local_into(my_idx, buf * b + seg.buf_offset as usize, &mut data);
                    stats.flushes += 1;
                    stats.flush_bytes += seg.len;
                    #[cfg(feature = "trace")]
                    let h = file.iwrite_at_traced(
                        seg.file_offset,
                        data,
                        win.trace_scope().map(|s| s.stamp()),
                    );
                    #[cfg(not(feature = "trace"))]
                    let h = file.iwrite_at(seg.file_offset, data);
                    handles.push(h);
                }
                if cfg.pipelining {
                    inflight[buf] = handles;
                    // Round r+1 fills the other buffer; its previous
                    // flush (round r-1) must have drained first.
                    for h in inflight[(r + 1) % 2].drain(..) {
                        free_bufs.extend(h.wait_reclaim());
                    }
                } else {
                    for h in handles {
                        free_bufs.extend(h.wait_reclaim());
                    }
                }
            }
            // Release every member into round r+1 only after the
            // aggregator confirmed the reused buffer is free.
            win.fence(&pcomm);
            stats.fences += 1;
        }

        if my_idx == agg_idx {
            for hs in &mut inflight {
                for h in hs.drain(..) {
                    h.wait();
                }
            }
        }
        // All flushes of this partition are durable before anyone leaves.
        pcomm.barrier();
    }
    stats
}

/// Run the two-phase *read* pipeline: aggregators read each round's
/// segments from the file into their window buffer; members fetch their
/// chunks with one-sided `get`s. Returns one buffer per declared var.
///
/// Reads use a single buffer (no flush to overlap with); the paper's
/// machinery — partitions, election, rounds, fences — is identical.
pub fn run_read_pipeline(
    comm: &Comm,
    schedule: &Schedule,
    var_lens: &[u64],
    file: &SharedFile,
    cfg: &TapiocaConfig,
    topo: &dyn TopologyProvider,
    epoch: u64,
) -> Vec<Vec<u8>> {
    let me = comm.rank();
    let b = cfg.buffer_size as usize;
    let mut out: Vec<Vec<u8>> = var_lens.iter().map(|&l| vec![0u8; l as usize]).collect();

    for part in &schedule.partitions {
        if part.members.binary_search(&me).is_err() {
            continue;
        }
        let pcomm = comm.subgroup(&part.members, subgroup_key(epoch, part.index));
        let my_idx = pcomm.rank();
        let io = topo.io_nodes_for(&part.members).first().copied().unwrap_or(0);
        let my_cost = election_cost(
            topo,
            &part.members,
            &part.member_bytes,
            io,
            part.index,
            cfg.strategy,
            my_idx,
        );
        let (_, agg_idx) = pcomm.allreduce_min_loc(my_cost);
        let win = Window::allocate(&pcomm, if my_idx == agg_idx { b } else { 0 });

        let my_chunks: Vec<_> = schedule.chunks_by_rank[me]
            .iter()
            .filter(|c| c.partition == part.index)
            .collect();

        for (r, round) in part.rounds.iter().enumerate() {
            if my_idx == agg_idx {
                for seg in &round.segments {
                    let data = file.read_at(seg.file_offset, seg.len as usize);
                    win.write_local(my_idx, seg.buf_offset as usize, &data);
                }
            }
            win.fence(&pcomm);
            for c in my_chunks.iter().filter(|c| c.round as usize == r) {
                // One-sided read straight into the output buffer — no
                // intermediate Vec per chunk.
                win.get_into(
                    agg_idx,
                    c.buf_offset as usize,
                    &mut out[c.var][c.var_offset as usize..(c.var_offset + c.len) as usize],
                );
            }
            win.fence(&pcomm);
        }
        pcomm.barrier();
    }
    out
}
