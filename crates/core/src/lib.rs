//! # tapioca
//!
//! A Rust reproduction of **TAPIOCA** (Topology-Aware Parallel I/O:
//! Collective Algorithm) from Tessier, Vishwanath & Jeannot,
//! *"TAPIOCA: An I/O Library for Optimized Topology-Aware Data
//! Aggregation on Large-Scale Supercomputers"*, IEEE CLUSTER 2017.
//!
//! TAPIOCA is a two-phase collective I/O library: application processes
//! declare their upcoming writes (`TAPIOCA_Init`), the library splits the
//! file into contiguous **partitions**, elects one **aggregator** per
//! partition with a topology-aware cost model, and then streams data
//! through the aggregators in buffer-sized **rounds** — filling one
//! pipeline buffer with one-sided puts while the other is flushed to
//! storage with non-blocking writes.
//!
//! This crate contains the library itself plus two interchangeable
//! execution backends:
//!
//! * **thread mode** ([`api::Session`]) — runs the algorithm for real on
//!   the in-process runtime of `tapioca-mpi` (threads, RMA windows,
//!   files); used to verify correctness end to end;
//! * **simulation mode** ([`sim_exec`]) — executes the *same schedule and
//!   placement* against the flow-level simulator of `tapioca-netsim` at
//!   the paper's scale (1,024-4,096 nodes, 16-65K ranks), which is how
//!   every figure and table of the evaluation is regenerated.
//!
//! ## Quick start (thread mode)
//!
//! ```
//! use tapioca::prelude::*;
//! use tapioca_mpi::{Runtime, SharedFile};
//!
//! let dir = std::env::temp_dir().join("tapioca-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join(format!("quick-{}", std::process::id()));
//!
//! let n = 4;
//! let cfg = TapiocaConfig { num_aggregators: 2, buffer_size: 64, ..Default::default() };
//! Runtime::run(n, |comm| {
//!     let file = SharedFile::open_shared(&comm, &path);
//!     let rank = comm.rank() as u64;
//!     // every rank writes 32 bytes at rank * 32
//!     let mut io = Session::builder(&comm, file)
//!         .declarations(vec![WriteDecl { offset: rank * 32, len: 32 }])
//!         .config(cfg.clone())
//!         .build()
//!         .unwrap();
//!     io.write(rank * 32, &vec![rank as u8; 32]).unwrap();
//!     io.finalize();
//! });
//! let bytes = std::fs::read(&path).unwrap();
//! assert_eq!(bytes.len(), 128);
//! assert!(bytes[32..64].iter().all(|&b| b == 1));
//! ```

pub mod aggregation;
pub mod analyze;
pub mod api;
pub mod autotune;
pub mod config;
pub mod error;
pub mod placement;
pub mod plan;
pub mod schedule;
pub mod sim_exec;
pub mod stats;

pub use api::{Session, SessionBuilder, Tapioca, WriteOutcome};
pub use config::TapiocaConfig;
pub use error::{Result, TapiocaError};
pub use placement::PlacementStrategy;
pub use schedule::{compute_schedule, Schedule, ScheduleParams, WriteDecl};
// Fault-injection vocabulary, re-exported from the runtime crate so
// simulation-only users need not name `tapioca_mpi` directly.
pub use tapioca_mpi::{FaultPlan, FaultSpec, IoPolicy};

/// One-stop imports for session users: `use tapioca::prelude::*;`
/// brings in the builder-based session API, its declaration/config
/// vocabulary, and the error types.
pub mod prelude {
    pub use crate::aggregation::IoStats;
    pub use crate::api::{Session, SessionBuilder, Tapioca, WriteOutcome};
    pub use crate::config::{ConfigBuilder, TapiocaConfig};
    pub use crate::error::{Result, TapiocaError};
    pub use crate::placement::PlacementStrategy;
    pub use crate::schedule::WriteDecl;
}
