//! Topology-aware aggregator placement (paper Sec. IV-B).
//!
//! For each partition, every candidate process `A` evaluates
//!
//! ```text
//! C1 = sum over i in Vc, i != A of ( l * d(i, A) + omega(i, A) / B(i -> A) )
//! C2 = l * d(A, IO) + omega(A, IO) / B(A -> IO)        (0 when IO unknown)
//! TopoAware(A) = C1 + C2
//! ```
//!
//! and the process with the minimal cost is elected with an
//! `MPI_Allreduce(MPI_MINLOC)`. `omega(i, A)` is the number of bytes rank
//! `i` contributes to the partition — known exactly thanks to the
//! declarations of `TAPIOCA_Init`. On Theta the vendor exposes no I/O
//! node placement, so `C2 = 0` there (the paper's own fallback).
//!
//! Besides the paper's strategy this module implements the baselines and
//! ablations compared in the benches: rank-order (MPICH-like), shortest
//! path to storage only, worst-case, and seeded random placement.

use tapioca_topology::{IoNodeId, Rank, TopologyProvider};

/// Aggregator election strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementStrategy {
    /// The paper's cost model: minimize `C1 + C2`.
    TopologyAware,
    /// First member in rank order (what generic MPICH does after the
    /// bridge node, and the natural "no topology information" default).
    RankOrder,
    /// Minimize distance to the I/O node only (ignores the aggregation
    /// phase) — a classic heuristic the paper's model subsumes.
    ShortestPathToIo,
    /// Maximize `C1 + C2` — adversarial ablation (upper bound on harm).
    WorstCase,
    /// Uniformly random member from a seeded generator (ablation).
    Random {
        /// Seed; elections use `seed ^ partition_index`.
        seed: u64,
    },
}

/// The aggregation cost `C1` of candidate `members[cand]`.
///
/// `weights[i]` is `omega(members[i], A)` — bytes member `i` sends into
/// the partition's buffers over the whole operation.
pub fn aggregation_cost(
    topo: &dyn TopologyProvider,
    members: &[Rank],
    weights: &[u64],
    cand: usize,
) -> f64 {
    let l = topo.latency();
    let a = members[cand];
    let mut c1 = 0.0;
    for (i, (&m, &w)) in members.iter().zip(weights).enumerate() {
        if i == cand {
            continue;
        }
        let d = topo.distance_between_ranks(m, a) as f64;
        let bw = topo.bandwidth_between_ranks(m, a);
        c1 += l * d + w as f64 / bw;
    }
    c1
}

/// The I/O phase cost `C2` of a candidate, or 0 when the machine cannot
/// locate its I/O nodes (Theta).
pub fn io_cost(
    topo: &dyn TopologyProvider,
    cand_rank: Rank,
    io: IoNodeId,
    total_bytes: u64,
) -> f64 {
    match (topo.distance_to_io_node(cand_rank, io), topo.bandwidth_to_io_node(cand_rank, io)) {
        (Some(d), Some(bw)) => topo.latency() * d as f64 + total_bytes as f64 / bw,
        _ => 0.0,
    }
}

/// The full objective `TopoAware(A) = C1 + C2` for one candidate.
pub fn topo_aware_cost(
    topo: &dyn TopologyProvider,
    members: &[Rank],
    weights: &[u64],
    io: IoNodeId,
    cand: usize,
) -> f64 {
    let total: u64 = weights.iter().sum();
    aggregation_cost(topo, members, weights, cand) + io_cost(topo, members[cand], io, total)
}

/// The cost value a member contributes to the MINLOC election under a
/// strategy. Lower wins; ties resolve to the lower member index (MPI
/// MINLOC semantics), which every strategy exploits for determinism.
pub fn election_cost(
    topo: &dyn TopologyProvider,
    members: &[Rank],
    weights: &[u64],
    io: IoNodeId,
    partition_index: usize,
    strategy: PlacementStrategy,
    cand: usize,
) -> f64 {
    match strategy {
        PlacementStrategy::TopologyAware => topo_aware_cost(topo, members, weights, io, cand),
        PlacementStrategy::RankOrder => cand as f64,
        PlacementStrategy::ShortestPathToIo => topo
            .distance_to_io_node(members[cand], io)
            .map(|d| d as f64)
            .unwrap_or(0.0),
        PlacementStrategy::WorstCase => -topo_aware_cost(topo, members, weights, io, cand),
        PlacementStrategy::Random { seed } => {
            // SplitMix64 over (seed ^ partition, candidate): same value
            // computed by every member, so the election is consistent.
            let mut x = (seed ^ partition_index as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(cand as u64);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            (x >> 11) as f64
        }
    }
}

/// Centralized election (simulation mode): evaluate every candidate and
/// return the winner's index into `members`. Mirrors exactly what the
/// distributed MINLOC election of thread mode computes.
pub fn elect_aggregator(
    topo: &dyn TopologyProvider,
    members: &[Rank],
    weights: &[u64],
    io: IoNodeId,
    partition_index: usize,
    strategy: PlacementStrategy,
) -> usize {
    assert!(!members.is_empty(), "cannot elect from an empty partition");
    assert_eq!(members.len(), weights.len());
    let mut best = (f64::INFINITY, usize::MAX);
    for cand in 0..members.len() {
        let c = election_cost(topo, members, weights, io, partition_index, strategy, cand);
        if c < best.0 || (c == best.0 && cand < best.1) {
            best = (c, cand);
        }
    }
    best.1
}

/// Fallback topology for thread-mode runs that have no machine model:
/// every pair of distinct ranks is 1 hop apart at a uniform bandwidth,
/// and I/O node placement is unknown (`C2 = 0`). Under this provider the
/// topology-aware election degenerates to "any member" (lowest rank via
/// MINLOC ties), which is the correct behaviour with zero information.
#[derive(Debug, Clone)]
pub struct UniformTopology {
    /// Number of ranks.
    pub num_ranks: usize,
}

impl TopologyProvider for UniformTopology {
    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn ranks_per_node(&self) -> usize {
        1
    }

    fn network_dimensions(&self) -> usize {
        1
    }

    fn rank_to_coordinates(&self, rank: Rank) -> Vec<usize> {
        vec![rank]
    }

    fn latency(&self) -> f64 {
        1e-6
    }

    fn distance_between_ranks(&self, src: Rank, dst: Rank) -> u32 {
        u32::from(src != dst)
    }

    fn bandwidth_between_ranks(&self, _src: Rank, _dst: Rank) -> f64 {
        1e9
    }

    fn io_nodes_for(&self, _ranks: &[Rank]) -> Vec<IoNodeId> {
        vec![0]
    }

    fn distance_to_io_node(&self, _rank: Rank, _io: IoNodeId) -> Option<u32> {
        None
    }

    fn bandwidth_to_io_node(&self, _rank: Rank, _io: IoNodeId) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca_topology::{mira_profile, theta_profile, TopologyProvider};

    fn mira() -> impl TopologyProvider {
        mira_profile(512, 16).machine
    }

    #[test]
    fn c1_is_zero_for_sole_member() {
        let m = mira();
        assert_eq!(aggregation_cost(&m, &[5], &[100], 0), 0.0);
    }

    #[test]
    fn c1_grows_with_distance() {
        let m = mira();
        // members on nodes 0 and 50: candidate far from the heavy
        // producer pays more.
        let members = [0, 50 * 16, 100 * 16];
        let weights = [1_000_000, 1_000_000, 1_000_000];
        let c_near = aggregation_cost(&m, &members, &weights, 1);
        // compare against a candidate co-located with member 0
        let c_self = aggregation_cost(&m, &members, &weights, 0);
        assert!(c_near > 0.0 && c_self > 0.0);
    }

    #[test]
    fn c2_zero_on_theta() {
        let t = theta_profile(128, 16).machine;
        assert_eq!(io_cost(&t, 0, 0, 1 << 30), 0.0);
    }

    #[test]
    fn c2_positive_on_mira() {
        let m = mira();
        let c = io_cost(&m, 77, 0, 1 << 30);
        assert!(c > 0.0);
        // a rank on the bridge node has lower C2 than a distant one
        let bridge = io_cost(&m, 0, 0, 1 << 30);
        assert!(bridge <= c);
    }

    #[test]
    fn topology_aware_beats_rank_order_on_cost() {
        let m = mira();
        // members spread over one Pset, equal weights
        let members: Vec<usize> = (0..16).map(|i| i * 8 * 16).collect();
        let weights = vec![16_000_000u64; members.len()];
        let ta = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::TopologyAware);
        let ro = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::RankOrder);
        assert_eq!(ro, 0);
        let cost_ta = topo_aware_cost(&m, &members, &weights, 0, ta);
        let cost_ro = topo_aware_cost(&m, &members, &weights, 0, ro);
        assert!(cost_ta <= cost_ro, "elected cost {cost_ta} must be <= rank-order {cost_ro}");
    }

    #[test]
    fn worst_case_maximizes() {
        let m = mira();
        let members: Vec<usize> = (0..8).map(|i| i * 60 * 16).collect();
        let weights = vec![1_000_000u64; 8];
        let best = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::TopologyAware);
        let worst = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::WorstCase);
        let cb = topo_aware_cost(&m, &members, &weights, 0, best);
        let cw = topo_aware_cost(&m, &members, &weights, 0, worst);
        assert!(cw >= cb);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_partition() {
        let m = mira();
        let members: Vec<usize> = (0..10).collect();
        let weights = vec![1u64; 10];
        let a = elect_aggregator(&m, &members, &weights, 0, 3, PlacementStrategy::Random { seed: 42 });
        let b = elect_aggregator(&m, &members, &weights, 0, 3, PlacementStrategy::Random { seed: 42 });
        assert_eq!(a, b);
        // different partitions usually differ (not guaranteed, but with
        // 10 members collisions across 8 partitions are unlikely to all match)
        let picks: Vec<usize> = (0..8)
            .map(|p| elect_aggregator(&m, &members, &weights, 0, p, PlacementStrategy::Random { seed: 42 }))
            .collect();
        assert!(picks.iter().any(|&x| x != picks[0]));
    }

    #[test]
    fn shortest_path_prefers_bridge_nodes() {
        let m = mira();
        // include a rank on bridge node 0 (rank 0) and distant ranks
        let members = vec![0usize, 40 * 16, 90 * 16];
        let weights = vec![1u64; 3];
        let w = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::ShortestPathToIo);
        assert_eq!(w, 0);
    }

    #[test]
    #[should_panic(expected = "empty partition")]
    fn empty_members_panics() {
        let m = mira();
        elect_aggregator(&m, &[], &[], 0, 0, PlacementStrategy::TopologyAware);
    }
}
