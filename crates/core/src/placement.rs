//! Topology-aware aggregator placement (paper Sec. IV-B).
//!
//! For each partition, every candidate process `A` evaluates
//!
//! ```text
//! C1 = sum over i in Vc, i != A of ( l * d(i, A) + omega(i, A) / B(i -> A) )
//! C2 = l * d(A, IO) + omega(A, IO) / B(A -> IO)        (0 when IO unknown)
//! TopoAware(A) = C1 + C2
//! ```
//!
//! and the process with the minimal cost is elected with an
//! `MPI_Allreduce(MPI_MINLOC)`. `omega(i, A)` is the number of bytes rank
//! `i` contributes to the partition — known exactly thanks to the
//! declarations of `TAPIOCA_Init`. On Theta the vendor exposes no I/O
//! node placement, so `C2 = 0` there (the paper's own fallback).
//!
//! Besides the paper's strategy this module implements the baselines and
//! ablations compared in the benches: rank-order (MPICH-like), shortest
//! path to storage only, worst-case, and seeded random placement.

use std::collections::HashMap;

use tapioca_topology::{IoNodeId, NodeId, NodeMetricCache, Rank, TopologyProvider};

/// Aggregator election strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementStrategy {
    /// The paper's cost model: minimize `C1 + C2`.
    TopologyAware,
    /// First member in rank order (what generic MPICH does after the
    /// bridge node, and the natural "no topology information" default).
    RankOrder,
    /// Minimize distance to the I/O node only (ignores the aggregation
    /// phase) — a classic heuristic the paper's model subsumes.
    ShortestPathToIo,
    /// Maximize `C1 + C2` — adversarial ablation (upper bound on harm).
    WorstCase,
    /// Uniformly random member from a seeded generator (ablation).
    Random {
        /// Seed; elections use `seed ^ partition_index`.
        seed: u64,
    },
}

/// The aggregation cost `C1` of candidate `members[cand]`.
///
/// `weights[i]` is `omega(members[i], A)` — bytes member `i` sends into
/// the partition's buffers over the whole operation.
pub fn aggregation_cost(
    topo: &dyn TopologyProvider,
    members: &[Rank],
    weights: &[u64],
    cand: usize,
) -> f64 {
    let l = topo.latency();
    let a = members[cand];
    let mut c1 = 0.0;
    for (i, (&m, &w)) in members.iter().zip(weights).enumerate() {
        if i == cand {
            continue;
        }
        let d = topo.distance_between_ranks(m, a) as f64;
        let bw = topo.bandwidth_between_ranks(m, a);
        c1 += l * d + w as f64 / bw;
    }
    c1
}

/// The I/O phase cost `C2` of a candidate, or 0 when the machine cannot
/// locate its I/O nodes (Theta).
pub fn io_cost(
    topo: &dyn TopologyProvider,
    cand_rank: Rank,
    io: IoNodeId,
    total_bytes: u64,
) -> f64 {
    match (topo.distance_to_io_node(cand_rank, io), topo.bandwidth_to_io_node(cand_rank, io)) {
        (Some(d), Some(bw)) => topo.latency() * d as f64 + total_bytes as f64 / bw,
        _ => 0.0,
    }
}

/// The full objective `TopoAware(A) = C1 + C2` for one candidate.
pub fn topo_aware_cost(
    topo: &dyn TopologyProvider,
    members: &[Rank],
    weights: &[u64],
    io: IoNodeId,
    cand: usize,
) -> f64 {
    let total: u64 = weights.iter().sum();
    aggregation_cost(topo, members, weights, cand) + io_cost(topo, members[cand], io, total)
}

/// The cost value a member contributes to the MINLOC election under a
/// strategy. Lower wins; ties resolve to the lower member index (MPI
/// MINLOC semantics), which every strategy exploits for determinism.
pub fn election_cost(
    topo: &dyn TopologyProvider,
    members: &[Rank],
    weights: &[u64],
    io: IoNodeId,
    partition_index: usize,
    strategy: PlacementStrategy,
    cand: usize,
) -> f64 {
    match strategy {
        PlacementStrategy::TopologyAware => topo_aware_cost(topo, members, weights, io, cand),
        PlacementStrategy::RankOrder => cand as f64,
        PlacementStrategy::ShortestPathToIo => topo
            .distance_to_io_node(members[cand], io)
            .map(|d| d as f64)
            .unwrap_or(0.0),
        PlacementStrategy::WorstCase => -topo_aware_cost(topo, members, weights, io, cand),
        PlacementStrategy::Random { seed } => {
            // SplitMix64 over (seed ^ partition, candidate): same value
            // computed by every member, so the election is consistent.
            let mut x = (seed ^ partition_index as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(cand as u64);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            (x >> 11) as f64
        }
    }
}

/// Centralized election (simulation mode): evaluate every candidate and
/// return the winner's index into `members`. Mirrors exactly what the
/// distributed MINLOC election of thread mode computes.
pub fn elect_aggregator(
    topo: &dyn TopologyProvider,
    members: &[Rank],
    weights: &[u64],
    io: IoNodeId,
    partition_index: usize,
    strategy: PlacementStrategy,
) -> usize {
    assert!(!members.is_empty(), "cannot elect from an empty partition");
    assert_eq!(members.len(), weights.len());
    let mut best = (f64::INFINITY, usize::MAX);
    for cand in 0..members.len() {
        let c = election_cost(topo, members, weights, io, partition_index, strategy, cand);
        if c < best.0 || (c == best.0 && cand < best.1) {
            best = (c, cand);
        }
    }
    best.1
}

/// Node-folded election: same winner as [`elect_aggregator`], computed
/// in O(nodes² + P) topology queries instead of O(P²).
///
/// Under the block rank mapping (see
/// [`TopologyProvider::ranks_per_node`]) both `d(i, A)` and `B(i -> A)`
/// depend only on `node(i)` and `node(A)`, so the member sum of `C1`
/// folds into a node sum over per-node member counts and weight totals,
/// with every node-pair metric memoized in a [`NodeMetricCache`].
///
/// Folding reassociates the floating-point sum, so a folded cost can
/// differ from the oracle's pairwise sum by a few ulps — enough to flip
/// a MINLOC tie. To stay *bit-identical* to the oracle, the folded costs
/// are only used to prune: every candidate whose folded cost window
/// (`± fold_tolerance`, a rigorous bound on the divergence between the
/// two summation orders) overlaps the best window is re-evaluated with
/// [`election_cost`] — the oracle's exact arithmetic — and the winner is
/// chosen among those survivors with oracle MINLOC semantics. The true
/// winner always survives the prune, so the result is provably the
/// oracle's (the property sweep in `tests/placement_equivalence.rs`
/// exercises this across strategies, profiles, and partition shapes).
pub fn elect_aggregator_fast(
    topo: &dyn TopologyProvider,
    members: &[Rank],
    weights: &[u64],
    io: IoNodeId,
    partition_index: usize,
    strategy: PlacementStrategy,
) -> usize {
    let mut cache = NodeMetricCache::new();
    elect_aggregator_cached(topo, &mut cache, members, weights, io, partition_index, strategy)
}

/// [`elect_aggregator_fast`] with a caller-owned metric cache, so
/// repeated elections on the same machine (e.g. every partition of a
/// run) share node-pair metrics. The cache must only ever be used with
/// one topology object (clear it when switching machines).
pub fn elect_aggregator_cached(
    topo: &dyn TopologyProvider,
    cache: &mut NodeMetricCache,
    members: &[Rank],
    weights: &[u64],
    io: IoNodeId,
    partition_index: usize,
    strategy: PlacementStrategy,
) -> usize {
    assert!(!members.is_empty(), "cannot elect from an empty partition");
    assert_eq!(members.len(), weights.len());
    match strategy {
        // Constant under MINLOC: member 0 always has the lowest cost.
        PlacementStrategy::RankOrder => 0,
        // Pure integer hashing, already O(P); replay the oracle exactly.
        PlacementStrategy::Random { .. } => {
            elect_aggregator(topo, members, weights, io, partition_index, strategy)
        }
        // Node-level distance only: u32 -> f64 is exact, so the cached
        // per-node value *is* the oracle's cost and the ascending scan
        // with strict `<` reproduces MINLOC ties directly.
        PlacementStrategy::ShortestPathToIo => {
            // Machines that expose no I/O node placement (Theta) answer
            // `None` for every member, making every oracle cost 0.0 —
            // member 0's cost is then a global minimum (distances are
            // nonnegative) and MINLOC ties resolve to the lowest index,
            // so the winner is index 0 even on mixed topologies. One
            // probe replaces the per-member cache walk the oracle's
            // trivial loop was beating.
            if topo.distance_to_io_node(members[0], io).is_none() {
                return 0;
            }
            // Below the fold threshold the pairwise oracle is already
            // cheap and per-member cache lookups would dominate.
            if members.len() < FOLD_MIN_MEMBERS {
                return elect_aggregator(topo, members, weights, io, partition_index, strategy);
            }
            let mut best = (f64::INFINITY, usize::MAX);
            for (i, &m) in members.iter().enumerate() {
                let node = topo.node_of_rank(m);
                let c = cache.io(topo, node, io).dist.map(|d| d as f64).unwrap_or(0.0);
                if c < best.0 {
                    best = (c, i);
                }
            }
            best.1
        }
        PlacementStrategy::TopologyAware | PlacementStrategy::WorstCase => {
            elect_folded(topo, cache, members, weights, io, partition_index, strategy)
        }
    }
}

/// Below this member count the pairwise oracle is already cheap and the
/// fold bookkeeping would dominate.
const FOLD_MIN_MEMBERS: usize = 8;

/// Upper bound on `|oracle_cost - folded_cost|` for one candidate.
///
/// Both evaluations sum the same `p`-ish positive real terms (`C2` is
/// even computed with identical operations); sequential f64 summation of
/// `n` terms is within `n * eps` relative error of the real value, so
/// the two orders diverge by at most a small multiple of
/// `p * eps * magnitude`, where `magnitude` bounds the sum of absolute
/// term values (not the result — the folded per-candidate cost subtracts
/// the candidate's own weight from its node total, and that cancellation
/// keeps *absolute* error bounded by the term magnitudes even when the
/// result is tiny). The factor 8 is slack over the textbook bound.
fn fold_tolerance(p: usize, magnitude: f64) -> f64 {
    8.0 * (p as f64 + 16.0) * f64::EPSILON * magnitude
}

fn elect_folded(
    topo: &dyn TopologyProvider,
    cache: &mut NodeMetricCache,
    members: &[Rank],
    weights: &[u64],
    io: IoNodeId,
    partition_index: usize,
    strategy: PlacementStrategy,
) -> usize {
    let p = members.len();
    if p < FOLD_MIN_MEMBERS {
        return elect_aggregator(topo, members, weights, io, partition_index, strategy);
    }
    let l = topo.latency();

    // Group members by node: per-node member count and weight total.
    let mut node_slot: HashMap<NodeId, usize> = HashMap::new();
    let mut slots: Vec<NodeId> = Vec::new();
    let mut count: Vec<f64> = Vec::new();
    let mut w_sum: Vec<f64> = Vec::new();
    let mut member_slot: Vec<usize> = Vec::with_capacity(p);
    for (&m, &w) in members.iter().zip(weights) {
        let node = topo.node_of_rank(m);
        let s = *node_slot.entry(node).or_insert_with(|| {
            slots.push(node);
            count.push(0.0);
            w_sum.push(0.0);
            slots.len() - 1
        });
        member_slot.push(s);
        count[s] += 1.0;
        w_sum[s] += w as f64;
    }
    let nn = slots.len();

    // Same exact integer sum the oracle's `topo_aware_cost` performs.
    let total: u64 = weights.iter().sum();

    // Per candidate node: cross-node C1 contribution, intra-node
    // bandwidth, C2, and the magnitude bound for the prune tolerance.
    let mut cross = vec![0.0f64; nn];
    let mut intra_bw = vec![0.0f64; nn];
    let mut c2 = vec![0.0f64; nn];
    for s in 0..nn {
        intra_bw[s] = cache.pair(topo, slots[s], slots[s]).bw;
        let mut acc = 0.0;
        for t in 0..nn {
            if t == s {
                continue;
            }
            // Metrics for members on node `t` sending to a candidate on
            // node `s` (directed, matching `B(i -> A)`).
            let pm = cache.pair(topo, slots[t], slots[s]);
            acc += count[t] * (l * pm.dist as f64) + w_sum[t] / pm.bw;
        }
        cross[s] = acc;
        let im = cache.io(topo, slots[s], io);
        c2[s] = match (im.dist, im.bw) {
            (Some(d), Some(bw)) => l * d as f64 + total as f64 / bw,
            _ => 0.0,
        };
    }

    // Folded signed cost per candidate, and the tightest upper bound on
    // any candidate's cost window.
    let sign = if matches!(strategy, PlacementStrategy::WorstCase) { -1.0 } else { 1.0 };
    let mut folded: Vec<f64> = Vec::with_capacity(p);
    let mut tol: Vec<f64> = Vec::with_capacity(p);
    let mut best_upper = f64::INFINITY;
    for (i, &w) in weights.iter().enumerate() {
        let s = member_slot[i];
        let f = cross[s] + (w_sum[s] - w as f64) / intra_bw[s] + c2[s];
        let magnitude = cross[s] + w_sum[s] / intra_bw[s] + c2[s];
        let d = fold_tolerance(p, magnitude);
        let fs = sign * f;
        if fs + d < best_upper {
            best_upper = fs + d;
        }
        folded.push(fs);
        tol.push(d);
    }

    // Prune, then replay the oracle's arithmetic on the survivors. The
    // oracle winner's window always overlaps `best_upper`, so it is in
    // the survivor set and the ascending MINLOC scan returns it.
    let mut best = (f64::INFINITY, usize::MAX);
    for i in 0..p {
        if folded[i] - tol[i] <= best_upper {
            let c = election_cost(topo, members, weights, io, partition_index, strategy, i);
            if c < best.0 || (c == best.0 && i < best.1) {
                best = (c, i);
            }
        }
    }
    best.1
}

/// One partition's election inputs, borrowed from the schedule.
#[derive(Debug, Clone, Copy)]
pub struct PartitionElection<'a> {
    /// Global ranks of the partition members.
    pub members: &'a [Rank],
    /// Bytes each member contributes (`omega`), parallel to `members`.
    pub weights: &'a [u64],
    /// The I/O node serving this partition's file region.
    pub io: IoNodeId,
    /// Partition index (seeds the `Random` strategy).
    pub partition_index: usize,
}

/// Pairwise-equivalent work (`sum of members²`) above which a batch of
/// elections is worth fanning out across threads.
const PARALLEL_ELECTION_WORK: usize = 1 << 20;

/// Elect aggregators for a batch of independent partitions using the
/// fast path, sharing one metric cache when run serially and fanning
/// out across std threads (each with its own cache) when the batch is
/// large enough to amortize spawning. Returns one winner index (into
/// that partition's `members`) per input, in order.
pub fn elect_partitions(
    topo: &dyn TopologyProvider,
    parts: &[PartitionElection<'_>],
    strategy: PlacementStrategy,
) -> Vec<usize> {
    let elect_chunk = |chunk: &[PartitionElection<'_>]| {
        let mut cache = NodeMetricCache::new();
        chunk
            .iter()
            .map(|p| {
                elect_aggregator_cached(
                    topo,
                    &mut cache,
                    p.members,
                    p.weights,
                    p.io,
                    p.partition_index,
                    strategy,
                )
            })
            .collect::<Vec<usize>>()
    };
    let work: usize = parts.iter().map(|p| p.members.len() * p.members.len()).sum();
    let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    if parts.len() < 2 || threads < 2 || work < PARALLEL_ELECTION_WORK {
        return elect_chunk(parts);
    }
    let chunk = parts.len().div_ceil(threads.min(parts.len()));
    std::thread::scope(|s| {
        let elect_chunk = &elect_chunk;
        let handles: Vec<_> =
            parts.chunks(chunk).map(|ch| s.spawn(move || elect_chunk(ch))).collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("election worker panicked"))
            .collect()
    })
}

/// Fallback topology for thread-mode runs that have no machine model:
/// every pair of distinct ranks is 1 hop apart at a uniform bandwidth,
/// and I/O node placement is unknown (`C2 = 0`). Under this provider the
/// topology-aware election degenerates to "any member" (lowest rank via
/// MINLOC ties), which is the correct behaviour with zero information.
#[derive(Debug, Clone)]
pub struct UniformTopology {
    /// Number of ranks.
    pub num_ranks: usize,
}

impl TopologyProvider for UniformTopology {
    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn ranks_per_node(&self) -> usize {
        1
    }

    fn network_dimensions(&self) -> usize {
        1
    }

    fn rank_to_coordinates(&self, rank: Rank) -> Vec<usize> {
        vec![rank]
    }

    fn latency(&self) -> f64 {
        1e-6
    }

    fn distance_between_ranks(&self, src: Rank, dst: Rank) -> u32 {
        u32::from(src != dst)
    }

    fn bandwidth_between_ranks(&self, _src: Rank, _dst: Rank) -> f64 {
        1e9
    }

    fn io_nodes_for(&self, _ranks: &[Rank]) -> Vec<IoNodeId> {
        vec![0]
    }

    fn distance_to_io_node(&self, _rank: Rank, _io: IoNodeId) -> Option<u32> {
        None
    }

    fn bandwidth_to_io_node(&self, _rank: Rank, _io: IoNodeId) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca_topology::{mira_profile, theta_profile, TopologyProvider};

    fn mira() -> impl TopologyProvider {
        mira_profile(512, 16).machine
    }

    #[test]
    fn c1_is_zero_for_sole_member() {
        let m = mira();
        assert_eq!(aggregation_cost(&m, &[5], &[100], 0), 0.0);
    }

    #[test]
    fn c1_grows_with_distance() {
        let m = mira();
        // members on nodes 0 and 50: candidate far from the heavy
        // producer pays more.
        let members = [0, 50 * 16, 100 * 16];
        let weights = [1_000_000, 1_000_000, 1_000_000];
        let c_near = aggregation_cost(&m, &members, &weights, 1);
        // compare against a candidate co-located with member 0
        let c_self = aggregation_cost(&m, &members, &weights, 0);
        assert!(c_near > 0.0 && c_self > 0.0);
    }

    #[test]
    fn c2_zero_on_theta() {
        let t = theta_profile(128, 16).machine;
        assert_eq!(io_cost(&t, 0, 0, 1 << 30), 0.0);
    }

    #[test]
    fn c2_positive_on_mira() {
        let m = mira();
        let c = io_cost(&m, 77, 0, 1 << 30);
        assert!(c > 0.0);
        // a rank on the bridge node has lower C2 than a distant one
        let bridge = io_cost(&m, 0, 0, 1 << 30);
        assert!(bridge <= c);
    }

    #[test]
    fn topology_aware_beats_rank_order_on_cost() {
        let m = mira();
        // members spread over one Pset, equal weights
        let members: Vec<usize> = (0..16).map(|i| i * 8 * 16).collect();
        let weights = vec![16_000_000u64; members.len()];
        let ta = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::TopologyAware);
        let ro = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::RankOrder);
        assert_eq!(ro, 0);
        let cost_ta = topo_aware_cost(&m, &members, &weights, 0, ta);
        let cost_ro = topo_aware_cost(&m, &members, &weights, 0, ro);
        assert!(cost_ta <= cost_ro, "elected cost {cost_ta} must be <= rank-order {cost_ro}");
    }

    #[test]
    fn worst_case_maximizes() {
        let m = mira();
        let members: Vec<usize> = (0..8).map(|i| i * 60 * 16).collect();
        let weights = vec![1_000_000u64; 8];
        let best = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::TopologyAware);
        let worst = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::WorstCase);
        let cb = topo_aware_cost(&m, &members, &weights, 0, best);
        let cw = topo_aware_cost(&m, &members, &weights, 0, worst);
        assert!(cw >= cb);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_partition() {
        let m = mira();
        let members: Vec<usize> = (0..10).collect();
        let weights = vec![1u64; 10];
        let a = elect_aggregator(&m, &members, &weights, 0, 3, PlacementStrategy::Random { seed: 42 });
        let b = elect_aggregator(&m, &members, &weights, 0, 3, PlacementStrategy::Random { seed: 42 });
        assert_eq!(a, b);
        // different partitions usually differ (not guaranteed, but with
        // 10 members collisions across 8 partitions are unlikely to all match)
        let picks: Vec<usize> = (0..8)
            .map(|p| elect_aggregator(&m, &members, &weights, 0, p, PlacementStrategy::Random { seed: 42 }))
            .collect();
        assert!(picks.iter().any(|&x| x != picks[0]));
    }

    #[test]
    fn shortest_path_prefers_bridge_nodes() {
        let m = mira();
        // include a rank on bridge node 0 (rank 0) and distant ranks
        let members = vec![0usize, 40 * 16, 90 * 16];
        let weights = vec![1u64; 3];
        let w = elect_aggregator(&m, &members, &weights, 0, 0, PlacementStrategy::ShortestPathToIo);
        assert_eq!(w, 0);
    }

    #[test]
    #[should_panic(expected = "empty partition")]
    fn empty_members_panics() {
        let m = mira();
        elect_aggregator(&m, &[], &[], 0, 0, PlacementStrategy::TopologyAware);
    }
}
