//! Execution plans: the dependency DAG handed to the simulator.
//!
//! Thread mode enforces ordering with fences and `IoHandle::wait`;
//! simulation mode expresses the *same* ordering as explicit dependencies
//! between operations:
//!
//! * puts of round `r` wait for the fence closing round `r-1` (modelled
//!   as depending on every transfer of round `r-1`);
//! * reusing a pipeline buffer in round `r` waits for the flush of round
//!   `r-2` (`r-1` when pipelining is disabled);
//! * flushes of one aggregator serialize on its file handle.
//!
//! Both TAPIOCA (here) and the ROMIO-like baseline (`tapioca-baseline`)
//! compile to this plan form, so they are simulated by the identical
//! executor and differ only in schedule, placement and pipelining —
//! exactly the comparison the paper makes.

use tapioca_pfs::{AccessMode, FileId};
use tapioca_topology::{NodeId, Rank};

use crate::schedule::Schedule;

/// Index of an operation inside an [`ExecutionPlan`].
pub type OpId = usize;

/// What an operation does.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Move `bytes` from `src` to `dst` over the fabric (aggregation
    /// phase put, or read-mode scatter).
    Transfer {
        /// Source compute node.
        src: NodeId,
        /// Destination compute node.
        dst: NodeId,
        /// Payload bytes.
        bytes: f64,
    },
    /// Storage operation by the aggregator on `src`.
    Flush {
        /// Aggregator's compute node.
        src: NodeId,
        /// Target file.
        file: FileId,
        /// File offset of the segment.
        offset: u64,
        /// Segment length, bytes.
        len: u64,
        /// Read or write.
        mode: AccessMode,
        /// Concurrency wave for filesystem sharing penalties (flushes
        /// with the same wave are planned together).
        wave: u64,
    },
}

/// Schedule coordinates of an operation — which partition and pipeline
/// round produced it. Carried so a simulated run can be projected back
/// onto the schedule structure (trace emission); `None` for plans that
/// do not originate from a TAPIOCA schedule (e.g. the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanMeta {
    /// Partition index within the originating schedule.
    pub partition: u32,
    /// Round index within the partition.
    pub round: u32,
}

/// One operation plus its dependencies (indices of earlier ops).
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// The operation.
    pub kind: OpKind,
    /// Operations that must complete before this one starts.
    pub deps: Vec<OpId>,
    /// Schedule coordinates, when known.
    pub meta: Option<PlanMeta>,
}

/// A dependency DAG of transfers and flushes.
#[derive(Debug, Clone, Default)]
pub struct ExecutionPlan {
    /// Operations in topological order (deps point backwards).
    pub ops: Vec<Op>,
    /// Payload bytes moved to/from storage (for bandwidth accounting).
    pub payload_bytes: f64,
}

impl ExecutionPlan {
    /// Create an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an operation; `deps` must reference earlier ops.
    ///
    /// # Panics
    /// Panics if a dependency is not an earlier op.
    pub fn push(&mut self, kind: OpKind, deps: Vec<OpId>) -> OpId {
        self.push_meta(kind, deps, None)
    }

    /// Append an operation carrying its schedule coordinates.
    ///
    /// # Panics
    /// Panics if a dependency is not an earlier op.
    pub fn push_meta(&mut self, kind: OpKind, deps: Vec<OpId>, meta: Option<PlanMeta>) -> OpId {
        let id = self.ops.len();
        assert!(deps.iter().all(|&d| d < id), "dependency must precede the op");
        self.ops.push(Op { kind, deps, meta });
        id
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A planned aggregator crash: the DAG mirror of the thread runtime's
/// demotion + replay protocol. The fill of `round` reaches the original
/// aggregator and is lost with its window; every member then replays
/// that round to the re-elected `standby`, which flushes it and serves
/// the remaining rounds. The replay traffic is what makes the recovery
/// cost visible in the simulated makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCrash {
    /// Partition (schedule-local index) whose aggregator crashes.
    pub partition: usize,
    /// Round at whose closing fence the crash is detected.
    pub round: u32,
    /// Member index (into the partition's members) of the standby.
    pub standby: usize,
}

/// Inputs for compiling one TAPIOCA schedule into plan operations.
pub struct TapiocaPlanInput<'a> {
    /// The schedule (over local rank ids `0..n_local`).
    pub schedule: &'a Schedule,
    /// Elected aggregator per partition: index into
    /// `schedule.partitions[p].members`.
    pub aggregator_choice: &'a [usize],
    /// Compute node of each local rank.
    pub node_of_rank: &'a dyn Fn(Rank) -> NodeId,
    /// File written by each partition (subfiling maps partitions of one
    /// Pset group to that Pset's file; otherwise all partitions share 0).
    pub file_of_partition: &'a dyn Fn(usize) -> FileId,
    /// Read or write.
    pub mode: AccessMode,
    /// Double buffering on (paper) or off (ablation).
    pub pipelining: bool,
    /// Operations that must complete before anything in this group
    /// starts (used to serialize independent collective calls, as plain
    /// MPI I/O does per variable).
    pub entry_deps: Vec<OpId>,
    /// Wave-id offset so concurrent groups of one call share filesystem
    /// waves while sequential calls do not.
    pub wave_base: u64,
    /// Aggregator crashes to compile into the DAG (write mode only; at
    /// most one per partition is honored, matching the fault plan).
    pub crashes: Vec<PlanCrash>,
}

impl std::fmt::Debug for TapiocaPlanInput<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TapiocaPlanInput")
            .field("partitions", &self.schedule.partitions.len())
            .field("mode", &self.mode)
            .field("pipelining", &self.pipelining)
            .finish()
    }
}

/// Compile a TAPIOCA schedule into plan operations (appended to `plan`).
///
/// Multiple groups (e.g. one per Pset file on Mira) can be appended to
/// the same plan; without `entry_deps` they share no dependencies and
/// run concurrently in the simulator, like independent subfiles do.
/// Returns the range of appended op ids.
pub fn append_tapioca_plan(
    plan: &mut ExecutionPlan,
    input: &TapiocaPlanInput<'_>,
) -> std::ops::Range<OpId> {
    let first_op = plan.ops.len();
    let sched = input.schedule;
    assert_eq!(sched.partitions.len(), input.aggregator_choice.len());

    for part in &sched.partitions {
        let p = part.index;
        let agg_member = input.aggregator_choice[p];
        let agg_node = (input.node_of_rank)(part.members[agg_member]);
        let file = (input.file_of_partition)(p);
        let nrounds = part.rounds.len();
        // Same guard as the thread runtime: a crash needs a standby and
        // a round to crash in, else it is ignored.
        let crash = input
            .crashes
            .iter()
            .find(|c| c.partition == p)
            .filter(|c| part.members.len() > 1 && (c.round as usize) < nrounds)
            .copied();
        let standby_node = crash.map(|c| (input.node_of_rank)(part.members[c.standby]));

        // per-(round, source node) byte totals
        let mut per_round: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); nrounds];
        for &m in &part.members {
            for c in &sched.chunks_by_rank[m] {
                if c.partition != p {
                    continue;
                }
                let node = (input.node_of_rank)(m);
                let row = &mut per_round[c.round as usize];
                match row.iter_mut().find(|(n, _)| *n == node) {
                    Some((_, b)) => *b += c.len as f64,
                    None => row.push((node, c.len as f64)),
                }
            }
        }

        let mut prev_transfers: Vec<OpId> = Vec::new();
        let mut flush_hist: Vec<Vec<OpId>> = Vec::new(); // per round
        let mut transfer_hist: Vec<Vec<OpId>> = Vec::new();

        for (r, round) in part.rounds.iter().enumerate() {
            match input.mode {
                AccessMode::Write => {
                    // fence: wait for previous round's puts; buffer
                    // reuse: wait for flush of r-2 (r-1 unpipelined)
                    let mut gate = if r == 0 {
                        input.entry_deps.clone()
                    } else {
                        prev_transfers.clone()
                    };
                    let reuse = if input.pipelining { r.checked_sub(2) } else { r.checked_sub(1) };
                    if let Some(fr) = reuse {
                        gate.extend_from_slice(&flush_hist[fr]);
                    }
                    let meta = Some(PlanMeta { partition: p as u32, round: r as u32 });
                    // Rounds after the crash flow straight to the
                    // standby; the crash round itself fills the doomed
                    // aggregator first (see below).
                    let fill_dst = match crash {
                        Some(c) if r > c.round as usize => standby_node.expect("standby"),
                        _ => agg_node,
                    };
                    let mut transfers: Vec<OpId> = per_round[r]
                        .iter()
                        .map(|&(node, bytes)| {
                            plan.push_meta(
                                OpKind::Transfer { src: node, dst: fill_dst, bytes },
                                gate.clone(),
                                meta,
                            )
                        })
                        .collect();
                    if crash.is_some_and(|c| r == c.round as usize) {
                        // The fill above is lost with the crashed window;
                        // after the fence (= all wasted transfers) every
                        // member replays the round to the standby.
                        let standby = standby_node.expect("standby");
                        let replay: Vec<OpId> = per_round[r]
                            .iter()
                            .map(|&(node, bytes)| {
                                plan.push_meta(
                                    OpKind::Transfer { src: node, dst: standby, bytes },
                                    transfers.clone(),
                                    meta,
                                )
                            })
                            .collect();
                        transfers = replay;
                    }
                    // flush: after this round's fence and the previous flush
                    let mut fdeps = transfers.clone();
                    if let Some(prev) = flush_hist.last() {
                        fdeps.extend_from_slice(prev);
                    } else {
                        // empty first round: still honor the entry gate
                        fdeps.extend_from_slice(&input.entry_deps);
                    }
                    let flush_src = match crash {
                        Some(c) if r >= c.round as usize => standby_node.expect("standby"),
                        _ => agg_node,
                    };
                    let flushes: Vec<OpId> = round
                        .segments
                        .iter()
                        .map(|seg| {
                            plan.push_meta(
                                OpKind::Flush {
                                    src: flush_src,
                                    file,
                                    offset: seg.file_offset,
                                    len: seg.len,
                                    mode: AccessMode::Write,
                                    wave: input.wave_base + r as u64,
                                },
                                fdeps.clone(),
                                meta,
                            )
                        })
                        .collect();
                    prev_transfers = transfers.clone();
                    transfer_hist.push(transfers);
                    flush_hist.push(flushes);
                }
                AccessMode::Read => {
                    // aggregator reads the round's segments, then
                    // scatters to members; buffer reuse waits for the
                    // scatter of r-2 (r-1 unpipelined)
                    let mut gate: Vec<OpId> = match flush_hist.last() {
                        Some(prev) => prev.clone(),
                        None => input.entry_deps.clone(),
                    };
                    let reuse = if input.pipelining { r.checked_sub(2) } else { r.checked_sub(1) };
                    if let Some(tr) = reuse {
                        gate.extend_from_slice(&transfer_hist[tr]);
                    }
                    let meta = Some(PlanMeta { partition: p as u32, round: r as u32 });
                    let flushes: Vec<OpId> = round
                        .segments
                        .iter()
                        .map(|seg| {
                            plan.push_meta(
                                OpKind::Flush {
                                    src: agg_node,
                                    file,
                                    offset: seg.file_offset,
                                    len: seg.len,
                                    mode: AccessMode::Read,
                                    wave: input.wave_base + r as u64,
                                },
                                gate.clone(),
                                meta,
                            )
                        })
                        .collect();
                    let transfers: Vec<OpId> = per_round[r]
                        .iter()
                        .map(|&(node, bytes)| {
                            plan.push_meta(
                                OpKind::Transfer { src: agg_node, dst: node, bytes },
                                flushes.clone(),
                                meta,
                            )
                        })
                        .collect();
                    prev_transfers = transfers.clone();
                    transfer_hist.push(transfers);
                    flush_hist.push(flushes);
                }
            }
        }
    }
    plan.payload_bytes += sched.total_bytes() as f64;
    first_op..plan.ops.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{compute_schedule, ScheduleParams, WriteDecl};

    fn dense(nranks: usize, per_rank: u64) -> Vec<Vec<WriteDecl>> {
        (0..nranks as u64)
            .map(|r| vec![WriteDecl { offset: r * per_rank, len: per_rank }])
            .collect()
    }

    fn build(nranks: usize, per_rank: u64, naggr: usize, buf: u64, pipelining: bool) -> ExecutionPlan {
        let sched = compute_schedule(&dense(nranks, per_rank), ScheduleParams {
            num_aggregators: naggr,
            buffer_size: buf,
            align_to_buffer: true,
        });
        let choice = vec![0usize; sched.partitions.len()];
        let mut plan = ExecutionPlan::new();
        append_tapioca_plan(&mut plan, &TapiocaPlanInput {
            schedule: &sched,
            aggregator_choice: &choice,
            node_of_rank: &|r| r, // one rank per node
            file_of_partition: &|_| 0,
            mode: AccessMode::Write,
            pipelining,
            entry_deps: Vec::new(),
            wave_base: 0,
            crashes: Vec::new(),
        });
        plan
    }

    fn flushes(plan: &ExecutionPlan) -> Vec<(OpId, &Op)> {
        plan.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o.kind, OpKind::Flush { .. }))
            .collect()
    }

    #[test]
    fn op_counts_match_structure() {
        // 4 ranks x 64 B, 2 partitions, 32 B buffers: each 32 B round
        // window lies inside one rank's 64 B block, so every round has
        // exactly one source transfer plus one flush segment.
        let plan = build(4, 64, 2, 32, true);
        let nt = plan.ops.iter().filter(|o| matches!(o.kind, OpKind::Transfer { .. })).count();
        let nf = flushes(&plan).len();
        assert_eq!(nt, 2 * 4);
        assert_eq!(nf, 2 * 4);
        assert_eq!(plan.payload_bytes, 256.0);
    }

    #[test]
    fn deps_are_topological() {
        let plan = build(6, 90, 3, 32, true);
        for (i, op) in plan.ops.iter().enumerate() {
            for &d in &op.deps {
                assert!(d < i);
            }
        }
    }

    #[test]
    fn flush_serialization_chain() {
        let plan = build(2, 64, 1, 32, true);
        let f = flushes(&plan);
        assert_eq!(f.len(), 4);
        // each flush after the first depends on the previous flush
        for w in f.windows(2) {
            let (prev_id, _) = w[0];
            let (_, op) = w[1];
            assert!(op.deps.contains(&prev_id), "flush must serialize on the file handle");
        }
    }

    #[test]
    fn pipelining_gates_on_r_minus_2() {
        let plan_p = build(2, 128, 1, 32, true);
        let plan_n = build(2, 128, 1, 32, false);
        // rounds emit 1 transfer (single source rank per 32 B window)
        // then 1 flush: ops per round = 2.
        let find_round_transfers = |plan: &ExecutionPlan, round: usize| -> Vec<Op> {
            let base = round * 2;
            plan.ops[base..base + 1].to_vec()
        };
        let f0 = 1usize; // op id of round-0 flush
        let f1 = 3usize; // op id of round-1 flush
        let t2p = find_round_transfers(&plan_p, 2);
        for t in &t2p {
            assert!(t.deps.contains(&f0), "pipelined round 2 reuses buffer 0 after flush(0)");
            assert!(!t.deps.contains(&f1), "pipelined round 2 must not wait for flush(1)");
        }
        let t2n = find_round_transfers(&plan_n, 2);
        for t in &t2n {
            assert!(t.deps.contains(&f1), "unpipelined round 2 waits for flush(1)");
        }
    }

    #[test]
    fn read_mode_reverses_direction() {
        let sched = compute_schedule(&dense(2, 64), ScheduleParams {
            num_aggregators: 1,
            buffer_size: 64,
            align_to_buffer: true,
        });
        let mut plan = ExecutionPlan::new();
        append_tapioca_plan(&mut plan, &TapiocaPlanInput {
            schedule: &sched,
            aggregator_choice: &[1],
            node_of_rank: &|r| r + 10,
            file_of_partition: &|_| 7,
            mode: AccessMode::Read,
            pipelining: true,
            entry_deps: Vec::new(),
            wave_base: 0,
            crashes: Vec::new(),
        });
        // first op is the read flush, then scatter transfers from agg
        assert!(matches!(plan.ops[0].kind, OpKind::Flush { mode: AccessMode::Read, file: 7, .. }));
        match plan.ops[1].kind {
            OpKind::Transfer { src, .. } => assert_eq!(src, 11, "scatter starts at the aggregator"),
            _ => panic!("expected transfer"),
        }
        assert!(plan.ops[1].deps.contains(&0));
    }

    #[test]
    fn every_scheduled_op_carries_its_coordinates() {
        let plan = build(4, 64, 2, 32, true);
        for op in &plan.ops {
            let m = op.meta.expect("schedule-derived ops carry meta");
            assert!(m.partition < 2);
        }
        // rounds must cover the schedule: 64 B per partition / 32 B buffer
        let max_round = plan.ops.iter().filter_map(|o| o.meta).map(|m| m.round).max();
        assert_eq!(max_round, Some(3));
    }

    #[test]
    #[should_panic(expected = "dependency must precede")]
    fn forward_dependency_rejected() {
        let mut plan = ExecutionPlan::new();
        plan.push(OpKind::Transfer { src: 0, dst: 1, bytes: 1.0 }, vec![3]);
    }
}
