//! The public TAPIOCA API (thread mode) — the Rust counterpart of the
//! paper's `TAPIOCA_Init` / `TAPIOCA_Write` / `TAPIOCA_Read` calls
//! (Algorithm 2).
//!
//! ```text
//! TAPIOCA_Init(count, type, ofst, 3);     ->  Tapioca::init(comm, file, decls, cfg)?
//! TAPIOCA_Write(f, offset, x, n, ...);    ->  io.write(offset, &x)?
//! ```
//!
//! `init` allgathers the declarations, computes the round schedule, and
//! is collective over the communicator. `write` stages the payload of
//! one declared variable; once the last declared write has arrived the
//! pipeline of [`crate::aggregation`] executes (puts, fences, elections,
//! double-buffered flushes). Deviations from the paper are documented in
//! `DESIGN.md`: user payloads are staged until the last declared write
//! instead of being streamed per call — correctness-equivalent, one
//! extra copy.
//!
//! Every entry point returns [`crate::error::Result`]: invalid configs,
//! undeclared writes, and I/O failures that survive the retry budget
//! surface as [`crate::TapiocaError`] values, never as panics (the one
//! documented exception is [`Tapioca::finalize`], where panicking is the
//! only alternative to deadlocking the peers).

use std::sync::Arc;

use tapioca_mpi::{Comm, SharedFile};
use tapioca_topology::TopologyProvider;

use crate::aggregation::{run_read_pipeline, run_write_pipeline, IoStats};
use crate::config::TapiocaConfig;
use crate::error::{Result, TapiocaError};
use crate::placement::UniformTopology;
use crate::schedule::{compute_schedule, Schedule, ScheduleParams, WriteDecl};

/// Outcome of a `write` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Payload staged; more declared writes outstanding.
    Staged,
    /// This was the last declared write: the collective pipeline ran and
    /// all data (of every rank) is flushed.
    Flushed,
    /// The pipeline ran and all data is durable, but at least one
    /// partition this rank participated in exhausted its retry budget
    /// and fell back to direct per-rank writes (see `DESIGN.md`,
    /// "Fault model & recovery").
    Degraded,
}

/// A TAPIOCA instance bound to one communicator and one file.
pub struct Tapioca<'c> {
    comm: &'c Comm,
    file: SharedFile,
    cfg: TapiocaConfig,
    topo: Arc<dyn TopologyProvider>,
    decls: Vec<WriteDecl>,
    schedule: Schedule,
    staged: Vec<Option<Vec<u8>>>,
    epoch: u64,
    flushed: bool,
    stats: Option<IoStats>,
}

impl std::fmt::Debug for Tapioca<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tapioca")
            .field("decls", &self.decls.len())
            .field("epoch", &self.epoch)
            .field("flushed", &self.flushed)
            .finish()
    }
}

impl<'c> Tapioca<'c> {
    /// Collective: declare this rank's upcoming writes and compute the
    /// shared schedule. Uses the zero-information [`UniformTopology`]
    /// (election degenerates to lowest rank).
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] if `cfg` fails validation. Every
    /// rank computes the same verdict from the same config, so an error
    /// return is collective too — no rank proceeds alone.
    pub fn init(
        comm: &'c Comm,
        file: SharedFile,
        decls: Vec<WriteDecl>,
        cfg: TapiocaConfig,
    ) -> Result<Tapioca<'c>> {
        let topo = Arc::new(UniformTopology { num_ranks: comm.size() });
        Self::init_with_topology(comm, file, decls, cfg, topo)
    }

    /// Collective: like [`Tapioca::init`] but with a real machine model,
    /// enabling the topology-aware election.
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] if `cfg` fails validation; the
    /// check runs *before* any collective call, so all ranks bail out
    /// symmetrically.
    pub fn init_with_topology(
        comm: &'c Comm,
        file: SharedFile,
        decls: Vec<WriteDecl>,
        cfg: TapiocaConfig,
        topo: Arc<dyn TopologyProvider>,
    ) -> Result<Tapioca<'c>> {
        cfg.validate()?;
        let epoch = comm.next_user_seq();

        // Allgather declarations: (offset, len) pairs.
        let mut mine = Vec::with_capacity(decls.len() * 16);
        for d in &decls {
            mine.extend_from_slice(&d.offset.to_le_bytes());
            mine.extend_from_slice(&d.len.to_le_bytes());
        }
        let all = comm.allgather_bytes(mine);
        let all_decls: Vec<Vec<WriteDecl>> = all
            .into_iter()
            .map(|bytes| {
                bytes
                    .chunks_exact(16)
                    .map(|c| WriteDecl {
                        offset: u64::from_le_bytes(c[..8].try_into().expect("8 bytes")),
                        len: u64::from_le_bytes(c[8..].try_into().expect("8 bytes")),
                    })
                    .collect()
            })
            .collect();

        let schedule = compute_schedule(&all_decls, ScheduleParams {
            num_aggregators: cfg.num_aggregators,
            buffer_size: cfg.buffer_size,
            align_to_buffer: true,
        });
        let staged = vec![None; decls.len()];
        Ok(Tapioca {
            comm,
            file,
            cfg,
            topo,
            decls,
            schedule,
            staged,
            epoch,
            flushed: false,
            stats: None,
        })
    }

    /// The computed schedule (for inspection and tests).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Instrumentation counters of the executed write pipeline
    /// (available once the last declared write has flushed).
    pub fn stats(&self) -> Option<&IoStats> {
        self.stats.as_ref()
    }

    /// Stage the payload of the declared write at `offset`. When the
    /// last declared write arrives, the collective pipeline runs (all
    /// ranks reach it at their own last write).
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] if `(offset, data.len())` matches
    /// no outstanding declared write of this rank (detected locally,
    /// before any collective call). I/O errors from the pipeline
    /// propagate once the last declared write triggers the flush.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<WriteOutcome> {
        let var = self
            .decls
            .iter()
            .enumerate()
            .position(|(i, d)| {
                d.offset == offset && d.len == data.len() as u64 && self.staged[i].is_none()
            })
            .ok_or_else(|| {
                TapiocaError::InvalidConfig(format!(
                    "write of {} bytes at offset {offset} matches no outstanding declaration",
                    data.len()
                ))
            })?;
        self.staged[var] = Some(data.to_vec());
        if self.staged.iter().all(Option::is_some) {
            self.flush()?;
            if self.stats.as_ref().is_some_and(|s| s.degraded > 0) {
                Ok(WriteOutcome::Degraded)
            } else {
                Ok(WriteOutcome::Flushed)
            }
        } else {
            Ok(WriteOutcome::Staged)
        }
    }

    fn flush(&mut self) -> Result<()> {
        let staged: Vec<Vec<u8>> = self
            .staged
            .iter()
            .map(|o| o.clone().expect("all writes staged"))
            .collect();
        let stats = run_write_pipeline(
            self.comm,
            &self.schedule,
            &staged,
            &self.file,
            &self.cfg,
            self.topo.as_ref(),
            self.epoch * 2,
        )?;
        self.stats = Some(stats);
        self.flushed = true;
        Ok(())
    }

    /// Collective two-phase read of every declared extent; returns one
    /// buffer per declared write of this rank.
    ///
    /// # Errors
    /// [`TapiocaError::Io`] if an aggregator's file read fails.
    pub fn read_declared(&self) -> Result<Vec<Vec<u8>>> {
        let lens: Vec<u64> = self.decls.iter().map(|d| d.len).collect();
        run_read_pipeline(
            self.comm,
            &self.schedule,
            &lens,
            &self.file,
            &self.cfg,
            self.topo.as_ref(),
            self.epoch * 2 + 1,
        )
    }

    /// Finish the instance.
    ///
    /// # Panics
    /// Panics if this rank declared writes it never issued (the
    /// collective pipeline would deadlock the other ranks otherwise, so
    /// failing loudly here is the kind option).
    pub fn finalize(self) {
        assert!(
            self.decls.is_empty() || self.flushed,
            "finalize with {} declared writes never issued",
            self.staged.iter().filter(|o| o.is_none()).count()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca_mpi::Runtime;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tapioca-core-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn cfg(aggr: usize, buf: u64) -> TapiocaConfig {
        TapiocaConfig { num_aggregators: aggr, buffer_size: buf, ..Default::default() }
    }

    #[test]
    fn contiguous_blocks_roundtrip() {
        let path = tmp("blocks");
        let n = 8;
        let per = 256u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls = vec![WriteDecl { offset: r * per, len: per }];
            let mut io = Tapioca::init(&comm, file, decls, cfg(3, 96)).unwrap();
            let payload: Vec<u8> = (0..per).map(|i| (r * 7 + i) as u8).collect();
            assert_eq!(io.write(r * per, &payload).unwrap(), WriteOutcome::Flushed);
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), (n as u64 * per) as usize);
        for r in 0..n as u64 {
            for i in 0..per {
                assert_eq!(bytes[(r * per + i) as usize], (r * 7 + i) as u8);
            }
        }
    }

    #[test]
    fn multi_var_xyz_like_algorithm_2() {
        // 4 ranks x 3 vars (x, y, z), SoA-style regions.
        let path = tmp("xyz");
        let n = 4;
        let var_len = 64u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls: Vec<WriteDecl> = (0..3u64)
                .map(|v| WriteDecl { offset: v * (n as u64 * var_len) + r * var_len, len: var_len })
                .collect();
            let mut io = Tapioca::init(&comm, file, decls.clone(), cfg(2, 128)).unwrap();
            for (v, d) in decls.iter().enumerate() {
                let payload = vec![10 * (v as u8 + 1) + r as u8; var_len as usize];
                let outcome = io.write(d.offset, &payload).unwrap();
                if v < 2 {
                    assert_eq!(outcome, WriteOutcome::Staged);
                } else {
                    assert_eq!(outcome, WriteOutcome::Flushed);
                }
            }
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 3 * 4 * 64);
        for v in 0..3u64 {
            for r in 0..4u64 {
                let base = (v * 256 + r * 64) as usize;
                assert!(bytes[base..base + 64].iter().all(|&b| b == (10 * (v + 1) + r) as u8));
            }
        }
    }

    #[test]
    fn read_back_through_two_phase_read() {
        let path = tmp("readback");
        let n = 6;
        let per = 100u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls = vec![WriteDecl { offset: r * per, len: per }];
            let mut io = Tapioca::init(&comm, file, decls, cfg(4, 64)).unwrap();
            let payload: Vec<u8> = (0..per).map(|i| (r * 31 + i * 3) as u8).collect();
            io.write(r * per, &payload).unwrap();
            let back = io.read_declared().unwrap();
            assert_eq!(back.len(), 1);
            assert_eq!(back[0], payload, "rank {r} read back mismatch");
            io.finalize();
        });
    }

    #[test]
    fn uneven_sizes_and_many_partitions() {
        let path = tmp("uneven");
        let n = 5;
        // rank r writes (r+1)*40 bytes, packed contiguously
        let sizes: Vec<u64> = (0..n as u64).map(|r| (r + 1) * 40).collect();
        let offs: Vec<u64> = sizes
            .iter()
            .scan(0u64, |acc, s| {
                let o = *acc;
                *acc += s;
                Some(o)
            })
            .collect();
        let total: u64 = sizes.iter().sum();
        let (offs2, sizes2) = (offs.clone(), sizes.clone());
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank();
            let decls = vec![WriteDecl { offset: offs2[r], len: sizes2[r] }];
            let mut io = Tapioca::init(&comm, file, decls, cfg(3, 50)).unwrap();
            let payload = vec![r as u8 + 1; sizes2[r] as usize];
            io.write(offs2[r], &payload).unwrap();
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, total);
        for r in 0..n {
            let (o, s) = (offs[r] as usize, sizes[r] as usize);
            assert!(bytes[o..o + s].iter().all(|&b| b == r as u8 + 1));
        }
    }

    #[test]
    fn pipelining_off_is_still_correct() {
        let path = tmp("nopipe");
        Runtime::run(4, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls = vec![WriteDecl { offset: r * 64, len: 64 }];
            let mut io = Tapioca::init(&comm, file, decls, TapiocaConfig {
                num_aggregators: 2,
                buffer_size: 32,
                pipelining: false,
                ..Default::default()
            })
            .unwrap();
            io.write(r * 64, &[r as u8 + 9; 64]).unwrap();
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        for r in 0..4u64 {
            assert!(bytes[(r * 64) as usize..((r + 1) * 64) as usize]
                .iter()
                .all(|&b| b == r as u8 + 9));
        }
    }

    #[test]
    fn two_instances_on_one_comm() {
        let p1 = tmp("multi1");
        let p2 = tmp("multi2");
        Runtime::run(3, |comm| {
            let r = comm.rank() as u64;
            let f1 = SharedFile::open_shared(&comm, &p1);
            let mut io1 =
                Tapioca::init(&comm, f1, vec![WriteDecl { offset: r * 8, len: 8 }], cfg(1, 8))
                    .unwrap();
            io1.write(r * 8, &[1u8; 8]).unwrap();
            io1.finalize();

            let f2 = SharedFile::open_shared(&comm, &p2);
            let mut io2 =
                Tapioca::init(&comm, f2, vec![WriteDecl { offset: r * 8, len: 8 }], cfg(2, 4))
                    .unwrap();
            io2.write(r * 8, &[2u8; 8]).unwrap();
            io2.finalize();
        });
        assert!(std::fs::read(&p1).unwrap().iter().all(|&b| b == 1));
        assert!(std::fs::read(&p2).unwrap().iter().all(|&b| b == 2));
    }

    #[test]
    fn undeclared_write_errors_without_collective() {
        let path = tmp("undeclared");
        Runtime::run(1, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let mut io =
                Tapioca::init(&comm, file, vec![WriteDecl { offset: 0, len: 8 }], cfg(1, 8))
                    .unwrap();
            let err = io.write(99, &[0u8; 8]).unwrap_err();
            assert!(matches!(err, TapiocaError::InvalidConfig(_)));
            assert!(err.to_string().contains("matches no outstanding declaration"));
            // The declared write still works after the rejected one.
            io.write(0, &[7u8; 8]).unwrap();
            io.finalize();
        });
    }

    #[test]
    fn invalid_config_is_rejected_at_init() {
        let path = tmp("badcfg");
        Runtime::run(1, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let err =
                Tapioca::init(&comm, file, vec![], cfg(0, 8)).map(|_| ()).unwrap_err();
            assert!(matches!(err, TapiocaError::InvalidConfig(_)));
        });
    }
}
