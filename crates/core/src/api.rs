//! The public TAPIOCA API (thread mode) — the Rust counterpart of the
//! paper's `TAPIOCA_Init` / `TAPIOCA_Write` / `TAPIOCA_Read` calls
//! (Algorithm 2).
//!
//! ```text
//! TAPIOCA_Init(count, type, ofst, 3);     ->  Tapioca::builder(comm, file)
//!                                                 .declarations(decls)
//!                                                 .config(cfg)
//!                                                 .build()?
//! TAPIOCA_Write(f, offset, x, n, ...);    ->  io.write(offset, &x)?
//! ```
//!
//! [`SessionBuilder::build`] allgathers the declarations, computes the
//! round schedule, and is collective over the communicator. `write`
//! *streams* the payload of one declared variable straight into the
//! round pipeline of [`crate::aggregation`]: as soon as every
//! contribution this rank owes to round *r* of the current partition
//! has arrived, that round's puts, fences, and double-buffered flush
//! execute inside the `write` call — payload bytes flow from the
//! caller's slice into the RMA window with no whole-payload staging
//! copy. Bytes that arrive *before* the round that consumes them can
//! run (out-of-order call sequences) are held in small per-chunk
//! pending buffers and counted in [`IoStats::staging_copy_bytes`]; an
//! in-order sequence copies nothing.
//!
//! A [`Session`] is reusable across **epochs**: once every declared
//! write of an epoch has been issued (on every rank), the next `write`
//! round starts the next epoch against the same schedule. The session
//! keeps the allgathered declarations, the computed schedule, and — for
//! fault-free configs — each partition's sub-communicator, election
//! result, RMA window, and recycled flush buffers alive, so timestep
//! loops stop re-paying allgather + `compute_schedule` + election every
//! checkpoint.
//!
//! Every rank must issue **all** of its declared writes each epoch (in
//! any order); the pipeline's collectives are only deadlock-free under
//! that contract, which [`Session::finalize`] enforces loudly.
//!
//! Every entry point returns [`crate::error::Result`]: invalid configs,
//! undeclared writes, and I/O failures that survive the retry budget
//! surface as [`crate::TapiocaError`] values, never as panics (the one
//! documented exception is [`Session::finalize`], where panicking is
//! the only alternative to deadlocking the peers).

use std::sync::Arc;

use tapioca_mpi::{Comm, SharedFile};
use tapioca_topology::TopologyProvider;

use crate::aggregation::{
    run_read_pipeline, CachedPart, ChunkSource, IoStats, PartitionRun, RoundOutcome,
};
use crate::config::TapiocaConfig;
use crate::error::{io_err, Result, TapiocaError};
use crate::placement::UniformTopology;
use crate::schedule::{
    compute_coalesce_plan, compute_schedule, Chunk, CoalescePlan, RankStreamPlan, Schedule,
    ScheduleParams, WriteDecl,
};

/// Outcome of a [`Session::write`] call.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The payload was fed into the round pipeline; `rounds_completed`
    /// rounds of this epoch have fully executed on this rank so far.
    /// More declared writes of this epoch are outstanding.
    Streamed {
        /// Rounds of the current epoch completed on this rank, across
        /// all partitions, after this call.
        rounds_completed: u64,
    },
    /// This was the epoch's last declared write: the pipeline ran to
    /// completion and all data (of every rank) is flushed.
    Flushed,
    /// The epoch completed and all data is durable, but at least one
    /// partition this rank participated in exhausted its retry budget
    /// and fell back to direct per-rank writes (see `DESIGN.md`,
    /// "Fault model & recovery").
    Degraded,
}

/// Progress of one declared chunk through the current epoch.
#[derive(Debug, Default)]
enum ChunkState {
    /// Payload not yet at hand.
    #[default]
    Waiting,
    /// Payload arrived before its round could run; copied into a
    /// pending buffer (counted in [`IoStats::staging_copy_bytes`]).
    Pending(Vec<u8>),
    /// Consumed by its round (or direct-written after a degrade).
    Done,
}

/// [`ChunkSource`] of the streaming path: the variable being written
/// right now is served from the caller's slice; earlier out-of-order
/// arrivals from their pending buffers.
struct StreamSource<'a> {
    chunk_base: usize,
    states: &'a [ChunkState],
    live_var: usize,
    live: &'a [u8],
}

impl ChunkSource for StreamSource<'_> {
    fn chunk_data(&self, idx: usize, c: &Chunk) -> &[u8] {
        match &self.states[self.chunk_base + idx] {
            ChunkState::Pending(buf) => buf,
            ChunkState::Waiting => {
                debug_assert_eq!(c.var, self.live_var, "waiting chunk of a non-live var");
                &self.live[c.var_offset as usize..(c.var_offset + c.len) as usize]
            }
            // A round runs at most once per epoch (crash replays re-read
            // within the same run_round call), so a Done chunk is never
            // requested again.
            ChunkState::Done => unreachable!("chunk consumed twice in one epoch"),
        }
    }
}

/// Builder for a [`Session`] — the single entry point replacing the
/// historical `init` / `init_with_topology` constructor pair.
///
/// ```no_run
/// # use tapioca::{Session, TapiocaConfig, WriteDecl};
/// # use tapioca_mpi::{Runtime, SharedFile};
/// # Runtime::run(2, |comm| {
/// let file = SharedFile::open_shared(&comm, "/tmp/out.bin");
/// let r = comm.rank() as u64;
/// let mut io = Session::builder(&comm, file)
///     .declarations(vec![WriteDecl { offset: r * 64, len: 64 }])
///     .config(TapiocaConfig { num_aggregators: 1, buffer_size: 32, ..Default::default() })
///     .build()
///     .unwrap();
/// io.write(r * 64, &[7u8; 64]).unwrap();
/// io.finalize();
/// # });
/// ```
pub struct SessionBuilder<'c> {
    comm: &'c Comm,
    file: SharedFile,
    decls: Vec<WriteDecl>,
    cfg: TapiocaConfig,
    topo: Option<Arc<dyn TopologyProvider>>,
}

impl std::fmt::Debug for SessionBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("decls", &self.decls.len())
            .field("topology", &self.topo.is_some())
            .finish()
    }
}

impl<'c> SessionBuilder<'c> {
    /// This rank's upcoming writes (default: none).
    #[must_use]
    pub fn declarations(mut self, decls: Vec<WriteDecl>) -> Self {
        self.decls = decls;
        self
    }

    /// The pipeline configuration (default: [`TapiocaConfig::default`]).
    #[must_use]
    pub fn config(mut self, cfg: TapiocaConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// A real machine model, enabling the topology-aware election
    /// (default: the zero-information [`UniformTopology`], under which
    /// the election degenerates to the lowest rank).
    #[must_use]
    pub fn topology(mut self, topo: Arc<dyn TopologyProvider>) -> Self {
        self.topo = Some(topo);
        self
    }

    /// Replace the current config with the autotuner's pick for this
    /// machine/workload (see [`crate::autotune`]); strategy and fault
    /// settings of the current config are kept as the search anchor.
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] if the anchor config fails
    /// validation or the tuner's simulations fail.
    pub fn autotune(
        mut self,
        profile: &tapioca_topology::MachineProfile,
        storage: &crate::sim_exec::StorageConfig,
        spec: &crate::sim_exec::CollectiveSpec,
    ) -> Result<Self> {
        let outcome = crate::autotune::autotune_from(profile, storage, spec, &self.cfg)?;
        self.cfg = outcome.best;
        Ok(self)
    }

    /// Collective: allgather every rank's declarations, compute the
    /// shared round schedule, and return the reusable [`Session`].
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] if the config fails validation;
    /// the check runs *before* any collective call, so all ranks bail
    /// out symmetrically.
    pub fn build(self) -> Result<Session<'c>> {
        let SessionBuilder { comm, file, decls, cfg, topo } = self;
        cfg.validate()?;
        let topo =
            topo.unwrap_or_else(|| Arc::new(UniformTopology { num_ranks: comm.size() }));
        let seq = comm.next_user_seq();

        // Allgather declarations: (offset, len) pairs.
        let mut mine = Vec::with_capacity(decls.len() * 16);
        for d in &decls {
            mine.extend_from_slice(&d.offset.to_le_bytes());
            mine.extend_from_slice(&d.len.to_le_bytes());
        }
        let all = comm.allgather_bytes(mine);
        let all_decls: Vec<Vec<WriteDecl>> = all
            .into_iter()
            .map(|bytes| {
                bytes
                    .chunks_exact(16)
                    .map(|c| WriteDecl {
                        offset: u64::from_le_bytes(c[..8].try_into().expect("8 bytes")),
                        len: u64::from_le_bytes(c[8..].try_into().expect("8 bytes")),
                    })
                    .collect()
            })
            .collect();

        let schedule = compute_schedule(&all_decls, ScheduleParams {
            num_aggregators: cfg.num_aggregators,
            buffer_size: cfg.buffer_size,
            align_to_buffer: true,
        });
        let plan = RankStreamPlan::new(&schedule, comm.rank());
        let coalesce = cfg
            .coalescing
            .then(|| Arc::new(compute_coalesce_plan(&schedule, |rk| topo.node_of_rank(rk))));
        let mut var_chunks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); decls.len()];
        for (pslot, pp) in plan.parts.iter().enumerate() {
            for (li, c) in pp.chunks.iter().enumerate() {
                var_chunks[c.var].push((pslot, li));
            }
        }
        let nparts = plan.parts.len();
        let nchunks = plan.total_chunks;
        let ndecls = decls.len();
        Ok(Session {
            comm,
            file,
            cfg,
            topo,
            decls,
            schedule,
            plan,
            coalesce,
            var_chunks,
            seq,
            cache: std::iter::repeat_with(|| None).take(nparts).collect(),
            avail: vec![false; ndecls],
            issued: 0,
            chunk_state: std::iter::repeat_with(ChunkState::default).take(nchunks).collect(),
            cur_part: 0,
            active: None,
            degraded_from: vec![None; nparts],
            rounds_completed: 0,
            pool: Vec::new(),
            epoch_stats: IoStats::default(),
            last_stats: None,
            epochs_completed: 0,
        })
    }
}

/// A reusable TAPIOCA session bound to one communicator and one file:
/// the streaming write pipeline plus everything worth keeping across
/// epochs. See the [module docs](self) for the streaming and epoch
/// semantics. `Tapioca` is an alias for this type.
pub struct Session<'c> {
    comm: &'c Comm,
    file: SharedFile,
    cfg: TapiocaConfig,
    topo: Arc<dyn TopologyProvider>,
    decls: Vec<WriteDecl>,
    schedule: Schedule,
    plan: RankStreamPlan,
    /// Intra-node put-coalescing runs shared by every partition entry
    /// this session makes (`None` unless `cfg.coalescing`); computed
    /// once — the schedule and placement are fixed for the session's
    /// lifetime, so the plan is too.
    coalesce: Option<Arc<CoalescePlan>>,
    /// Per declared var: its chunks as `(plan part slot, local index)`.
    var_chunks: Vec<Vec<(usize, usize)>>,
    seq: u64,
    /// Per plan part: state kept from the previous epoch (fault-free
    /// configs only).
    cache: Vec<Option<CachedPart>>,
    /// Per declared var: payload issued this epoch.
    avail: Vec<bool>,
    issued: usize,
    /// Flat per-chunk progress, indexed `parts[p].chunk_base + local`.
    chunk_state: Vec<ChunkState>,
    cur_part: usize,
    active: Option<PartitionRun>,
    /// Per plan part: the degrade round, once the partition degraded
    /// this epoch (late arrivals for it go straight to the file).
    degraded_from: Vec<Option<usize>>,
    rounds_completed: u64,
    /// Recycled pending-chunk buffers.
    pool: Vec<Vec<u8>>,
    epoch_stats: IoStats,
    last_stats: Option<IoStats>,
    epochs_completed: u64,
}

/// Historical name of [`Session`], kept so existing code and the
/// paper-facing docs (`TAPIOCA_Init` etc.) keep reading naturally.
pub type Tapioca<'c> = Session<'c>;

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("decls", &self.decls.len())
            .field("seq", &self.seq)
            .field("issued", &self.issued)
            .field("epochs_completed", &self.epochs_completed)
            .finish()
    }
}

impl<'c> Session<'c> {
    /// Start building a session on `comm` writing to `file`.
    pub fn builder(comm: &'c Comm, file: SharedFile) -> SessionBuilder<'c> {
        SessionBuilder { comm, file, decls: Vec::new(), cfg: TapiocaConfig::default(), topo: None }
    }

    /// Collective: declare this rank's upcoming writes and compute the
    /// shared schedule, with the zero-information [`UniformTopology`].
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] if `cfg` fails validation. Every
    /// rank computes the same verdict from the same config, so an error
    /// return is collective too — no rank proceeds alone.
    #[deprecated(note = "use `Session::builder(comm, file).declarations(..).config(..).build()`")]
    pub fn init(
        comm: &'c Comm,
        file: SharedFile,
        decls: Vec<WriteDecl>,
        cfg: TapiocaConfig,
    ) -> Result<Session<'c>> {
        Session::builder(comm, file).declarations(decls).config(cfg).build()
    }

    /// Collective: like `init` but with a real machine model, enabling
    /// the topology-aware election.
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] if `cfg` fails validation; the
    /// check runs *before* any collective call, so all ranks bail out
    /// symmetrically.
    #[deprecated(
        note = "use `Session::builder(comm, file).declarations(..).config(..).topology(..).build()`"
    )]
    pub fn init_with_topology(
        comm: &'c Comm,
        file: SharedFile,
        decls: Vec<WriteDecl>,
        cfg: TapiocaConfig,
        topo: Arc<dyn TopologyProvider>,
    ) -> Result<Session<'c>> {
        Session::builder(comm, file).declarations(decls).config(cfg).topology(topo).build()
    }

    /// The computed schedule (for inspection and tests).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Instrumentation counters of the most recently *completed* epoch
    /// (`None` until the first epoch finishes).
    pub fn stats(&self) -> Option<&IoStats> {
        self.last_stats.as_ref()
    }

    /// Write epochs completed so far.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    /// Stream the payload of the declared write at `offset` into the
    /// round pipeline. Rounds whose contributions are now complete on
    /// this rank execute before this call returns; the epoch's last
    /// declared write drives the pipeline to completion.
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] if `(offset, data.len())` matches
    /// no outstanding declared write of this rank in the current epoch
    /// (detected locally, before any collective call). I/O errors from
    /// the pipeline propagate from whichever `write` call ran the
    /// failing round.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> Result<WriteOutcome> {
        let var = self
            .decls
            .iter()
            .enumerate()
            .position(|(i, d)| {
                d.offset == offset && d.len == data.len() as u64 && !self.avail[i]
            })
            .ok_or_else(|| {
                TapiocaError::InvalidConfig(format!(
                    "write of {} bytes at offset {offset} matches no outstanding declaration",
                    data.len()
                ))
            })?;
        self.avail[var] = true;
        self.issued += 1;
        self.advance(var, data)?;
        self.stash_or_direct(var, data)?;
        if self.issued == self.decls.len() {
            Ok(self.complete_epoch())
        } else {
            Ok(WriteOutcome::Streamed { rounds_completed: self.rounds_completed })
        }
    }

    /// Drive the round pipeline as far as the issued payloads allow:
    /// partitions in ascending order, rounds in ascending order within
    /// each — the identical global total order of the batch driver, so
    /// pausing between collectives is deadlock-free.
    fn advance(&mut self, live_var: usize, live: &[u8]) -> Result<()> {
        let Session {
            comm,
            file,
            cfg,
            topo,
            schedule,
            plan,
            coalesce,
            seq,
            cache,
            avail,
            chunk_state,
            cur_part,
            active,
            degraded_from,
            rounds_completed,
            pool,
            epoch_stats,
            ..
        } = self;
        while *cur_part < plan.parts.len() {
            let pp = &plan.parts[*cur_part];
            let part = &schedule.partitions[pp.part_index];
            let nrounds = part.rounds.len();
            let r = active.as_ref().map_or(0, |a| a.next_round);
            if r < nrounds {
                // Round-readiness: every chunk this rank owes to round r
                // must be at hand (an empty range is vacuously ready —
                // the rank only participates in the fences).
                let (s, e) = pp.round_ranges[r];
                if !pp.chunks[s..e].iter().all(|c| avail[c.var]) {
                    break;
                }
            }
            if active.is_none() {
                // Enter the partition only once its first round is
                // ready, so no rank sits in the election before it has
                // anything to contribute.
                *active = Some(PartitionRun::enter(
                    comm,
                    part,
                    cfg,
                    topo.as_ref(),
                    *seq * 2,
                    cache[*cur_part].take(),
                    coalesce.as_ref(),
                    epoch_stats,
                ));
            }
            let run = active.as_mut().expect("entered above");
            if r == nrounds {
                run.finish(file, cfg)?;
                let run = active.take().expect("still active");
                if cfg.faults.is_none() {
                    cache[*cur_part] = Some(run.into_cache());
                }
                *cur_part += 1;
                continue;
            }
            let outcome = {
                let src = StreamSource {
                    chunk_base: pp.chunk_base,
                    states: chunk_state,
                    live_var,
                    live,
                };
                run.run_round(part, &pp.chunks, file, cfg, &src, epoch_stats)?
            };
            match outcome {
                RoundOutcome::Ran => {
                    let (s, e) = pp.round_ranges[r];
                    for i in s..e {
                        let gi = pp.chunk_base + i;
                        if let ChunkState::Pending(mut b) =
                            std::mem::replace(&mut chunk_state[gi], ChunkState::Done)
                        {
                            b.clear();
                            pool.push(b);
                        }
                    }
                    *rounds_completed += 1;
                }
                RoundOutcome::Degraded => {
                    // Remaining rounds of this partition fall back to
                    // direct per-rank writes: whatever is at hand now
                    // goes to the file here; chunks of vars still
                    // outstanding are written at their `write` call.
                    let dr = run.next_round;
                    for (i, c) in pp.chunks.iter().enumerate() {
                        if (c.round as usize) < dr {
                            continue;
                        }
                        let gi = pp.chunk_base + i;
                        chunk_state[gi] = match std::mem::take(&mut chunk_state[gi]) {
                            ChunkState::Done => ChunkState::Done,
                            ChunkState::Pending(mut b) => {
                                file.write_at(c.file_offset, &b)
                                    .map_err(|e| io_err("write_at", e))?;
                                b.clear();
                                pool.push(b);
                                ChunkState::Done
                            }
                            ChunkState::Waiting => {
                                if c.var == live_var {
                                    let d = &live[c.var_offset as usize
                                        ..(c.var_offset + c.len) as usize];
                                    file.write_at(c.file_offset, d)
                                        .map_err(|e| io_err("write_at", e))?;
                                    ChunkState::Done
                                } else {
                                    ChunkState::Waiting
                                }
                            }
                        };
                    }
                    run.finish(file, cfg)?;
                    *active = None;
                    degraded_from[*cur_part] = Some(dr);
                    *cur_part += 1;
                }
            }
        }
        Ok(())
    }

    /// Park the chunks of `var` that `advance` did not consume: copy
    /// them into pending buffers (counted), or — when their partition
    /// already degraded — write them straight to the file.
    fn stash_or_direct(&mut self, var: usize, live: &[u8]) -> Result<()> {
        for &(pslot, li) in &self.var_chunks[var] {
            let pp = &self.plan.parts[pslot];
            let c = pp.chunks[li];
            let gi = pp.chunk_base + li;
            if !matches!(self.chunk_state[gi], ChunkState::Waiting) {
                continue;
            }
            let d = &live[c.var_offset as usize..(c.var_offset + c.len) as usize];
            if self.degraded_from[pslot].is_some_and(|dr| c.round as usize >= dr) {
                self.file.write_at(c.file_offset, d).map_err(|e| io_err("write_at", e))?;
                self.chunk_state[gi] = ChunkState::Done;
                continue;
            }
            let mut b = self.pool.pop().unwrap_or_default();
            b.clear();
            b.extend_from_slice(d);
            self.chunk_state[gi] = ChunkState::Pending(b);
            self.epoch_stats.staging_copy_bytes += c.len;
        }
        Ok(())
    }

    /// Close the epoch: publish its stats and reset the per-epoch
    /// progress so the next `write` starts the next epoch.
    fn complete_epoch(&mut self) -> WriteOutcome {
        debug_assert_eq!(self.cur_part, self.plan.parts.len(), "all partitions finished");
        let degraded = self.epoch_stats.degraded > 0;
        self.last_stats = Some(self.epoch_stats);
        self.epochs_completed += 1;
        self.epoch_stats = IoStats::default();
        self.avail.iter_mut().for_each(|a| *a = false);
        self.issued = 0;
        self.cur_part = 0;
        self.rounds_completed = 0;
        for st in &mut self.chunk_state {
            *st = ChunkState::Waiting;
        }
        self.degraded_from.iter_mut().for_each(|d| *d = None);
        if degraded {
            WriteOutcome::Degraded
        } else {
            WriteOutcome::Flushed
        }
    }

    /// Collective two-phase read of every declared extent; returns one
    /// buffer per declared write of this rank. Only valid *between*
    /// epochs (no partially-issued writes outstanding).
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] mid-epoch; [`TapiocaError::Io`]
    /// if an aggregator's file read fails.
    pub fn read_declared(&self) -> Result<Vec<Vec<u8>>> {
        if self.issued != 0 {
            return Err(TapiocaError::InvalidConfig(format!(
                "read_declared mid-epoch: {} of {} declared writes issued",
                self.issued,
                self.decls.len()
            )));
        }
        let lens: Vec<u64> = self.decls.iter().map(|d| d.len).collect();
        run_read_pipeline(
            self.comm,
            &self.schedule,
            &lens,
            &self.file,
            &self.cfg,
            self.topo.as_ref(),
            self.seq * 2 + 1,
        )
    }

    /// Finish the session.
    ///
    /// # Panics
    /// Panics if this rank declared writes it never issued — in the
    /// current epoch or ever (the collective pipeline would deadlock
    /// the other ranks otherwise, so failing loudly here is the kind
    /// option).
    pub fn finalize(self) {
        assert!(
            self.issued == 0,
            "finalize with {} declared writes never issued",
            self.decls.len() - self.issued
        );
        assert!(
            self.decls.is_empty() || self.epochs_completed > 0,
            "finalize with {} declared writes never issued",
            self.decls.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca_mpi::Runtime;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tapioca-core-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn cfg(aggr: usize, buf: u64) -> TapiocaConfig {
        TapiocaConfig { num_aggregators: aggr, buffer_size: buf, ..Default::default() }
    }

    fn session<'c>(
        comm: &'c Comm,
        file: SharedFile,
        decls: Vec<WriteDecl>,
        cfg: TapiocaConfig,
    ) -> Session<'c> {
        Session::builder(comm, file).declarations(decls).config(cfg).build().unwrap()
    }

    #[test]
    fn contiguous_blocks_roundtrip() {
        let path = tmp("blocks");
        let n = 8;
        let per = 256u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls = vec![WriteDecl { offset: r * per, len: per }];
            let mut io = session(&comm, file, decls, cfg(3, 96));
            let payload: Vec<u8> = (0..per).map(|i| (r * 7 + i) as u8).collect();
            assert_eq!(io.write(r * per, &payload).unwrap(), WriteOutcome::Flushed);
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), (n as u64 * per) as usize);
        for r in 0..n as u64 {
            for i in 0..per {
                assert_eq!(bytes[(r * per + i) as usize], (r * 7 + i) as u8);
            }
        }
    }

    #[test]
    fn multi_var_xyz_like_algorithm_2() {
        // 4 ranks x 3 vars (x, y, z), SoA-style regions.
        let path = tmp("xyz");
        let n = 4;
        let var_len = 64u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls: Vec<WriteDecl> = (0..3u64)
                .map(|v| WriteDecl { offset: v * (n as u64 * var_len) + r * var_len, len: var_len })
                .collect();
            let mut io = session(&comm, file, decls.clone(), cfg(2, 128));
            for (v, d) in decls.iter().enumerate() {
                let payload = vec![10 * (v as u8 + 1) + r as u8; var_len as usize];
                let outcome = io.write(d.offset, &payload).unwrap();
                if v < 2 {
                    assert!(
                        matches!(outcome, WriteOutcome::Streamed { .. }),
                        "rank {r} var {v}: {outcome:?}"
                    );
                } else {
                    assert_eq!(outcome, WriteOutcome::Flushed);
                }
            }
            // In declaration order the rank's chunks arrive in pipeline
            // order, so nothing is copied into pending buffers.
            assert_eq!(io.stats().unwrap().staging_copy_bytes, 0, "rank {r}");
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 3 * 4 * 64);
        for v in 0..3u64 {
            for r in 0..4u64 {
                let base = (v * 256 + r * 64) as usize;
                assert!(bytes[base..base + 64].iter().all(|&b| b == (10 * (v + 1) + r) as u8));
            }
        }
    }

    #[test]
    fn out_of_order_writes_are_staged_and_correct() {
        // Same workload as above, but every rank issues its vars in
        // reverse: later-region payloads wait in pending buffers.
        let path = tmp("xyz-rev");
        let n = 4;
        let var_len = 64u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls: Vec<WriteDecl> = (0..3u64)
                .map(|v| WriteDecl { offset: v * (n as u64 * var_len) + r * var_len, len: var_len })
                .collect();
            let mut io = session(&comm, file, decls.clone(), cfg(2, 128));
            for (v, d) in decls.iter().enumerate().rev() {
                let payload = vec![10 * (v as u8 + 1) + r as u8; var_len as usize];
                io.write(d.offset, &payload).unwrap();
            }
            assert!(
                io.stats().unwrap().staging_copy_bytes > 0,
                "rank {r}: reverse order must stage"
            );
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        for v in 0..3u64 {
            for r in 0..4u64 {
                let base = (v * 256 + r * 64) as usize;
                assert!(bytes[base..base + 64].iter().all(|&b| b == (10 * (v + 1) + r) as u8));
            }
        }
    }

    #[test]
    fn epoch_reuse_streams_repeated_timesteps() {
        let path = tmp("epochs");
        let n = 4;
        let per = 96u64;
        let epochs = 3u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls = vec![WriteDecl { offset: r * per, len: per }];
            let mut io = session(&comm, file, decls, cfg(2, 48));
            let mut first: Option<IoStats> = None;
            for e in 0..epochs {
                let payload: Vec<u8> = (0..per).map(|i| (r * 13 + e * 31 + i) as u8).collect();
                assert_eq!(io.write(r * per, &payload).unwrap(), WriteOutcome::Flushed);
                let s = *io.stats().unwrap();
                // Identical work every epoch: same elections, puts,
                // fences, flushes (determinism of the reused session).
                match &first {
                    None => first = Some(s),
                    Some(f) => assert_eq!(&s, f, "rank {r} epoch {e}"),
                }
                let back = io.read_declared().unwrap();
                assert_eq!(back[0], payload, "rank {r} epoch {e}");
            }
            assert_eq!(io.epochs_completed(), epochs);
            io.finalize();
        });
        // File holds the last epoch's bytes.
        let bytes = std::fs::read(&path).unwrap();
        for r in 0..n as u64 {
            for i in 0..per {
                assert_eq!(
                    bytes[(r * per + i) as usize],
                    (r * 13 + (epochs - 1) * 31 + i) as u8
                );
            }
        }
    }

    #[test]
    fn read_back_through_two_phase_read() {
        let path = tmp("readback");
        let n = 6;
        let per = 100u64;
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls = vec![WriteDecl { offset: r * per, len: per }];
            let mut io = session(&comm, file, decls, cfg(4, 64));
            let payload: Vec<u8> = (0..per).map(|i| (r * 31 + i * 3) as u8).collect();
            io.write(r * per, &payload).unwrap();
            let back = io.read_declared().unwrap();
            assert_eq!(back.len(), 1);
            assert_eq!(back[0], payload, "rank {r} read back mismatch");
            io.finalize();
        });
    }

    #[test]
    fn uneven_sizes_and_many_partitions() {
        let path = tmp("uneven");
        let n = 5;
        // rank r writes (r+1)*40 bytes, packed contiguously
        let sizes: Vec<u64> = (0..n as u64).map(|r| (r + 1) * 40).collect();
        let offs: Vec<u64> = sizes
            .iter()
            .scan(0u64, |acc, s| {
                let o = *acc;
                *acc += s;
                Some(o)
            })
            .collect();
        let total: u64 = sizes.iter().sum();
        let (offs2, sizes2) = (offs.clone(), sizes.clone());
        Runtime::run(n, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank();
            let decls = vec![WriteDecl { offset: offs2[r], len: sizes2[r] }];
            let mut io = session(&comm, file, decls, cfg(3, 50));
            let payload = vec![r as u8 + 1; sizes2[r] as usize];
            io.write(offs2[r], &payload).unwrap();
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, total);
        for r in 0..n {
            let (o, s) = (offs[r] as usize, sizes[r] as usize);
            assert!(bytes[o..o + s].iter().all(|&b| b == r as u8 + 1));
        }
    }

    #[test]
    fn pipelining_off_is_still_correct() {
        let path = tmp("nopipe");
        Runtime::run(4, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls = vec![WriteDecl { offset: r * 64, len: 64 }];
            let mut io = session(&comm, file, decls, TapiocaConfig {
                num_aggregators: 2,
                buffer_size: 32,
                pipelining: false,
                ..Default::default()
            });
            io.write(r * 64, &[r as u8 + 9; 64]).unwrap();
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        for r in 0..4u64 {
            assert!(bytes[(r * 64) as usize..((r + 1) * 64) as usize]
                .iter()
                .all(|&b| b == r as u8 + 9));
        }
    }

    #[test]
    fn two_instances_on_one_comm() {
        let p1 = tmp("multi1");
        let p2 = tmp("multi2");
        Runtime::run(3, |comm| {
            let r = comm.rank() as u64;
            let f1 = SharedFile::open_shared(&comm, &p1);
            let mut io1 =
                session(&comm, f1, vec![WriteDecl { offset: r * 8, len: 8 }], cfg(1, 8));
            io1.write(r * 8, &[1u8; 8]).unwrap();
            io1.finalize();

            let f2 = SharedFile::open_shared(&comm, &p2);
            let mut io2 =
                session(&comm, f2, vec![WriteDecl { offset: r * 8, len: 8 }], cfg(2, 4));
            io2.write(r * 8, &[2u8; 8]).unwrap();
            io2.finalize();
        });
        assert!(std::fs::read(&p1).unwrap().iter().all(|&b| b == 1));
        assert!(std::fs::read(&p2).unwrap().iter().all(|&b| b == 2));
    }

    #[test]
    fn undeclared_write_errors_without_collective() {
        let path = tmp("undeclared");
        Runtime::run(1, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let mut io =
                session(&comm, file, vec![WriteDecl { offset: 0, len: 8 }], cfg(1, 8));
            let err = io.write(99, &[0u8; 8]).unwrap_err();
            assert!(matches!(err, TapiocaError::InvalidConfig(_)));
            assert!(err.to_string().contains("matches no outstanding declaration"));
            // The declared write still works after the rejected one.
            io.write(0, &[7u8; 8]).unwrap();
            io.finalize();
        });
    }

    #[test]
    fn invalid_config_is_rejected_at_build() {
        let path = tmp("badcfg");
        Runtime::run(1, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let err = Session::builder(&comm, file)
                .config(cfg(0, 8))
                .build()
                .map(|_| ())
                .unwrap_err();
            assert!(matches!(err, TapiocaError::InvalidConfig(_)));
        });
    }

    #[test]
    fn read_declared_mid_epoch_is_rejected() {
        let path = tmp("midepoch");
        Runtime::run(1, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let decls =
                vec![WriteDecl { offset: 0, len: 8 }, WriteDecl { offset: 8, len: 8 }];
            let mut io = session(&comm, file, decls, cfg(1, 8));
            io.write(0, &[1u8; 8]).unwrap();
            let err = io.read_declared().unwrap_err();
            assert!(matches!(err, TapiocaError::InvalidConfig(_)));
            io.write(8, &[2u8; 8]).unwrap();
            io.finalize();
        });
    }

    #[allow(deprecated)]
    #[test]
    fn deprecated_init_shims_keep_the_old_call_shape() {
        let p1 = tmp("shim1");
        let p2 = tmp("shim2");
        Runtime::run(2, |comm| {
            let r = comm.rank() as u64;
            let f1 = SharedFile::open_shared(&comm, &p1);
            let mut io =
                Tapioca::init(&comm, f1, vec![WriteDecl { offset: r * 8, len: 8 }], cfg(1, 8))
                    .unwrap();
            io.write(r * 8, &[3u8; 8]).unwrap();
            io.finalize();

            let f2 = SharedFile::open_shared(&comm, &p2);
            let topo: Arc<dyn TopologyProvider> =
                Arc::new(UniformTopology { num_ranks: comm.size() });
            let mut io = Tapioca::init_with_topology(
                &comm,
                f2,
                vec![WriteDecl { offset: r * 8, len: 8 }],
                cfg(1, 8),
                topo,
            )
            .unwrap();
            io.write(r * 8, &[4u8; 8]).unwrap();
            io.finalize();
        });
        assert!(std::fs::read(&p1).unwrap().iter().all(|&b| b == 3));
        assert!(std::fs::read(&p2).unwrap().iter().all(|&b| b == 4));
    }
}
