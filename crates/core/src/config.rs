//! Library configuration.

use crate::placement::PlacementStrategy;

/// Configuration of a TAPIOCA instance.
///
/// The paper's tuned values: Mira — 16 aggregators per Pset with 16 MB
/// buffers (32/32 MB for the microbenchmark); Theta — 48-384 aggregators
/// with the buffer sized to the Lustre stripe (Table I: 1:1 is best).
#[derive(Debug, Clone, PartialEq)]
pub struct TapiocaConfig {
    /// Number of aggregators (= partitions) for the whole operation.
    pub num_aggregators: usize,
    /// Aggregation buffer size in bytes (each aggregator allocates two).
    pub buffer_size: u64,
    /// Overlap aggregation with flushes via double buffering (the paper's
    /// pipeline). Disabling it is an ablation, not a paper mode.
    pub pipelining: bool,
    /// Aggregator election strategy.
    pub strategy: PlacementStrategy,
}

impl Default for TapiocaConfig {
    fn default() -> Self {
        Self {
            num_aggregators: 16,
            buffer_size: 16 * 1024 * 1024,
            pipelining: true,
            strategy: PlacementStrategy::TopologyAware,
        }
    }
}

impl TapiocaConfig {
    /// Validate invariants; called by `init`.
    ///
    /// # Panics
    /// Panics on zero aggregators or zero buffer size.
    pub fn validate(&self) {
        assert!(self.num_aggregators > 0, "need at least one aggregator");
        assert!(self.buffer_size > 0, "buffer size must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_mira_tuning() {
        let c = TapiocaConfig::default();
        assert_eq!(c.num_aggregators, 16);
        assert_eq!(c.buffer_size, 16 * 1024 * 1024);
        assert!(c.pipelining);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one aggregator")]
    fn zero_aggregators_invalid() {
        TapiocaConfig { num_aggregators: 0, ..Default::default() }.validate();
    }
}
