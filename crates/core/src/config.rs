//! Library configuration.

use crate::error::{Result, TapiocaError};
use crate::placement::PlacementStrategy;
use tapioca_mpi::{FaultPlan, IoPolicy};

#[cfg(feature = "trace")]
use std::sync::Arc;
#[cfg(feature = "trace")]
use tapioca_trace::Tracer;

/// Configuration of a TAPIOCA instance.
///
/// The paper's tuned values: Mira — 16 aggregators per Pset with 16 MB
/// buffers (32/32 MB for the microbenchmark); Theta — 48-384 aggregators
/// with the buffer sized to the Lustre stripe (Table I: 1:1 is best).
///
/// Prefer [`TapiocaConfig::builder`] over struct literals: the builder
/// validates on [`ConfigBuilder::build`] and keeps call sites stable as
/// the config surface grows (tracer, faults, I/O policy).
#[derive(Debug, Clone)]
pub struct TapiocaConfig {
    /// Number of aggregators (= partitions) for the whole operation.
    pub num_aggregators: usize,
    /// Aggregation buffer size in bytes (each aggregator allocates two).
    pub buffer_size: u64,
    /// Overlap aggregation with flushes via double buffering (the paper's
    /// pipeline). Disabling it is an ablation, not a paper mode.
    pub pipelining: bool,
    /// Aggregator election strategy.
    pub strategy: PlacementStrategy,
    /// Merge intra-node contiguous puts into one RMA operation per
    /// (node, round): co-located ranks deposit into a node leader's
    /// gather buffer and the leader forwards the packed range as a
    /// single put. Off by default — the autotuner enables it when the
    /// ω(A) per-op latency saved exceeds the gather overhead (high
    /// ranks-per-node, many small chunks). File bytes are bit-identical
    /// either way.
    pub coalescing: bool,
    /// Deterministic fault schedule consumed by both executors. `None`
    /// (the default) injects nothing; recovery machinery stays off the
    /// hot path entirely.
    pub faults: Option<FaultPlan>,
    /// Retry/backoff/timeout policy of the non-blocking file worker.
    pub io_policy: IoPolicy,
    /// Event recorder for this collective. `None` (the default) records
    /// nothing: the only cost left on the hot path is one `Option` check
    /// per instrumented operation. Both executors — the thread-mode
    /// pipeline and the simulator — emit into the same tracer schema,
    /// which is what makes their traces comparable.
    #[cfg(feature = "trace")]
    pub tracer: Option<Arc<Tracer>>,
}

impl PartialEq for TapiocaConfig {
    fn eq(&self, other: &Self) -> bool {
        #[cfg(feature = "trace")]
        let tracer_eq = match (&self.tracer, &other.tracer) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        #[cfg(not(feature = "trace"))]
        let tracer_eq = true;
        self.num_aggregators == other.num_aggregators
            && self.buffer_size == other.buffer_size
            && self.pipelining == other.pipelining
            && self.coalescing == other.coalescing
            && self.strategy == other.strategy
            && self.faults == other.faults
            && self.io_policy == other.io_policy
            && tracer_eq
    }
}

impl Default for TapiocaConfig {
    fn default() -> Self {
        Self {
            num_aggregators: 16,
            buffer_size: 16 * 1024 * 1024,
            pipelining: true,
            coalescing: false,
            strategy: PlacementStrategy::TopologyAware,
            faults: None,
            io_policy: IoPolicy::default(),
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }
}

impl TapiocaConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder { cfg: TapiocaConfig::default() }
    }

    /// Validate invariants; called by `init` and the simulator drivers.
    pub fn validate(&self) -> Result<()> {
        if self.num_aggregators == 0 {
            return Err(TapiocaError::InvalidConfig("need at least one aggregator".into()));
        }
        if self.buffer_size == 0 {
            return Err(TapiocaError::InvalidConfig("buffer size must be positive".into()));
        }
        if let Some(plan) = &self.faults {
            plan.validate().map_err(TapiocaError::InvalidConfig)?;
            // Cross-field bound: a schedule never produces more
            // partitions than aggregators, so a fault targeting
            // partition >= num_aggregators can never fire on any
            // workload run with this config.
            for spec in &plan.specs {
                let target = match *spec {
                    tapioca_mpi::FaultSpec::AggregatorCrash { partition, .. }
                    | tapioca_mpi::FaultSpec::FlushStall { partition, .. } => Some(partition),
                    tapioca_mpi::FaultSpec::FlushSlowdown { partition, .. } => partition,
                    _ => None,
                };
                if let Some(p) = target {
                    if p as usize >= self.num_aggregators {
                        return Err(TapiocaError::InvalidConfig(format!(
                            "fault targets partition {p} but only {} aggregators \
                             (= max partitions) are configured",
                            self.num_aggregators
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`TapiocaConfig`]; validates on [`ConfigBuilder::build`].
///
/// ```
/// use tapioca::config::TapiocaConfig;
/// let cfg = TapiocaConfig::builder()
///     .aggregators(8)
///     .buffer_mib(16)
///     .pipelining(true)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.num_aggregators, 8);
/// ```
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    cfg: TapiocaConfig,
}

impl ConfigBuilder {
    /// Number of aggregators (= partitions).
    #[must_use]
    pub fn aggregators(mut self, n: usize) -> Self {
        self.cfg.num_aggregators = n;
        self
    }

    /// Aggregation buffer size in bytes.
    #[must_use]
    pub fn buffer_bytes(mut self, bytes: u64) -> Self {
        self.cfg.buffer_size = bytes;
        self
    }

    /// Aggregation buffer size in MiB.
    #[must_use]
    pub fn buffer_mib(mut self, mib: u64) -> Self {
        self.cfg.buffer_size = mib * 1024 * 1024;
        self
    }

    /// Enable/disable the double-buffered flush pipeline.
    #[must_use]
    pub fn pipelining(mut self, on: bool) -> Self {
        self.cfg.pipelining = on;
        self
    }

    /// Enable/disable intra-node put coalescing.
    #[must_use]
    pub fn coalescing(mut self, on: bool) -> Self {
        self.cfg.coalescing = on;
        self
    }

    /// Aggregator election strategy.
    #[must_use]
    pub fn strategy(mut self, s: PlacementStrategy) -> Self {
        self.cfg.strategy = s;
        self
    }

    /// Install a deterministic fault schedule.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = Some(plan);
        self
    }

    /// Retry/backoff/timeout policy for file operations.
    #[must_use]
    pub fn io_policy(mut self, policy: IoPolicy) -> Self {
        self.cfg.io_policy = policy;
        self
    }

    /// Install an event tracer.
    #[cfg(feature = "trace")]
    #[must_use]
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.cfg.tracer = Some(tracer);
        self
    }

    /// Replace the tunable dimensions (aggregators, buffer, strategy,
    /// pipelining) with the result of the cost-model-guided search over
    /// the declared workload, keeping the builder's other fields
    /// (faults, I/O policy, tracer) intact. See [`crate::autotune`].
    ///
    /// # Errors
    /// Propagates tuner errors (storage/profile mismatch, simulator
    /// failures).
    pub fn autotune(
        mut self,
        profile: &tapioca_topology::MachineProfile,
        storage: &crate::sim_exec::StorageConfig,
        spec: &crate::sim_exec::CollectiveSpec,
    ) -> Result<Self> {
        let outcome = crate::autotune::autotune_from(profile, storage, spec, &self.cfg)?;
        self.cfg = outcome.best;
        Ok(self)
    }

    /// Statically analyze the config against a concrete workload:
    /// derive the symbolic schedule (see [`crate::analyze`]) and run
    /// the full pass catalogue, erroring on the first violation. This
    /// rejects unsafe configs (window overflows, unreachable faults,
    /// tier overflow, fence cycles) before any executor runs.
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] carrying the rendered
    /// [`crate::analyze::StaticViolation`] witness.
    pub fn validate_static(
        self,
        profile: &tapioca_topology::MachineProfile,
        spec: &crate::sim_exec::CollectiveSpec,
    ) -> Result<Self> {
        let sym = crate::analyze::derive_symbolic(profile, spec, &self.cfg)?;
        let violations = crate::analyze::analyze(&sym, &self.cfg);
        if let Some(v) = violations.first() {
            return Err(TapiocaError::InvalidConfig(format!("static analysis: {v}")));
        }
        Ok(self)
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<TapiocaConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapioca_mpi::FaultSpec;

    #[test]
    fn default_matches_mira_tuning() {
        let c = TapiocaConfig::default();
        assert_eq!(c.num_aggregators, 16);
        assert_eq!(c.buffer_size, 16 * 1024 * 1024);
        assert!(c.pipelining);
        assert!(c.faults.is_none());
        c.validate().unwrap();
    }

    #[test]
    fn zero_aggregators_invalid() {
        let err = TapiocaConfig { num_aggregators: 0, ..Default::default() }
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("at least one aggregator"));
        let err =
            TapiocaConfig { buffer_size: 0, ..Default::default() }.validate().unwrap_err();
        assert!(err.to_string().contains("buffer size"));
    }

    #[test]
    fn builder_builds_and_validates() {
        let cfg = TapiocaConfig::builder()
            .aggregators(4)
            .buffer_bytes(4096)
            .pipelining(false)
            .strategy(PlacementStrategy::RankOrder)
            .faults(FaultPlan::seeded(7))
            .build()
            .unwrap();
        assert_eq!(cfg.num_aggregators, 4);
        assert_eq!(cfg.buffer_size, 4096);
        assert!(!cfg.pipelining);
        assert_eq!(cfg.faults.as_ref().unwrap().seed, 7);

        assert!(TapiocaConfig::builder().aggregators(0).build().is_err());
        let bad = FaultPlan::seeded(0)
            .with(FaultSpec::TransientFlushError { probability: 2.0 });
        assert!(TapiocaConfig::builder().faults(bad).build().is_err());
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(TapiocaConfig::builder().build().unwrap(), TapiocaConfig::default());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn configs_compare_tracers_by_identity() {
        let t = Tracer::new(4);
        let a = TapiocaConfig { tracer: Some(Arc::clone(&t)), ..Default::default() };
        let b = TapiocaConfig { tracer: Some(Arc::clone(&t)), ..Default::default() };
        let c = TapiocaConfig { tracer: Some(Tracer::new(4)), ..Default::default() };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, TapiocaConfig::default());
    }
}
