//! Library configuration.

use crate::placement::PlacementStrategy;

#[cfg(feature = "trace")]
use std::sync::Arc;
#[cfg(feature = "trace")]
use tapioca_trace::Tracer;

/// Configuration of a TAPIOCA instance.
///
/// The paper's tuned values: Mira — 16 aggregators per Pset with 16 MB
/// buffers (32/32 MB for the microbenchmark); Theta — 48-384 aggregators
/// with the buffer sized to the Lustre stripe (Table I: 1:1 is best).
#[derive(Debug, Clone)]
pub struct TapiocaConfig {
    /// Number of aggregators (= partitions) for the whole operation.
    pub num_aggregators: usize,
    /// Aggregation buffer size in bytes (each aggregator allocates two).
    pub buffer_size: u64,
    /// Overlap aggregation with flushes via double buffering (the paper's
    /// pipeline). Disabling it is an ablation, not a paper mode.
    pub pipelining: bool,
    /// Aggregator election strategy.
    pub strategy: PlacementStrategy,
    /// Event recorder for this collective. `None` (the default) records
    /// nothing: the only cost left on the hot path is one `Option` check
    /// per instrumented operation. Both executors — the thread-mode
    /// pipeline and the simulator — emit into the same tracer schema,
    /// which is what makes their traces comparable.
    #[cfg(feature = "trace")]
    pub tracer: Option<Arc<Tracer>>,
}

impl PartialEq for TapiocaConfig {
    fn eq(&self, other: &Self) -> bool {
        #[cfg(feature = "trace")]
        let tracer_eq = match (&self.tracer, &other.tracer) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        #[cfg(not(feature = "trace"))]
        let tracer_eq = true;
        self.num_aggregators == other.num_aggregators
            && self.buffer_size == other.buffer_size
            && self.pipelining == other.pipelining
            && self.strategy == other.strategy
            && tracer_eq
    }
}

impl Default for TapiocaConfig {
    fn default() -> Self {
        Self {
            num_aggregators: 16,
            buffer_size: 16 * 1024 * 1024,
            pipelining: true,
            strategy: PlacementStrategy::TopologyAware,
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }
}

impl TapiocaConfig {
    /// Validate invariants; called by `init`.
    ///
    /// # Panics
    /// Panics on zero aggregators or zero buffer size.
    pub fn validate(&self) {
        assert!(self.num_aggregators > 0, "need at least one aggregator");
        assert!(self.buffer_size > 0, "buffer size must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_mira_tuning() {
        let c = TapiocaConfig::default();
        assert_eq!(c.num_aggregators, 16);
        assert_eq!(c.buffer_size, 16 * 1024 * 1024);
        assert!(c.pipelining);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one aggregator")]
    fn zero_aggregators_invalid() {
        TapiocaConfig { num_aggregators: 0, ..Default::default() }.validate();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn configs_compare_tracers_by_identity() {
        let t = Tracer::new(4);
        let a = TapiocaConfig { tracer: Some(Arc::clone(&t)), ..Default::default() };
        let b = TapiocaConfig { tracer: Some(Arc::clone(&t)), ..Default::default() };
        let c = TapiocaConfig { tracer: Some(Tracer::new(4)), ..Default::default() };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, TapiocaConfig::default());
    }
}
