//! Simulation-mode executor: run an [`ExecutionPlan`] on the flow-level
//! simulator against a machine profile and a filesystem model.
//!
//! This is the driver behind every figure/table reproduction: the same
//! schedule + placement objects used by thread mode are compiled to a
//! plan (see [`crate::plan`]) and executed here with link contention,
//! storage service stations, and lock penalties.

use tapioca_mpi::{FaultPlan, IoPolicy};
use tapioca_netsim::{FlowId, SimTime, Simulator};
use tapioca_pfs::{
    AccessMode, FileId, FlushReq, GpfsModel, GpfsTunables, LustreModel, LustreTunables,
    PlannedFlow,
};
use tapioca_topology::{
    LinkIx, Machine, MachineProfile, NodeId, Rank, StorageProfile, TopologyProvider,
};

use crate::config::TapiocaConfig;
use crate::error::{Result, TapiocaError};
use crate::placement::{elect_partitions, election_cost, PartitionElection};
use crate::plan::{append_tapioca_plan, ExecutionPlan, OpKind, PlanCrash, TapiocaPlanInput};
use crate::schedule::{compute_schedule, Schedule, ScheduleParams, WriteDecl};

/// Filesystem tunables for a simulation (must match the profile's
/// storage kind).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StorageConfig {
    /// GPFS tunables (Mira).
    Gpfs(GpfsTunables),
    /// Lustre tunables (Theta).
    Lustre(LustreTunables),
}

enum StorageModel {
    Gpfs(GpfsModel),
    Lustre(LustreModel),
}

/// Result of a simulated collective operation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// End-to-end elapsed simulated time, seconds.
    pub elapsed: SimTime,
    /// Payload bytes moved.
    pub bytes: f64,
    /// Aggregate bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Completion time of every plan operation.
    pub op_finish: Vec<SimTime>,
    /// Number of fabric transfer operations (aggregation phase).
    pub transfers: usize,
    /// Number of storage operations (I/O phase).
    pub flushes: usize,
    /// When the last aggregation transfer completed.
    pub last_transfer_finish: SimTime,
    /// When the last storage operation completed.
    pub last_flush_finish: SimTime,
    /// Faults injected from the fault plan (failed flush attempts plus
    /// one per crash) — mirrors `IoStats::faults_injected`.
    pub faults_injected: u64,
    /// Flush retries the modelled I/O worker performed.
    pub retries: u64,
    /// Aggregator crashes recovered by standby re-election.
    pub reelections: u64,
    /// Partitions whose retry budget was exhausted (thread mode falls
    /// back to direct writes there; the simulator stops charging flush
    /// penalties from that round on, matching the early detection).
    pub degraded: u64,
}

impl SimReport {
    /// Bandwidth in GiB/s for harness output.
    pub fn bandwidth_gib(&self) -> f64 {
        self.bandwidth / (1u64 << 30) as f64
    }
}

/// Number of LNET gateway nodes modelled on a dragonfly machine.
const LNET_GATEWAYS: usize = 8;

/// Deterministic LNET gateway node placement: spread across the machine
/// (their real mapping on Theta is irregular and undocumented; what
/// matters is that the placement cost model cannot see them while the
/// simulator still routes through them).
fn lnet_nodes(num_nodes: usize) -> Vec<NodeId> {
    let g = LNET_GATEWAYS.min(num_nodes);
    (0..g).map(|i| (i * num_nodes) / g + num_nodes / (2 * g)).collect()
}

/// Execute `plan` against `profile` + `storage`.
///
/// # Errors
/// [`TapiocaError::InvalidConfig`] when the storage config kind does not
/// match the profile's storage profile (Gpfs vs Lustre).
pub fn simulate(
    profile: &MachineProfile,
    storage: &StorageConfig,
    plan: &ExecutionPlan,
) -> Result<SimReport> {
    simulate_faulty(profile, storage, plan, None, &IoPolicy::default())
}

/// Like [`simulate`], but perturbed by a [`FaultPlan`]: link capacities
/// are degraded by `LinkDegrade` specs, and every write flush consults
/// the plan for a transient-fault hint — the same pure function thread
/// mode evaluates — whose retry/backoff cost (`FaultHint::penalty`) is
/// added to the flush's service delay. A hint that exhausts the budget
/// marks its partition degraded: from that round on no penalties are
/// charged, matching the thread runtime's early fallback to direct
/// writes.
///
/// # Errors
/// [`TapiocaError::InvalidConfig`] on a storage/profile kind mismatch.
pub fn simulate_faulty(
    profile: &MachineProfile,
    storage: &StorageConfig,
    plan: &ExecutionPlan,
    faults: Option<&FaultPlan>,
    policy: &IoPolicy,
) -> Result<SimReport> {
    let machine = &profile.machine;
    let net = machine.interconnect();
    let mut sim = Simulator::from_interconnect(net);
    // Collapse near-simultaneous completions (symmetric flows of one
    // round) into single events: 20 us against multi-ms rounds is a
    // <1% perturbation for an order-of-magnitude event reduction.
    sim.set_completion_slack(20e-6);
    // Degrade the fabric before the storage models append their virtual
    // service stations (those keep nominal rates).
    if let Some(f) = faults.and_then(FaultPlan::link_degrade) {
        sim.scale_capacities(f);
    }

    // Per-flush fault hints: segment ordinals within (partition, round)
    // follow flush emission order, the same coordinates thread mode
    // hashes. The prepass also finds each partition's degrade round.
    let mut seg_of_op: std::collections::HashMap<usize, (u32, u32, u32)> =
        std::collections::HashMap::new();
    let mut degrade_round: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut faults_injected = 0u64;
    let mut retries = 0u64;
    if let Some(fp) = faults {
        let mut ord: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
        for (id, op) in plan.ops.iter().enumerate() {
            let (OpKind::Flush { mode: AccessMode::Write, .. }, Some(m)) = (&op.kind, op.meta)
            else {
                continue;
            };
            let s = ord.entry((m.partition, m.round)).or_insert(0);
            seg_of_op.insert(id, (m.partition, m.round, *s));
            if fp
                .flush_fault(m.partition, m.round, *s)
                .is_some_and(|h| h.exceeds(policy))
            {
                let e = degrade_round.entry(m.partition).or_insert(m.round);
                *e = (*e).min(m.round);
            }
            *s += 1;
        }
    }

    // Install the storage model's virtual links.
    let model = match (&profile.storage, storage) {
        (StorageProfile::Gpfs { ion_link_bw, ion_service_bw }, StorageConfig::Gpfs(tun)) => {
            let torus = machine
                .fabric()
                .as_torus()
                .expect("GPFS profile implies a torus fabric");
            StorageModel::Gpfs(GpfsModel::new(
                &mut sim,
                torus.num_psets(),
                *ion_link_bw,
                *ion_service_bw,
                *tun,
            ))
        }
        (
            StorageProfile::Lustre { total_osts, ost_write_bw, ost_read_bw, lnet_bw },
            StorageConfig::Lustre(tun),
        ) => StorageModel::Lustre(LustreModel::new(
            &mut sim,
            *total_osts,
            *ost_write_bw,
            *ost_read_bw,
            *lnet_bw,
            lnet_nodes(net.num_nodes()),
            *tun,
        )),
        _ => {
            return Err(TapiocaError::InvalidConfig(
                "storage config kind does not match the machine profile".into(),
            ))
        }
    };
    let mut model = model;

    // Cross-wave lock analysis: the models must see the whole operation
    // before any wave is planned.
    let all_reqs: Vec<FlushReq> = plan
        .ops
        .iter()
        .filter_map(|op| match op.kind {
            OpKind::Flush { src, file, offset, len, mode, .. } => {
                Some(FlushReq { src_node: src, file, offset, len, mode })
            }
            _ => None,
        })
        .collect();
    match &mut model {
        StorageModel::Gpfs(g) => g.register_operation(&all_reqs),
        StorageModel::Lustre(l) => l.register_operation(&all_reqs),
    }

    // Plan filesystem waves: group flush ops by wave id.
    let mut waves: std::collections::BTreeMap<u64, Vec<(usize, FlushReq)>> =
        std::collections::BTreeMap::new();
    for (id, op) in plan.ops.iter().enumerate() {
        if let OpKind::Flush { src, file, offset, len, mode, wave } = op.kind {
            waves.entry(wave).or_default().push((
                id,
                FlushReq { src_node: src, file, offset, len, mode },
            ));
        }
    }
    let mut flows_of_flush: std::collections::HashMap<usize, Vec<PlannedFlow>> =
        std::collections::HashMap::new();
    for (_, reqs) in waves {
        let plain: Vec<FlushReq> = reqs.iter().map(|(_, r)| *r).collect();
        let planned = match &model {
            StorageModel::Gpfs(g) => {
                let torus = machine.fabric().as_torus().expect("torus");
                let npp = torus.pset_config().expect("psets").nodes_per_pset;
                g.plan_wave(&plain, |n| n / npp)
            }
            StorageModel::Lustre(l) => l.plan_wave(&plain),
        };
        for pf in planned {
            let (op_id, _) = reqs[pf.req_index];
            flows_of_flush.entry(op_id).or_default().push(pf);
        }
    }

    // Submit the DAG. Routes are built in one scratch buffer — the
    // simulator interns them, so nothing here needs an owned Vec.
    let latency = net.hop_latency();
    let mut route_buf: Vec<LinkIx> = Vec::new();
    let mut flows_of_op: Vec<Vec<FlowId>> = Vec::with_capacity(plan.ops.len());
    for (id, op) in plan.ops.iter().enumerate() {
        let dep_flows: Vec<FlowId> = op
            .deps
            .iter()
            .flat_map(|&d| flows_of_op[d].iter().copied())
            .collect();
        let submitted = match &op.kind {
            OpKind::Transfer { src, dst, bytes } => {
                route_buf.clear();
                if src != dst {
                    net.route_into(*src, *dst, &mut route_buf);
                }
                let delay = latency * route_buf.len() as f64;
                vec![sim.submit_with_deps(0.0, delay, &route_buf, *bytes, &dep_flows)]
            }
            OpKind::Flush { .. } => {
                // Recovery cost of an injected transient fault: the
                // worker's failed attempts + backoffs, identical
                // arithmetic to the thread runtime's `FaultHint`
                // schedule. Degraded partitions stop paying from their
                // degrade round on (thread mode detects the exhausted
                // budget *before* the round and writes directly).
                let fault_delay = match (faults, seg_of_op.get(&id)) {
                    (Some(fp), Some(&(p, r, s))) => {
                        if degrade_round.get(&p).is_some_and(|&dr| r >= dr) {
                            0.0
                        } else {
                            match fp.flush_fault(p, r, s) {
                                Some(h) => {
                                    faults_injected += h.fail_attempts as u64;
                                    retries += h.fail_attempts as u64;
                                    h.penalty(policy).as_secs_f64()
                                }
                                None => 0.0,
                            }
                        }
                    }
                    _ => 0.0,
                };
                let planned = flows_of_flush.remove(&id).unwrap_or_default();
                planned
                    .into_iter()
                    .map(|pf| {
                        route_buf.clear();
                        match (&model, pf.attach_node) {
                            (StorageModel::Gpfs(_), _) => {
                                let torus = machine.fabric().as_torus().expect("torus");
                                torus.io_route_into(pf.src_node, &mut route_buf);
                            }
                            (StorageModel::Lustre(_), Some(attach)) => {
                                if pf.src_node != attach {
                                    net.route_into(pf.src_node, attach, &mut route_buf);
                                }
                            }
                            (StorageModel::Lustre(_), None) => {}
                        }
                        let fabric_hops = route_buf.len();
                        route_buf.extend_from_slice(&pf.storage_route);
                        let delay = pf.delay + latency * fabric_hops as f64 + fault_delay;
                        sim.submit_with_deps(0.0, delay, &route_buf, pf.bytes, &dep_flows)
                    })
                    .collect()
            }
        };
        flows_of_op.push(submitted);
    }

    let elapsed = sim.run_to_idle();
    let op_finish: Vec<SimTime> = flows_of_op
        .iter()
        .map(|flows| {
            flows
                .iter()
                .map(|&f| sim.finish_time(f).expect("plan flows all complete"))
                .fold(0.0, f64::max)
        })
        .collect();
    let bytes = plan.payload_bytes;
    let mut transfers = 0;
    let mut flushes = 0;
    let mut last_transfer_finish: SimTime = 0.0;
    let mut last_flush_finish: SimTime = 0.0;
    for (op, &t) in plan.ops.iter().zip(&op_finish) {
        match op.kind {
            OpKind::Transfer { .. } => {
                transfers += 1;
                last_transfer_finish = last_transfer_finish.max(t);
            }
            OpKind::Flush { .. } => {
                flushes += 1;
                last_flush_finish = last_flush_finish.max(t);
            }
        }
    }
    Ok(SimReport {
        elapsed,
        bytes,
        bandwidth: if elapsed > 0.0 { bytes / elapsed } else { 0.0 },
        op_finish,
        transfers,
        flushes,
        last_transfer_finish,
        last_flush_finish,
        faults_injected,
        retries,
        reelections: 0,
        degraded: degrade_round.len() as u64,
    })
}

/// One file group of a collective operation: the ranks writing one file
/// and their declarations (indexed locally, `decls[i]` belongs to
/// `ranks[i]`).
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// File id (e.g. the Pset index under subfiling).
    pub file: FileId,
    /// Global ranks participating, ascending.
    pub ranks: Vec<Rank>,
    /// Per-member declarations.
    pub decls: Vec<Vec<WriteDecl>>,
}

/// A full collective operation: one or more file groups plus direction.
#[derive(Debug, Clone)]
pub struct CollectiveSpec {
    /// File groups (one on Theta; one per Pset on Mira with subfiling).
    pub groups: Vec<GroupSpec>,
    /// Read or write.
    pub mode: AccessMode,
}

/// Per-group bookkeeping for trace emission: which plan ops belong to
/// the group, the group's partition-index offset in the global trace,
/// and each partition's election outcome mapped to global ranks.
#[cfg(feature = "trace")]
struct GroupTraceInfo {
    ops: std::ops::Range<usize>,
    partition_base: u32,
    /// Per partition: (lowest member, elected aggregator, total bytes),
    /// all global ranks; `None` for empty partitions.
    elections: Vec<Option<(Rank, Rank, u64)>>,
    /// Injected crashes: (crashed aggregator, standby, round), global
    /// ranks; `None` for partitions without one.
    crashes: Vec<Option<(Rank, Rank, u32)>>,
}

/// Project a completed simulation onto the trace schema: one `Elect`
/// event per partition at t=0, one `RmaPut` per transfer op and one
/// `Flush` per storage op, each stamped with its simulated completion
/// time. Put granularity is per (round, source node) — coarser than
/// thread mode's per-chunk events — which the structural projection
/// deliberately ignores.
#[cfg(feature = "trace")]
fn emit_sim_trace(
    tracer: &tapioca_trace::Tracer,
    plan: &ExecutionPlan,
    report: &SimReport,
    groups: &[GroupTraceInfo],
) {
    use tapioca_trace::{Phase, TraceEvent, TraceOp, NO_OFFSET, NO_PEER};
    for g in groups {
        for (p, e) in g.elections.iter().enumerate() {
            let Some((low, agg, bytes)) = *e else { continue };
            tracer.record(TraceEvent {
                t_ns: 0,
                rank: low,
                partition: g.partition_base + p as u32,
                round: 0,
                phase: Phase::Aggregation,
                op: TraceOp::Elect,
                bytes,
                offset: NO_OFFSET,
                peer: agg,
                coalesced: 0,
            });
            // Injected crash: demotion + standby re-election, recorded
            // on the lowest member's lane like thread mode does.
            if let Some((old, standby, cr)) = g.crashes[p] {
                for (op, peer) in [(TraceOp::Crash, old), (TraceOp::Reelect, standby)] {
                    tracer.record(TraceEvent {
                        t_ns: 0,
                        rank: low,
                        partition: g.partition_base + p as u32,
                        round: cr,
                        phase: Phase::Sync,
                        op,
                        bytes: 0,
                        offset: NO_OFFSET,
                        peer,
                        coalesced: 0,
                    });
                }
            }
        }
        for id in g.ops.start..g.ops.end {
            let op = &plan.ops[id];
            let Some(m) = op.meta else { continue };
            let Some((_, agg, _)) = g.elections[m.partition as usize] else { continue };
            let t_ns = (report.op_finish[id] * 1e9).round() as u64;
            let partition = g.partition_base + m.partition;
            match op.kind {
                // Transfers model whole (round, source-node) batches, so
                // there is no single window offset to attribute.
                OpKind::Transfer { bytes, .. } => tracer.record(TraceEvent {
                    t_ns,
                    rank: agg,
                    partition,
                    round: m.round,
                    phase: Phase::Aggregation,
                    op: TraceOp::RmaPut,
                    bytes: bytes.round() as u64,
                    offset: NO_OFFSET,
                    peer: agg,
                    coalesced: 0,
                }),
                OpKind::Flush { len, offset, .. } => tracer.record(TraceEvent {
                    t_ns,
                    rank: agg,
                    partition,
                    round: m.round,
                    phase: Phase::Io,
                    op: TraceOp::Flush,
                    bytes: len,
                    offset,
                    peer: NO_PEER,
                    coalesced: 0,
                }),
            }
        }
    }
}

/// Everything both executors (and the static analyzer) agree on about
/// one file group *before* anything runs: the round schedule, the
/// election outcome, the compiled crashes, and each partition's degrade
/// round. [`run_tapioca_sim`] compiles this into a plan DAG; the
/// symbolic deriver in [`crate::analyze`] expands it into the predicted
/// event structure. Sharing the derivation is what keeps the static
/// schedule from drifting out from under the executors.
#[derive(Debug)]
pub(crate) struct GroupPlan {
    /// The round schedule over group-local rank ids.
    pub sched: Schedule,
    /// Per partition: members as global ranks (parallel to
    /// `sched.partitions`).
    pub members_global: Vec<Vec<Rank>>,
    /// Elected aggregator per partition (index into the partition's
    /// members).
    pub choices: Vec<usize>,
    /// Compiled aggregator crashes (write mode only; unreachable or
    /// degrade-shadowed specs are dropped, matching the thread runtime).
    pub crashes: Vec<PlanCrash>,
    /// First round whose injected fault exhausts the retry budget, per
    /// partition (write mode only): the thread runtime falls back to
    /// direct writes from that round on.
    pub degrade_round: Vec<Option<u32>>,
}

/// Shared planning of one file group: schedule, election, crash
/// compilation, degrade derivation. Pure — no simulator, no threads.
pub(crate) fn plan_group(
    machine: &Machine,
    group: &GroupSpec,
    cfg: &TapiocaConfig,
    mode: AccessMode,
) -> Result<GroupPlan> {
    if group.ranks.len() != group.decls.len() {
        return Err(TapiocaError::InvalidConfig(format!(
            "group has {} ranks but {} declaration lists",
            group.ranks.len(),
            group.decls.len()
        )));
    }
    if let Some(&max_rank) = group.ranks.iter().max() {
        if max_rank >= machine.num_ranks() {
            return Err(TapiocaError::InvalidConfig(format!(
                "spec rank {max_rank} exceeds the machine's {} ranks",
                machine.num_ranks()
            )));
        }
    }
    let sched = compute_schedule(&group.decls, ScheduleParams {
        num_aggregators: cfg.num_aggregators,
        buffer_size: cfg.buffer_size,
        align_to_buffer: true,
    });
    let io_nodes = machine.io_nodes_for(&group.ranks);
    let io = io_nodes.first().copied().unwrap_or(0);

    // Elect one aggregator per partition via the node-folded fast
    // path (parallel across partitions for large batches); each
    // election is exactly the distributed MINLOC of thread mode.
    let members_global: Vec<Vec<Rank>> = sched
        .partitions
        .iter()
        .map(|part| part.members.iter().map(|&m| group.ranks[m]).collect())
        .collect();
    let elections: Vec<PartitionElection<'_>> = sched
        .partitions
        .iter()
        .zip(&members_global)
        .map(|(part, members)| PartitionElection {
            members,
            weights: &part.member_bytes,
            io,
            partition_index: part.index,
        })
        .collect();
    let choices: Vec<usize> = elect_partitions(machine, &elections, cfg.strategy);

    // Per-partition degrade round: the first round one of whose flush
    // segments carries a fault that exhausts the retry budget — the
    // same pure derivation every thread-mode member performs.
    let degrade_round: Vec<Option<u32>> = match (&cfg.faults, mode) {
        (Some(fp), AccessMode::Write) => sched
            .partitions
            .iter()
            .map(|part| {
                part.rounds.iter().enumerate().find_map(|(r, round)| {
                    round
                        .segments
                        .iter()
                        .enumerate()
                        .any(|(s, _)| {
                            fp.flush_fault(part.index as u32, r as u32, s as u32)
                                .is_some_and(|h| h.exceeds(&cfg.io_policy))
                        })
                        .then_some(r as u32)
                })
            })
            .collect(),
        _ => vec![None; sched.partitions.len()],
    };

    // Compile the fault plan's aggregator crashes (write mode only,
    // partition indices are schedule-local like thread mode's). The
    // standby is the argmin of the same election cost with the dead
    // candidate excluded, ties to the lowest index — bit-identical
    // to the thread runtime's MINLOC with an infinite cost entry.
    // A partition that degrades at or before the crash round never
    // reaches the crash (thread mode breaks out of the round loop
    // first), so the crash is dropped there too.
    let crashes: Vec<PlanCrash> = match (&cfg.faults, mode) {
        (Some(fp), AccessMode::Write) => sched
            .partitions
            .iter()
            .filter_map(|part| {
                let cr = fp.crash_at(part.index as u32)?;
                if part.members.len() < 2 || cr as usize >= part.rounds.len() {
                    return None;
                }
                if degrade_round[part.index].is_some_and(|dr| dr <= cr) {
                    return None;
                }
                let chosen = choices[part.index];
                let standby = (0..part.members.len())
                    .filter(|&idx| idx != chosen)
                    .min_by(|&a, &b| {
                        let cost = |idx: usize| {
                            election_cost(
                                machine,
                                &members_global[part.index],
                                &part.member_bytes,
                                io,
                                part.index,
                                cfg.strategy,
                                idx,
                            )
                        };
                        cost(a).total_cmp(&cost(b))
                    })?;
                Some(PlanCrash { partition: part.index, round: cr, standby })
            })
            .collect(),
        _ => Vec::new(),
    };

    Ok(GroupPlan { sched, members_global, choices, crashes, degrade_round })
}

/// A reusable simulation session: the compiled plan DAG of one
/// collective spec — schedule, election, crash compilation, trace
/// bookkeeping — kept alive so weather-restart-style timestep loops
/// re-execute the collective without re-paying the planning phase.
/// The simulator-side mirror of the thread-mode [`crate::api::Session`]
/// epoch reuse, so the two executors keep the same cost structure.
pub struct SimSession<'a> {
    profile: &'a MachineProfile,
    storage: StorageConfig,
    cfg: TapiocaConfig,
    plan: ExecutionPlan,
    ncrashes: u64,
    #[cfg(feature = "trace")]
    group_infos: Vec<GroupTraceInfo>,
    epochs: u64,
}

impl std::fmt::Debug for SimSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("ops", &self.plan.ops.len())
            .field("ncrashes", &self.ncrashes)
            .field("epochs", &self.epochs)
            .finish()
    }
}

impl<'a> SimSession<'a> {
    /// Compile `spec` into a reusable execution plan: schedule, elect,
    /// compile crashes, and record trace bookkeeping. Pure planning —
    /// nothing is simulated until [`SimSession::run_epoch`].
    ///
    /// `cfg.num_aggregators` is interpreted *per file group*, matching
    /// the paper's "16 aggregators per Pset" phrasing.
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] if the config fails validation or
    /// the spec is inconsistent (rank/declaration mismatch, ranks beyond
    /// the machine).
    pub fn build(
        profile: &'a MachineProfile,
        storage: &StorageConfig,
        spec: &CollectiveSpec,
        cfg: &TapiocaConfig,
    ) -> Result<SimSession<'a>> {
        cfg.validate()?;
        let machine = &profile.machine;
        let mut plan = ExecutionPlan::new();
        let mut ncrashes = 0u64;
        #[cfg(feature = "trace")]
        let mut group_infos: Vec<GroupTraceInfo> = Vec::new();
        #[cfg(feature = "trace")]
        let mut partition_base = 0u32;

        for group in &spec.groups {
            let GroupPlan { sched, choices, crashes, .. } =
                plan_group(machine, group, cfg, spec.mode)?;
            ncrashes += crashes.len() as u64;

            let ranks = &group.ranks;
            let node_of = |local: Rank| machine.node_of_rank(ranks[local]);
            let file = group.file;
            #[cfg(feature = "trace")]
            let crashes_for_trace = crashes.clone();
            let _op_range = append_tapioca_plan(&mut plan, &TapiocaPlanInput {
                schedule: &sched,
                aggregator_choice: &choices,
                node_of_rank: &node_of,
                file_of_partition: &|_| file,
                mode: spec.mode,
                pipelining: cfg.pipelining,
                entry_deps: Vec::new(),
                wave_base: 0,
                crashes,
            });
            #[cfg(feature = "trace")]
            {
                let elections = sched
                    .partitions
                    .iter()
                    .map(|part| {
                        if part.members.is_empty() {
                            None
                        } else {
                            Some((
                                group.ranks[part.members[0]],
                                group.ranks[part.members[choices[part.index]]],
                                part.total_bytes(),
                            ))
                        }
                    })
                    .collect();
                let crash_info = sched
                    .partitions
                    .iter()
                    .map(|part| {
                        crashes_for_trace.iter().find(|c| c.partition == part.index).map(|c| {
                            (
                                group.ranks[part.members[choices[part.index]]],
                                group.ranks[part.members[c.standby]],
                                c.round,
                            )
                        })
                    })
                    .collect();
                group_infos.push(GroupTraceInfo {
                    ops: _op_range,
                    partition_base,
                    elections,
                    crashes: crash_info,
                });
                partition_base += sched.partitions.len() as u32;
            }
        }
        Ok(SimSession {
            profile,
            storage: *storage,
            cfg: cfg.clone(),
            plan,
            ncrashes,
            #[cfg(feature = "trace")]
            group_infos,
            epochs: 0,
        })
    }

    /// Execute the compiled plan once (one epoch / timestep). The fault
    /// plan is re-derived purely each epoch, so every epoch injects the
    /// identical faults — exactly like the thread runtime re-running a
    /// reused session.
    ///
    /// With the `trace` feature, a tracer in the session's config
    /// receives the simulated collective's events per epoch (see
    /// `emit_sim_trace`); size it for the machine's global rank count
    /// (`Tracer::new(machine.num_ranks())`).
    ///
    /// # Errors
    /// [`TapiocaError::InvalidConfig`] on a storage/profile kind
    /// mismatch.
    pub fn run_epoch(&mut self) -> Result<SimReport> {
        let mut report = simulate_faulty(
            self.profile,
            &self.storage,
            &self.plan,
            self.cfg.faults.as_ref(),
            &self.cfg.io_policy,
        )?;
        report.reelections += self.ncrashes;
        report.faults_injected += self.ncrashes;
        #[cfg(feature = "trace")]
        if let Some(tracer) = &self.cfg.tracer {
            emit_sim_trace(tracer, &self.plan, &report, &self.group_infos);
        }
        self.epochs += 1;
        Ok(report)
    }

    /// Epochs executed so far.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs
    }
}

/// End-to-end TAPIOCA simulation: schedule, elect, compile, execute —
/// one [`SimSession`] built and run for a single epoch. Timestep loops
/// should build the session once and call [`SimSession::run_epoch`]
/// repeatedly instead.
///
/// # Errors
/// See [`SimSession::build`] and [`SimSession::run_epoch`].
pub fn run_tapioca_sim(
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
    cfg: &TapiocaConfig,
) -> Result<SimReport> {
    SimSession::build(profile, storage, spec, cfg)?.run_epoch()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementStrategy;
    use tapioca_topology::{mira_profile, theta_profile, MIB};

    fn mira_spec(nodes: usize, ranks_per_node: usize, bytes_per_rank: u64) -> CollectiveSpec {
        // subfiling: one group per Pset of 128 nodes
        let rpp = 128 * ranks_per_node;
        let n_psets = nodes / 128;
        let groups = (0..n_psets)
            .map(|p| {
                let ranks: Vec<Rank> = (p * rpp..(p + 1) * rpp).collect();
                let decls = (0..rpp)
                    .map(|i| vec![WriteDecl { offset: i as u64 * bytes_per_rank, len: bytes_per_rank }])
                    .collect();
                GroupSpec { file: p, ranks, decls }
            })
            .collect();
        CollectiveSpec { groups, mode: AccessMode::Write }
    }

    fn theta_spec(nodes: usize, ranks_per_node: usize, bytes_per_rank: u64) -> CollectiveSpec {
        let n = nodes * ranks_per_node;
        let ranks: Vec<Rank> = (0..n).collect();
        let decls = (0..n)
            .map(|i| vec![WriteDecl { offset: i as u64 * bytes_per_rank, len: bytes_per_rank }])
            .collect();
        CollectiveSpec {
            groups: vec![GroupSpec { file: 0, ranks, decls }],
            mode: AccessMode::Write,
        }
    }

    #[test]
    fn mira_small_sim_produces_positive_bandwidth() {
        let profile = mira_profile(128, 4);
        let spec = mira_spec(128, 4, MIB);
        let cfg = TapiocaConfig {
            num_aggregators: 8,
            buffer_size: 4 * MIB,
            ..Default::default()
        };
        let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
        let rep = run_tapioca_sim(&profile, &storage, &spec, &cfg).unwrap();
        assert!(rep.elapsed > 0.0);
        assert_eq!(rep.bytes, (128 * 4) as f64 * MIB as f64);
        assert!(rep.bandwidth > 0.0);
        // cannot exceed the Pset ceiling (2 bridge links of 1.8 GiB/s)
        let ceiling = 3.6 * (1u64 << 30) as f64;
        assert!(rep.bandwidth <= ceiling * 1.001, "bw {} above physics", rep.bandwidth);
    }

    #[test]
    fn sim_session_epochs_are_deterministic_and_match_one_shot() {
        let profile = mira_profile(128, 4);
        let spec = mira_spec(128, 4, MIB);
        let cfg = TapiocaConfig {
            num_aggregators: 8,
            buffer_size: 4 * MIB,
            ..Default::default()
        };
        let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
        let one_shot = run_tapioca_sim(&profile, &storage, &spec, &cfg).unwrap();
        let mut session = SimSession::build(&profile, &storage, &spec, &cfg).unwrap();
        for epoch in 0..3 {
            let rep = session.run_epoch().unwrap();
            assert_eq!(rep.elapsed, one_shot.elapsed, "epoch {epoch} diverged");
            assert_eq!(rep.bytes, one_shot.bytes);
            assert_eq!(rep.reelections, one_shot.reelections);
        }
        assert_eq!(session.epochs_completed(), 3);
    }

    #[test]
    fn theta_small_sim_runs() {
        let profile = theta_profile(64, 4);
        let spec = theta_spec(64, 4, MIB);
        let cfg = TapiocaConfig {
            num_aggregators: 16,
            buffer_size: 8 * MIB,
            ..Default::default()
        };
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let rep = run_tapioca_sim(&profile, &storage, &spec, &cfg).unwrap();
        assert!(rep.elapsed > 0.0 && rep.bandwidth > 0.0);
    }

    #[test]
    fn pipelining_is_not_slower() {
        let profile = mira_profile(128, 4);
        let spec = mira_spec(128, 4, MIB);
        let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
        let base = TapiocaConfig { num_aggregators: 8, buffer_size: 4 * MIB, ..Default::default() };
        let on = run_tapioca_sim(&profile, &storage, &spec, &base).unwrap();
        let off = run_tapioca_sim(&profile, &storage, &spec, &TapiocaConfig {
            pipelining: false,
            ..base
        })
        .unwrap();
        assert!(on.elapsed <= off.elapsed * 1.0001,
            "pipelining must not hurt: {} vs {}", on.elapsed, off.elapsed);
    }

    #[test]
    fn topology_aware_not_worse_than_worst_case() {
        let profile = mira_profile(128, 4);
        let spec = mira_spec(128, 4, MIB / 4);
        let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
        let base = TapiocaConfig { num_aggregators: 8, buffer_size: MIB, ..Default::default() };
        let ta = run_tapioca_sim(&profile, &storage, &spec, &base).unwrap();
        let worst = run_tapioca_sim(&profile, &storage, &spec, &TapiocaConfig {
            strategy: PlacementStrategy::WorstCase,
            ..base
        })
        .unwrap();
        assert!(ta.elapsed <= worst.elapsed * 1.0001);
    }

    #[test]
    fn read_mode_simulates() {
        let profile = theta_profile(32, 4);
        let mut spec = theta_spec(32, 4, MIB);
        spec.mode = AccessMode::Read;
        let cfg = TapiocaConfig { num_aggregators: 8, buffer_size: 8 * MIB, ..Default::default() };
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let rep = run_tapioca_sim(&profile, &storage, &spec, &cfg).unwrap();
        assert!(rep.bandwidth > 0.0);
    }

    #[test]
    fn phase_breakdown_is_consistent() {
        let profile = theta_profile(32, 4);
        let spec = theta_spec(32, 4, MIB);
        let cfg = TapiocaConfig { num_aggregators: 8, buffer_size: 8 * MIB, ..Default::default() };
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let rep = run_tapioca_sim(&profile, &storage, &spec, &cfg).unwrap();
        assert!(rep.transfers > 0 && rep.flushes > 0);
        assert_eq!(rep.transfers + rep.flushes, rep.op_finish.len());
        // writes end at the storage: the last flush defines the makespan
        assert!((rep.last_flush_finish - rep.elapsed).abs() < 1e-9);
        assert!(rep.last_transfer_finish <= rep.elapsed);
    }

    #[test]
    fn mismatched_storage_kind_errors() {
        let profile = mira_profile(128, 4);
        let spec = mira_spec(128, 4, 1024);
        let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 1024, ..Default::default() };
        let err = run_tapioca_sim(
            &profile,
            &StorageConfig::Lustre(LustreTunables::theta_optimized()),
            &spec,
            &cfg,
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }
}
