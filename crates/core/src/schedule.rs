//! Round scheduling: the heart of TAPIOCA's `Init` phase.
//!
//! Given every rank's declared writes, the scheduler splits the file span
//! into `num_aggregators` contiguous **partitions** and each partition
//! into buffer-sized **rounds**. Every declared byte is assigned to a
//! [`Chunk`]: (producing rank, var, partition, round, offset inside the
//! aggregation buffer). Because the declarations cover *all* upcoming
//! writes (Algorithm 2 of the paper), a round's buffer is filled
//! completely across variables before it is flushed — the Fig. 2
//! advantage over per-call collective buffering.
//!
//! The schedule is a pure function of the declarations and parameters,
//! computed identically (and deterministically) by every rank from the
//! allgathered declarations; thread mode and simulation mode execute the
//! same object.

use tapioca_topology::Rank;

/// One declared upcoming write of a rank: `len` bytes at file `offset`.
///
/// Mirrors one `(count[i], type[i], ofst[i])` entry of `TAPIOCA_Init`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteDecl {
    /// Absolute byte offset in the file.
    pub offset: u64,
    /// Length in bytes (`count * type_size`).
    pub len: u64,
}

/// Scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleParams {
    /// Number of partitions (one aggregator each).
    pub num_aggregators: usize,
    /// Aggregation buffer size in bytes (round granularity).
    pub buffer_size: u64,
    /// Round partition extents up to a multiple of the buffer size.
    ///
    /// TAPIOCA sets this: every flush then starts at
    /// `span_start + k * buffer_size`, which lands on stripe boundaries
    /// whenever the buffer is sized to the stripe (the paper's 1:1
    /// recommendation, Table I). Generic ROMIO divides the extent into
    /// equal file domains with **no** alignment — the well-known source
    /// of extent-lock contention on Lustre — so the baseline leaves this
    /// off. Fewer than `num_aggregators` partitions may result for small
    /// spans (idle aggregators).
    pub align_to_buffer: bool,
}

/// A piece of one rank's variable assigned to one aggregation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Producing rank.
    pub rank: Rank,
    /// Index of the declared write this chunk belongs to.
    pub var: usize,
    /// Offset of the chunk inside the variable's user buffer.
    pub var_offset: u64,
    /// Absolute file offset.
    pub file_offset: u64,
    /// Chunk length, bytes.
    pub len: u64,
    /// Partition (= aggregator) index.
    pub partition: usize,
    /// Round within the partition.
    pub round: u32,
    /// Destination offset inside the aggregation buffer.
    pub buf_offset: u64,
}

/// A contiguous byte range flushed from an aggregation buffer to file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushSegment {
    /// Absolute file offset of the segment.
    pub file_offset: u64,
    /// Length, bytes.
    pub len: u64,
    /// Offset of the segment inside the aggregation buffer.
    pub buf_offset: u64,
}

/// Per-round flush plan of a partition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundInfo {
    /// Contiguous covered ranges, ascending, non-overlapping (one
    /// segment when the file is densely written — the common case).
    pub segments: Vec<FlushSegment>,
    /// Total payload bytes of the round.
    pub bytes: u64,
}

/// One partition: a contiguous file extent owned by one aggregator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Partition index.
    pub index: usize,
    /// Start of the extent (inclusive).
    pub start: u64,
    /// End of the extent (exclusive).
    pub end: u64,
    /// Ranks contributing at least one chunk, ascending.
    pub members: Vec<Rank>,
    /// Bytes contributed per member (parallel to `members`) — the
    /// `omega(i, A)` weights of the placement cost model.
    pub member_bytes: Vec<u64>,
    /// Flush plan per round.
    pub rounds: Vec<RoundInfo>,
}

impl PartitionInfo {
    /// Total payload bytes of the partition.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes).sum()
    }
}

/// The full schedule of one collective operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Parameters the schedule was computed with.
    pub params: ScheduleParams,
    /// Covered file span `[start, end)` across all declarations.
    pub span: (u64, u64),
    /// Partitions, ascending by extent.
    pub partitions: Vec<PartitionInfo>,
    /// Chunks per rank, sorted by (partition, round, file_offset).
    pub chunks_by_rank: Vec<Vec<Chunk>>,
}

impl Schedule {
    /// Total declared payload, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.total_bytes()).sum()
    }

    /// Partition extent size (all partitions but possibly the last).
    pub fn partition_size(&self) -> u64 {
        self.partitions.first().map(|p| p.end - p.start).unwrap_or(0)
    }
}

/// One partition of a [`RankStreamPlan`]: the rank's own chunks of the
/// partition plus, per round, the index range of chunks that must be
/// available before that round can execute on this rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPartPlan {
    /// Index into `schedule.partitions`.
    pub part_index: usize,
    /// This rank's chunks of the partition, sorted by
    /// `(round, file_offset)` — the order the pipeline consumes them.
    pub chunks: Vec<Chunk>,
    /// Flat offset of `chunks[0]` in the rank-wide chunk numbering
    /// (partitions concatenated in ascending index order).
    pub chunk_base: usize,
    /// Per round `r` of the partition: half-open local index range into
    /// `chunks` of this rank's round-`r` contributions. Empty ranges
    /// mean the rank only participates in the round's fences.
    pub round_ranges: Vec<(usize, usize)>,
}

/// Per-rank round-readiness view of a [`Schedule`]: which chunks gate
/// which round, in the exact global total order the pipeline executes
/// (partitions ascending, rounds ascending within each partition).
///
/// The streaming session uses this to decide, after each `write()`,
/// how far the round pipeline can advance: round `r` of partition `p`
/// is *ready* once every declared variable owning a chunk in
/// `parts[p].round_ranges[r]` has been issued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankStreamPlan {
    /// Partitions this rank participates in, ascending by index.
    pub parts: Vec<RankPartPlan>,
    /// Total chunk count across all partitions (flat numbering bound).
    pub total_chunks: usize,
}

impl RankStreamPlan {
    /// Build the streaming view of `rank` from a computed schedule.
    pub fn new(schedule: &Schedule, rank: Rank) -> RankStreamPlan {
        let mut parts: Vec<RankPartPlan> = Vec::new();
        let chunks = &schedule.chunks_by_rank[rank];
        let mut i = 0;
        let mut chunk_base = 0;
        while i < chunks.len() {
            let p = chunks[i].partition;
            let mut j = i;
            while j < chunks.len() && chunks[j].partition == p {
                j += 1;
            }
            let part_chunks = chunks[i..j].to_vec();
            let nrounds = schedule.partitions[p].rounds.len();
            let mut round_ranges = vec![(0usize, 0usize); nrounds];
            let mut k = 0;
            for (r, range) in round_ranges.iter_mut().enumerate() {
                let start = k;
                while k < part_chunks.len() && part_chunks[k].round as usize == r {
                    k += 1;
                }
                *range = (start, k);
            }
            debug_assert_eq!(k, part_chunks.len(), "chunk rounds within partition bounds");
            parts.push(RankPartPlan {
                part_index: p,
                chunks: part_chunks,
                chunk_base,
                round_ranges,
            });
            chunk_base += j - i;
            i = j;
        }
        RankStreamPlan { parts, total_chunks: chunk_base }
    }
}

/// Compute the schedule from every rank's declarations.
///
/// `decls[rank]` lists that rank's declared writes. Declarations may
/// leave holes in the file; flush segments then cover only written
/// ranges. Overlapping declarations between ranks are not meaningful for
/// collective I/O and are rejected only in debug builds (cost).
///
/// # Panics
/// Panics if `params` are invalid (zero aggregators / buffer).
pub fn compute_schedule(decls: &[Vec<WriteDecl>], params: ScheduleParams) -> Schedule {
    assert!(params.num_aggregators > 0, "need at least one aggregator");
    assert!(params.buffer_size > 0, "buffer size must be positive");
    let nranks = decls.len();

    // File span.
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for d in decls.iter().flatten() {
        if d.len == 0 {
            continue;
        }
        lo = lo.min(d.offset);
        hi = hi.max(d.offset + d.len);
    }
    if lo > hi {
        // nothing declared
        return Schedule {
            params,
            span: (0, 0),
            partitions: Vec::new(),
            chunks_by_rank: vec![Vec::new(); nranks],
        };
    }
    let span = hi - lo;
    let nparts = params.num_aggregators;
    let mut psize = span.div_ceil(nparts as u64).max(1);
    if params.align_to_buffer {
        psize = psize.div_ceil(params.buffer_size) * params.buffer_size;
    }
    // Partitions with actual extent (span may not need all of them).
    let used_parts = span.div_ceil(psize) as usize;
    let b = params.buffer_size;

    let part_start = |p: usize| lo + p as u64 * psize;
    let part_end = |p: usize| (lo + (p as u64 + 1) * psize).min(hi);

    // Cut every declaration into chunks.
    let mut chunks_by_rank: Vec<Vec<Chunk>> = vec![Vec::new(); nranks];
    for (rank, rd) in decls.iter().enumerate() {
        for (var, d) in rd.iter().enumerate() {
            if d.len == 0 {
                continue;
            }
            let mut cur = d.offset;
            let end = d.offset + d.len;
            while cur < end {
                let p = ((cur - lo) / psize) as usize;
                let ps = part_start(p);
                let round = ((cur - ps) / b) as u32;
                let win_end = ps + (round as u64 + 1) * b;
                let stop = end.min(win_end).min(part_end(p));
                chunks_by_rank[rank].push(Chunk {
                    rank,
                    var,
                    var_offset: cur - d.offset,
                    file_offset: cur,
                    len: stop - cur,
                    partition: p,
                    round,
                    buf_offset: (cur - ps) - round as u64 * b,
                });
                cur = stop;
            }
        }
        chunks_by_rank[rank]
            .sort_unstable_by_key(|c| (c.partition, c.round, c.file_offset));
    }

    // Partition summaries.
    let mut partitions: Vec<PartitionInfo> = (0..used_parts)
        .map(|p| {
            let start = part_start(p);
            let end = part_end(p);
            let nrounds = (end - start).div_ceil(b) as usize;
            PartitionInfo {
                index: p,
                start,
                end,
                members: Vec::new(),
                member_bytes: Vec::new(),
                rounds: vec![RoundInfo::default(); nrounds],
            }
        })
        .collect();

    // Accumulate member weights and per-round coverage.
    // Coverage is collected as (offset, len) then merged into segments.
    let mut coverage: Vec<Vec<Vec<(u64, u64)>>> = partitions
        .iter()
        .map(|p| vec![Vec::new(); p.rounds.len()])
        .collect();
    for rd in &chunks_by_rank {
        for c in rd {
            let part = &mut partitions[c.partition];
            match part.members.binary_search(&c.rank) {
                Ok(i) => part.member_bytes[i] += c.len,
                Err(i) => {
                    part.members.insert(i, c.rank);
                    part.member_bytes.insert(i, c.len);
                }
            }
            part.rounds[c.round as usize].bytes += c.len;
            coverage[c.partition][c.round as usize].push((c.file_offset, c.len));
        }
    }

    // Merge coverage into flush segments.
    for (p, part) in partitions.iter_mut().enumerate() {
        for (r, round) in part.rounds.iter_mut().enumerate() {
            let ranges = &mut coverage[p][r];
            ranges.sort_unstable();
            let win_start = part.start + r as u64 * b;
            let mut segs: Vec<FlushSegment> = Vec::new();
            for &(off, len) in ranges.iter() {
                match segs.last_mut() {
                    Some(s) if s.file_offset + s.len >= off => {
                        // extend (ranges may duplicate only if decls overlap)
                        let new_end = (off + len).max(s.file_offset + s.len);
                        s.len = new_end - s.file_offset;
                    }
                    _ => segs.push(FlushSegment {
                        file_offset: off,
                        len,
                        buf_offset: off - win_start,
                    }),
                }
            }
            round.segments = segs;
        }
    }

    Schedule { params, span: (lo, hi), partitions, chunks_by_rank }
}

/// A maximal group of same-(partition, round) chunks from ranks
/// co-located on one node whose aggregation-buffer extents are
/// contiguous: instead of one RMA put per chunk, the members deposit
/// into the `leader`'s node-local gather buffer and the leader forwards
/// the packed range as **one** merged put of `len` bytes at
/// `buf_offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedRun {
    /// Partition the run belongs to.
    pub partition: usize,
    /// Round within the partition.
    pub round: u32,
    /// Node hosting every producing rank of the run.
    pub node: usize,
    /// Rank issuing the merged put: the member producing the run's
    /// lowest-offset chunk (deterministic, always a run member).
    pub leader: Rank,
    /// Destination offset of the merged put inside the aggregation
    /// buffer (= the first chunk's `buf_offset`).
    pub buf_offset: u64,
    /// Total merged length, bytes (= sum of the chunks' lengths).
    pub len: u64,
    /// The original chunks, ascending by `buf_offset`, back to back.
    pub chunks: Vec<Chunk>,
}

/// Which puts of a [`Schedule`] merge into [`CoalescedRun`]s under a
/// given rank-to-node placement. Pure data: every rank computes an
/// identical plan from the shared schedule, like the schedule itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoalescePlan {
    runs: Vec<CoalescedRun>,
    /// (partition, round, rank, buf_offset) -> index into `runs`.
    by_chunk: std::collections::BTreeMap<(usize, u32, Rank, u64), usize>,
    /// (partition, round, leader) -> indices into `runs`, ascending by
    /// `buf_offset`.
    by_leader: std::collections::BTreeMap<(usize, u32, Rank), Vec<usize>>,
}

impl CoalescePlan {
    /// All runs, grouped by (partition, round), ascending.
    pub fn runs(&self) -> &[CoalescedRun] {
        &self.runs
    }

    /// Whether no puts coalesce under this plan.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The run a chunk belongs to, if it coalesces.
    pub fn run_for_chunk(&self, c: &Chunk) -> Option<&CoalescedRun> {
        self.by_chunk
            .get(&(c.partition, c.round, c.rank, c.buf_offset))
            .map(|&i| &self.runs[i])
    }

    /// The merged puts `leader` issues in (partition, round), ascending
    /// by buffer offset.
    pub fn runs_led_by(
        &self,
        partition: usize,
        round: u32,
        leader: Rank,
    ) -> impl Iterator<Item = &CoalescedRun> {
        self.by_leader
            .get(&(partition, round, leader))
            .into_iter()
            .flatten()
            .map(|&i| &self.runs[i])
    }

    /// Chunks the plan folds into merged puts, across all runs.
    pub fn total_coalesced_chunks(&self) -> usize {
        self.runs.iter().map(|r| r.chunks.len()).sum()
    }

    /// Wire put count under this plan: every coalesced run becomes one
    /// operation, every other chunk stays its own put.
    pub fn wire_put_count(&self, schedule: &Schedule) -> usize {
        let total: usize = schedule.chunks_by_rank.iter().map(Vec::len).sum();
        total - self.total_coalesced_chunks() + self.runs.len()
    }
}

/// Find every maximal run of contiguous-in-buffer chunks produced by
/// ranks sharing a node, per (partition, round). Runs of at least two
/// chunks coalesce; singletons stay ordinary puts. `node_of` maps a
/// rank to its node (e.g. [`tapioca_topology::TopologyProvider::node_of_rank`]).
///
/// Invariants (proved per run by construction, tested below):
/// - chunks are back to back: `chunks[i].buf_offset + chunks[i].len ==
///   chunks[i+1].buf_offset`, so the merged put's bytes are the exact
///   concatenation of the members' chunk bytes — file output is
///   bit-identical to the uncoalesced path;
/// - all producing ranks map to `node`, so deposits into the leader's
///   gather buffer are intra-node traffic;
/// - `leader` produces `chunks[0]` and therefore participates in the
///   round.
pub fn compute_coalesce_plan(
    schedule: &Schedule,
    node_of: impl Fn(Rank) -> usize,
) -> CoalescePlan {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(usize, u32), Vec<Chunk>> = BTreeMap::new();
    for chunks in &schedule.chunks_by_rank {
        for c in chunks {
            groups.entry((c.partition, c.round)).or_default().push(*c);
        }
    }
    let mut plan = CoalescePlan::default();
    for ((partition, round), mut cs) in groups {
        // Chunk buffer extents within one round are disjoint, so this
        // order is total.
        cs.sort_by_key(|c| c.buf_offset);
        let mut i = 0;
        while i < cs.len() {
            let node = node_of(cs[i].rank);
            let mut j = i + 1;
            while j < cs.len()
                && node_of(cs[j].rank) == node
                && cs[j - 1].buf_offset + cs[j - 1].len == cs[j].buf_offset
            {
                j += 1;
            }
            if j - i >= 2 {
                let chunks = cs[i..j].to_vec();
                let run_idx = plan.runs.len();
                for c in &chunks {
                    plan.by_chunk.insert((partition, round, c.rank, c.buf_offset), run_idx);
                }
                let leader = chunks[0].rank;
                plan.by_leader.entry((partition, round, leader)).or_default().push(run_idx);
                plan.runs.push(CoalescedRun {
                    partition,
                    round,
                    node,
                    leader,
                    buf_offset: chunks[0].buf_offset,
                    len: chunks.iter().map(|c| c.len).sum(),
                    chunks,
                });
            }
            i = j;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_decls(nranks: usize, per_rank: u64) -> Vec<Vec<WriteDecl>> {
        (0..nranks as u64)
            .map(|r| vec![WriteDecl { offset: r * per_rank, len: per_rank }])
            .collect()
    }

    #[test]
    fn dense_block_schedule_fills_buffers() {
        // 4 ranks x 64 B, 2 partitions of 128 B, 32 B buffers -> 4 rounds each.
        let s = compute_schedule(&dense_decls(4, 64), ScheduleParams {
            num_aggregators: 2,
            buffer_size: 32,
            align_to_buffer: true,
        });
        assert_eq!(s.span, (0, 256));
        assert_eq!(s.partitions.len(), 2);
        assert_eq!(s.total_bytes(), 256);
        for p in &s.partitions {
            assert_eq!(p.rounds.len(), 4);
            for (r, round) in p.rounds.iter().enumerate() {
                assert_eq!(round.bytes, 32, "every buffer completely filled");
                assert_eq!(round.segments.len(), 1);
                let seg = round.segments[0];
                assert_eq!(seg.buf_offset, 0);
                assert_eq!(seg.len, 32);
                assert_eq!(seg.file_offset, p.start + r as u64 * 32);
            }
        }
        // ranks 0,1 in partition 0; ranks 2,3 in partition 1
        assert_eq!(s.partitions[0].members, vec![0, 1]);
        assert_eq!(s.partitions[1].members, vec![2, 3]);
        assert_eq!(s.partitions[0].member_bytes, vec![64, 64]);
    }

    #[test]
    fn chunk_buffer_offsets_are_window_relative() {
        let s = compute_schedule(&dense_decls(2, 64), ScheduleParams {
            num_aggregators: 1,
            buffer_size: 48,
            align_to_buffer: true,
        });
        // rank 1's 64 B at file 64..128; rounds of 48: 64..96 in round 1
        // (window 48..96) at buf 16, 96..128 in round 2 at buf 0.
        let c = &s.chunks_by_rank[1];
        assert_eq!(c.len(), 2);
        assert_eq!((c[0].round, c[0].buf_offset, c[0].len), (1, 16, 32));
        assert_eq!((c[1].round, c[1].buf_offset, c[1].len), (2, 0, 32));
        assert_eq!(c[1].var_offset, 32);
    }

    #[test]
    fn multi_var_interleaving_fills_rounds() {
        // 2 ranks, 3 vars each (x, y, z regions), like Algorithm 2.
        // Layout: var v of rank r at v*64 + r*32, len 32.
        let decls: Vec<Vec<WriteDecl>> = (0..2u64)
            .map(|r| {
                (0..3u64)
                    .map(|v| WriteDecl { offset: v * 64 + r * 32, len: 32 })
                    .collect()
            })
            .collect();
        let s = compute_schedule(&decls, ScheduleParams { num_aggregators: 1, buffer_size: 64, align_to_buffer: false });
        assert_eq!(s.total_bytes(), 192);
        let p = &s.partitions[0];
        assert_eq!(p.rounds.len(), 3);
        // every round contains one var region = both ranks' halves: full 64 B
        for round in &p.rounds {
            assert_eq!(round.bytes, 64);
            assert_eq!(round.segments.len(), 1);
        }
    }

    #[test]
    fn rank_stream_plan_partitions_and_round_ranges() {
        // 4 ranks x 64 B, 2 partitions, 32 B buffers -> 4 rounds each;
        // rank 1 only contributes to partition 0, rounds 2 and 3.
        let s = compute_schedule(&dense_decls(4, 64), ScheduleParams {
            num_aggregators: 2,
            buffer_size: 32,
            align_to_buffer: true,
        });
        let plan = RankStreamPlan::new(&s, 1);
        assert_eq!(plan.parts.len(), 1);
        let pp = &plan.parts[0];
        assert_eq!(pp.part_index, 0);
        assert_eq!(pp.chunk_base, 0);
        assert_eq!(pp.chunks, s.chunks_by_rank[1]);
        assert_eq!(pp.round_ranges.len(), 4);
        assert_eq!(pp.round_ranges[0], (0, 0));
        assert_eq!(pp.round_ranges[1], (0, 0));
        assert_eq!(pp.round_ranges[2], (0, 1));
        assert_eq!(pp.round_ranges[3], (1, 2));
        assert_eq!(plan.total_chunks, 2);
    }

    #[test]
    fn rank_stream_plan_flat_numbering_spans_partitions() {
        // One rank writing across both partitions: 1 rank, 128 B, 2 aggrs.
        let s = compute_schedule(
            &[vec![WriteDecl { offset: 0, len: 128 }]],
            ScheduleParams { num_aggregators: 2, buffer_size: 32, align_to_buffer: true },
        );
        assert_eq!(s.partitions.len(), 2);
        let plan = RankStreamPlan::new(&s, 0);
        assert_eq!(plan.parts.len(), 2);
        assert_eq!(plan.parts[0].chunk_base, 0);
        assert_eq!(plan.parts[1].chunk_base, plan.parts[0].chunks.len());
        assert_eq!(
            plan.total_chunks,
            plan.parts.iter().map(|p| p.chunks.len()).sum::<usize>()
        );
        assert_eq!(plan.total_chunks, s.chunks_by_rank[0].len());
        // ranges cover each partition's chunks exactly, in order
        for pp in &plan.parts {
            let mut k = 0;
            for (start, end) in &pp.round_ranges {
                assert_eq!(*start, k);
                assert!(*end >= *start);
                k = *end;
            }
            assert_eq!(k, pp.chunks.len());
        }
    }

    #[test]
    fn sparse_declarations_produce_multiple_segments() {
        // two ranks write 16 B each with a 16 B hole between them
        let decls = vec![
            vec![WriteDecl { offset: 0, len: 16 }],
            vec![WriteDecl { offset: 32, len: 16 }],
        ];
        let s = compute_schedule(&decls, ScheduleParams { num_aggregators: 1, buffer_size: 64, align_to_buffer: false });
        let round = &s.partitions[0].rounds[0];
        assert_eq!(round.segments.len(), 2);
        assert_eq!(round.bytes, 32);
        assert_eq!(round.segments[0].file_offset, 0);
        assert_eq!(round.segments[1].file_offset, 32);
        assert_eq!(round.segments[1].buf_offset, 32);
    }

    #[test]
    fn rank_spanning_partitions_is_member_of_both() {
        // 2 ranks x 100 B, 2 partitions of 100 B: rank 0 covers 0..100
        // (partition 0 exactly), rank 1 covers 100..200 (partition 1).
        // With 3 ranks x 100 and 2 partitions of 150, rank 1 spans both.
        let s = compute_schedule(&dense_decls(3, 100), ScheduleParams {
            num_aggregators: 2,
            buffer_size: 75,
            align_to_buffer: true,
        });
        assert_eq!(s.partitions[0].members, vec![0, 1]);
        assert_eq!(s.partitions[1].members, vec![1, 2]);
        assert_eq!(s.partitions[0].member_bytes, vec![100, 50]);
        assert_eq!(s.partitions[1].member_bytes, vec![50, 100]);
    }

    #[test]
    fn empty_declarations() {
        let s = compute_schedule(&[vec![], vec![]], ScheduleParams {
            num_aggregators: 4,
            buffer_size: 16,
            align_to_buffer: true,
        });
        assert_eq!(s.total_bytes(), 0);
        assert!(s.partitions.is_empty());
        assert_eq!(s.chunks_by_rank.len(), 2);
    }

    #[test]
    fn nonzero_span_start() {
        let decls = vec![vec![WriteDecl { offset: 1000, len: 64 }]];
        let s = compute_schedule(&decls, ScheduleParams { num_aggregators: 2, buffer_size: 16, align_to_buffer: false });
        assert_eq!(s.span, (1000, 1064));
        assert_eq!(s.partitions[0].start, 1000);
        let c = &s.chunks_by_rank[0][0];
        assert_eq!(c.buf_offset, 0);
        assert_eq!(c.file_offset, 1000);
    }

    #[test]
    fn last_round_may_be_partial() {
        let s = compute_schedule(&dense_decls(1, 70), ScheduleParams {
            num_aggregators: 1,
            buffer_size: 32,
            align_to_buffer: true,
        });
        let p = &s.partitions[0];
        assert_eq!(p.rounds.len(), 3);
        assert_eq!(p.rounds[2].bytes, 6);
    }

    mod props {
        use super::*;

        fn mix(mut x: u64) -> u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }

        /// Chunks exactly tile the declarations; per-partition member
        /// weights and round bytes are consistent; buffer offsets fit.
        /// Deterministic seeded sweep (no external property-test crate).
        #[test]
        fn prop_schedule_conserves_bytes() {
            for case in 0u64..80 {
                let nranks = 1 + (mix(case * 3 + 1) % 11) as usize;
                let naggr = 1 + (mix(case * 3 + 2) % 5) as usize;
                let buf = 1 + mix(case * 3 + 3) % 127;
                let sizes: Vec<u64> =
                    (0..nranks).map(|r| mix(case * 101 + r as u64) % 500).collect();

                // ranks write consecutive blocks of the given sizes
                let mut decls = Vec::new();
                let mut off = 0;
                for s in &sizes {
                    decls.push(vec![WriteDecl { offset: off, len: *s }]);
                    off += s;
                }
                let total: u64 = sizes.iter().sum();
                let s = compute_schedule(&decls, ScheduleParams {
                    num_aggregators: naggr,
                    buffer_size: buf,
                    align_to_buffer: naggr.is_multiple_of(2), // exercise both modes
                });
                assert_eq!(s.total_bytes(), total, "case {case}");

                for (rank, chunks) in s.chunks_by_rank.iter().enumerate() {
                    let sum: u64 = chunks.iter().map(|c| c.len).sum();
                    assert_eq!(sum, sizes[rank], "case {case}");
                    for c in chunks {
                        assert!(c.buf_offset + c.len <= buf);
                        assert!(c.partition < s.partitions.len());
                        let p = &s.partitions[c.partition];
                        assert!(c.file_offset >= p.start);
                        assert!(c.file_offset + c.len <= p.end);
                        // buffer offset consistent with file offset
                        let win = p.start + c.round as u64 * buf;
                        assert_eq!(c.file_offset - win, c.buf_offset);
                    }
                }

                // member weights equal sum of member chunks
                for p in &s.partitions {
                    for (m, &w) in p.members.iter().zip(&p.member_bytes) {
                        let sum: u64 = s.chunks_by_rank[*m]
                            .iter()
                            .filter(|c| c.partition == p.index)
                            .map(|c| c.len)
                            .sum();
                        assert_eq!(w, sum, "case {case}");
                    }
                    // round segments cover round bytes
                    for r in &p.rounds {
                        let seg: u64 = r.segments.iter().map(|x| x.len).sum();
                        assert_eq!(seg, r.bytes, "case {case}");
                    }
                }
            }
        }
    }
    #[test]
    fn coalesce_merges_co_located_contiguous_chunks() {
        // 16 ranks on one node (mira-style rpn=16), one contiguous block
        // each: every round's 16 puts fold into a single merged put.
        let s = compute_schedule(
            &dense_decls(16, 64),
            ScheduleParams { num_aggregators: 1, buffer_size: 256, align_to_buffer: true },
        );
        let plan = compute_coalesce_plan(&s, |r| r / 16);
        let nrounds = s.partitions[0].rounds.len();
        assert_eq!(plan.runs().len(), nrounds, "one merged run per round");
        for run in plan.runs() {
            assert_eq!(run.node, 0);
            assert_eq!(run.len, 256);
            assert!(run.chunks.len() >= 2);
            // back-to-back chunks, leader produces the first one
            for w in run.chunks.windows(2) {
                assert_eq!(w[0].buf_offset + w[0].len, w[1].buf_offset);
            }
            assert_eq!(run.leader, run.chunks[0].rank);
            assert_eq!(run.buf_offset, run.chunks[0].buf_offset);
        }
        // every chunk resolves to its run, and lookups agree with runs_led_by
        let total: usize = s.chunks_by_rank.iter().map(Vec::len).sum();
        assert_eq!(plan.total_coalesced_chunks(), total);
        assert_eq!(plan.wire_put_count(&s), nrounds);
        for chunks in &s.chunks_by_rank {
            for c in chunks {
                let run = plan.run_for_chunk(c).expect("all chunks coalesce here");
                assert!(run.chunks.contains(c));
                assert!(plan
                    .runs_led_by(run.partition, run.round, run.leader)
                    .any(|r| r == run));
            }
        }
    }

    #[test]
    fn coalesce_runs_split_at_node_boundaries() {
        // 8 ranks, 4 per node: contiguous buffer extents split into one
        // run per node, never mixing nodes.
        let s = compute_schedule(
            &dense_decls(8, 32),
            ScheduleParams { num_aggregators: 1, buffer_size: 256, align_to_buffer: true },
        );
        let plan = compute_coalesce_plan(&s, |r| r / 4);
        assert_eq!(plan.runs().len(), 2);
        for run in plan.runs() {
            assert_eq!(run.chunks.len(), 4);
            assert!(run.chunks.iter().all(|c| c.rank / 4 == run.node));
        }
        assert_eq!(plan.wire_put_count(&s), 2);
    }

    #[test]
    fn coalesce_skips_singletons_and_gaps() {
        // One rank per node: nothing is co-located, nothing coalesces.
        let s = compute_schedule(
            &dense_decls(4, 32),
            ScheduleParams { num_aggregators: 1, buffer_size: 128, align_to_buffer: true },
        );
        let none = compute_coalesce_plan(&s, |r| r);
        assert!(none.is_empty());
        assert_eq!(none.wire_put_count(&s), 4);
        assert!(none.run_for_chunk(&s.chunks_by_rank[0][0]).is_none());

        // Interleaved file extents from different nodes break contiguity
        // in node terms: ranks 0,2 on node 0 and 1,3 on node 1, writing
        // alternating blocks. Adjacent buffer extents alternate nodes, so
        // no run forms.
        let decls: Vec<Vec<WriteDecl>> = (0..4u64)
            .map(|r| vec![WriteDecl { offset: r * 32, len: 32 }])
            .collect();
        let s = compute_schedule(
            &decls,
            ScheduleParams { num_aggregators: 1, buffer_size: 128, align_to_buffer: true },
        );
        let plan = compute_coalesce_plan(&s, |r| r % 2);
        assert!(plan.is_empty(), "alternating nodes never form a run");
    }

    #[test]
    fn coalesce_plan_is_deterministic_and_covers_partial_runs() {
        // Mixed shape: 6 ranks, nodes of 3 — node 0 = ranks 0..3,
        // node 1 = ranks 3..6. With dense declarations both node groups
        // form runs; recomputation yields the identical plan.
        let s = compute_schedule(
            &dense_decls(6, 48),
            ScheduleParams { num_aggregators: 2, buffer_size: 96, align_to_buffer: true },
        );
        let a = compute_coalesce_plan(&s, |r| r / 3);
        let b = compute_coalesce_plan(&s, |r| r / 3);
        assert_eq!(a, b);
        for run in a.runs() {
            let merged: u64 = run.chunks.iter().map(|c| c.len).sum();
            assert_eq!(run.len, merged);
            // run extents never cross the round's buffer
            assert!(run.buf_offset + run.len <= 96);
        }
    }
}
