//! The library's error type: every recoverable failure of the public
//! API surfaces as a [`TapiocaError`] instead of a panic.
//!
//! The contract (see `CONTRIBUTING.md`): public functions return
//! [`Result`] for invalid configuration, I/O failure, timeouts, and
//! degraded recovery. Panics are reserved for *caller protocol bugs*
//! that would otherwise deadlock the collective (e.g. finalizing with
//! declared-but-never-issued writes), and are documented per function.

use std::time::Duration;

use tapioca_mpi::IoError;

/// `Result` specialized to [`TapiocaError`].
pub type Result<T> = std::result::Result<T, TapiocaError>;

/// Why a TAPIOCA operation failed.
#[non_exhaustive]
#[derive(Debug)]
pub enum TapiocaError {
    /// The configuration (or a call argument) violates an invariant.
    InvalidConfig(String),
    /// A file operation failed after `attempts` tries.
    Io {
        /// The failing operation (e.g. `"iwrite_at"`).
        op: &'static str,
        /// Attempts made before giving up.
        attempts: u32,
        /// The underlying OS error of the last attempt.
        source: std::io::Error,
    },
    /// A partition's aggregator failed and could not be replaced.
    AggregatorFailed {
        /// Global rank of the failed aggregator.
        rank: usize,
        /// Pipeline round at which it failed.
        round: u32,
    },
    /// Waiting on an in-flight operation exceeded the op timeout.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
        /// How long the caller waited.
        waited: Duration,
    },
    /// A partition fell back to direct per-rank writes after its retry
    /// budget was exhausted. The data is durable, but the collective
    /// optimization was lost.
    Degraded {
        /// The degraded partition.
        partition: u32,
        /// First round written directly.
        round: u32,
    },
}

impl std::fmt::Display for TapiocaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TapiocaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TapiocaError::Io { op, attempts, source } => {
                write!(f, "{op} failed after {attempts} attempts: {source}")
            }
            TapiocaError::AggregatorFailed { rank, round } => {
                write!(f, "aggregator rank {rank} failed at round {round}")
            }
            TapiocaError::Timeout { op, waited } => {
                write!(f, "{op} timed out after {waited:?}")
            }
            TapiocaError::Degraded { partition, round } => {
                write!(f, "partition {partition} degraded to direct writes at round {round}")
            }
        }
    }
}

impl std::error::Error for TapiocaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TapiocaError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<IoError> for TapiocaError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Exhausted { op, attempts, kind, msg } => TapiocaError::Io {
                op,
                attempts,
                source: std::io::Error::new(kind, msg),
            },
            IoError::Timeout { op, waited } => TapiocaError::Timeout { op, waited },
            IoError::Disconnected { op } => TapiocaError::Io {
                op,
                attempts: 0,
                source: std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "I/O worker disconnected",
                ),
            },
        }
    }
}

/// Shorthand for I/O errors from one-shot (single-attempt) operations.
pub(crate) fn io_err(op: &'static str, source: std::io::Error) -> TapiocaError {
    TapiocaError::Io { op, attempts: 1, source }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TapiocaError::InvalidConfig("zero aggregators".into());
        assert!(e.to_string().contains("zero aggregators"));
        let e = TapiocaError::Degraded { partition: 3, round: 1 };
        assert!(e.to_string().contains("partition 3"));
        let e: TapiocaError = IoError::Timeout {
            op: "iwrite_at",
            waited: Duration::from_secs(1),
        }
        .into();
        assert!(matches!(e, TapiocaError::Timeout { .. }));
    }

    #[test]
    fn io_variant_chains_source() {
        use std::error::Error;
        let e: TapiocaError = IoError::Exhausted {
            op: "iwrite_at",
            attempts: 4,
            kind: std::io::ErrorKind::Interrupted,
            msg: "injected".into(),
        }
        .into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("4 attempts"));
    }
}
